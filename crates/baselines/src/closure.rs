//! Transitive-closure (brute force) detector.
//!
//! Builds the entire step-level computation graph during the run, then
//! computes the transitive closure of the happens-before relation and
//! checks every access pair against Definition 3 — exactly the approach
//! the paper's introduction rules out for production use ("instead of
//! using brute force approaches such as building the transitive closure
//! of the happens-before relation…"). It is exact on every program the
//! programming model can express, so it doubles as the ground-truth
//! oracle in the test suites, and its Θ(steps²) closure cost is the
//! contrast point in the ablation benches.

use crate::BaselineDetector;
use futrace_compgraph::oracle::{find_races, OracleRace};
use futrace_compgraph::{CompGraph, GraphBuilder};
use futrace_runtime::engine::{control_to_monitor, Analysis};
use futrace_runtime::monitor::{Event, Monitor, TaskKind};
use futrace_util::ids::{FinishId, LocId, TaskId};

enum State {
    Building(GraphBuilder),
    Done {
        graph: CompGraph,
        races: Vec<OracleRace>,
    },
}

/// Brute-force race detector: full graph + transitive closure at the end.
pub struct ClosureDetector {
    state: State,
}

impl Default for ClosureDetector {
    fn default() -> Self {
        Self::new()
    }
}

impl ClosureDetector {
    /// Fresh detector.
    pub fn new() -> Self {
        ClosureDetector {
            state: State::Building(GraphBuilder::new()),
        }
    }

    fn builder(&mut self) -> &mut GraphBuilder {
        match &mut self.state {
            State::Building(b) => b,
            State::Done { .. } => panic!("ClosureDetector used after finalize"),
        }
    }

    /// The races found (after [`BaselineDetector::finalize`]).
    pub fn races(&self) -> &[OracleRace] {
        match &self.state {
            State::Done { races, .. } => races,
            State::Building(_) => panic!("call finalize first"),
        }
    }

    /// The computation graph (after finalize).
    pub fn graph(&self) -> &CompGraph {
        match &self.state {
            State::Done { graph, .. } => graph,
            State::Building(_) => panic!("call finalize first"),
        }
    }
}

impl Monitor for ClosureDetector {
    fn task_create(&mut self, parent: TaskId, child: TaskId, kind: TaskKind, ief: FinishId) {
        self.builder().task_create(parent, child, kind, ief);
    }
    fn task_end(&mut self, task: TaskId) {
        self.builder().task_end(task);
    }
    fn finish_start(&mut self, task: TaskId, finish: FinishId) {
        self.builder().finish_start(task, finish);
    }
    fn finish_end(&mut self, task: TaskId, finish: FinishId, joined: &[TaskId]) {
        self.builder().finish_end(task, finish, joined);
    }
    fn get(&mut self, waiter: TaskId, awaited: TaskId) {
        self.builder().get(waiter, awaited);
    }
    fn read(&mut self, task: TaskId, loc: LocId) {
        self.builder().read(task, loc);
    }
    fn write(&mut self, task: TaskId, loc: LocId) {
        self.builder().write(task, loc);
    }
}

impl BaselineDetector for ClosureDetector {
    fn name(&self) -> &'static str {
        "closure"
    }

    fn finalize(&mut self) {
        if let State::Building(b) = std::mem::replace(
            &mut self.state,
            State::Done {
                graph: CompGraph::default(),
                races: Vec::new(),
            },
        ) {
            let graph = b.into_graph();
            let races = find_races(&graph);
            self.state = State::Done { graph, races };
        }
    }

    fn race_count(&self) -> u64 {
        self.races().len() as u64
    }
}

/// What a closure-detector run produces under the engine layer: the exact
/// race list *and* the full computation graph, so callers (the equivalence
/// suites) can keep running reachability queries against the ground truth.
#[derive(Clone, Debug)]
pub struct ClosureReport {
    /// The completed step-level computation graph.
    pub graph: CompGraph,
    /// Every racing access pair, in access order (exact, not first-race).
    pub races: Vec<OracleRace>,
}

impl ClosureReport {
    /// True iff any access pair races.
    pub fn has_races(&self) -> bool {
        !self.races.is_empty()
    }
}

impl Analysis for ClosureDetector {
    type Report = ClosureReport;

    fn apply_control(&mut self, e: &Event) {
        control_to_monitor(self, e);
    }

    fn check_read_at(&mut self, task: TaskId, loc: LocId, _index: u64) {
        Monitor::read(self, task, loc);
    }

    fn check_write_at(&mut self, task: TaskId, loc: LocId, _index: u64) {
        Monitor::write(self, task, loc);
    }

    fn finish(mut self) -> ClosureReport {
        self.finalize();
        match self.state {
            State::Done { graph, races } => ClosureReport { graph, races },
            State::Building(_) => unreachable!("finalize left the detector building"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_baseline;
    use futrace_runtime::TaskCtx;

    #[test]
    fn exact_on_future_sync() {
        let mut d = ClosureDetector::new();
        run_baseline(&mut d, |ctx| {
            let x = ctx.shared_var(0u64, "x");
            let x2 = x.clone();
            let f = ctx.future(move |ctx| x2.write(ctx, 1));
            ctx.get(&f);
            let _ = x.read(ctx);
        });
        assert!(!d.has_races());
        assert_eq!(d.name(), "closure");
        assert!(d.graph().step_count() > 0);
    }

    #[test]
    fn exact_on_future_race() {
        let mut d = ClosureDetector::new();
        run_baseline(&mut d, |ctx| {
            let x = ctx.shared_var(0u64, "x");
            let x2 = x.clone();
            let _f = ctx.future(move |ctx| x2.write(ctx, 1));
            let _ = x.read(ctx);
        });
        assert!(d.has_races());
        assert_eq!(d.race_count(), 1);
        assert_eq!(d.races().len(), 1);
    }

    #[test]
    #[should_panic(expected = "call finalize first")]
    fn races_before_finalize_panics() {
        let d = ClosureDetector::new();
        let _ = d.races();
    }
}
