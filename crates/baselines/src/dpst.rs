//! SPD3-style detection on the Dynamic Program Structure Tree (Raman,
//! Zhao, Sarkar, Vechev, Yahav — PLDI 2012), for async-finish programs.
//!
//! The paper cites SPD3 as the state of the art for async-finish (§6):
//! "the algorithm determines series-parallel relationships between steps
//! by a lookup of the lowest common ancestor in the dynamic program
//! structure tree". The DPST has three node kinds — **finish**, **async**,
//! and **step** (leaves) — with children in left-to-right execution order.
//! For two steps `S1` (executed earlier) and `S2`, let `L` be their LCA
//! and `C` the child of `L` on `S1`'s path:
//!
//! > `S1 ∥ S2` **iff** `C` is an *async* node
//!
//! (if `C` is a step or finish node, everything to its right in `L` is
//! sequenced after it). The LCA lookup is O(tree depth) via parent
//! pointers with depths — no labels, no bags.
//!
//! Like every async-finish-only detector, SPD3 cannot see future `get()`
//! edges; this port counts and ignores them (`ignored_gets`), which makes
//! it over-approximate on future programs — again the gap the DTRG fills.
//! (The original SPD3 runs *in parallel with the program*; this port runs
//! sequentially like the rest of the suite, preserving its data structure
//! and MHP query exactly.)

use crate::{BaselineDetector, BaselineReport};
use futrace_runtime::engine::{control_to_monitor, Analysis};
use futrace_runtime::monitor::{Event, Monitor, TaskKind};
use futrace_util::ids::{FinishId, LocId, TaskId};

/// DPST node kinds.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Kind {
    Finish,
    Async,
    Step,
}

#[derive(Clone, Copy, Debug)]
struct Node {
    parent: u32,
    depth: u32,
    kind: Kind,
}

#[derive(Clone, Copy, Default)]
struct Cell {
    writer: Option<u32>,
    reader: Option<u32>,
}

/// The SPD3/DPST determinacy race detector for async-finish programs.
pub struct Spd3 {
    nodes: Vec<Node>,
    /// Stack of open finish/async nodes (global under serial depth-first
    /// execution, since tasks run to completion at their spawn point).
    open: Vec<u32>,
    /// Current step node of each task.
    cur_step: Vec<u32>,
    /// Spawn-tree parent of each task.
    task_parent: Vec<Option<TaskId>>,
    shadow: Vec<Cell>,
    races: u64,
    /// `get()` events observed and ignored (nonzero ⇒ possible false
    /// positives).
    pub ignored_gets: u64,
}

impl Default for Spd3 {
    fn default() -> Self {
        Self::new()
    }
}

impl Spd3 {
    /// Fresh detector: a root finish node with the main task's first step.
    pub fn new() -> Self {
        let root = Node {
            parent: u32::MAX,
            depth: 0,
            kind: Kind::Finish,
        };
        let step0 = Node {
            parent: 0,
            depth: 1,
            kind: Kind::Step,
        };
        Spd3 {
            nodes: vec![root, step0],
            open: vec![0],
            cur_step: vec![1],
            task_parent: vec![None],
            shadow: Vec::new(),
            races: 0,
            ignored_gets: 0,
        }
    }

    fn add_node(&mut self, parent: u32, kind: Kind) -> u32 {
        let id = u32::try_from(self.nodes.len()).expect("DPST too large");
        self.nodes.push(Node {
            parent,
            depth: self.nodes[parent as usize].depth + 1,
            kind,
        });
        id
    }

    fn top(&self) -> u32 {
        *self.open.last().expect("open stack")
    }

    /// The SPD3 MHP query: may step `u` (executed earlier) run in parallel
    /// with step `v` (the current step)?
    fn parallel(&self, u: u32, v: u32) -> bool {
        if u == v {
            return false;
        }
        // Walk both paths to the common depth, then up in lockstep,
        // remembering the child of the LCA on u's side.
        let (mut a, mut b) = (u, v);
        let mut a_child = a;
        while self.nodes[a as usize].depth > self.nodes[b as usize].depth {
            a_child = a;
            a = self.nodes[a as usize].parent;
        }
        while self.nodes[b as usize].depth > self.nodes[a as usize].depth {
            b = self.nodes[b as usize].parent;
        }
        while a != b {
            a_child = a;
            a = self.nodes[a as usize].parent;
            b = self.nodes[b as usize].parent;
        }
        if a == u {
            // u is an ancestor node of v's step — cannot happen for step
            // leaves, defensive.
            return false;
        }
        self.nodes[a_child as usize].kind == Kind::Async
    }

    fn cell_mut(&mut self, loc: LocId) -> &mut Cell {
        let i = loc.index();
        if i >= self.shadow.len() {
            self.shadow.resize_with(i + 1, Cell::default);
        }
        &mut self.shadow[i]
    }

    /// DPST size in nodes (for diagnostics).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }
}

impl Monitor for Spd3 {
    fn task_create(&mut self, parent: TaskId, child: TaskId, _kind: TaskKind, _ief: FinishId) {
        debug_assert_eq!(child.index(), self.task_parent.len());
        self.task_parent.push(Some(parent));
        let a = self.add_node(self.top(), Kind::Async);
        self.open.push(a);
        let s = self.add_node(a, Kind::Step);
        self.cur_step.push(s);
        let _ = parent;
    }

    fn task_end(&mut self, task: TaskId) {
        if task == TaskId::MAIN {
            return;
        }
        let a = self.open.pop().expect("open stack");
        debug_assert_eq!(self.nodes[a as usize].kind, Kind::Async);
        // The parent task resumes in a fresh step after the async.
        let parent = self.task_parent[task.index()].expect("non-main task");
        let s = self.add_node(self.top(), Kind::Step);
        self.cur_step[parent.index()] = s;
    }

    fn finish_start(&mut self, task: TaskId, _finish: FinishId) {
        let f = self.add_node(self.top(), Kind::Finish);
        self.open.push(f);
        let s = self.add_node(f, Kind::Step);
        self.cur_step[task.index()] = s;
    }

    fn finish_end(&mut self, task: TaskId, _finish: FinishId, _joined: &[TaskId]) {
        // The implicit final finish has no matching start; nothing runs
        // after it.
        if self.open.len() <= 1 {
            return;
        }
        let f = self.open.pop().expect("open stack");
        debug_assert_eq!(self.nodes[f as usize].kind, Kind::Finish);
        let s = self.add_node(self.top(), Kind::Step);
        self.cur_step[task.index()] = s;
    }

    fn get(&mut self, _waiter: TaskId, _awaited: TaskId) {
        self.ignored_gets += 1;
    }

    fn write(&mut self, task: TaskId, loc: LocId) {
        let step = self.cur_step[task.index()];
        let cell = *self.cell_mut(loc);
        if let Some(r) = cell.reader {
            if self.parallel(r, step) {
                self.races += 1;
            }
        }
        if let Some(w) = cell.writer {
            if self.parallel(w, step) {
                self.races += 1;
            }
        }
        self.cell_mut(loc).writer = Some(step);
    }

    fn read(&mut self, task: TaskId, loc: LocId) {
        let step = self.cur_step[task.index()];
        let cell = *self.cell_mut(loc);
        if let Some(w) = cell.writer {
            if self.parallel(w, step) {
                self.races += 1;
            }
        }
        let replace = match cell.reader {
            None => true,
            Some(r) => !self.parallel(r, step),
        };
        if replace {
            self.cell_mut(loc).reader = Some(step);
        }
    }
}

impl BaselineDetector for Spd3 {
    fn name(&self) -> &'static str {
        "spd3-dpst"
    }
    fn race_count(&self) -> u64 {
        self.races
    }
}

impl Analysis for Spd3 {
    type Report = BaselineReport;

    fn apply_control(&mut self, e: &Event) {
        control_to_monitor(self, e);
    }

    fn check_read_at(&mut self, task: TaskId, loc: LocId, _index: u64) {
        Monitor::read(self, task, loc);
    }

    fn check_write_at(&mut self, task: TaskId, loc: LocId, _index: u64) {
        Monitor::write(self, task, loc);
    }

    fn finish(mut self) -> BaselineReport {
        self.finalize();
        let mut notes = Vec::new();
        if self.ignored_gets > 0 {
            notes.push(format!(
                "ignored {} get() edge(s): verdict may over-approximate on futures",
                self.ignored_gets
            ));
        }
        BaselineReport {
            name: self.name(),
            races: self.race_count(),
            notes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_baseline;
    use futrace_runtime::TaskCtx;

    #[test]
    fn race_free_fork_join() {
        let mut d = Spd3::new();
        run_baseline(&mut d, |ctx| {
            let x = ctx.shared_var(0u64, "x");
            ctx.finish(|ctx| {
                let xa = x.clone();
                ctx.async_task(move |ctx| xa.write(ctx, 1));
            });
            x.write(ctx, 2);
        });
        assert!(!d.has_races(), "{} races", d.race_count());
        assert!(d.node_count() > 3);
    }

    #[test]
    fn detects_sibling_race() {
        let mut d = Spd3::new();
        run_baseline(&mut d, |ctx| {
            let x = ctx.shared_var(0u64, "x");
            ctx.finish(|ctx| {
                let xa = x.clone();
                ctx.async_task(move |ctx| xa.write(ctx, 1));
                let xb = x.clone();
                ctx.async_task(move |ctx| xb.write(ctx, 2));
            });
        });
        assert!(d.has_races());
        assert_eq!(d.name(), "spd3-dpst");
    }

    #[test]
    fn parent_continuation_races_within_finish() {
        let mut d = Spd3::new();
        run_baseline(&mut d, |ctx| {
            let x = ctx.shared_var(0u64, "x");
            ctx.finish(|ctx| {
                let xa = x.clone();
                ctx.async_task(move |ctx| xa.write(ctx, 1));
                x.write(ctx, 2); // continuation: LCA child is the async
            });
        });
        assert!(d.has_races());
    }

    #[test]
    fn pre_spawn_access_ordered() {
        let mut d = Spd3::new();
        run_baseline(&mut d, |ctx| {
            let x = ctx.shared_var(0u64, "x");
            x.write(ctx, 1); // step left of the async, not under it
            let xa = x.clone();
            ctx.async_task(move |ctx| {
                let _ = xa.read(ctx);
            });
        });
        // The pre-spawn step's LCA child is a *step* node: ordered.
        assert!(!d.has_races(), "{} races", d.race_count());
    }

    #[test]
    fn deep_ief_handled() {
        let mut d = Spd3::new();
        run_baseline(&mut d, |ctx| {
            let x = ctx.shared_var(0u64, "x");
            ctx.finish(|ctx| {
                let x1 = x.clone();
                ctx.async_task(move |ctx| {
                    let x2 = x1.clone();
                    ctx.async_task(move |ctx| x2.write(ctx, 1));
                });
            });
            x.write(ctx, 2);
        });
        assert!(!d.has_races(), "{} races", d.race_count());
    }

    #[test]
    fn ignores_gets_with_counter() {
        let mut d = Spd3::new();
        run_baseline(&mut d, |ctx| {
            let x = ctx.shared_var(0u64, "x");
            let x2 = x.clone();
            let f = ctx.future(move |ctx| x2.write(ctx, 1));
            ctx.get(&f);
            let _ = x.read(ctx);
        });
        assert_eq!(d.ignored_gets, 1);
        assert!(d.has_races(), "false positive expected without get edges");
    }
}
