//! ESP-bags (Raman, Zhao, Sarkar, Vechev, Yahav — "Efficient Data Race
//! Detection for Async-Finish Parallelism") for async-finish programs.
//!
//! The direct predecessor of the paper's algorithm and its experimental
//! yardstick ("the slowdowns … are comparable to the slowdowns reported
//! for the ESP-Bags algorithm", §5). ESP-bags generalizes SP-bags from
//! spawn-sync to terminally strict async-finish graphs by attaching the
//! P-bag to the **finish scope** instead of the parent procedure:
//!
//! * task `T` spawned: `S(T) = {T}`;
//! * task `T` completes: `S(T)` moves into `P(F)` where `F` = IEF(`T`);
//! * finish `F` (executed by task `A`) completes: `S(A) ∪= P(F)`;
//! * a recorded accessor is parallel with the current step iff its bag is
//!   a P-bag.
//!
//! Futures are *not* modeled: `get()` events are ignored (with a counter),
//! so ESP-bags produces **false positives** on future-synchronized
//! programs — the motivating gap for the DTRG detector. Running it on
//! async-finish programs, it is exact, and our bench harness uses it to
//! verify the "no additional overhead for async/finish" claim.

use crate::{BaselineDetector, BaselineReport};
use futrace_runtime::engine::{control_to_monitor, Analysis};
use futrace_runtime::monitor::{Event, Monitor, TaskKind};
use futrace_util::ids::{FinishId, LocId, TaskId};
use futrace_util::UnionFind;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Bag {
    /// S-bag of a task.
    S(TaskId),
    /// P-bag of a finish scope.
    P(FinishId),
}

#[derive(Clone, Copy, Default)]
struct Cell {
    writer: Option<TaskId>,
    reader: Option<TaskId>,
}

/// The ESP-bags determinacy race detector for async-finish programs.
pub struct EspBags {
    bags: UnionFind<Bag>,
    /// Task id -> IEF finish id.
    ief: Vec<FinishId>,
    /// Finish id -> current P-bag representative (None while empty).
    pbag: Vec<Option<usize>>,
    shadow: Vec<Cell>,
    races: u64,
    /// `get()` events observed and ignored (nonzero means the verdict may
    /// contain false positives).
    pub ignored_gets: u64,
}

impl Default for EspBags {
    fn default() -> Self {
        Self::new()
    }
}

impl EspBags {
    /// Fresh detector.
    pub fn new() -> Self {
        let mut bags = UnionFind::new();
        let key = bags.make_set(Bag::S(TaskId::MAIN));
        debug_assert_eq!(key, 0);
        EspBags {
            bags,
            ief: vec![FinishId(0)],
            pbag: vec![None], // implicit finish F0
            shadow: Vec::new(),
            races: 0,
            ignored_gets: 0,
        }
    }

    #[inline]
    fn is_parallel(&mut self, t: TaskId) -> bool {
        matches!(*self.bags.payload(t.index()), Bag::P(_))
    }

    fn cell_mut(&mut self, loc: LocId) -> &mut Cell {
        let i = loc.index();
        if i >= self.shadow.len() {
            self.shadow.resize_with(i + 1, Cell::default);
        }
        &mut self.shadow[i]
    }

    fn ensure_finish(&mut self, f: FinishId) {
        if f.index() >= self.pbag.len() {
            self.pbag.resize(f.index() + 1, None);
        }
    }
}

impl Monitor for EspBags {
    fn task_create(&mut self, _parent: TaskId, child: TaskId, _kind: TaskKind, ief: FinishId) {
        debug_assert_eq!(child.index(), self.ief.len());
        let key = self.bags.make_set(Bag::S(child));
        debug_assert_eq!(key, child.index());
        self.ief.push(ief);
        self.ensure_finish(ief);
    }

    fn task_end(&mut self, task: TaskId) {
        if task == TaskId::MAIN {
            return;
        }
        // S(T) moves into P(IEF(T)).
        let f = self.ief[task.index()];
        let rep = self.bags.find(task.index());
        let rep = match self.pbag[f.index()] {
            Some(prep) => self.bags.union_with(prep, rep, |a, _| a),
            None => {
                *self.bags.payload_mut(rep) = Bag::P(f);
                rep
            }
        };
        self.pbag[f.index()] = Some(rep);
    }

    fn finish_start(&mut self, _task: TaskId, finish: FinishId) {
        self.ensure_finish(finish);
    }

    fn finish_end(&mut self, task: TaskId, finish: FinishId, _joined: &[TaskId]) {
        // S(A) ∪= P(F).
        if let Some(p) = self.pbag[finish.index()].take() {
            let s = self.bags.find(task.index());
            let rep = self.bags.union_with(s, p, |a, _| a);
            *self.bags.payload_mut(rep) = Bag::S(task);
        }
    }

    fn get(&mut self, _waiter: TaskId, _awaited: TaskId) {
        // ESP-bags cannot represent point-to-point joins; the edge is
        // dropped, which can only add false positives (never missed
        // races), since dropping edges enlarges the may-happen-in-parallel
        // relation.
        self.ignored_gets += 1;
    }

    fn write(&mut self, task: TaskId, loc: LocId) {
        let cell = *self.cell_mut(loc);
        if let Some(r) = cell.reader {
            if self.is_parallel(r) {
                self.races += 1;
            }
        }
        if let Some(w) = cell.writer {
            if self.is_parallel(w) {
                self.races += 1;
            }
        }
        self.cell_mut(loc).writer = Some(task);
    }

    fn read(&mut self, task: TaskId, loc: LocId) {
        let cell = *self.cell_mut(loc);
        if let Some(w) = cell.writer {
            if self.is_parallel(w) {
                self.races += 1;
            }
        }
        let replace = match cell.reader {
            None => true,
            Some(r) => !self.is_parallel(r),
        };
        if replace {
            self.cell_mut(loc).reader = Some(task);
        }
    }
}

impl BaselineDetector for EspBags {
    fn name(&self) -> &'static str {
        "esp-bags"
    }
    fn race_count(&self) -> u64 {
        self.races
    }
}

impl Analysis for EspBags {
    type Report = BaselineReport;

    fn apply_control(&mut self, e: &Event) {
        control_to_monitor(self, e);
    }

    fn check_read_at(&mut self, task: TaskId, loc: LocId, _index: u64) {
        Monitor::read(self, task, loc);
    }

    fn check_write_at(&mut self, task: TaskId, loc: LocId, _index: u64) {
        Monitor::write(self, task, loc);
    }

    fn finish(mut self) -> BaselineReport {
        self.finalize();
        let mut notes = Vec::new();
        if self.ignored_gets > 0 {
            notes.push(format!(
                "ignored {} get() edge(s): verdict may over-approximate on futures",
                self.ignored_gets
            ));
        }
        BaselineReport {
            name: self.name(),
            races: self.race_count(),
            notes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_baseline;
    use futrace_runtime::TaskCtx;

    #[test]
    fn race_free_async_finish() {
        let mut d = EspBags::new();
        run_baseline(&mut d, |ctx| {
            let x = ctx.shared_var(0u64, "x");
            ctx.finish(|ctx| {
                let xa = x.clone();
                ctx.async_task(move |ctx| xa.write(ctx, 1));
            });
            x.write(ctx, 2);
        });
        assert!(!d.has_races());
        assert_eq!(d.ignored_gets, 0);
    }

    #[test]
    fn detects_async_race() {
        let mut d = EspBags::new();
        run_baseline(&mut d, |ctx| {
            let x = ctx.shared_var(0u64, "x");
            ctx.finish(|ctx| {
                let xa = x.clone();
                ctx.async_task(move |ctx| xa.write(ctx, 1));
                let xb = x.clone();
                ctx.async_task(move |ctx| xb.write(ctx, 2));
            });
        });
        assert!(d.has_races());
    }

    #[test]
    fn deep_ief_joins_at_right_finish() {
        // Task nested two asyncs deep with the same IEF: ESP-bags handles
        // this (SP-bags' spawn-sync adapter would panic).
        let mut d = EspBags::new();
        run_baseline(&mut d, |ctx| {
            let x = ctx.shared_var(0u64, "x");
            ctx.finish(|ctx| {
                let x1 = x.clone();
                ctx.async_task(move |ctx| {
                    let x2 = x1.clone();
                    ctx.async_task(move |ctx| x2.write(ctx, 1));
                });
            });
            x.write(ctx, 2);
        });
        assert!(!d.has_races());
    }

    #[test]
    fn race_between_nested_and_parent_before_finish_end() {
        let mut d = EspBags::new();
        run_baseline(&mut d, |ctx| {
            let x = ctx.shared_var(0u64, "x");
            ctx.finish(|ctx| {
                let x1 = x.clone();
                ctx.async_task(move |ctx| {
                    let x2 = x1.clone();
                    ctx.async_task(move |ctx| x2.write(ctx, 1));
                });
                x.write(ctx, 2); // inside the finish: parallel
            });
        });
        assert!(d.has_races());
    }

    #[test]
    fn false_positive_on_future_synchronization() {
        // Race-free under futures, but ESP-bags drops the get edge.
        let mut d = EspBags::new();
        run_baseline(&mut d, |ctx| {
            let x = ctx.shared_var(0u64, "x");
            let x2 = x.clone();
            let f = ctx.future(move |ctx| x2.write(ctx, 1));
            ctx.get(&f);
            let _ = x.read(ctx);
        });
        assert!(d.has_races(), "expected the documented false positive");
        assert_eq!(d.ignored_gets, 1);
        assert_eq!(d.name(), "esp-bags");
    }

    #[test]
    fn futures_joined_only_by_finish_are_exact() {
        // If a future is synchronized by its IEF (not by get), ESP-bags
        // still gets the right answer: futures degrade to asyncs.
        let mut d = EspBags::new();
        run_baseline(&mut d, |ctx| {
            let x = ctx.shared_var(0u64, "x");
            ctx.finish(|ctx| {
                let x2 = x.clone();
                let _f = ctx.future(move |ctx| x2.write(ctx, 1));
            });
            let _ = x.read(ctx);
        });
        assert!(!d.has_races());
    }
}
