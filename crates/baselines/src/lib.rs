//! Baseline determinacy race detectors.
//!
//! The paper positions the DTRG detector against three families of prior
//! work (§1, §6); this crate implements one representative of each, all as
//! [`futrace_runtime::Monitor`]s over the same serial depth-first event
//! stream, so they are directly comparable in the bench harness:
//!
//! * [`spbags::SpBags`] — Feng & Leiserson's SP-bags for Cilk's
//!   **spawn-sync** (fully strict) model.
//! * [`espbags::EspBags`] — Raman et al.'s ESP-bags extension to
//!   **async-finish** (terminally strict) programs; the algorithm the
//!   paper's slowdowns are compared against. ESP-bags *does not model
//!   futures*: `get()` edges are invisible to it, so it reports false
//!   races on future-synchronized programs — the precise gap the paper
//!   fills (demonstrated by tests here).
//! * [`offsetspan::OffsetSpan`] — Mellor-Crummey's Offset-Span labeling
//!   for nested fork-join, adapted to async-finish via
//!   continuation-as-branch emulation; labels grow with nesting, the cost
//!   the DTRG's constant-size interval labels avoid.
//! * [`dpst::Spd3`] — Raman et al.'s SPD3 query over the Dynamic Program
//!   Structure Tree (LCA-based may-happen-in-parallel for async-finish),
//!   ported to run sequentially.
//! * [`vectorclock::VectorClockDetector`] — the classic vector-clock
//!   happens-before detector, precise for arbitrary graphs but with
//!   per-task clocks whose size grows with the number of tasks (the
//!   "impractical for dynamic task parallelism" contender).
//! * [`closure::ClosureDetector`] — brute force: build the whole step
//!   graph, take the transitive closure, check every access pair
//!   (Definition 3 literally). Exact but Θ(steps²) space.
//!
//! Every baseline implements [`BaselineDetector`] so harness code can run
//! them interchangeably.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod closure;
pub mod dpst;
pub mod offsetspan;
pub mod espbags;
pub mod spbags;
pub mod vectorclock;

use futrace_runtime::Monitor;

pub use closure::{ClosureDetector, ClosureReport};
pub use dpst::Spd3;
pub use offsetspan::OffsetSpan;
pub use espbags::EspBags;
pub use spbags::SpBags;
pub use vectorclock::VectorClockDetector;

/// Uniform interface over the baseline detectors for benches and tests.
pub trait BaselineDetector: Monitor {
    /// Short name for tables ("sp-bags", "esp-bags", "vector-clock",
    /// "closure").
    fn name(&self) -> &'static str;

    /// Called once after the monitored run completes (the closure detector
    /// does its whole analysis here; others are already final).
    fn finalize(&mut self) {}

    /// Number of race checks that failed (after `finalize`).
    fn race_count(&self) -> u64;

    /// True iff any race was detected (after `finalize`).
    fn has_races(&self) -> bool {
        self.race_count() > 0
    }
}

/// Runs `f` under the serial executor with baseline `det`, finalizing it.
pub fn run_baseline<D: BaselineDetector, R>(
    det: &mut D,
    f: impl FnOnce(&mut futrace_runtime::SerialCtx<D>) -> R,
) -> R {
    let r = futrace_runtime::run_serial(det, f);
    det.finalize();
    r
}

/// Summary report of a baseline run under the engine layer
/// ([`futrace_runtime::engine::Analysis::finish`]'s output for every
/// baseline except the closure detector, whose report also carries the
/// computation graph).
///
/// Baselines don't produce the DTRG detector's structured per-race
/// records; what they have in common is a race count and
/// algorithm-specific cost/approximation notes (ignored `get()`s, peak
/// clock width, peak label length), which comparisons print verbatim.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BaselineReport {
    /// The detector's short table name (same as
    /// [`BaselineDetector::name`]).
    pub name: &'static str,
    /// Race checks that failed.
    pub races: u64,
    /// Human-readable, algorithm-specific observations.
    pub notes: Vec<String>,
}

impl BaselineReport {
    /// True iff any race check failed.
    pub fn has_races(&self) -> bool {
        self.races > 0
    }
}
