//! Offset-Span labeling (Mellor-Crummey, 1991) for nested fork-join.
//!
//! The labeling-scheme family of the paper's related work (§6): every task
//! carries a label — a sequence of `(offset, span)` pairs, one per
//! fork-join nesting level — and two accesses are ordered iff their labels
//! are, which is decidable from the labels alone (no global structure).
//!
//! The original scheme targets strict `cobegin/coend` nesting where the
//! parent does not execute inside a fork. To run it on async-finish
//! programs we use the standard *continuation-as-branch* emulation:
//!
//! * spawning a child pushes a **branch pair** `(1, 2)` onto the child's
//!   label and a **continuation pair** `(2, 2)` onto the parent's — the
//!   parent's remaining phase is just another branch of a binary fork;
//! * `finish_end` restores the owner's label to its `finish_start` value
//!   and advances its last pair's offset by the span (`o → o+2`), the
//!   classic join rule ordering every phase child before the post-join
//!   continuation;
//! * `L1 ≺ L2` iff `L1` is a prefix of `L2`, or at the first differing
//!   pair `o1 < o2` with `o1 ≡ o2 (mod 2)` — same-parity offsets at one
//!   level belong to successive phases of the same branch, while
//!   odd(child)/even(continuation) offsets are concurrent.
//!
//! The emulation is exact for async-finish, but labels grow with the
//! number of spawns along a task's ancestry/continuation — precisely the
//! cost profile that motivated bags-based detectors, and the contrast the
//! paper draws: "Our approach uses a labeling scheme which is of constant
//! size … while Offset-Span labeling supports only nested fork-join
//! constructs." Futures are out of scope for the scheme (strict mode
//! panics on `get()`; lenient mode drops the edge and over-reports).

use crate::{BaselineDetector, BaselineReport};
use futrace_runtime::engine::{control_to_monitor, Analysis};
use futrace_runtime::monitor::{Event, Monitor, TaskKind};
use futrace_util::ids::{FinishId, LocId, TaskId};
use std::sync::Arc;

/// An offset-span label (immutably shared; clones are `Arc` bumps).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OsLabel(Arc<Vec<(u64, u64)>>);

impl OsLabel {
    fn root() -> Self {
        OsLabel(Arc::new(vec![(0, 2)]))
    }

    fn extended(&self, pair: (u64, u64)) -> Self {
        let mut v = (*self.0).clone();
        v.push(pair);
        OsLabel(Arc::new(v))
    }

    /// Label for the continuation after a join: this label's pairs, with
    /// the last pair's offset advanced *past the current in-phase value at
    /// that level* (`floor`). Advancing only from the saved value would
    /// collide with phases created by inner finishes at the same level
    /// (restore-from-saved would forget their bumps, producing a label
    /// that is a prefix of an already-joined child — a false race).
    fn joined(&self, floor: (u64, u64)) -> Self {
        let mut v = (*self.0).clone();
        let last = v.last_mut().expect("non-empty label");
        debug_assert_eq!(last.1, floor.1);
        debug_assert_eq!(last.0 % 2, floor.0 % 2, "bumps preserve parity");
        last.0 = floor.0 + floor.1; // offset advances past everything used
        OsLabel(Arc::new(v))
    }

    fn pair_at(&self, pos: usize) -> (u64, u64) {
        self.0[pos]
    }

    /// Number of `(offset, span)` pairs — grows with spawn/finish nesting
    /// under the continuation-branch emulation (the cost metric).
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True iff the label has no pairs (never for live labels).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Does work labeled `self` necessarily precede work labeled `other`?
    pub fn precedes(&self, other: &OsLabel) -> bool {
        let a = &*self.0;
        let b = &*other.0;
        let mut k = 0;
        while k < a.len() && k < b.len() && a[k] == b[k] {
            k += 1;
        }
        if k == a.len() {
            // `self` is a (possibly equal) prefix: an earlier state of the
            // same branch path — ordered before every extension.
            return true;
        }
        if k == b.len() {
            // `other` is a proper prefix of `self`: the suspended
            // ancestor's earlier state does not follow its descendant.
            return false;
        }
        let ((o1, s1), (o2, s2)) = (a[k], b[k]);
        debug_assert_eq!(s1, s2, "all spans are 2 in this emulation");
        // Same-parity offsets at one level are successive phases of the
        // same branch; odd (child) vs even (continuation) are concurrent.
        o1 < o2 && o1 % s1 == o2 % s2
    }
}

#[derive(Clone, Default)]
struct Cell {
    writer: Option<OsLabel>,
    reader: Option<OsLabel>,
}

/// The Offset-Span labeling race detector (async-finish adapter).
pub struct OffsetSpan {
    /// Current label of each task.
    labels: Vec<OsLabel>,
    /// Labels saved at finish_start, restored+advanced at finish_end.
    saved: Vec<(TaskId, OsLabel)>,
    shadow: Vec<Cell>,
    races: u64,
    lenient: bool,
    /// Largest label length observed (the growth metric).
    pub peak_label_len: usize,
}

impl Default for OffsetSpan {
    fn default() -> Self {
        Self::new()
    }
}

impl OffsetSpan {
    /// Strict detector: panics on future `get()`s.
    pub fn new() -> Self {
        OffsetSpan {
            labels: vec![OsLabel::root()],
            saved: Vec::new(),
            shadow: Vec::new(),
            races: 0,
            lenient: false,
            peak_label_len: 1,
        }
    }

    /// Lenient detector: drops `get()` edges (false positives on future
    /// programs, like SP-bags).
    pub fn new_lenient() -> Self {
        let mut d = Self::new();
        d.lenient = true;
        d
    }

    fn cell_mut(&mut self, loc: LocId) -> &mut Cell {
        let i = loc.index();
        if i >= self.shadow.len() {
            self.shadow.resize_with(i + 1, Cell::default);
        }
        &mut self.shadow[i]
    }

    fn note_len(&mut self, l: &OsLabel) {
        self.peak_label_len = self.peak_label_len.max(l.len());
    }
}

impl Monitor for OffsetSpan {
    fn task_create(&mut self, parent: TaskId, child: TaskId, _kind: TaskKind, _ief: FinishId) {
        debug_assert_eq!(child.index(), self.labels.len());
        let base = self.labels[parent.index()].clone();
        let child_label = base.extended((1, 2));
        let parent_label = base.extended((2, 2));
        self.note_len(&child_label);
        self.labels.push(child_label);
        self.labels[parent.index()] = parent_label;
    }

    fn finish_start(&mut self, task: TaskId, _finish: FinishId) {
        self.saved.push((task, self.labels[task.index()].clone()));
    }

    fn finish_end(&mut self, task: TaskId, _finish: FinishId, _joined: &[TaskId]) {
        // The implicit finish around main emits finish_end without a
        // matching finish_start; nothing executes after it, so no label
        // update is needed.
        let Some((owner, label)) = self.saved.pop() else {
            return;
        };
        debug_assert_eq!(owner, task, "finish scopes are strictly nested");
        // The join rule: restore the pre-finish label with its last pair
        // advanced past the level's current value (see `joined`), ordering
        // every phase child before the post-finish continuation.
        let floor = self.labels[task.index()].pair_at(label.len() - 1);
        self.labels[task.index()] = label.joined(floor);
    }

    fn task_end(&mut self, _task: TaskId) {}

    fn get(&mut self, _waiter: TaskId, _awaited: TaskId) {
        assert!(
            self.lenient,
            "Offset-Span labeling cannot model future get(); use the DTRG detector"
        );
    }

    fn write(&mut self, task: TaskId, loc: LocId) {
        let label = self.labels[task.index()].clone();
        let cell = self.cell_mut(loc).clone();
        if let Some(r) = &cell.reader {
            if !r.precedes(&label) {
                self.races += 1;
            }
        }
        if let Some(w) = &cell.writer {
            if !w.precedes(&label) {
                self.races += 1;
            }
        }
        self.cell_mut(loc).writer = Some(label);
    }

    fn read(&mut self, task: TaskId, loc: LocId) {
        let label = self.labels[task.index()].clone();
        let cell = self.cell_mut(loc).clone();
        if let Some(w) = &cell.writer {
            if !w.precedes(&label) {
                self.races += 1;
            }
        }
        let replace = match &cell.reader {
            None => true,
            // Keep a concurrent reader, replace an ordered one.
            Some(r) => r.precedes(&label),
        };
        if replace {
            self.cell_mut(loc).reader = Some(label);
        }
    }
}

impl BaselineDetector for OffsetSpan {
    fn name(&self) -> &'static str {
        "offset-span"
    }
    fn race_count(&self) -> u64 {
        self.races
    }
}

impl Analysis for OffsetSpan {
    type Report = BaselineReport;

    fn apply_control(&mut self, e: &Event) {
        control_to_monitor(self, e);
    }

    fn check_read_at(&mut self, task: TaskId, loc: LocId, _index: u64) {
        Monitor::read(self, task, loc);
    }

    fn check_write_at(&mut self, task: TaskId, loc: LocId, _index: u64) {
        Monitor::write(self, task, loc);
    }

    fn finish(mut self) -> BaselineReport {
        self.finalize();
        let mut notes = vec![format!(
            "peak label length: {} (grows with nesting depth)",
            self.peak_label_len
        )];
        if self.lenient {
            notes.push("lenient mode: out-of-model events dropped".to_string());
        }
        BaselineReport {
            name: self.name(),
            races: self.race_count(),
            notes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_baseline;
    use futrace_runtime::TaskCtx;

    #[test]
    fn label_algebra() {
        let root = OsLabel::root();
        let c1 = root.extended((1, 2)); // first child
        let cont = root.extended((2, 2)); // parent continuation
        let c2 = cont.extended((1, 2)); // second child
        assert!(root.precedes(&c1), "pre-spawn state precedes the child");
        assert!(root.precedes(&c2));
        assert!(cont.precedes(&c2), "work between spawns precedes child 2");
        assert!(!c1.precedes(&cont), "child 1 concurrent with continuation");
        assert!(!cont.precedes(&c1));
        assert!(!c1.precedes(&c2), "siblings concurrent");
        assert!(!c2.precedes(&c1));
        // Join: the saved (root) label advanced orders both children.
        let post = root.joined(root.pair_at(0));
        assert!(c1.precedes(&post));
        assert!(c2.precedes(&post));
        assert!(root.precedes(&post));
        assert!(!post.precedes(&c1));
        assert!(!c1.is_empty());
    }

    #[test]
    fn race_free_fork_join() {
        let mut d = OffsetSpan::new();
        run_baseline(&mut d, |ctx| {
            let x = ctx.shared_var(0u64, "x");
            ctx.finish(|ctx| {
                let xa = x.clone();
                ctx.async_task(move |ctx| xa.write(ctx, 1));
            });
            x.write(ctx, 2);
        });
        assert!(!d.has_races(), "{} races", d.race_count());
    }

    #[test]
    fn detects_sibling_race() {
        let mut d = OffsetSpan::new();
        run_baseline(&mut d, |ctx| {
            let x = ctx.shared_var(0u64, "x");
            ctx.finish(|ctx| {
                let xa = x.clone();
                ctx.async_task(move |ctx| xa.write(ctx, 1));
                let xb = x.clone();
                ctx.async_task(move |ctx| xb.write(ctx, 2));
            });
        });
        assert!(d.has_races());
        assert_eq!(d.name(), "offset-span");
    }

    #[test]
    fn parent_work_inside_phase_races_with_child() {
        let mut d = OffsetSpan::new();
        run_baseline(&mut d, |ctx| {
            let x = ctx.shared_var(0u64, "x");
            ctx.finish(|ctx| {
                let xa = x.clone();
                ctx.async_task(move |ctx| xa.write(ctx, 1));
                x.write(ctx, 2); // continuation branch: concurrent
            });
        });
        assert!(d.has_races());
    }

    #[test]
    fn pre_spawn_work_is_ordered_before_child() {
        let mut d = OffsetSpan::new();
        run_baseline(&mut d, |ctx| {
            let x = ctx.shared_var(0u64, "x");
            x.write(ctx, 1); // before the spawn: ordered
            ctx.finish(|ctx| {
                let xa = x.clone();
                ctx.async_task(move |ctx| {
                    let _ = xa.read(ctx);
                });
            });
        });
        assert!(!d.has_races(), "{} races", d.race_count());
    }

    #[test]
    fn nested_finishes() {
        let mut d = OffsetSpan::new();
        run_baseline(&mut d, |ctx| {
            let x = ctx.shared_var(0u64, "x");
            ctx.finish(|ctx| {
                let x1 = x.clone();
                ctx.async_task(move |ctx| {
                    ctx.finish(|ctx| {
                        let x2 = x1.clone();
                        ctx.async_task(move |ctx| x2.write(ctx, 1));
                    });
                    x1.write(ctx, 2); // after inner finish: ordered
                });
            });
            x.write(ctx, 3); // after outer finish: ordered
        });
        assert!(!d.has_races(), "{} races", d.race_count());
    }

    #[test]
    fn deep_ief_task_still_handled() {
        // A grandchild whose IEF is the outer finish (not spawn-sync
        // shaped): unlike the SP-bags adapter, the emulation handles it —
        // labels are restored per finish owner, not per parent.
        let mut d = OffsetSpan::new();
        run_baseline(&mut d, |ctx| {
            let x = ctx.shared_var(0u64, "x");
            ctx.finish(|ctx| {
                let x1 = x.clone();
                ctx.async_task(move |ctx| {
                    let x2 = x1.clone();
                    ctx.async_task(move |ctx| x2.write(ctx, 1));
                });
            });
            x.write(ctx, 2);
        });
        assert!(!d.has_races(), "{} races", d.race_count());
    }

    #[test]
    fn label_length_grows_with_nesting() {
        let mut d = OffsetSpan::new();
        run_baseline(&mut d, |ctx| {
            fn nest<C: TaskCtx>(ctx: &mut C, depth: usize) {
                if depth == 0 {
                    return;
                }
                ctx.finish(|ctx| {
                    ctx.async_task(move |ctx| nest(ctx, depth - 1));
                });
            }
            nest(ctx, 12);
        });
        assert!(
            d.peak_label_len >= 12,
            "labels must grow with nesting depth, got {}",
            d.peak_label_len
        );
    }

    #[test]
    #[should_panic(expected = "cannot model future get")]
    fn strict_mode_rejects_futures() {
        let mut d = OffsetSpan::new();
        run_baseline(&mut d, |ctx| {
            let f = ctx.future(|_| 1u8);
            ctx.get(&f);
        });
    }

    #[test]
    fn lenient_mode_false_positive_on_future_sync() {
        let mut d = OffsetSpan::new_lenient();
        run_baseline(&mut d, |ctx| {
            let x = ctx.shared_var(0u64, "x");
            let x2 = x.clone();
            let f = ctx.future(move |ctx| x2.write(ctx, 1));
            ctx.get(&f);
            let _ = x.read(ctx);
        });
        assert!(d.has_races(), "the dropped get edge must cause a report");
    }
}
