//! SP-bags (Feng & Leiserson, SPAA 1997) for spawn-sync programs.
//!
//! The classical Cilk "Nondeterminator" algorithm. Every procedure (task)
//! `F` owns two bags of task ids:
//!
//! * **S-bag** — descendants of `F` that logically precede `F`'s current
//!   step (completed and synced, plus `F` itself);
//! * **P-bag** — descendants that may run in parallel with `F`'s current
//!   step (spawned children that returned but have not been synced).
//!
//! Protocol, driven by the serial depth-first execution:
//!
//! * spawn child `C`:  `S(C) = {C}`, `P(C) = ∅`;
//! * `C` returns to `F`:  `P(F) ∪= S(C) ∪ P(C)`;
//! * `sync` in `F`:  `S(F) ∪= P(F)`, `P(F) = ∅`;
//! * access check: a recorded accessor `T` may run in parallel with the
//!   current step iff `Find(T)` is currently a P-bag.
//!
//! ## Mapping onto the async-finish event stream
//!
//! Our runtime speaks async/finish, the terminally strict superset of
//! spawn-sync. SP-bags is applicable exactly when every task is joined by
//! a finish *owned by its own parent* (so "return to parent" and "IEF
//! registration" coincide) — which is the shape of Series-af/Crypt-af. The
//! adapter treats `task_create` as spawn, `task_end` as the return, and
//! `finish_end` as the sync; it panics if it observes a task whose IEF is
//! not owned by its parent (use [`crate::espbags::EspBags`] there), and it
//! ignores `get` edges entirely (SP-bags predates futures — running it on
//! a future program demonstrates the false positives the paper fixes).

use crate::{BaselineDetector, BaselineReport};
use futrace_runtime::engine::{control_to_monitor, Analysis};
use futrace_runtime::monitor::{Event, Monitor, TaskKind};
use futrace_util::ids::{FinishId, LocId, TaskId};
use futrace_util::UnionFind;

/// Which bag a disjoint set currently is.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Bag {
    /// S-bag of the given owner task.
    S(TaskId),
    /// P-bag of the given owner task.
    P(TaskId),
}

#[derive(Clone, Copy, Default)]
struct Cell {
    writer: Option<TaskId>,
    reader: Option<TaskId>,
}

/// The SP-bags determinacy race detector.
pub struct SpBags {
    bags: UnionFind<Bag>,
    /// Representative of each task's P-bag contents (None while empty —
    /// empty bags have no set).
    pbag: Vec<Option<usize>>,
    parent: Vec<Option<TaskId>>,
    shadow: Vec<Cell>,
    races: u64,
    /// Tolerate non-spawn-sync shapes instead of panicking (used by tests
    /// that demonstrate misbehaviour on future programs).
    lenient: bool,
}

impl Default for SpBags {
    fn default() -> Self {
        Self::new()
    }
}

impl SpBags {
    /// Fresh detector (strict: panics on programs that are not
    /// spawn-sync-shaped).
    pub fn new() -> Self {
        let mut bags = UnionFind::new();
        let key = bags.make_set(Bag::S(TaskId::MAIN));
        debug_assert_eq!(key, 0);
        SpBags {
            bags,
            pbag: vec![None],
            parent: vec![None],
            shadow: Vec::new(),
            races: 0,
            lenient: false,
        }
    }

    /// Fresh detector that silently ignores future `get`s and non-parental
    /// IEFs (for demonstrating unsoundness outside spawn-sync).
    pub fn new_lenient() -> Self {
        let mut d = Self::new();
        d.lenient = true;
        d
    }

    #[inline]
    fn is_parallel(&mut self, t: TaskId) -> bool {
        matches!(*self.bags.payload(t.index()), Bag::P(_))
    }

    fn cell_mut(&mut self, loc: LocId) -> &mut Cell {
        let i = loc.index();
        if i >= self.shadow.len() {
            self.shadow.resize_with(i + 1, Cell::default);
        }
        &mut self.shadow[i]
    }
}

impl Monitor for SpBags {
    fn task_create(&mut self, parent: TaskId, child: TaskId, _kind: TaskKind, ief: FinishId) {
        debug_assert_eq!(child.index(), self.parent.len());
        let key = self.bags.make_set(Bag::S(child));
        debug_assert_eq!(key, child.index());
        self.pbag.push(None);
        self.parent.push(Some(parent));
        let _ = ief;
    }

    fn task_end(&mut self, task: TaskId) {
        // Child returns: S(C) ∪ P(C) move into P(parent).
        let Some(parent) = self.parent[task.index()] else {
            return; // main task
        };
        // Merge the child's P-bag (if any) into its S-bag set first.
        let mut child_rep = self.bags.find(task.index());
        if let Some(p) = self.pbag[task.index()].take() {
            child_rep = self.bags.union_with(child_rep, p, |a, _| a);
        }
        // The merged set becomes (part of) the parent's P-bag.
        let rep = match self.pbag[parent.index()] {
            Some(prep) => self.bags.union_with(prep, child_rep, |a, _| a),
            None => {
                *self.bags.payload_mut(child_rep) = Bag::P(parent);
                child_rep
            }
        };
        self.pbag[parent.index()] = Some(rep);
    }

    fn finish_end(&mut self, task: TaskId, _finish: FinishId, joined: &[TaskId]) {
        // sync in `task`: S(task) ∪= P(task).
        if !self.lenient {
            for &j in joined {
                assert_eq!(
                    self.parent[j.index()],
                    Some(task),
                    "SP-bags requires spawn-sync structure: {j} joined a finish not owned by its parent"
                );
            }
        }
        if let Some(p) = self.pbag[task.index()].take() {
            let s = self.bags.find(task.index());
            let rep = self.bags.union_with(s, p, |a, _| a);
            *self.bags.payload_mut(rep) = Bag::S(task);
        }
    }

    fn get(&mut self, _waiter: TaskId, _awaited: TaskId) {
        // SP-bags has no notion of point-to-point joins. In strict mode
        // that is a usage error; in lenient mode the edge is dropped,
        // which yields false positives on future-synchronized programs.
        assert!(
            self.lenient,
            "SP-bags cannot model future get(); use the DTRG detector"
        );
    }

    fn write(&mut self, task: TaskId, loc: LocId) {
        let cell = *self.cell_mut(loc);
        if let Some(r) = cell.reader {
            if self.is_parallel(r) {
                self.races += 1;
            }
        }
        if let Some(w) = cell.writer {
            if self.is_parallel(w) {
                self.races += 1;
            }
        }
        self.cell_mut(loc).writer = Some(task);
    }

    fn read(&mut self, task: TaskId, loc: LocId) {
        let cell = *self.cell_mut(loc);
        if let Some(w) = cell.writer {
            if self.is_parallel(w) {
                self.races += 1;
            }
        }
        // Keep a parallel reader; replace a serial (or absent) one.
        let replace = match cell.reader {
            None => true,
            Some(r) => !self.is_parallel(r),
        };
        if replace {
            self.cell_mut(loc).reader = Some(task);
        }
    }
}

impl BaselineDetector for SpBags {
    fn name(&self) -> &'static str {
        "sp-bags"
    }
    fn race_count(&self) -> u64 {
        self.races
    }
}

impl Analysis for SpBags {
    type Report = BaselineReport;

    fn apply_control(&mut self, e: &Event) {
        control_to_monitor(self, e);
    }

    fn check_read_at(&mut self, task: TaskId, loc: LocId, _index: u64) {
        Monitor::read(self, task, loc);
    }

    fn check_write_at(&mut self, task: TaskId, loc: LocId, _index: u64) {
        Monitor::write(self, task, loc);
    }

    fn finish(mut self) -> BaselineReport {
        self.finalize();
        let mut notes = Vec::new();
        if self.lenient {
            notes.push("lenient mode: out-of-model events dropped".to_string());
        }
        BaselineReport {
            name: self.name(),
            races: self.race_count(),
            notes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_baseline;
    use futrace_runtime::TaskCtx;

    #[test]
    fn race_free_spawn_sync() {
        let mut d = SpBags::new();
        run_baseline(&mut d, |ctx| {
            let x = ctx.shared_var(0u64, "x");
            ctx.finish(|ctx| {
                let xa = x.clone();
                ctx.async_task(move |ctx| xa.write(ctx, 1));
            });
            x.write(ctx, 2);
        });
        assert!(!d.has_races());
    }

    #[test]
    fn detects_spawn_race() {
        let mut d = SpBags::new();
        run_baseline(&mut d, |ctx| {
            let x = ctx.shared_var(0u64, "x");
            ctx.finish(|ctx| {
                let xa = x.clone();
                ctx.async_task(move |ctx| xa.write(ctx, 1));
                x.write(ctx, 2); // parallel with the child
            });
        });
        assert!(d.has_races());
        assert_eq!(d.name(), "sp-bags");
    }

    #[test]
    fn detects_read_write_race() {
        let mut d = SpBags::new();
        run_baseline(&mut d, |ctx| {
            let x = ctx.shared_var(0u64, "x");
            ctx.finish(|ctx| {
                let xa = x.clone();
                ctx.async_task(move |ctx| {
                    let _ = xa.read(ctx);
                });
                x.write(ctx, 2);
            });
        });
        assert!(d.has_races());
    }

    #[test]
    fn sibling_tasks_in_same_finish_race() {
        let mut d = SpBags::new();
        run_baseline(&mut d, |ctx| {
            let x = ctx.shared_var(0u64, "x");
            ctx.finish(|ctx| {
                let xa = x.clone();
                ctx.async_task(move |ctx| xa.write(ctx, 1));
                let xb = x.clone();
                ctx.async_task(move |ctx| xb.write(ctx, 2));
            });
        });
        assert!(d.has_races());
    }

    #[test]
    fn nested_finishes_synchronize() {
        let mut d = SpBags::new();
        run_baseline(&mut d, |ctx| {
            let x = ctx.shared_var(0u64, "x");
            ctx.finish(|ctx| {
                let x1 = x.clone();
                ctx.async_task(move |ctx| {
                    ctx.finish(|ctx| {
                        let x2 = x1.clone();
                        ctx.async_task(move |ctx| x2.write(ctx, 1));
                    });
                    x1.write(ctx, 2); // ordered after inner finish
                });
            });
            x.write(ctx, 3);
        });
        assert!(!d.has_races());
    }

    #[test]
    #[should_panic(expected = "cannot model future get")]
    fn strict_mode_rejects_futures() {
        let mut d = SpBags::new();
        run_baseline(&mut d, |ctx| {
            let f = ctx.future(|_| 1u8);
            ctx.get(&f);
        });
    }

    #[test]
    fn lenient_mode_false_positive_on_future_sync() {
        // The program is race-free (the get orders the write before the
        // read) but SP-bags cannot see the get edge: false positive. This
        // is the gap the paper's detector closes.
        let mut d = SpBags::new_lenient();
        run_baseline(&mut d, |ctx| {
            let x = ctx.shared_var(0u64, "x");
            let x2 = x.clone();
            let f = ctx.future(move |ctx| x2.write(ctx, 1));
            ctx.get(&f);
            let _ = x.read(ctx);
        });
        assert!(d.has_races(), "SP-bags misses future synchronization");
    }
}
