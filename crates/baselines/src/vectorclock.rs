//! Vector-clock happens-before detector.
//!
//! The general-purpose alternative the paper argues against for task
//! parallelism (§1, §6): precise on arbitrary computation graphs, but the
//! clock attached to each task has one component per task that ever
//! communicated with it, and in a task-parallel program *every* task is
//! eventually joined, so clocks grow toward Θ(#tasks) entries — memory and
//! copy cost the DTRG avoids. The bench harness's ablation shows exactly
//! this blow-up.
//!
//! Clock discipline (serial depth-first, but valid for any schedule):
//!
//! * spawn: the child starts with a copy of the parent's clock plus its own
//!   fresh component; the parent then ticks its own component (so accesses
//!   before/after the spawn are distinguishable to the child's subtree);
//! * task end: the final clock is snapshotted for joiners;
//! * `get` / finish end: the waiter's clock joins (component-wise max)
//!   each joined task's final clock;
//! * an access recorded as `(task, epoch)` happens-before the current task
//!   `u` iff `clock(u)[task] >= epoch`.
//!
//! Shadow memory keeps the last write epoch and a pruned list of read
//! epochs per location (all pairwise-parallel), as in DJIT⁺-style
//! detectors.

use crate::{BaselineDetector, BaselineReport};
use futrace_runtime::engine::{control_to_monitor, Analysis, Checkpointable, LocRoutable, StateError};
use futrace_runtime::monitor::{Event, Monitor, TaskKind};
use futrace_util::ids::{FinishId, LocId, TaskId};
use futrace_util::wire;

/// Sparse-ish vector clock: dense `Vec<u32>` indexed by task id, truncated
/// to the highest nonzero component. Component `t` = how much of task `t`'s
/// history is known.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VClock(Vec<u32>);

impl VClock {
    fn get(&self, t: TaskId) -> u32 {
        self.0.get(t.index()).copied().unwrap_or(0)
    }

    fn set(&mut self, t: TaskId, v: u32) {
        if self.0.len() <= t.index() {
            self.0.resize(t.index() + 1, 0);
        }
        self.0[t.index()] = v;
    }

    fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (a, &b) in self.0.iter_mut().zip(&other.0) {
            *a = (*a).max(b);
        }
    }

    /// Number of allocated components — the memory-growth metric the
    /// ablation bench reports.
    pub fn width(&self) -> usize {
        self.0.len()
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct Epoch {
    task: TaskId,
    clock: u32,
}

#[derive(Clone, Debug, Default)]
struct Cell {
    write: Option<Epoch>,
    reads: Vec<Epoch>,
}

/// The vector-clock determinacy race detector.
pub struct VectorClockDetector {
    clocks: Vec<VClock>,
    shadow: Vec<Cell>,
    races: u64,
    /// Peak clock width observed (the impracticality metric).
    pub peak_clock_width: usize,
    /// Sum of clock components allocated across all tasks (memory proxy).
    pub total_clock_entries: u64,
}

impl Default for VectorClockDetector {
    fn default() -> Self {
        Self::new()
    }
}

impl VectorClockDetector {
    /// Fresh detector with the main task's clock at `[1]`.
    pub fn new() -> Self {
        let mut main = VClock::default();
        main.set(TaskId::MAIN, 1);
        VectorClockDetector {
            clocks: vec![main],
            shadow: Vec::new(),
            races: 0,
            peak_clock_width: 1,
            total_clock_entries: 1,
        }
    }

    #[inline]
    fn hb(&self, e: Epoch, cur: TaskId) -> bool {
        self.clocks[cur.index()].get(e.task) >= e.clock
    }

    fn epoch_of(&self, t: TaskId) -> Epoch {
        Epoch {
            task: t,
            clock: self.clocks[t.index()].get(t),
        }
    }

    fn cell_mut(&mut self, loc: LocId) -> &mut Cell {
        let i = loc.index();
        if i >= self.shadow.len() {
            self.shadow.resize_with(i + 1, Cell::default);
        }
        &mut self.shadow[i]
    }
}

impl Monitor for VectorClockDetector {
    fn task_create(&mut self, parent: TaskId, child: TaskId, _kind: TaskKind, _ief: FinishId) {
        debug_assert_eq!(child.index(), self.clocks.len());
        let mut c = self.clocks[parent.index()].clone();
        c.set(child, 1);
        self.peak_clock_width = self.peak_clock_width.max(c.width());
        self.total_clock_entries += c.width() as u64;
        self.clocks.push(c);
        // Tick the parent so its post-spawn accesses are not covered by the
        // child's inherited snapshot.
        let p = &mut self.clocks[parent.index()];
        let cur = p.get(parent);
        p.set(parent, cur + 1);
    }

    fn get(&mut self, waiter: TaskId, awaited: TaskId) {
        let other = self.clocks[awaited.index()].clone();
        self.clocks[waiter.index()].join(&other);
        self.peak_clock_width = self
            .peak_clock_width
            .max(self.clocks[waiter.index()].width());
    }

    fn finish_end(&mut self, task: TaskId, _finish: FinishId, joined: &[TaskId]) {
        for &j in joined {
            let other = self.clocks[j.index()].clone();
            self.clocks[task.index()].join(&other);
        }
        self.peak_clock_width = self
            .peak_clock_width
            .max(self.clocks[task.index()].width());
    }

    fn write(&mut self, task: TaskId, loc: LocId) {
        let epoch = self.epoch_of(task);
        let cell = std::mem::take(self.cell_mut(loc));
        for r in &cell.reads {
            if !self.hb(*r, task) {
                self.races += 1;
            }
        }
        if let Some(w) = cell.write {
            if !self.hb(w, task) {
                self.races += 1;
            }
        }
        // Keep racy (still-parallel) readers, matching the DTRG detector's
        // Algorithm 8; ordered readers are subsumed by the new writer.
        let task_clock = &self.clocks[task.index()];
        let kept: Vec<Epoch> = cell
            .reads
            .into_iter()
            .filter(|r| task_clock.get(r.task) < r.clock)
            .collect();
        let new_cell = self.cell_mut(loc);
        new_cell.reads = kept;
        new_cell.write = Some(epoch);
    }

    fn read(&mut self, task: TaskId, loc: LocId) {
        let epoch = self.epoch_of(task);
        let cell = std::mem::take(self.cell_mut(loc));
        if let Some(w) = cell.write {
            if !self.hb(w, task) {
                self.races += 1;
            }
        }
        let task_clock = &self.clocks[task.index()];
        let mut reads: Vec<Epoch> = cell
            .reads
            .into_iter()
            .filter(|r| task_clock.get(r.task) < r.clock) // keep parallel reads
            .collect();
        reads.push(epoch);
        let new_cell = self.cell_mut(loc);
        new_cell.reads = reads;
        new_cell.write = cell.write;
    }
}

impl BaselineDetector for VectorClockDetector {
    fn name(&self) -> &'static str {
        "vector-clock"
    }
    fn race_count(&self) -> u64 {
        self.races
    }
}

impl Analysis for VectorClockDetector {
    type Report = BaselineReport;

    fn apply_control(&mut self, e: &Event) {
        control_to_monitor(self, e);
    }

    fn check_read_at(&mut self, task: TaskId, loc: LocId, _index: u64) {
        Monitor::read(self, task, loc);
    }

    fn check_write_at(&mut self, task: TaskId, loc: LocId, _index: u64) {
        Monitor::write(self, task, loc);
    }

    fn finish(mut self) -> BaselineReport {
        self.finalize();
        BaselineReport {
            name: self.name(),
            races: self.race_count(),
            notes: vec![format!(
                "peak clock width: {}, clock entries allocated: {}",
                self.peak_clock_width, self.total_clock_entries
            )],
        }
    }
}

impl LocRoutable for VectorClockDetector {
    /// Vector clocks qualify for loc-routed sharding: clocks are mutated
    /// only by control events (spawn, `get`, finish end), which every
    /// replica applies identically, and each access check touches exactly
    /// one shadow cell. Race counts sum across shards; the clock-growth
    /// notes are control-derived and identical in every replica, so shard
    /// 0's are taken verbatim.
    fn merge_sharded(self, shards: Vec<BaselineReport>) -> BaselineReport {
        let races = shards.iter().map(|s| s.races).sum();
        let notes = shards.into_iter().next().map(|s| s.notes).unwrap_or_default();
        BaselineReport {
            name: "vector-clock",
            races,
            notes,
        }
    }
}

/// Checkpoint state-blob version for [`VectorClockDetector`].
const VC_STATE_VERSION: u64 = 1;

impl Checkpointable for VectorClockDetector {
    /// Access-derived state is the epoch shadow memory and the race count.
    /// The clocks themselves — and the growth metrics derived from them —
    /// mutate only on control events, so the restore contract's control
    /// replay rebuilds them exactly.
    fn save_state(&self, out: &mut Vec<u8>) {
        wire::put_varint(out, VC_STATE_VERSION);
        wire::put_varint(out, self.shadow.len() as u64);
        let dirty: Vec<(usize, &Cell)> = self
            .shadow
            .iter()
            .enumerate()
            .filter(|(_, c)| c.write.is_some() || !c.reads.is_empty())
            .collect();
        wire::put_varint(out, dirty.len() as u64);
        for (idx, cell) in dirty {
            wire::put_varint(out, idx as u64);
            match cell.write {
                Some(e) => {
                    wire::put_varint(out, 1);
                    wire::put_varint(out, e.task.0 as u64);
                    wire::put_varint(out, e.clock as u64);
                }
                None => wire::put_varint(out, 0),
            }
            wire::put_varint(out, cell.reads.len() as u64);
            for e in &cell.reads {
                wire::put_varint(out, e.task.0 as u64);
                wire::put_varint(out, e.clock as u64);
            }
        }
        wire::put_varint(out, self.races);
    }

    fn restore_state(&mut self, state: &[u8]) -> Result<(), StateError> {
        let mut c = wire::Cursor::new(state);
        let version = c.varint("vc state version")?;
        if version != VC_STATE_VERSION {
            return Err(StateError(format!(
                "unsupported vector-clock state version {version} (expected {VC_STATE_VERSION})"
            )));
        }
        let shadow_len = c.varint("vc shadow length")? as usize;
        if self.shadow.len() < shadow_len {
            self.shadow.resize_with(shadow_len, Cell::default);
        }
        let dirty = c.varint("vc dirty cell count")?;
        for _ in 0..dirty {
            let idx = c.varint("vc cell index")? as usize;
            if idx >= shadow_len {
                return Err(StateError(format!(
                    "vc cell index {idx} out of range (shadow length {shadow_len})"
                )));
            }
            let write = match c.varint("vc write flag")? {
                0 => None,
                1 => Some(Epoch {
                    task: TaskId(c.varint("vc write task")? as u32),
                    clock: c.varint("vc write clock")? as u32,
                }),
                other => return Err(StateError(format!("invalid vc write flag {other}"))),
            };
            let n_reads = c.varint("vc read count")?;
            let mut reads = Vec::with_capacity(n_reads as usize);
            for _ in 0..n_reads {
                reads.push(Epoch {
                    task: TaskId(c.varint("vc read task")? as u32),
                    clock: c.varint("vc read clock")? as u32,
                });
            }
            self.shadow[idx] = Cell { write, reads };
        }
        self.races = c.varint("vc races")?;
        if !c.is_empty() {
            return Err(StateError(format!(
                "{} trailing byte(s) after vector-clock state",
                c.remaining()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_baseline;
    use futrace_runtime::TaskCtx;

    #[test]
    fn race_free_future_chain() {
        let mut d = VectorClockDetector::new();
        run_baseline(&mut d, |ctx| {
            let x = ctx.shared_var(0u64, "x");
            let x2 = x.clone();
            let f = ctx.future(move |ctx| x2.write(ctx, 1));
            ctx.get(&f);
            let _ = x.read(ctx);
        });
        assert!(!d.has_races(), "vector clocks model get() precisely");
    }

    #[test]
    fn detects_future_race() {
        let mut d = VectorClockDetector::new();
        run_baseline(&mut d, |ctx| {
            let x = ctx.shared_var(0u64, "x");
            let x2 = x.clone();
            let _f = ctx.future(move |ctx| x2.write(ctx, 1));
            let _ = x.read(ctx); // no get
        });
        assert!(d.has_races());
    }

    #[test]
    fn finish_synchronizes() {
        let mut d = VectorClockDetector::new();
        run_baseline(&mut d, |ctx| {
            let x = ctx.shared_var(0u64, "x");
            ctx.finish(|ctx| {
                let xa = x.clone();
                ctx.async_task(move |ctx| xa.write(ctx, 1));
            });
            x.write(ctx, 2);
        });
        assert!(!d.has_races());
    }

    #[test]
    fn post_spawn_parent_access_races_with_child_read() {
        // The parent-tick matters: parent writes after spawning a child
        // that reads — parallel.
        let mut d = VectorClockDetector::new();
        run_baseline(&mut d, |ctx| {
            let x = ctx.shared_var(0u64, "x");
            let x2 = x.clone();
            ctx.async_task(move |ctx| {
                let _ = x2.read(ctx);
            });
            x.write(ctx, 1);
        });
        assert!(d.has_races());
    }

    #[test]
    fn pre_spawn_parent_write_is_ordered() {
        let mut d = VectorClockDetector::new();
        run_baseline(&mut d, |ctx| {
            let x = ctx.shared_var(0u64, "x");
            x.write(ctx, 1);
            let x2 = x.clone();
            ctx.async_task(move |ctx| {
                let _ = x2.read(ctx);
            });
        });
        assert!(!d.has_races());
    }

    #[test]
    fn clock_width_grows_with_tasks() {
        let mut d = VectorClockDetector::new();
        run_baseline(&mut d, |ctx| {
            let mut hs = Vec::new();
            for _ in 0..50 {
                hs.push(ctx.future(|_| 0u8));
            }
            for h in &hs {
                ctx.get(h);
            }
        });
        assert!(!d.has_races());
        assert!(
            d.peak_clock_width >= 50,
            "width {} should approach task count",
            d.peak_clock_width
        );
        assert_eq!(d.name(), "vector-clock");
    }

    #[test]
    fn checkpoint_roundtrip_matches_straight_run() {
        use futrace_runtime::{run_serial, EventLog};
        let mut log = EventLog::new();
        run_serial(&mut log, |ctx| {
            let a = ctx.shared_array(4, 0i64, "a");
            for i in 0..4 {
                let aw = a.clone();
                ctx.async_task(move |ctx| aw.write(ctx, i, 1));
            }
            let ar = a.clone();
            let f = ctx.future(move |ctx| ar.read(ctx, 0));
            for i in 0..4 {
                a.write(ctx, i, 2); // races with the async writers
            }
            ctx.get(&f);
            let _ = a.read(ctx, 1);
        });

        let route = |det: &mut VectorClockDetector, e: &Event| match e {
            Event::Read(t, l) => Monitor::read(det, *t, *l),
            Event::Write(t, l) => Monitor::write(det, *t, *l),
            control => Analysis::apply_control(det, control),
        };

        let mut straight = VectorClockDetector::new();
        for e in &log.events {
            route(&mut straight, e);
        }
        assert!(straight.races > 0, "test program must be racy");

        for cut in [0, log.events.len() / 2, log.events.len()] {
            let mut prefix = VectorClockDetector::new();
            for e in &log.events[..cut] {
                route(&mut prefix, e);
            }
            let mut blob = Vec::new();
            prefix.save_state(&mut blob);

            let mut resumed = VectorClockDetector::new();
            for e in &log.events[..cut] {
                if !matches!(e, Event::Read(..) | Event::Write(..)) {
                    Analysis::apply_control(&mut resumed, e);
                }
            }
            resumed.restore_state(&blob).unwrap();
            for e in &log.events[cut..] {
                route(&mut resumed, e);
            }

            assert_eq!(resumed.races, straight.races, "cut={cut}");
            assert_eq!(resumed.shadow.len(), straight.shadow.len(), "cut={cut}");
            assert_eq!(
                resumed.peak_clock_width, straight.peak_clock_width,
                "cut={cut}"
            );
            assert_eq!(
                resumed.total_clock_entries, straight.total_clock_entries,
                "cut={cut}"
            );
        }

        let mut det = VectorClockDetector::new();
        assert!(det.restore_state(&[0xFF]).is_err(), "truncated varint");
        assert!(det.restore_state(&[7]).is_err(), "bad version");
    }

    #[test]
    fn transitive_get_order() {
        let mut d = VectorClockDetector::new();
        run_baseline(&mut d, |ctx| {
            let x = ctx.shared_var(0u64, "x");
            let xb = x.clone();
            let b = ctx.future(move |ctx| xb.write(ctx, 3));
            let c = ctx.future(move |ctx| {
                ctx.get(&b);
            });
            ctx.get(&c);
            let _ = x.read(ctx);
        });
        assert!(!d.has_races());
    }
}
