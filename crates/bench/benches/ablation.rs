//! Ablation benches for the DTRG design choices (§4.1).
//!
//! * `nt-join-sweep` — overhead vs. number of non-tree joins: Jacobi with
//!   a growing sweep count (non-tree joins grow linearly while per-sweep
//!   work is constant). The paper observes slowdowns are *not*
//!   significantly impacted by #NTJoins because producers and consumers
//!   are 1–2 non-tree hops apart; this sweep verifies the per-query hop
//!   count stays flat.
//! * `precede-chain` — raw `Precede` query cost as a function of the
//!   non-tree chain length between the two tasks, isolating the
//!   lowest-significant-ancestor walk (Theorem 1's `O(n+1)` factor).
//! * `reader-fanout` — write-check cost as a function of the number of
//!   stored parallel future readers (Theorem 1's `O(f+1)` factor; one
//!   `Precede` per stored reader).

use futrace_bench::runner::{BenchmarkId, Runner};
use futrace_benchsuite::jacobi::{jacobi_run, JacobiParams};
use futrace_detector::{Dtrg, RaceDetector};
use futrace_runtime::monitor::TaskKind;
use futrace_runtime::{run_serial, TaskCtx};
use futrace_util::ids::TaskId;

fn nt_join_sweep(c: &mut Runner) {
    let mut g = c.benchmark_group("nt-join-sweep");
    g.sample_size(10);
    for sweeps in [1usize, 2, 4, 8] {
        let p = JacobiParams {
            n: 96,
            tile: 16,
            sweeps,
            seed: 0xacab,
        };
        g.bench_with_input(BenchmarkId::new("racedet", sweeps), &p, |b, p| {
            b.iter(|| {
                let mut det = RaceDetector::new();
                run_serial(&mut det, |ctx| {
                    jacobi_run(ctx, p, false);
                });
                assert!(!det.has_races());
            })
        });
    }
    g.finish();
}

/// Builds a chain of `k` future tasks linked purely by non-tree joins
/// (each future gets the previous one) and returns the DTRG plus the chain
/// endpoints.
fn nt_chain(k: usize) -> (Dtrg, TaskId, TaskId) {
    let mut g = Dtrg::new();
    let main = TaskId::MAIN;
    let mut next = 1u32;
    let mut spawn = |g: &mut Dtrg| {
        let t = TaskId(next);
        next += 1;
        g.on_task_create(main, t, TaskKind::Future);
        t
    };
    let first = spawn(&mut g);
    g.on_task_end(first);
    let mut prev = first;
    let mut last = first;
    for _ in 1..k {
        let t = spawn(&mut g);
        g.on_get(t, prev); // non-tree edge to the previous future
        g.on_task_end(t);
        prev = t;
        last = t;
    }
    (g, first, last)
}

fn precede_chain(c: &mut Runner) {
    let mut g = c.benchmark_group("precede-chain");
    g.sample_size(10);
    for k in [2usize, 8, 64, 512] {
        g.bench_with_input(BenchmarkId::new("hops", k), &k, |b, &k| {
            let (mut dtrg, first, last) = nt_chain(k);
            b.iter(|| {
                assert!(dtrg.precede(first, last));
                assert!(!dtrg.precede(last, first));
            })
        });
    }
    g.finish();
}

fn reader_fanout(c: &mut Runner) {
    let mut g = c.benchmark_group("reader-fanout");
    g.sample_size(10);
    for readers in [1usize, 8, 64, 256] {
        g.bench_with_input(BenchmarkId::new("write-check", readers), &readers, |b, &n| {
            b.iter(|| {
                let mut det = RaceDetector::new();
                run_serial(&mut det, |ctx| {
                    let x = ctx.shared_var(1u64, "x");
                    let mut hs = Vec::with_capacity(n);
                    for _ in 0..n {
                        let xr = x.clone();
                        hs.push(ctx.future(move |ctx| xr.read(ctx)));
                    }
                    for h in &hs {
                        ctx.get(h);
                    }
                    // This write checks against all n stored readers.
                    x.write(ctx, 2);
                });
                assert!(!det.has_races());
            })
        });
    }
    g.finish();
}

/// Interval-label subsumption vs. walking parent pointers for ancestor
/// queries (the DESIGN.md ablation (a)): build a deep spawn chain and
/// time both answers for near/far pairs.
fn ancestor_query(c: &mut Runner) {
    let mut g = c.benchmark_group("ancestor-query");
    g.sample_size(10);
    for depth in [16usize, 256, 4096] {
        // Build a chain main -> T1 -> T2 -> ... -> T_depth (all live).
        let mut dtrg = Dtrg::new();
        let mut cur = TaskId::MAIN;
        for i in 1..=depth {
            let t = TaskId(i as u32);
            dtrg.on_task_create(cur, t, TaskKind::Future);
            cur = t;
        }
        let deepest = cur;
        let dtrg_walk = dtrg.clone();
        g.bench_with_input(
            BenchmarkId::new("interval-label", depth),
            &depth,
            |b, _| {
                b.iter(|| {
                    assert!(dtrg.is_ancestor(TaskId::MAIN, deepest));
                    assert!(!dtrg.is_ancestor(deepest, TaskId::MAIN));
                })
            },
        );
        g.bench_with_input(BenchmarkId::new("parent-walk", depth), &depth, |b, _| {
            b.iter(|| {
                assert!(dtrg_walk.is_ancestor_walk(TaskId::MAIN, deepest));
                assert!(!dtrg_walk.is_ancestor_walk(deepest, TaskId::MAIN));
            })
        });
    }
    g.finish();
}

futrace_bench::bench_main!(nt_join_sweep, precede_chain, reader_fanout, ancestor_query);
