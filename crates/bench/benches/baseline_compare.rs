//! Baseline comparison benches.
//!
//! Two claims from the paper are checked here:
//!
//! 1. **"No additional overhead for async/finish constructs relative to
//!    state of the art"** (§5): on pure async-finish programs the DTRG
//!    detector should track ESP-bags and SP-bags closely — all three do a
//!    constant number of disjoint-set operations per access.
//! 2. **Vector clocks are the wrong tool for task parallelism** (§1):
//!    the paper's argument is about *memory* — per-task clocks sized by
//!    the number of tasks (see `examples/memory_footprint.rs`: clock
//!    entries grow quadratically where DTRG state is linear). On wall
//!    clock the vector-clock detector's per-check constant is actually
//!    small; what `future-scaling` shows is all detectors paying the
//!    inherent Θ(readers²) reader-set maintenance on a single-location
//!    fan-out, plus the closure detector's Θ(steps²) blow-up.

use futrace_bench::runner::{BenchmarkId, Runner};
use futrace_baselines::{run_baseline, BaselineDetector, ClosureDetector, EspBags, SpBags, VectorClockDetector};
use futrace_benchsuite::crypt::{crypt_run, CryptParams, CryptVariant};
use futrace_benchsuite::series::{series_af, SeriesParams};
use futrace_detector::RaceDetector;
use futrace_runtime::{run_serial, TaskCtx};

fn async_finish_overhead(c: &mut Runner) {
    let sp = SeriesParams {
        n: 200,
        intervals: 50,
    };
    let cp = CryptParams {
        bytes: 16_384,
        seed: 0x1dea,
    };
    let mut g = c.benchmark_group("af-overhead");
    g.sample_size(10);
    g.bench_function("series-af/dtrg", |b| {
        b.iter(|| {
            let mut det = RaceDetector::new();
            run_serial(&mut det, |ctx| {
                series_af(ctx, &sp);
            });
        })
    });
    g.bench_function("series-af/esp-bags", |b| {
        b.iter(|| {
            let mut det = EspBags::new();
            run_baseline(&mut det, |ctx| {
                series_af(ctx, &sp);
            });
            assert!(!det.has_races());
        })
    });
    g.bench_function("series-af/sp-bags", |b| {
        b.iter(|| {
            let mut det = SpBags::new();
            run_baseline(&mut det, |ctx| {
                series_af(ctx, &sp);
            });
            assert!(!det.has_races());
        })
    });
    g.bench_function("crypt-af/dtrg", |b| {
        b.iter(|| {
            let mut det = RaceDetector::new();
            run_serial(&mut det, |ctx| {
                crypt_run(ctx, &cp, CryptVariant::AsyncFinish);
            });
        })
    });
    g.bench_function("crypt-af/esp-bags", |b| {
        b.iter(|| {
            let mut det = EspBags::new();
            run_baseline(&mut det, |ctx| {
                crypt_run(ctx, &cp, CryptVariant::AsyncFinish);
            });
            assert!(!det.has_races());
        })
    });
    g.finish();
}

/// Fan-out-join microprogram: n futures all read one location, then the
/// parent joins all and writes — stresses reader sets and join handling.
fn fan<C: TaskCtx>(ctx: &mut C, n: usize) {
    let x = ctx.shared_var(1u64, "x");
    let mut hs = Vec::with_capacity(n);
    for _ in 0..n {
        let xr = x.clone();
        hs.push(ctx.future(move |ctx| xr.read(ctx)));
    }
    for h in &hs {
        ctx.get(h);
    }
    x.write(ctx, 2);
}

fn future_scaling(c: &mut Runner) {
    let mut g = c.benchmark_group("future-scaling");
    g.sample_size(10);
    for n in [256usize, 1024, 4096] {
        g.bench_with_input(BenchmarkId::new("dtrg", n), &n, |b, &n| {
            b.iter(|| {
                let mut det = RaceDetector::new();
                run_serial(&mut det, |ctx| fan(ctx, n));
                assert!(!det.has_races());
            })
        });
        g.bench_with_input(BenchmarkId::new("vector-clock", n), &n, |b, &n| {
            b.iter(|| {
                let mut det = VectorClockDetector::new();
                run_baseline(&mut det, |ctx| fan(ctx, n));
                assert!(!det.has_races());
            })
        });
        if n <= 1024 {
            g.bench_with_input(BenchmarkId::new("closure", n), &n, |b, &n| {
                b.iter(|| {
                    let mut det = ClosureDetector::new();
                    run_baseline(&mut det, |ctx| fan(ctx, n));
                    assert!(!det.has_races());
                })
            });
        }
    }
    g.finish();
}

futrace_bench::bench_main!(async_finish_overhead, future_scaling);
