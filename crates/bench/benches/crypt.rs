//! Microbenchmark for Table 2's Crypt rows. Crypt has the paper's
//! smallest work-per-task, hence the largest async-finish slowdown
//! (7.77–8.26×): the detector's per-access and per-task costs dominate.

use futrace_bench::runner::Runner;
use futrace_benchsuite::crypt::{crypt_run, crypt_seq, CryptParams, CryptVariant};
use futrace_detector::RaceDetector;
use futrace_runtime::{run_serial, NullMonitor};

fn bench_params() -> CryptParams {
    CryptParams {
        bytes: 32_768,
        seed: 0x1dea,
    }
}

fn bench(c: &mut Runner) {
    let p = bench_params();
    let mut g = c.benchmark_group("crypt");
    g.sample_size(10);
    g.bench_function("seq", |b| b.iter(|| crypt_seq(&p)));
    g.bench_function("dsl-null-af", |b| {
        b.iter(|| {
            let mut m = NullMonitor;
            run_serial(&mut m, |ctx| {
                crypt_run(ctx, &p, CryptVariant::AsyncFinish);
            })
        })
    });
    g.bench_function("racedet-af", |b| {
        b.iter(|| {
            let mut det = RaceDetector::new();
            run_serial(&mut det, |ctx| {
                crypt_run(ctx, &p, CryptVariant::AsyncFinish);
            });
            assert!(!det.has_races());
        })
    });
    g.bench_function("racedet-future", |b| {
        b.iter(|| {
            let mut det = RaceDetector::new();
            run_serial(&mut det, |ctx| {
                crypt_run(ctx, &p, CryptVariant::Future);
            });
            assert!(!det.has_races());
        })
    });
    g.finish();
}

futrace_bench::bench_main!(bench);
