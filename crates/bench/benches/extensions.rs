//! Microbenchmarks for the extension workloads (blocked LU, pipeline).

use futrace_bench::runner::Runner;
use futrace_benchsuite::lu::{lu_run, lu_seq_blocked, LuParams};
use futrace_benchsuite::pipeline::{pipeline_run, pipeline_seq, PipelineParams};
use futrace_detector::RaceDetector;
use futrace_runtime::{run_serial, NullMonitor};

fn lu_bench(c: &mut Runner) {
    let p = LuParams { nb: 6, bs: 12, seed: 0x1f };
    let mut g = c.benchmark_group("blocked-lu");
    g.sample_size(10);
    g.bench_function("seq", |b| b.iter(|| lu_seq_blocked(&p)));
    g.bench_function("dsl-null", |b| {
        b.iter(|| {
            let mut m = NullMonitor;
            run_serial(&mut m, |ctx| {
                lu_run(ctx, &p, false);
            })
        })
    });
    g.bench_function("racedet", |b| {
        b.iter(|| {
            let mut det = RaceDetector::new();
            run_serial(&mut det, |ctx| {
                lu_run(ctx, &p, false);
            });
            assert!(!det.has_races());
        })
    });
    g.finish();
}

fn pipeline_bench(c: &mut Runner) {
    let p = PipelineParams {
        stages: 6,
        items: 128,
        rounds: 32,
        seed: 0x9199,
    };
    let mut g = c.benchmark_group("pipeline");
    g.sample_size(10);
    g.bench_function("seq", |b| b.iter(|| pipeline_seq(&p)));
    g.bench_function("racedet", |b| {
        b.iter(|| {
            let mut det = RaceDetector::new();
            run_serial(&mut det, |ctx| {
                pipeline_run(ctx, &p, false);
            });
            assert!(!det.has_races());
        })
    });
    g.finish();
}

futrace_bench::bench_main!(lu_bench, pipeline_bench);
