//! Microbenchmark for Table 2's Jacobi row (futures with `depends`-style
//! point-to-point synchronization; non-tree joins throughout).

use futrace_bench::runner::Runner;
use futrace_benchsuite::jacobi::{jacobi_run, jacobi_seq, JacobiParams};
use futrace_detector::RaceDetector;
use futrace_runtime::{run_serial, NullMonitor};

fn bench_params() -> JacobiParams {
    JacobiParams {
        n: 128,
        tile: 16,
        sweeps: 4,
        seed: 0xacab,
    }
}

fn bench(c: &mut Runner) {
    let p = bench_params();
    let mut g = c.benchmark_group("jacobi");
    g.sample_size(10);
    g.bench_function("seq", |b| b.iter(|| jacobi_seq(&p)));
    g.bench_function("dsl-null", |b| {
        b.iter(|| {
            let mut m = NullMonitor;
            run_serial(&mut m, |ctx| {
                jacobi_run(ctx, &p, false);
            })
        })
    });
    g.bench_function("racedet", |b| {
        b.iter(|| {
            let mut det = RaceDetector::new();
            run_serial(&mut det, |ctx| {
                jacobi_run(ctx, &p, false);
            });
            assert!(!det.has_races());
        })
    });
    g.finish();
}

futrace_bench::bench_main!(bench);
