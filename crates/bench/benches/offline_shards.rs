//! Scaling of the sharded offline detector's detect stage.
//!
//! Records one trace per workload up front, then measures for shard
//! counts {1, 2, 4}, against a plain serial replay baseline:
//!
//! * `detect-stage/N` — workers only: ops are pre-routed into per-shard
//!   lists, so the measurement is purely the partitioned shadow-check
//!   work plus the N-fold replicated DTRG maintenance. This is the part
//!   that parallelizes; on a single-core host its wall time stays ~flat
//!   (the work is conserved) and the speedup shows up only on multicore.
//! * `pipeline/N` — end-to-end `detect_sharded_events` (route + channels
//!   + merge); `pipeline/1` vs `serial-replay` isolates the pipeline tax
//!   (per-event routing, batching, and control-event cloning).
//!
//! The events are pre-decoded so varint decoding is excluded throughout;
//! results are emitted as JSON lines by the in-tree runner
//! (`BENCH_JSON=1`).

use futrace_bench::runner::{BenchmarkId, Runner};
use futrace_benchsuite::{jacobi, smithwaterman};
use futrace_detector::RaceDetector;
use futrace_offline::{detect_sharded_events, ShardOptions};
use futrace_runtime::{replay, run_serial, Event, EventLog};
use std::convert::Infallible;

// Access-dominated configurations: few, large tasks. Control events are
// broadcast to every shard (their cost scales with N), so the detect
// stage only parallelizes when shadow checks dominate — exactly the
// regime of the paper's workloads (10⁴–10⁷ tasks vs 10⁸–10⁹ accesses).

fn record_jacobi() -> Vec<Event> {
    let mut log = EventLog::new();
    let p = jacobi::JacobiParams {
        n: 128,
        tile: 32,
        sweeps: 8,
        ..jacobi::JacobiParams::tiny()
    };
    run_serial(&mut log, |ctx| {
        jacobi::jacobi_run(ctx, &p, false);
    });
    log.events
}

fn record_sw() -> Vec<Event> {
    let mut log = EventLog::new();
    let p = smithwaterman::SwParams {
        n: 240,
        tiles: 4,
        ..smithwaterman::SwParams::tiny()
    };
    run_serial(&mut log, |ctx| {
        smithwaterman::sw_run(ctx, &p, false);
    });
    log.events
}

/// A pre-routed op, as a shard worker would receive it.
enum PreOp {
    Control(Event),
    Read(futrace_util::ids::TaskId, futrace_util::ids::LocId, u64),
    Write(futrace_util::ids::TaskId, futrace_util::ids::LocId, u64),
}

/// Routes `events` into per-shard op lists (control broadcast, accesses
/// by `loc % n` with global indices) — the router's job, done up front.
fn route(events: &[Event], n: usize) -> Vec<Vec<PreOp>> {
    let mut shards: Vec<Vec<PreOp>> = (0..n).map(|_| Vec::new()).collect();
    let mut index = 0u64;
    for e in events {
        match e {
            Event::Read(t, l) => {
                shards[l.index() % n].push(PreOp::Read(*t, *l, index));
                index += 1;
            }
            Event::Write(t, l) => {
                shards[l.index() % n].push(PreOp::Write(*t, *l, index));
                index += 1;
            }
            control => {
                for shard in shards.iter_mut() {
                    shard.push(PreOp::Control(control.clone()));
                }
            }
        }
    }
    shards
}

fn detect_one_shard(ops: &[PreOp]) -> u64 {
    let mut det = RaceDetector::new();
    for op in ops {
        match op {
            PreOp::Control(e) => {
                det.apply_control(e);
            }
            PreOp::Read(t, l, i) => det.check_read_at(*t, *l, *i),
            PreOp::Write(t, l, i) => det.check_write_at(*t, *l, *i),
        }
    }
    det.into_report().total_detected
}

fn shard_scaling(c: &mut Runner, name: &str, events: &[Event]) {
    let mut g = c.benchmark_group(format!("offline-shards/{name}"));
    g.sample_size(10);
    g.bench_function("serial-replay", |b| {
        b.iter(|| {
            let mut det = RaceDetector::new();
            replay(events, &mut det);
            det.into_report().total_detected
        })
    });
    for shards in [1usize, 2, 4] {
        let routed = route(events, shards);
        g.bench_with_input(BenchmarkId::new("detect-stage", shards), &routed, |b, routed| {
            b.iter(|| {
                std::thread::scope(|s| {
                    let handles: Vec<_> = routed
                        .iter()
                        .map(|ops| s.spawn(move || detect_one_shard(ops)))
                        .collect();
                    handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
                })
            })
        });
        let opts = ShardOptions::with_shards(shards);
        g.bench_with_input(BenchmarkId::new("pipeline", shards), &opts, |b, opts| {
            b.iter(|| {
                let stream = events.iter().cloned().map(Ok::<_, Infallible>);
                let out = detect_sharded_events(stream, opts).unwrap();
                out.report.total_detected
            })
        });
    }
    g.finish();
}

fn offline_shards(c: &mut Runner) {
    let jac = record_jacobi();
    let sw = record_sw();
    shard_scaling(c, "jacobi", &jac);
    shard_scaling(c, "smithwaterman", &sw);
}

futrace_bench::bench_main!(offline_shards);
