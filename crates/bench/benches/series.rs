//! Microbenchmark for Table 2's Series rows: serial elision vs. plain DSL
//! vs. DSL + DTRG detector (af and future variants).

use futrace_bench::runner::Runner;
use futrace_benchsuite::series::{series_af, series_future, series_seq, SeriesParams};
use futrace_detector::RaceDetector;
use futrace_runtime::{run_serial, NullMonitor};

fn bench_params() -> SeriesParams {
    SeriesParams {
        n: 200,
        intervals: 200,
    }
}

fn bench(c: &mut Runner) {
    let p = bench_params();
    let mut g = c.benchmark_group("series");
    g.sample_size(10);
    g.bench_function("seq", |b| b.iter(|| series_seq(&p)));
    g.bench_function("dsl-null-af", |b| {
        b.iter(|| {
            let mut m = NullMonitor;
            run_serial(&mut m, |ctx| {
                series_af(ctx, &p);
            })
        })
    });
    g.bench_function("racedet-af", |b| {
        b.iter(|| {
            let mut det = RaceDetector::new();
            run_serial(&mut det, |ctx| {
                series_af(ctx, &p);
            });
            assert!(!det.has_races());
        })
    });
    g.bench_function("racedet-future", |b| {
        b.iter(|| {
            let mut det = RaceDetector::new();
            run_serial(&mut det, |ctx| {
                series_future(ctx, &p);
            });
            assert!(!det.has_races());
        })
    });
    g.finish();
}

futrace_bench::bench_main!(bench);
