//! Microbenchmark for Table 2's Smith-Waterman row — the paper's worst
//! slowdown (9.92×): maximal #SharedMem and #AvgReaders (tile boundaries
//! are watched by two parallel future readers).

use futrace_bench::runner::Runner;
use futrace_benchsuite::smithwaterman::{sw_run, sw_seq, SwParams};
use futrace_detector::RaceDetector;
use futrace_runtime::{run_serial, NullMonitor};

fn bench_params() -> SwParams {
    SwParams {
        n: 200,
        tiles: 10,
        seed: 0xac97,
    }
}

fn bench(c: &mut Runner) {
    let p = bench_params();
    let mut g = c.benchmark_group("smithwaterman");
    g.sample_size(10);
    g.bench_function("seq", |b| b.iter(|| sw_seq(&p)));
    g.bench_function("dsl-null", |b| {
        b.iter(|| {
            let mut m = NullMonitor;
            run_serial(&mut m, |ctx| {
                sw_run(ctx, &p, false);
            })
        })
    });
    g.bench_function("racedet", |b| {
        b.iter(|| {
            let mut det = RaceDetector::new();
            run_serial(&mut det, |ctx| {
                sw_run(ctx, &p, false);
            });
            assert!(!det.has_races());
        })
    });
    g.finish();
}

futrace_bench::bench_main!(bench);
