//! Microbenchmark for Table 2's Strassen row (7 product + 4 combine
//! futures per recursion node; 12 non-tree joins per node).

use futrace_bench::runner::Runner;
use futrace_benchsuite::strassen::{inputs, strassen_run, strassen_seq, StrassenParams};
use futrace_detector::RaceDetector;
use futrace_runtime::{run_serial, NullMonitor};

fn bench_params() -> StrassenParams {
    StrassenParams {
        n: 64,
        cutoff: 16,
        seed: 0x57a5,
    }
}

fn bench(c: &mut Runner) {
    let p = bench_params();
    let (a, b) = inputs(&p);
    let mut g = c.benchmark_group("strassen");
    g.sample_size(10);
    g.bench_function("seq", |bch| {
        bch.iter(|| strassen_seq(&a, &b, p.n, p.cutoff))
    });
    g.bench_function("dsl-null", |bch| {
        bch.iter(|| {
            let mut m = NullMonitor;
            run_serial(&mut m, |ctx| {
                strassen_run(ctx, &p);
            })
        })
    });
    g.bench_function("racedet", |bch| {
        bch.iter(|| {
            let mut det = RaceDetector::new();
            run_serial(&mut det, |ctx| {
                strassen_run(ctx, &p);
            });
            assert!(!det.has_races());
        })
    });
    g.finish();
}

futrace_bench::bench_main!(bench);
