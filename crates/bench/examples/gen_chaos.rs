//! Chaos driver for the analysis daemon — the CI/nightly face of the
//! `chaos_serve` harness. Deterministic in `--seed`: it generates traces,
//! runs N reconnecting clients with seeded network fault injection
//! against a `tracetool serve` daemon, SIGKILLs and restarts the daemon
//! (`--resume`) mid-run, and verifies every client's verdict is
//! byte-identical to one-shot `tracetool analyze`. A failure prints the
//! seed so the scenario reproduces bit-for-bit.
//!
//! ```text
//! cargo run --release -p futrace-bench --example gen_chaos -- \
//!     --bin target/release/tracetool --out /tmp/chaos \
//!     [--seed 7] [--clients 4] [--retries 16] [--trace-bytes 49152] \
//!     [--no-kill]
//! ```

use futrace_benchsuite::randomprog::{self, GenParams};
use futrace_offline::StreamWriter;
use futrace_runtime::{replay, run_serial, EventLog};
use futrace_util::rng::splitmix64;
use std::io::{BufRead, BufReader, Read};
use std::net::TcpListener;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn usage(err: &str) -> ! {
    eprintln!("error: {err}");
    eprintln!(
        "usage: gen_chaos --bin TRACETOOL --out DIR [--seed S] [--clients N] \
         [--retries N] [--trace-bytes B] [--no-kill]"
    );
    std::process::exit(2);
}

fn fail(seed: u64, what: &str) -> ! {
    eprintln!("gen_chaos: FAIL (seed {seed}): {what}");
    std::process::exit(1);
}

fn gen_trace(path: &PathBuf, seed: u64, min_bytes: usize) {
    let mut programs = 128;
    loop {
        let mut state = seed;
        let progs: Vec<_> = (0..programs)
            .map(|_| randomprog::generate(splitmix64(&mut state), &GenParams::future_heavy()))
            .collect();
        let mut log = EventLog::new();
        run_serial(&mut log, |ctx| {
            for prog in &progs {
                randomprog::execute(ctx, prog);
            }
        });
        let mut w = StreamWriter::with_chunk_bytes(Vec::new(), 4096).expect("writing to a Vec");
        replay(&log.events, &mut w);
        let (blob, _) = w.finish().expect("writing to a Vec");
        if blob.len() >= min_bytes || programs >= 8192 {
            std::fs::write(path, &blob).expect("write trace");
            return;
        }
        programs *= 2;
    }
}

fn verdict_section(stdout: &str) -> Option<&str> {
    let at = stdout.find("determinacy")?;
    let line_start = stdout[..at].rfind('\n').map_or(0, |i| i + 1);
    Some(&stdout[line_start..])
}

fn free_addr() -> String {
    let l = TcpListener::bind("127.0.0.1:0").expect("probe port");
    let addr = l.local_addr().expect("probe addr").to_string();
    drop(l);
    addr
}

fn spawn_daemon(
    bin: &str,
    addr: &str,
    ckpt: &str,
) -> (Child, BufReader<std::process::ChildStdout>) {
    let mut child = Command::new(bin)
        .args(["serve", "--listen", addr, "--checkpoint-dir", ckpt, "--resume"])
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .unwrap_or_else(|e| usage(&format!("cannot spawn {bin}: {e}")));
    let mut stdout = BufReader::new(child.stdout.take().expect("daemon stdout"));
    let mut line = String::new();
    stdout.read_line(&mut line).expect("read listen line");
    if !line.starts_with("listening on ") {
        usage(&format!("unexpected daemon banner: {line:?}"));
    }
    (child, stdout)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut bin = "tracetool".to_string();
    let mut out: Option<String> = None;
    let mut seed: u64 = 7;
    let mut clients: usize = 4;
    let mut retries: u64 = 16;
    let mut trace_bytes: usize = 48 * 1024;
    let mut kill = true;

    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut val = |name: &str| {
            it.next()
                .cloned()
                .unwrap_or_else(|| usage(&format!("{name} needs a value")))
        };
        match flag.as_str() {
            "--bin" => bin = val("--bin"),
            "--out" => out = Some(val("--out")),
            "--seed" => seed = val("--seed").parse().unwrap_or_else(|_| usage("bad --seed")),
            "--clients" => {
                clients = val("--clients").parse().unwrap_or_else(|_| usage("bad --clients"))
            }
            "--retries" => {
                retries = val("--retries").parse().unwrap_or_else(|_| usage("bad --retries"))
            }
            "--trace-bytes" => {
                trace_bytes = val("--trace-bytes")
                    .parse()
                    .unwrap_or_else(|_| usage("bad --trace-bytes"))
            }
            "--no-kill" => kill = false,
            other => usage(&format!("unknown flag {other}")),
        }
    }
    let out = out.unwrap_or_else(|| usage("--out is required"));
    if clients == 0 {
        usage("--clients must be at least 1");
    }

    let dir = PathBuf::from(&out);
    let ckpt = dir.join("ckpt");
    std::fs::create_dir_all(&ckpt).expect("create output dir");
    let ckpt_flag = ckpt.to_str().expect("utf-8 path").to_string();

    // Traces + their one-shot verdicts (the ground truth).
    let mut traces = Vec::new();
    for i in 0..clients {
        let path = dir.join(format!("chaos_{i}.ftrc"));
        gen_trace(&path, seed.wrapping_add(i as u64), trace_bytes);
        let one = Command::new(&bin)
            .arg("analyze")
            .arg(&path)
            .output()
            .unwrap_or_else(|e| usage(&format!("cannot spawn {bin}: {e}")));
        let stdout = String::from_utf8_lossy(&one.stdout).into_owned();
        let verdict = verdict_section(&stdout)
            .unwrap_or_else(|| fail(seed, &format!("one-shot analyze of client {i} trace produced no verdict")))
            .to_string();
        traces.push((path, verdict, one.status.code()));
    }

    // Clients dial before the daemon is up: every one must reconnect.
    let addr = free_addr();
    let mut kids: Vec<Child> = traces
        .iter()
        .enumerate()
        .map(|(i, (path, _, _))| {
            Command::new(&bin)
                .args(["client", &addr])
                .arg(path)
                .args(["--name", &format!("chaos_{i}")])
                .args(["--chunk-events", "8", "--checkpoint-every", "100"])
                .args([
                    "--retries",
                    &retries.to_string(),
                    "--inject-net",
                    &seed.wrapping_add(1000 + i as u64).to_string(),
                ])
                .stdout(Stdio::piped())
                .stderr(Stdio::piped())
                .spawn()
                .unwrap_or_else(|e| usage(&format!("cannot spawn {bin}: {e}")))
        })
        .collect();
    std::thread::sleep(Duration::from_millis(300));

    let (mut daemon, mut daemon_out) = spawn_daemon(&bin, &addr, &ckpt_flag);
    let mut kills = 0u32;

    if kill {
        // SIGKILL once periodic checkpoints prove sessions are mid-stream
        // (or every client already finished on a fast machine).
        let start = Instant::now();
        loop {
            let ckpts = std::fs::read_dir(&ckpt)
                .expect("ckpt dir")
                .filter(|e| {
                    e.as_ref()
                        .unwrap()
                        .path()
                        .extension()
                        .is_some_and(|x| x == "fckp")
                })
                .count();
            if ckpts >= 2 {
                break;
            }
            if kids.iter_mut().all(|c| c.try_wait().expect("try_wait").is_some()) {
                break;
            }
            if start.elapsed() > Duration::from_secs(120) {
                fail(seed, "no periodic checkpoints appeared within 120s");
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        daemon.kill().expect("SIGKILL daemon");
        let _ = daemon.wait();
        kills += 1;
        (daemon, daemon_out) = spawn_daemon(&bin, &addr, &ckpt_flag);
    }

    let mut reconnects = 0u64;
    let deadline = Duration::from_secs(300);
    for (i, mut kid) in kids.drain(..).enumerate() {
        let start = Instant::now();
        let status = loop {
            if let Some(s) = kid.try_wait().expect("try_wait") {
                break s;
            }
            if start.elapsed() > deadline {
                let _ = kid.kill();
                let _ = kid.wait();
                fail(seed, &format!("client {i} hung past {deadline:?}"));
            }
            std::thread::sleep(Duration::from_millis(20));
        };
        let mut stdout = String::new();
        let mut stderr = String::new();
        kid.stdout.take().unwrap().read_to_string(&mut stdout).expect("client stdout");
        kid.stderr.take().unwrap().read_to_string(&mut stderr).expect("client stderr");
        let (_, want_verdict, want_code) = &traces[i];
        if status.code() != *want_code {
            fail(
                seed,
                &format!(
                    "client {i} exited {:?}, one-shot analyze exited {want_code:?}\n{stderr}",
                    status.code()
                ),
            );
        }
        match verdict_section(&stdout) {
            Some(got) if got == want_verdict => {}
            Some(got) => fail(
                seed,
                &format!("client {i} verdict diverged:\n--- streamed\n{got}\n--- one-shot\n{want_verdict}"),
            ),
            None => fail(seed, &format!("client {i} printed no verdict:\n{stdout}\n{stderr}")),
        }
        if stdout.contains("reconnected: verdict reached on attempt") {
            reconnects += 1;
        }
    }

    // Drain the daemon cleanly.
    let down = Command::new(&bin)
        .args(["client", &addr, "--shutdown"])
        .output()
        .expect("run client --shutdown");
    if down.status.code() != Some(0) {
        fail(seed, "daemon shutdown failed");
    }
    let _ = daemon.wait();
    let mut drain_summary = String::new();
    let _ = daemon_out.read_to_string(&mut drain_summary);
    print!("{drain_summary}");

    if reconnects == 0 {
        fail(seed, "no client ever reconnected — chaos was inert");
    }
    println!(
        "gen_chaos: seed {seed}: {clients} client(s) converged on the one-shot verdicts \
         ({reconnects} reconnected, daemon killed {kills} time(s))"
    );
}
