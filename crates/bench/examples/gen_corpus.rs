//! Generates a corpus of framed `.ftrc` traces from seeded random
//! programs — the input for `tracetool corpus` scale tests and the
//! nightly corpus lane. Deterministic in `--seed`: the same arguments
//! reproduce the same corpus byte-for-byte.
//!
//! ```text
//! cargo run --release -p futrace-bench --example gen_corpus -- \
//!     --out /tmp/corpus --count 120 --seed 7 \
//!     [--gen nontree|future-heavy|default] \
//!     [--damage-every 25] [--empty-every 40]
//! ```
//!
//! Every `--damage-every`-th trace is truncated mid-chunk (exercising
//! the damaged-trace inventory) and every `--empty-every`-th is a
//! header-only empty trace (exercising the empty-trace path). Pass 0
//! to disable either.

use futrace_benchsuite::randomprog::{self, GenParams};
use futrace_offline::StreamWriter;
use futrace_runtime::{replay, run_serial, EventLog};
use futrace_util::rng::splitmix64;

fn usage(err: &str) -> ! {
    eprintln!("error: {err}");
    eprintln!(
        "usage: gen_corpus --out DIR [--count N] [--seed S] \
         [--gen nontree|future-heavy|default] [--damage-every K] [--empty-every K]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out: Option<String> = None;
    let mut count: u64 = 100;
    let mut seed: u64 = 7;
    let mut gen = "nontree".to_string();
    let mut damage_every: u64 = 25;
    let mut empty_every: u64 = 40;

    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut val = |name: &str| {
            it.next()
                .cloned()
                .unwrap_or_else(|| usage(&format!("{name} needs a value")))
        };
        match flag.as_str() {
            "--out" => out = Some(val("--out")),
            "--count" => {
                count = val("--count").parse().unwrap_or_else(|_| usage("bad --count"))
            }
            "--seed" => seed = val("--seed").parse().unwrap_or_else(|_| usage("bad --seed")),
            "--gen" => gen = val("--gen"),
            "--damage-every" => {
                damage_every = val("--damage-every")
                    .parse()
                    .unwrap_or_else(|_| usage("bad --damage-every"))
            }
            "--empty-every" => {
                empty_every = val("--empty-every")
                    .parse()
                    .unwrap_or_else(|_| usage("bad --empty-every"))
            }
            other => usage(&format!("unknown flag {other}")),
        }
    }
    let out = out.unwrap_or_else(|| usage("--out is required"));
    let params = match gen.as_str() {
        "nontree" => GenParams::nontree_heavy(),
        "future-heavy" => GenParams::future_heavy(),
        "default" => GenParams::default(),
        other => usage(&format!("unknown --gen preset {other}")),
    };

    std::fs::create_dir_all(&out).expect("create output dir");
    let mut state = seed;
    let (mut full, mut damaged, mut empty) = (0u64, 0u64, 0u64);
    for i in 0..count {
        let path = format!("{out}/trace_{i:04}.ftrc");
        if empty_every > 0 && i % empty_every == empty_every - 1 {
            std::fs::write(&path, b"FTRC\x02").expect("write trace");
            empty += 1;
            continue;
        }
        let prog = randomprog::generate(splitmix64(&mut state), &params);
        let mut log = EventLog::new();
        run_serial(&mut log, |ctx| {
            randomprog::execute(ctx, &prog);
        });
        let mut w =
            StreamWriter::with_chunk_bytes(Vec::new(), 4096).expect("writing to a Vec");
        replay(&log.events, &mut w);
        let (mut blob, _) = w.finish().expect("writing to a Vec");
        if damage_every > 0 && i % damage_every == damage_every - 1 {
            // Truncate mid-chunk: keep the header plus two thirds of the
            // body so the strict reader fails and lenient salvages.
            blob.truncate((blob.len() * 2 / 3).max(6));
            damaged += 1;
        } else {
            full += 1;
        }
        std::fs::write(&path, &blob).expect("write trace");
    }
    eprintln!(
        "gen_corpus: {count} trace(s) in {out} ({full} full, {damaged} truncated, \
         {empty} empty; seed {seed}, gen {gen})"
    );
}
