//! Layer-by-layer timing of the online pipeline on one workload —
//! `cargo run --release -p futrace-bench --example online_prof [bench]`.
//!
//! Separates the executor, the buffer/walker plumbing, and sharded
//! detection so a pipeline regression names its layer.

use futrace_benchsuite::registry::{self, Scale};
use futrace_detector::{OnlineDtrg, RaceDetector};
use futrace_runtime::engine::{Analysis, Engine};
use futrace_runtime::online::{run_online, OnlineOptions, Serialized};
use futrace_runtime::{run_parallel, NullMonitor};
use std::time::Instant;

fn median_ms(mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..5)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "jacobi".into());
    let w = registry::find(&name).expect("known bench");
    let scale = Scale::Perf;

    let serial_uninstr = median_ms(|| {
        let mut nm = NullMonitor;
        w.run_into(&mut nm, scale, false);
    });
    let serial_live = median_ms(|| {
        let mut engine = Engine::new(RaceDetector::new());
        w.run_into(&mut engine, scale, false);
        let (analysis, _) = engine.into_parts();
        let _ = analysis.finish();
    });
    let par_uninstr = |t: usize| {
        median_ms(|| {
            run_parallel(t, |ctx| w.run_parallel_into(ctx, scale, false)).expect("no deadlock");
        })
    };
    let online_null = |t: usize| {
        median_ms(|| {
            let run = run_online(OnlineOptions::threads(t), Serialized::new(NullMonitor), |ctx| {
                w.run_parallel_into(ctx, scale, false)
            });
            run.result.expect("no deadlock");
        })
    };
    let online_dtrg = |t: usize, s: usize| {
        median_ms(|| {
            let opts = OnlineOptions {
                threads: t,
                shards: s,
                steal_seed: None,
            };
            let run = run_online(opts, OnlineDtrg::new(), |ctx| {
                w.run_parallel_into(ctx, scale, false)
            });
            run.result.expect("no deadlock");
        })
    };

    println!("{name} (Scale::Perf), median of 5, ms:");
    println!("  serial uninstrumented        {serial_uninstr:8.1}");
    println!("  serial live (engine+dtrg)    {serial_live:8.1}");
    for t in [1, 2, 4] {
        println!("  parallel uninstrumented @{t}t  {:8.1}", par_uninstr(t));
    }
    for t in [1, 2, 4] {
        println!("  online null monitor     @{t}t  {:8.1}", online_null(t));
    }
    for (t, s) in [(1, 1), (2, 2), (4, 1), (4, 2), (4, 4)] {
        println!("  online dtrg             @{t}t/{s}s {:7.1}", online_dtrg(t, s));
    }
}
