//! `dtrgperf` — measured perf harness for the DTRG detector's hot path.
//!
//! For each selected benchsuite program the harness:
//!
//! 1. records the serial depth-first event stream once ([`EventLog`]);
//! 2. times the **uninstrumented** execution (the DSL under
//!    [`NullMonitor`] — the denominator of the paper's slowdown column);
//! 3. times the detector over the recorded stream with the hot-path
//!    caches **on** (the default [`DetectorConfig`]) and **off**
//!    (`caching: false`), through the engine's batched dispatch path;
//! 4. asserts the two verdicts are identical, and
//! 5. emits one JSON object per program into `BENCH_dtrg.json`:
//!    median ns/event for each mode, the cached-vs-uncached improvement
//!    factor, slowdown vs the uninstrumented run, and the cache
//!    hit/miss counters (memo + shadow fast path).
//!
//! Sampling reuses the in-tree runner's protocol
//! ([`futrace_bench::runner`]): `FUTRACE_BENCH_WARMUP` untimed then
//! `FUTRACE_BENCH_SAMPLES` timed iterations, median-of-samples (robust
//! to scheduling noise in CI). The comparison pairs — cached vs
//! uncached, serial-live vs online — are sampled *interleaved*
//! (`Group::bench_pair`) so a noise burst on a shared machine hits both
//! sides of the reported ratio instead of skewing one.
//!
//! Usage: `dtrgperf [--out PATH] [--programs a,b,...] [--list]`

use futrace_bench::runner::Runner;
use futrace_benchsuite::registry::{self, Scale, Workload};
use futrace_detector::{DetectorConfig, OnlineDtrg, RaceDetector};
use futrace_runtime::engine::{run_analysis, source, Analysis, Engine};
use futrace_runtime::online::{run_online, OnlineOptions};
use futrace_runtime::{Event, EventLog, NullMonitor};

/// Worker-thread count for the online rows (the acceptance bar:
/// overlapped detection at this width must beat the serial instrumented
/// run on the wavefront/stencil programs).
const ONLINE_THREADS: usize = 4;

/// Programs that also get online rows: live serial-instrumented wall
/// time vs `run_online` at [`ONLINE_THREADS`] threads. The stencil /
/// wavefront / block workloads, where per-task kernels are heavy enough
/// for execution to overlap detection.
const ONLINE_PROGRAMS: &[&str] = &["jacobi", "sor", "smithwaterman", "crypt"];

/// The profiled subset of the benchsuite registry: every workload with
/// `perf: true`, at [`Scale::Perf`] sizes (scaled sizes except where the
/// kernel would dominate the measurement — see `SeriesParams::perf`).
fn all_workloads() -> Vec<&'static Workload> {
    registry::workloads().iter().filter(|w| w.perf).collect()
}

/// One program's measurements, serialized as one JSON object.
struct ProgramResult {
    name: &'static str,
    events: u64,
    accesses: u64,
    races: u64,
    uninstrumented_median_ns: u64,
    cached_median_ns: u64,
    uncached_median_ns: u64,
    cache_hits: u64,
    cache_misses: u64,
    memo_hits: u64,
    memo_misses: u64,
    shadow_hits: u64,
    online: Option<OnlineResult>,
}

/// Online rows for the [`ONLINE_PROGRAMS`] subset: serial instrumented
/// execution (run + detect on one thread) vs the overlapped pipeline.
struct OnlineResult {
    threads: usize,
    serial_live_median_ns: u64,
    online_median_ns: u64,
}

impl OnlineResult {
    /// Serial-instrumented vs online wall-time speedup (>1 means the
    /// overlapped pipeline wins).
    fn speedup(&self) -> f64 {
        self.serial_live_median_ns as f64 / self.online_median_ns.max(1) as f64
    }
}

impl ProgramResult {
    fn cached_ns_per_event(&self) -> f64 {
        self.cached_median_ns as f64 / self.events.max(1) as f64
    }

    fn uncached_ns_per_event(&self) -> f64 {
        self.uncached_median_ns as f64 / self.events.max(1) as f64
    }

    /// Cached-vs-uncached median speedup (>1 means the caches help).
    fn improvement(&self) -> f64 {
        self.uncached_median_ns as f64 / self.cached_median_ns.max(1) as f64
    }

    fn slowdown_cached(&self) -> f64 {
        self.cached_median_ns as f64 / self.uninstrumented_median_ns.max(1) as f64
    }

    fn slowdown_uncached(&self) -> f64 {
        self.uncached_median_ns as f64 / self.uninstrumented_median_ns.max(1) as f64
    }

    fn to_json(&self) -> String {
        let online = self.online.as_ref().map_or(String::new(), |o| {
            format!(
                concat!(
                    ",\"online_threads\":{},\"serial_live_median_ns\":{},",
                    "\"online_median_ns\":{},\"online_speedup\":{:.3}"
                ),
                o.threads,
                o.serial_live_median_ns,
                o.online_median_ns,
                o.speedup()
            )
        });
        format!(
            concat!(
                "    {{\"name\":\"{}\",\"events\":{},\"accesses\":{},\"races\":{},",
                "\"uninstrumented_median_ns\":{},\"cached_median_ns\":{},",
                "\"uncached_median_ns\":{},\"cached_ns_per_event\":{:.3},",
                "\"uncached_ns_per_event\":{:.3},\"improvement\":{:.3},",
                "\"slowdown_cached\":{:.3},\"slowdown_uncached\":{:.3},",
                "\"cache_hits\":{},\"cache_misses\":{},\"memo_hits\":{},",
                "\"memo_misses\":{},\"shadow_hits\":{}{}}}"
            ),
            self.name,
            self.events,
            self.accesses,
            self.races,
            self.uninstrumented_median_ns,
            self.cached_median_ns,
            self.uncached_median_ns,
            self.cached_ns_per_event(),
            self.uncached_ns_per_event(),
            self.improvement(),
            self.slowdown_cached(),
            self.slowdown_uncached(),
            self.cache_hits,
            self.cache_misses,
            self.memo_hits,
            self.memo_misses,
            self.shadow_hits,
            online,
        )
    }
}

fn measure(w: &Workload, runner: &mut Runner) -> ProgramResult {
    // Record the stream once; every detector run replays it, so the
    // detector timings exclude DSL execution cost.
    let log: EventLog = w.record(Scale::Perf, false);
    let events = log.events;
    let accesses = events
        .iter()
        .filter(|e| matches!(e, Event::Read(..) | Event::Write(..)))
        .count() as u64;

    let cached_cfg = DetectorConfig::default();
    let uncached_cfg = DetectorConfig {
        caching: false,
        ..DetectorConfig::default()
    };
    let replay = |cfg: &DetectorConfig| {
        match run_analysis(
            source::recorded(&events),
            RaceDetector::with_config(cfg.clone()),
        ) {
            Ok(out) => out,
            Err(never) => match never {},
        }
    };

    // The caches must never change the verdict (the equivalence suite
    // checks this over random programs; re-assert on the real workloads).
    let cached_out = replay(&cached_cfg);
    let uncached_out = replay(&uncached_cfg);
    assert_eq!(
        cached_out.report.report.races, uncached_out.report.report.races,
        "{}: cached and uncached verdicts must be identical",
        w.name
    );
    let dtrg = &cached_out.report.stats.dtrg;
    let (cache_hits, cache_misses) = (dtrg.memo_hits + dtrg.shadow_hits, dtrg.memo_misses);

    let with_online = ONLINE_PROGRAMS.contains(&w.name);
    if with_online {
        // The overlapped pipeline must agree with the replayed verdict
        // before we bother timing it.
        let online_out = run_online(OnlineOptions::auto(ONLINE_THREADS), OnlineDtrg::new(), |ctx| {
            w.run_parallel_into(ctx, Scale::Perf, false)
        });
        assert!(online_out.result.is_ok(), "{}: online run failed", w.name);
        assert_eq!(
            online_out.report.report.races, cached_out.report.report.races,
            "{}: online and replayed verdicts must be identical",
            w.name
        );
    }

    let mut group = runner.benchmark_group(format!("dtrgperf/{}", w.name));
    group.bench_function("uninstrumented", |b| {
        b.iter(|| {
            let mut nm = NullMonitor;
            w.run_into(&mut nm, Scale::Perf, false);
        })
    });
    // The reported numbers are *ratios* (improvement, online speedup), so
    // both sides of each pair are sampled interleaved: background-noise
    // bursts on a shared box then hit cached and uncached equally instead
    // of whichever block happened to be running.
    group.bench_pair(
        "cached",
        || replay(&cached_cfg),
        "uncached",
        || replay(&uncached_cfg),
    );
    if with_online {
        // End-to-end wall time, execution included: one instrumented
        // serial thread vs the work-stealing executor with detection
        // overlapped on shard threads.
        group.bench_pair(
            "serial-live",
            || {
                let mut engine = Engine::new(RaceDetector::new());
                w.run_into(&mut engine, Scale::Perf, false);
                let (analysis, _) = engine.into_parts();
                analysis.finish()
            },
            "online",
            || {
                run_online(OnlineOptions::auto(ONLINE_THREADS), OnlineDtrg::new(), |ctx| {
                    w.run_parallel_into(ctx, Scale::Perf, false)
                })
            },
        );
    }
    group.finish();

    let recs = runner.records();
    let median = |suffix: &str| {
        recs.iter()
            .rev()
            .find(|r| r.bench == suffix && r.group.ends_with(w.name))
            .expect("record just measured")
            .median_ns
    };
    ProgramResult {
        name: w.name,
        events: events.len() as u64,
        accesses,
        races: cached_out.report.report.total_detected,
        uninstrumented_median_ns: median("uninstrumented"),
        cached_median_ns: median("cached"),
        uncached_median_ns: median("uncached"),
        cache_hits,
        cache_misses,
        memo_hits: dtrg.memo_hits,
        memo_misses: dtrg.memo_misses,
        shadow_hits: dtrg.shadow_hits,
        online: with_online.then(|| OnlineResult {
            threads: ONLINE_THREADS,
            serial_live_median_ns: median("serial-live"),
            online_median_ns: median("online"),
        }),
    }
}

fn main() {
    let mut out_path = String::from("BENCH_dtrg.json");
    let mut selected: Option<Vec<String>> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--programs" => {
                selected = Some(
                    args.next()
                        .expect("--programs needs a comma-separated list")
                        .split(',')
                        .map(|s| s.trim().to_string())
                        .collect(),
                )
            }
            "--list" => {
                for w in all_workloads() {
                    println!("{}", w.name);
                }
                return;
            }
            other => {
                eprintln!("unknown argument {other:?}");
                eprintln!("usage: dtrgperf [--out PATH] [--programs a,b,...] [--list]");
                std::process::exit(2);
            }
        }
    }

    let workloads: Vec<&Workload> = all_workloads()
        .into_iter()
        .filter(|w| {
            selected
                .as_ref()
                .is_none_or(|names| names.iter().any(|n| n == w.name))
        })
        .collect();
    if let Some(names) = &selected {
        let known: Vec<&str> = workloads.iter().map(|w| w.name).collect();
        for n in names {
            assert!(
                known.contains(&n.as_str()),
                "unknown program {n:?} (try --list)"
            );
        }
    }

    let mut runner = Runner::from_env();
    let results: Vec<ProgramResult> = workloads.iter().map(|w| measure(w, &mut runner)).collect();

    println!();
    println!(
        "{:<14} {:>9} {:>12} {:>12} {:>12} {:>8} {:>12}",
        "program", "events", "uninstr", "cached", "uncached", "improve", "cache h/m"
    );
    for r in &results {
        println!(
            "{:<14} {:>9} {:>10.1}ms {:>10.1}ms {:>10.1}ms {:>7.2}x {:>7}/{}",
            r.name,
            r.events,
            r.uninstrumented_median_ns as f64 / 1e6,
            r.cached_median_ns as f64 / 1e6,
            r.uncached_median_ns as f64 / 1e6,
            r.improvement(),
            r.cache_hits,
            r.cache_misses,
        );
    }
    let online_rows: Vec<&ProgramResult> = results.iter().filter(|r| r.online.is_some()).collect();
    if !online_rows.is_empty() {
        println!();
        println!(
            "{:<14} {:>12} {:>12} {:>8}",
            "online", "serial-live", "online", "speedup"
        );
        for r in &online_rows {
            let o = r.online.as_ref().expect("filtered on is_some");
            println!(
                "{:<14} {:>10.1}ms {:>10.1}ms {:>7.2}x",
                format!("{}@{}t", r.name, o.threads),
                o.serial_live_median_ns as f64 / 1e6,
                o.online_median_ns as f64 / 1e6,
                o.speedup(),
            );
        }
    }

    let body: Vec<String> = results.iter().map(|r| r.to_json()).collect();
    let json = format!(
        "{{\n  \"harness\": \"dtrgperf\",\n  \"unit\": \"ns\",\n  \"programs\": [\n{}\n  ]\n}}\n",
        body.join(",\n")
    );
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    println!("\nwrote {out_path}");
}
