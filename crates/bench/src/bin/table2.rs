//! Reproduces the paper's Table 2 ("Runtime overhead for determinacy race
//! detection").
//!
//! ```text
//! cargo run --release -p futrace-bench --bin table2              # laptop scale
//! cargo run --release -p futrace-bench --bin table2 -- --tiny    # smoke test
//! cargo run --release -p futrace-bench --bin table2 -- --paper   # JGF Size C etc. (hours, ~GBs)
//! cargo run --release -p futrace-bench --bin table2 -- --reps 10 --bench Jacobi
//! ```
//!
//! Columns are the paper's: #Tasks, #NTJoins, #SharedMem, #AvgReaders,
//! Seq, Racedet, Slowdown. Absolute times differ from the paper (Rust vs.
//! JVM, different hardware); the reproduced quantities are the structural
//! counts and the slowdown ordering.

use futrace_bench::{extension_rows, format_table, rows_to_json, table2_rows, Size};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut size = Size::Scaled;
    let mut reps = 3usize;
    let mut filter: Option<String> = None;
    let mut json = false;
    let mut ext = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--tiny" => size = Size::Tiny,
            "--scaled" => size = Size::Scaled,
            "--paper" => size = Size::Paper,
            "--reps" => {
                i += 1;
                reps = args[i].parse().expect("--reps N");
            }
            "--bench" => {
                i += 1;
                filter = Some(args[i].clone());
            }
            "--json" => json = true,
            "--ext" => ext = true,
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: table2 [--tiny|--scaled|--paper] [--reps N] [--bench NAME] [--ext] [--json]"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }

    eprintln!(
        "futrace Table-2 reproduction — size: {size:?}, reps: {reps}{}",
        filter
            .as_deref()
            .map(|f| format!(", filter: {f}"))
            .unwrap_or_default()
    );
    eprintln!("(Seq = serial elision; Racedet = serial depth-first run under the DTRG detector)");
    let mut rows = table2_rows(size, reps, filter.as_deref());
    if ext {
        rows.extend(extension_rows(size, reps, filter.as_deref()));
    }
    futrace_bench::assert_race_free(&rows);
    if json {
        println!("{}", rows_to_json(&rows));
        return;
    }
    println!("{}", format_table(&rows));

    // Shape notes from the paper's analysis (§5): the future variants
    // perform ≈ 2 extra shared accesses per task (the stored future
    // references).
    let get = |n: &str| rows.iter().find(|r| r.name == n);
    if let (Some(af), Some(fut)) = (get("Series-af"), get("Series-future")) {
        let delta = fut.shared_mem as i64 - af.shared_mem as i64;
        println!(
            "Series future-vs-af extra accesses: {delta} (≈ 2 × #Tasks = {})",
            2 * af.tasks
        );
    }
    if let (Some(af), Some(fut)) = (get("Crypt-af"), get("Crypt-future")) {
        let delta = fut.shared_mem as i64 - af.shared_mem as i64;
        println!(
            "Crypt future-vs-af extra accesses:  {delta} (≈ 2 × #Tasks = {})",
            2 * af.tasks
        );
    }
}
