//! Record and analyze execution traces.
//!
//! ```text
//! # record a benchmark's event stream to a compact binary trace
//! # (--stream writes the framed v2 format incrementally, with bounded
//! # memory; default buffers an event log and writes flat v1):
//! tracetool record --bench jacobi --out /tmp/jacobi.trace \
//!     [--tiny|--scaled] [--planted] [--stream [--chunk-bytes N]]
//!
//! # run a benchmark live on the instrumented work-stealing executor,
//! # detecting races online while it executes — no trace file; the
//! # verdict is byte-identical to record + analyze --detector dtrg:
//! tracetool exec --bench jacobi --threads 4 [--detector dtrg]
//!     [--shards N] [--tiny|--scaled] [--planted] [--steal-seed S]
//!
//! # offline race detection + statistics over a trace (either format;
//! # --detector picks the analysis, --shards N runs the parallel
//! # pipeline for loc-routable detectors, verdict identical to serial):
//! tracetool analyze /tmp/jacobi.trace [--detector NAME] [--shards N]
//!     [--lenient] [--graph] [--dot /tmp/graph.dot]
//!
//! # run several detectors over one trace and report where they agree:
//! tracetool compare /tmp/jacobi.trace [--detectors a,b,...] [--lenient]
//!
//! # structural summary / full integrity check of a trace file:
//! tracetool info /tmp/jacobi.trace
//! tracetool verify /tmp/jacobi.trace
//!
//! # batch analysis over every .ftrc under a directory: per-trace ×
//! # per-detector jobs on a DAG-scheduled worker pool, resume manifest,
//! # aggregated agreement/drift/damage report (JSON + markdown):
//! tracetool corpus DIR [--out DIR] [--detectors a,b,...] [--max-parallel N]
//!     [--failure-policy continue|abort] [--shards N] [--supervised]
//!     [--lenient] [--fresh] [--stop-after-jobs N]
//!
//! # differential fuzzing: generate future-heavy random programs, run all
//! # registered detectors (serial + sharded), classify disagreements
//! # against the expected-unsoundness notes, shrink anything unexpected:
//! tracetool fuzz [--programs N] [--seed S] [--gen nontree|future-heavy|default]
//!     [--out-dir DIR] [--time-budget-secs T] [--break-detector NAME]
//!
//! # analysis daemon: stream traces over TCP in framed chunks, one
//! # incremental session per connection; graceful drain suspends
//! # in-flight sessions to FCKP checkpoints and --resume reopens them:
//! tracetool serve --listen 127.0.0.1:0 [--workers N] [--queue-depth N]
//!     [--checkpoint-dir DIR] [--resume]
//! tracetool client HOST:PORT /tmp/jacobi.trace [--shards N]
//!     [--checkpoint-every N] [--chunk-events N] [--suspend-after N]
//! tracetool client HOST:PORT --shutdown
//! ```
//!
//! Exit codes: 0 clean, 1 invalid/damaged trace (or a deadlocked `exec`
//! run), 2 usage error, 3 races
//! detected by `analyze` or `exec` (`compare` always exits 0 when the trace reads
//! cleanly — its product is the agreement report, not a verdict), 4
//! unexpected detector disagreement found by `fuzz` (a minimized `.ftrc`
//! reproducer is written to `--out-dir`). `corpus` exits 0 when every
//! trace is clean (or the run was suspended by `--stop-after-jobs` —
//! resume to finish), 1 when any job failed / was poisoned / never
//! completed or the run aborted, 3 when the reference detector found
//! races in at least one trace. `tracetool help` prints the full table.

use futrace_bench::detectors::{self, AnyReport, DETECTOR_NAMES};
use futrace_bench::fuzzdiff;
use futrace_bench::tracetool_cli::{
    self, AnalyzeArgs, ClientArgs, Command, CompareArgs, CorpusArgs, ExecArgs, FuzzArgs,
    RecordArgs, ServeArgs,
};
use futrace_benchsuite::randomprog::GenParams;
use futrace_corpus::{run_corpus, CorpusError, CorpusOptions, FailurePolicy};
use futrace_benchsuite::registry::{self, Scale};
use futrace_compgraph::{dot, GraphBuilder, GraphStats};
use futrace_detector::{OnlineDtrg, RaceReport};
use futrace_offline::framed::{self, DEFAULT_CHUNK_BYTES};
use futrace_offline::{
    trace_events, Checkpoint, ShardPlan, StreamWriter, SupervisedOutcome, SuperviseError,
    SupervisorPlan, TraceFingerprint, WriterStats,
};
use futrace_runtime::engine::{run_analysis_recorded, AnalysisOutcome, EngineCounters};
use futrace_runtime::online::{run_online, OnlineOptions};
use futrace_runtime::{trace, Event, EventLog, Monitor};
use futrace_service::{ClientOptions, ClientOutcome, ServeOptions, Server};
use futrace_util::faultinject::{
    read_to_end_with_retry, Backoff, FaultPlan, FaultyReader, FaultyWriter, IoFaultStats,
};
use std::io::BufWriter;
use std::time::Duration;

/// Snapshot interval (framed chunks) used when `--inject` is given
/// without `--checkpoint-every`.
const INJECT_CHECKPOINT_EVERY: u64 = 8;

/// One source of truth for the usage text; `usage` sends it to stderr
/// (exit 2), `help` to stdout (exit 0, with the exit-code table).
const USAGE: &str = "\
usage:
  tracetool record --bench NAME --out FILE
                   [--tiny|--scaled] [--planted]
                   [--stream [--chunk-bytes N] [--inject SEED]]
  tracetool exec --bench NAME --threads N [--detector dtrg]
                   [--shards N] [--tiny|--scaled] [--planted]
                   [--steal-seed S]
  tracetool analyze FILE [--detector NAME] [--shards N] [--lenient]
                   [--graph] [--dot FILE] [--inject SEED]
                   [--checkpoint-every N] [--stop-after N --checkpoint FILE]
                   [--resume FILE]
  tracetool compare FILE [--detectors NAME,NAME,...] [--lenient]
  tracetool info FILE
  tracetool verify FILE
  tracetool corpus DIR [--out DIR] [--detectors NAME,NAME,...]
                   [--max-parallel N] [--failure-policy continue|abort]
                   [--shards N] [--supervised] [--lenient] [--fresh]
                   [--stop-after-jobs N] [--job-timeout-ms T]
                   [--job-retries N]
  tracetool fuzz [--programs N] [--seed S]
                   [--gen nontree|future-heavy|default] [--out-dir DIR]
                   [--time-budget-secs T] [--break-detector NAME]
  tracetool serve --listen HOST:PORT [--workers N] [--queue-depth N]
                   [--checkpoint-dir DIR] [--resume]
                   [--idle-timeout-ms T] [--io-deadline-ms T]
                   [--max-sessions N] [--inject-net SEED]
  tracetool client HOST:PORT FILE [--shards N] [--checkpoint-every N]
                   [--lenient] [--name NAME] [--chunk-events N]
                   [--suspend-after N] [--retries N]
                   [--retry-budget-ms T] [--inject-net SEED]
  tracetool client HOST:PORT --shutdown
  tracetool help";

const EXIT_CODES: &str = "\
exit codes:
  0  clean — no races, no damage; also a corpus run suspended by
     --stop-after-jobs (rerun the same command to resume)
  1  invalid or damaged trace; for corpus: any analyze/compare job
     failed, was poisoned, or never completed, or the run aborted; for
     serve: the listen socket failed or a drained session errored; for
     client: connection, trace, or daemon-reported failure
  2  usage error
  3  determinacy races detected by analyze or exec, or reported to client by
     the daemon's final verdict; for corpus: the reference detector
     found races in at least one trace
  4  fuzz found an unexpected detector disagreement (a minimized .ftrc
     reproducer is written to --out-dir)
  5  client gave up: the daemon shed the session with Busy, or the
     --retries/--retry-budget-ms reconnect budget ran out

`serve` exits 0 after a clean drain (Shutdown frame or --suspend-after
clients); suspended sessions are checkpointed, not errors. A `client`
run that suspends (--suspend-after) exits 0 — resume by re-running the
same client against a daemon started with --resume.";

fn usage(err: &str) -> ! {
    eprintln!("error: {err}");
    eprintln!("{USAGE}");
    eprintln!("benchmarks: {}", registry::names().join(", "));
    eprintln!("detectors: {}", DETECTOR_NAMES.join(", "));
    std::process::exit(2);
}

fn help() {
    println!("tracetool — record and analyze futrace execution traces");
    println!();
    println!("{USAGE}");
    println!();
    println!("{EXIT_CODES}");
    println!();
    println!("benchmarks: {}", registry::names().join(", "));
    println!("detectors: {}", DETECTOR_NAMES.join(", "));
}

/// Drives the selected benchmark against any monitor — an [`EventLog`]
/// for buffered v1 recording, a [`StreamWriter`] for direct-to-disk v2.
fn run_bench<M: Monitor>(mon: &mut M, bench: &str, tiny: bool, planted: bool) {
    let w = registry::find(bench).expect("parser admits only known benches");
    let scale = if tiny { Scale::Tiny } else { Scale::Scaled };
    w.run_into(mon, scale, planted);
}

fn print_fault_stats(kind: &str, seed: u64, s: &IoFaultStats) {
    eprintln!(
        "injected {kind} faults (seed {seed}): {} call(s), {} transient(s), \
         {} short op(s), {} hard error(s), {} byte(s) truncated",
        s.calls, s.transients, s.short_ops, s.hard_errors, s.truncated_bytes
    );
}

fn print_record_stats(stats: &WriterStats, out: &str) {
    eprintln!(
        "recorded {} events in {} framed chunks ({} bytes, {:.2} B/event) to {}",
        stats.events,
        stats.chunks,
        stats.bytes_written,
        stats.bytes_written as f64 / stats.events.max(1) as f64,
        out
    );
    if stats.io_retries > 0 {
        eprintln!("note: {} transient I/O error(s) retried", stats.io_retries);
    }
}

/// Checked close: a failing sink must end in a clear message and exit 1,
/// never a panic (the `StreamWriter` Drop impl stays silent by design).
fn finish_stream<W: std::io::Write>(writer: StreamWriter<W>, out: &str) -> (W, WriterStats) {
    match writer.finish() {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("failed to finalize trace {out}: {e}");
            eprintln!(
                "the file may hold a partial trace; \
                 `tracetool analyze {out} --lenient` salvages the intact chunks"
            );
            std::process::exit(1);
        }
    }
}

fn record(args: RecordArgs) {
    if args.stream {
        let file = std::fs::File::create(&args.out).expect("create trace file");
        let chunk = args.chunk_bytes.unwrap_or(DEFAULT_CHUNK_BYTES);
        if let Some(seed) = args.inject {
            // Deterministic write-fault injection: the sink misbehaves per
            // the seeded plan; the writer's retry layer absorbs what it
            // can and finish() reports what it cannot.
            let plan = FaultPlan::from_seed(seed);
            let sink = FaultyWriter::new(BufWriter::new(file), plan.write);
            let mut writer = match StreamWriter::with_chunk_bytes(sink, chunk) {
                Ok(w) => w,
                Err(e) => {
                    eprintln!("cannot start trace {}: {e}", args.out);
                    std::process::exit(1);
                }
            };
            run_bench(&mut writer, &args.bench, args.tiny, args.planted);
            if writer.stats().dropped_events > 0 {
                let dropped = writer.stats().dropped_events;
                eprintln!("warning: sink failed hard; {dropped} event(s) dropped");
            }
            let (sink, stats) = finish_stream(writer, &args.out);
            print_fault_stats("write", seed, &sink.stats());
            print_record_stats(&stats, &args.out);
        } else {
            let mut writer = StreamWriter::with_chunk_bytes(BufWriter::new(file), chunk)
                .expect("write trace header");
            run_bench(&mut writer, &args.bench, args.tiny, args.planted);
            let (_, stats) = finish_stream(writer, &args.out);
            print_record_stats(&stats, &args.out);
        }
    } else {
        let mut log = EventLog::new();
        run_bench(&mut log, &args.bench, args.tiny, args.planted);
        let blob = trace::encode(&log.events);
        std::fs::write(&args.out, &blob).expect("write trace file");
        eprintln!(
            "recorded {} events ({} bytes, {:.2} B/event) to {}",
            log.events.len(),
            blob.len(),
            blob.len() as f64 / log.events.len().max(1) as f64,
            args.out
        );
    }
}

/// Runs a benchsuite program live on the instrumented work-stealing
/// executor, with DTRG detection overlapped on shard threads — the
/// online half of the front door, no trace file involved. The verdict
/// section stays byte-identical to `record` + `analyze --detector dtrg`
/// on the same bench (CI diffs it); online telemetry rides in the
/// engine block. A deadlocked execution still reports the analysis of
/// the executed prefix, then exits 1.
fn exec(args: ExecArgs) {
    debug_assert_eq!(args.detector, "dtrg", "parser admits only dtrg for exec");
    let w = registry::find(&args.bench).expect("parser admits only known benches");
    let scale = if args.tiny { Scale::Tiny } else { Scale::Scaled };
    let mut opts = match args.shards {
        Some(shards) => OnlineOptions {
            threads: args.threads,
            shards,
            steal_seed: None,
        },
        None => OnlineOptions::auto(args.threads),
    };
    opts.steal_seed = args.steal_seed;
    let run = run_online(opts, OnlineDtrg::new(), |ctx| {
        w.run_parallel_into(ctx, scale, args.planted)
    });

    println!(
        "{}: {} events ({} thread(s), {} shard(s), live)",
        args.bench, run.engine.events, run.stats.threads, run.stats.shards
    );
    note_if_empty(run.engine.events);
    if let Err(e) = &run.result {
        eprintln!("error: {e}");
        eprintln!("reporting the analysis of the executed prefix:");
    }

    let mut counters = run.engine;
    counters.cache_hits = run.report.stats.dtrg.memo_hits + run.report.stats.dtrg.shadow_hits;
    counters.cache_misses = run.report.stats.dtrg.memo_misses;
    print_engine_counters(&counters);
    println!("{}", run.stats);

    println!("\n-- detector --");
    println!("{}", run.report.stats);
    println!("footprint:   {}", run.report.footprint);
    let racy = print_verdict(&run.report.report);

    if run.result.is_err() {
        std::process::exit(1);
    }
    if racy {
        std::process::exit(3);
    }
}

fn read_trace(file: &str) -> Vec<u8> {
    match std::fs::read(file) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("cannot read {file}: {e}");
            std::process::exit(1);
        }
    }
}

/// Reads the trace through a seeded [`FaultyReader`], retrying transient
/// errors with bounded backoff. Hard faults still end the run (exit 1) —
/// the point is that *transient* ones must not.
fn read_trace_injected(file: &str, plan: &FaultPlan) -> Vec<u8> {
    let f = match std::fs::File::open(file) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("cannot read {file}: {e}");
            std::process::exit(1);
        }
    };
    let mut reader = FaultyReader::new(std::io::BufReader::new(f), plan.read.clone());
    let mut backoff = Backoff::new(plan.seed, 8, Duration::from_millis(1));
    let mut buf = Vec::new();
    match read_to_end_with_retry(&mut reader, &mut buf, &mut backoff) {
        Ok(_) => {
            print_fault_stats("read", plan.seed, &reader.stats());
            if backoff.total_retries() > 0 {
                eprintln!(
                    "note: {} transient read error(s) retried",
                    backoff.total_retries()
                );
            }
            buf
        }
        Err(e) => {
            eprintln!("cannot read {file}: {e}");
            std::process::exit(1);
        }
    }
}

/// An empty trace (valid header, zero chunks/events) is not damage:
/// every command states it explicitly and still reports clean. Printed
/// right after the event count — i.e. before (outside) the verdict
/// section CI diffs — and byte-identical across the serial, sharded,
/// and supervised paths.
fn note_if_empty(events: u64) {
    if events == 0 {
        println!("note: trace holds no events; verdict is trivially clean");
    }
}

/// Prints the race verdict. This section must stay byte-identical between
/// the serial and sharded paths — CI's smoke test diffs it.
fn print_verdict(report: &RaceReport) -> bool {
    if report.has_races() {
        println!(
            "\n{} determinacy race(s); first {}:",
            report.total_detected,
            report.races.len().min(5)
        );
        for r in report.races.iter().take(5) {
            println!("  {r}");
        }
        true
    } else {
        println!("\nno determinacy races: the traced program is determinate");
        false
    }
}

fn decode_all(file: &str, blob: &[u8], lenient: bool) -> (Vec<Event>, u64) {
    let mut it = trace_events(blob, lenient);
    let mut events = Vec::new();
    for item in it.by_ref() {
        match item {
            Ok(e) => events.push(e),
            Err(e) if lenient => {
                // Even lenient framing cannot resync past a truncation
                // (no sync markers), but the events already decoded are
                // individually valid — salvage the intact prefix.
                eprintln!(
                    "warning: {e}; analyzing the {} intact event(s) before the damage",
                    events.len()
                );
                break;
            }
            Err(e) => {
                eprintln!("invalid trace {file}: {e}");
                std::process::exit(1);
            }
        }
    }
    (events, it.skipped_chunks())
}

/// Prints any detector's verdict (and up to 5 race lines where the
/// detector records them). For the DTRG detector this defers to
/// [`print_verdict`] so the wording stays byte-identical across paths.
fn print_report(name: &str, report: &AnyReport) -> bool {
    if let AnyReport::Dtrg(r) = report {
        return print_verdict(&r.report);
    }
    let n = report.race_count();
    if n > 0 {
        println!("\n{n} race(s) flagged by {name}");
        for line in report.race_lines().iter().take(5) {
            println!("  {line}");
        }
        true
    } else {
        println!("\nno races flagged by {name}");
        false
    }
}

/// Runs a registry detector serially over an in-memory event list,
/// through the engine's batched dispatch path.
fn run_detector(name: &str, events: &[Event]) -> AnalysisOutcome<AnyReport> {
    detectors::run_on_recorded(name, events)
}

fn print_engine_counters(counters: &EngineCounters) {
    println!("\n-- engine --");
    println!("{counters}");
}

/// Runs the supervised fault-tolerant pipeline: restart-from-snapshot,
/// degrade-to-serial, suspend/resume. Prints the same verdict section as
/// every other path; supervision outcomes surface in the `-- engine --`
/// block only.
fn analyze_supervised(args: &AnalyzeArgs, blob: &[u8], faults: Option<&FaultPlan>) -> bool {
    if (args.checkpoint_every.is_some() || args.stop_after.is_some())
        && !framed::is_framed(blob)
    {
        eprintln!(
            "error: checkpointing needs chunk boundaries; {} is a flat v1 trace \
             (re-record with --stream)",
            args.file
        );
        std::process::exit(2);
    }

    let resume = args.resume.as_ref().map(|path| {
        let data = match std::fs::read(path) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("cannot read checkpoint {path}: {e}");
                std::process::exit(1);
            }
        };
        let cp = match Checkpoint::decode(&data) {
            Ok(cp) => cp,
            Err(e) => {
                eprintln!("invalid checkpoint {path}: {e}");
                std::process::exit(1);
            }
        };
        if let Err(e) = cp.matches_trace(blob) {
            eprintln!("checkpoint {path} cannot resume this trace: {e}");
            std::process::exit(1);
        }
        cp
    });

    // `--inject` without an explicit interval gets periodic snapshots by
    // default (framed traces only — flat traces have no chunk
    // boundaries): snapshots bound the supervisor's replay buffer and
    // keep injected worker deaths restartable on long traces.
    let checkpoint_every = args.checkpoint_every.or_else(|| {
        (args.inject.is_some() && framed::is_framed(blob)).then_some(INJECT_CHECKPOINT_EVERY)
    });

    let mut plan = SupervisorPlan {
        shard: ShardPlan::with_shards(args.shards.unwrap_or(ShardPlan::default().shards)),
        checkpoint_every_chunks: checkpoint_every,
        stop_after_chunks: args.stop_after,
        fingerprint: Some(TraceFingerprint::of(blob)),
        ..SupervisorPlan::default()
    };
    if let Some(f) = faults {
        plan = plan.with_faults(f);
    }

    let start = std::time::Instant::now();
    let out = detectors::run_supervised_on_events(
        &args.detector,
        || trace_events(blob, args.lenient),
        &plan,
        resume.as_ref(),
    );
    let out = match out {
        Ok(o) => o,
        Err(SuperviseError::Stream(e)) => {
            eprintln!("invalid trace {}: {e}", args.file);
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("cannot resume: {e}");
            std::process::exit(1);
        }
    };

    match out {
        SupervisedOutcome::Suspended {
            checkpoint,
            supervision,
        } => {
            let path = args
                .checkpoint
                .as_ref()
                .expect("parser requires --checkpoint with --stop-after");
            let encoded = checkpoint.encode();
            if let Err(e) = std::fs::write(path, &encoded) {
                eprintln!("cannot write checkpoint {path}: {e}");
                std::process::exit(1);
            }
            println!(
                "suspended after {} chunk(s), {} event(s): checkpoint written to {} ({} bytes)",
                checkpoint.chunks_completed,
                checkpoint.events_consumed,
                path,
                encoded.len()
            );
            println!(
                "resume with: tracetool analyze {} --detector {} --resume {}",
                args.file, args.detector, path
            );
            if supervision.any() {
                println!(
                    "supervision: {} restart(s), {} snapshot(s), {} watchdog timeout(s)",
                    supervision.shard_restarts,
                    supervision.snapshots_taken,
                    supervision.watchdog_timeouts
                );
            }
            false
        }
        SupervisedOutcome::Completed {
            report,
            stats,
            supervision,
        } => {
            let s = &stats;
            println!("{}: {} events", args.file, s.events);
            note_if_empty(s.events);
            if s.skipped_chunks > 0 {
                eprintln!("warning: skipped {} damaged chunk(s)", s.skipped_chunks);
            }
            println!("\n-- sharded pipeline --");
            println!("shards:      {}", s.shards);
            println!(
                "events:      {} ({} control broadcast, {} accesses routed)",
                s.events, s.control_events, s.accesses
            );
            println!(
                "accesses:    {} reads, {} writes; per shard: {:?}",
                s.reads, s.writes, s.per_shard_accesses
            );
            let (cache_hits, cache_misses) = report.cache_counters().unwrap_or((0, 0));
            let counters = EngineCounters {
                events: s.events,
                control_events: s.control_events,
                reads: s.reads,
                writes: s.writes,
                wall_ms: start.elapsed().as_secs_f64() * 1e3,
                shard_restarts: supervision.shard_restarts,
                degradations: supervision.degradations,
                resumed_from_checkpoint: supervision.resumed_from_checkpoint,
                cache_hits,
                cache_misses,
            };
            print_engine_counters(&counters);
            print_report(&args.detector, &report)
        }
    }
}

fn analyze(args: AnalyzeArgs) {
    let faults = args.inject.map(FaultPlan::from_seed);
    let blob = match &faults {
        Some(plan) => read_trace_injected(&args.file, plan),
        None => read_trace(&args.file),
    };

    let racy = if args.supervised() {
        analyze_supervised(&args, &blob, faults.as_ref())
    } else if let Some(shards) = args.shards {
        let plan = ShardPlan::with_shards(shards);
        let mut events = trace_events(&blob, args.lenient);
        let run = match detectors::run_sharded_on_events(&args.detector, &mut events, &plan) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("invalid trace {}: {e}", args.file);
                std::process::exit(1);
            }
        };
        let skipped = events.skipped_chunks();
        let s = &run.stats;
        println!("{}: {} events", args.file, s.events);
        note_if_empty(s.events);
        if skipped > 0 {
            eprintln!("warning: skipped {skipped} damaged chunk(s)");
        }
        println!("\n-- sharded pipeline --");
        println!("shards:      {}", s.shards);
        println!(
            "events:      {} ({} control broadcast, {} accesses routed)",
            s.events, s.control_events, s.accesses
        );
        println!(
            "accesses:    {} reads, {} writes; per shard: {:?}",
            s.reads, s.writes, s.per_shard_accesses
        );
        print_report(&args.detector, &run.report)
    } else {
        let (events, skipped) = decode_all(&args.file, &blob, args.lenient);
        println!("{}: {} events", args.file, events.len());
        note_if_empty(events.len() as u64);
        if skipped > 0 {
            eprintln!("warning: skipped {skipped} damaged chunk(s)");
        }
        let out = run_detector(&args.detector, &events);
        print_engine_counters(&out.counters);
        if let AnyReport::Dtrg(r) = &out.report {
            println!("\n-- detector --");
            println!("{}", r.stats);
            println!("footprint:   {}", r.footprint);
        } else {
            for note in out.report.notes() {
                println!("note: {note}");
            }
        }
        let racy = print_report(&args.detector, &out.report);

        if args.graph {
            let graph = run_analysis_recorded(&events, GraphBuilder::new())
                .report;
            let gstats = GraphStats::compute(&graph);
            println!("\n-- computation graph --");
            println!("{gstats}");
            println!("parallelism:    {:.2}", gstats.parallelism());
            let mhp = futrace_compgraph::mhp::summarize(&graph);
            println!(
                "MHP:            {:.1}% of step pairs parallel ({} of {}); {} of {} task pairs",
                100.0 * mhp.step_parallel_fraction(),
                mhp.parallel_step_pairs,
                mhp.total_step_pairs,
                mhp.parallel_task_pairs,
                mhp.total_task_pairs
            );
            if let Some(path) = args.dot {
                std::fs::write(&path, dot::to_dot(&graph, &args.file)).expect("write dot");
                println!("wrote {path}");
            }
        }
        racy
    };

    if racy {
        std::process::exit(3);
    }
}

fn compare(args: CompareArgs) {
    let blob = read_trace(&args.file);
    let (events, skipped) = decode_all(&args.file, &blob, args.lenient);
    println!(
        "{}: {} events, {} detector(s)",
        args.file,
        events.len(),
        args.detectors.len()
    );
    if skipped > 0 {
        eprintln!("warning: skipped {skipped} damaged chunk(s)");
    }

    let runs: Vec<(&str, AnalysisOutcome<AnyReport>)> = args
        .detectors
        .iter()
        .map(|name| (name.as_str(), run_detector(name, &events)))
        .collect();

    let verdict = |racy: bool| if racy { "racy" } else { "clean" };
    println!();
    println!(
        "{:<12} {:>7} {:>8} {:>10} {:>10} {:>9}",
        "detector", "verdict", "races", "events", "checks", "wall ms"
    );
    for (name, out) in &runs {
        println!(
            "{:<12} {:>7} {:>8} {:>10} {:>10} {:>9.2}",
            name,
            verdict(out.report.has_races()),
            out.report.race_count(),
            out.counters.events,
            out.counters.checks(),
            out.counters.wall_ms
        );
    }

    if runs.iter().any(|(_, o)| !o.report.notes().is_empty()) {
        println!();
        for (name, out) in &runs {
            for note in out.report.notes() {
                println!("note [{name}]: {note}");
            }
        }
    }

    // The DTRG detector is the reference implementation (the paper's
    // algorithm, exact for this model); fall back to the first listed.
    let reference = if args.detectors.iter().any(|d| d == "dtrg") {
        "dtrg"
    } else {
        runs[0].0
    };
    let ref_racy = runs
        .iter()
        .find(|(n, _)| *n == reference)
        .map(|(_, o)| o.report.has_races())
        .expect("reference is one of the runs");
    let disagree: Vec<&str> = runs
        .iter()
        .filter(|(_, o)| o.report.has_races() != ref_racy)
        .map(|(n, _)| *n)
        .collect();
    println!("\nreference: {reference} ({})", verdict(ref_racy));
    if disagree.is_empty() {
        println!(
            "agreement: all {} detector(s) say {}",
            runs.len(),
            verdict(ref_racy)
        );
    } else {
        let agree: Vec<&str> = runs
            .iter()
            .filter(|(_, o)| o.report.has_races() == ref_racy)
            .map(|(n, _)| *n)
            .collect();
        println!("agree:     {}", agree.join(", "));
        println!("disagree:  {} ({})", disagree.join(", "), verdict(!ref_racy));
    }
}

fn info(file: &str) {
    let blob = read_trace(file);
    if framed::is_framed(&blob) {
        println!("{file}: framed trace (format v2), {} bytes", blob.len());
        let mut good = 0u64;
        let mut damaged = 0u64;
        let mut events = 0u64;
        let mut payload = 0u64;
        for chunk in framed::chunks(&blob) {
            match chunk {
                Ok(c) => {
                    good += 1;
                    events += u64::from(c.event_count);
                    payload += c.payload.len() as u64;
                }
                Err(e) => {
                    damaged += 1;
                    eprintln!("  damaged: {e}");
                }
            }
        }
        println!("chunks:      {good} intact, {damaged} damaged");
        println!("events:      {events} (declared by intact chunks)");
        println!(
            "payload:     {payload} bytes ({:.2} B/event)",
            payload as f64 / events.max(1) as f64
        );
        if damaged > 0 {
            std::process::exit(1);
        }
        note_if_empty(events);
    } else {
        // v1 flat: the only structure is the event stream itself.
        let mut events = 0u64;
        for item in trace::decode_iter(&blob) {
            match item {
                Ok(_) => events += 1,
                Err(e) => {
                    println!("{file}: flat trace (format v1), {} bytes", blob.len());
                    eprintln!("damaged after {events} events: {e}");
                    std::process::exit(1);
                }
            }
        }
        println!("{file}: flat trace (format v1), {} bytes", blob.len());
        println!("events:      {events}");
        println!(
            "bytes/event: {:.2}",
            blob.len() as f64 / events.max(1) as f64
        );
        note_if_empty(events);
    }
}

fn verify(file: &str) {
    let blob = read_trace(file);
    // Strict full pass: every chunk CRC, every event decode, every
    // declared event count. Any damage → exit 1, but keep going so one
    // run reports *every* damaged chunk, each with enough context (chunk
    // index, byte offset, stored vs computed CRC) to find it on disk.
    if framed::is_framed(&blob) {
        let mut events = 0u64;
        let mut damaged = 0u64;
        for chunk in framed::chunks(&blob) {
            match chunk {
                Ok(c) => {
                    let mut decoded = 0u64;
                    for item in trace::decode_iter(c.payload) {
                        match item {
                            Ok(_) => decoded += 1,
                            Err(e) => {
                                damaged += 1;
                                eprintln!(
                                    "{file}: chunk {}: payload decode failed after \
                                     {decoded} event(s): {e}",
                                    c.index
                                );
                                decoded = u64::MAX; // poisoned; skip count check
                                break;
                            }
                        }
                    }
                    if decoded != u64::MAX {
                        if decoded != u64::from(c.event_count) {
                            damaged += 1;
                            eprintln!(
                                "{file}: chunk {}: declared {} event(s) but payload \
                                 holds {decoded}",
                                c.index, c.event_count
                            );
                        } else {
                            events += decoded;
                        }
                    }
                }
                Err(e) => {
                    damaged += 1;
                    eprintln!("{file}: {e}");
                }
            }
        }
        if damaged > 0 {
            eprintln!("{file}: FAILED: {damaged} damaged chunk(s)");
            std::process::exit(1);
        }
        println!("{file}: OK (v2, {events} events, {} bytes)", blob.len());
        note_if_empty(events);
    } else {
        let mut events = 0u64;
        for item in trace_events(&blob, false) {
            match item {
                Ok(_) => events += 1,
                Err(e) => {
                    eprintln!("{file}: FAILED after {events} events: {e}");
                    std::process::exit(1);
                }
            }
        }
        println!("{file}: OK (v1, {events} events, {} bytes)", blob.len());
        note_if_empty(events);
    }
}

/// Differential fuzzing over the detector registry. One batch per base
/// seed; with `--time-budget-secs`, fresh batches (each with a derived
/// seed) run until the clock runs out or a counterexample lands.
fn fuzz(args: FuzzArgs) {
    let params = match args.gen.as_str() {
        "nontree" => GenParams::nontree_heavy(),
        "future-heavy" => GenParams::future_heavy(),
        _ => GenParams::default(),
    };
    let started = std::time::Instant::now();
    let mut batch_state = args.seed;
    let mut batch = 0u64;
    let mut total = fuzzdiff::Tally::default();
    loop {
        // Batch 0 fuzzes the seed exactly as given, so
        // `tracetool fuzz --seed S` reproduces a one-batch run; later
        // batches derive fresh seeds from the splitmix stream.
        let seed = if batch == 0 {
            args.seed
        } else {
            futrace_util::rng::splitmix64(&mut batch_state)
        };
        let opts = fuzzdiff::FuzzOptions {
            programs: args.programs,
            seed,
            params,
            broken_detector: args.break_detector.clone(),
            ..fuzzdiff::FuzzOptions::default()
        };
        eprintln!(
            "fuzz batch {batch}: {} program(s), seed {seed}, gen {}",
            args.programs, args.gen
        );
        let report = fuzzdiff::run(&opts);
        total.absorb(&report.tally);

        if let Some(cx) = report.counterexample {
            let path = format!("{}/fuzz_counterexample_{:#018x}.ftrc", args.out_dir, cx.seed);
            if let Err(e) = std::fs::write(&path, &cx.trace) {
                eprintln!("cannot write counterexample trace {path}: {e}");
                std::process::exit(1);
            }
            eprintln!("\nUNEXPECTED DISAGREEMENT after {} shrink step(s):", cx.shrink_steps);
            eprintln!("  {}", cx.detail);
            eprintln!("  minimized program: {:?}", cx.program);
            eprintln!("  reproducer trace:  {path}");
            eprintln!("replay with:");
            eprintln!(
                "  FUTRACE_PROPCHECK_SEED={:#x} tracetool fuzz --programs 1 --seed {seed} --gen {}{}",
                cx.seed,
                args.gen,
                match &args.break_detector {
                    Some(d) => format!(" --break-detector {d}"),
                    None => String::new(),
                }
            );
            eprintln!("  tracetool compare {path}");
            println!(
                "fuzz: {} program(s), {} detector run(s), {} expected disagreement(s), \
                 1 unexpected disagreement",
                total.programs, total.detector_runs, total.expected_disagreements
            );
            std::process::exit(4);
        }

        batch += 1;
        let done = match args.time_budget_secs {
            Some(t) => started.elapsed().as_secs() >= t,
            None => true,
        };
        if done {
            break;
        }
    }
    println!(
        "fuzz: {} program(s), {} detector run(s), {} expected disagreement(s), \
         0 unexpected disagreements",
        total.programs, total.detector_runs, total.expected_disagreements
    );
}

/// DAG-scheduled batch analysis over a directory of traces; exits with
/// the corpus verdict ([`futrace_corpus::ExitVerdict`]).
fn corpus(args: CorpusArgs) {
    let out_dir = args.out.clone().unwrap_or_else(|| {
        std::path::Path::new(&args.dir)
            .join("corpus-out")
            .to_string_lossy()
            .into_owned()
    });
    let mut opts = CorpusOptions::new(&out_dir);
    opts.detectors = args.detectors;
    opts.max_parallel = args.max_parallel;
    opts.policy = if args.abort {
        FailurePolicy::Abort
    } else {
        FailurePolicy::Continue
    };
    opts.shards = args.shards;
    opts.supervised = args.supervised;
    opts.lenient = args.lenient;
    opts.fresh = args.fresh;
    opts.stop_after_jobs = args.stop_after_jobs;
    opts.job_timeout = args.job_timeout_ms.map(Duration::from_millis);
    opts.job_retries = args.job_retries;

    let outcome = match run_corpus(std::path::Path::new(&args.dir), &opts) {
        Ok(o) => o,
        Err(e @ CorpusError::Config(_)) => usage(&e.to_string()),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };

    println!(
        "corpus {}: {} trace(s), {} job(s) ran, {} skipped via manifest",
        args.dir, outcome.traces, outcome.jobs_ran, outcome.jobs_skipped
    );
    if outcome.jobs_retried > 0 {
        println!(
            "retries: {} attempt(s) absorbed by --job-retries",
            outcome.jobs_retried
        );
    }
    if outcome.suspended {
        println!(
            "suspended by --stop-after-jobs; rerun the same command (without \
             --fresh) to resume from {out_dir}"
        );
        std::process::exit(0);
    }
    if outcome.aborted {
        eprintln!("aborted on first failed job (--failure-policy abort)");
    }
    if let Some(rep) = &outcome.report {
        let s = &rep.summary;
        println!(
            "verdicts ({} reference): {} clean ({} empty), {} racy, {} damaged, \
             {} disagreeing",
            rep.reference,
            s.clean_traces,
            s.empty_traces,
            s.racy_traces,
            s.damaged_traces,
            s.disagreeing_traces
        );
        println!(
            "analyze jobs: {} ok, {} failed, {} missing",
            s.analyze_ok, s.analyze_failed, s.analyze_missing
        );
    }
    if let (Some(json), Some(md)) = (&outcome.report_json, &outcome.report_md) {
        println!("report: {} and {}", json.display(), md.display());
    }
    std::process::exit(outcome.exit.code());
}

/// Runs the analysis daemon: a TCP listener multiplexing streamed
/// sessions over a bounded worker pool. Blocks until a client sends
/// `Shutdown`, then drains (suspending in-flight sessions to FCKP
/// checkpoints) and prints a summary.
fn serve(args: ServeArgs) {
    let opts = ServeOptions {
        addr: args.listen.clone(),
        workers: args.workers,
        queue_depth: args.queue_depth,
        checkpoint_dir: std::path::PathBuf::from(
            args.checkpoint_dir.as_deref().unwrap_or("."),
        ),
        resume: args.resume,
        idle_timeout: args.idle_timeout_ms.map(std::time::Duration::from_millis),
        io_deadline: match args.io_deadline_ms {
            Some(ms) => Some(std::time::Duration::from_millis(ms)),
            None => ServeOptions::default().io_deadline,
        },
        max_sessions: args.max_sessions.unwrap_or(0),
        inject_net: args.inject_net,
    };
    let server = match Server::bind(opts) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot listen on {}: {e}", args.listen);
            std::process::exit(1);
        }
    };
    match server.local_addr() {
        // Printed first thing so scripts binding port 0 can discover
        // the real port (and know the daemon is accepting).
        Ok(addr) => println!("listening on {addr}"),
        Err(e) => {
            eprintln!("cannot resolve listen address: {e}");
            std::process::exit(1);
        }
    }
    match server.run() {
        Ok(sum) => {
            // Ignore a vanished stdout consumer (EPIPE): whoever spawned
            // the daemon may be long gone by drain time, and the summary
            // is telemetry, not a reason to die with a panic.
            use std::io::Write as _;
            let _ = writeln!(
                std::io::stdout(),
                "drained: {} session(s) finished, {} suspended ({} idle-evicted), \
                 {} error(s), {} shed busy",
                sum.finished, sum.suspended, sum.idle_suspended, sum.errors, sum.busy_rejected
            );
            if sum.errors > 0 {
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("serve failed: {e}");
            std::process::exit(1);
        }
    }
}

/// Streams a trace to a running daemon chunk by chunk and prints the
/// returned verdict — byte-identical to one-shot `analyze` — or asks
/// the daemon to drain and exit (`--shutdown`).
fn client(args: ClientArgs) {
    if args.shutdown {
        match futrace_service::shutdown(&args.addr) {
            Ok(()) => println!("daemon at {} is draining", args.addr),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    let file = args.file.as_deref().expect("parser requires a file");
    let blob = read_trace(file);
    let name = args.name.clone().unwrap_or_else(|| {
        std::path::Path::new(file)
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "session".to_string())
    });
    let opts = ClientOptions {
        addr: args.addr.clone(),
        shards: args.shards,
        checkpoint_every: args.checkpoint_every,
        lenient: args.lenient,
        trace_name: name,
        chunk_events: args.chunk_events,
        suspend_after: args.suspend_after,
        retries: args.retries,
        retry_budget_ms: args.retry_budget_ms,
        inject_net: args.inject_net,
    };

    match futrace_service::stream_trace(&opts, &blob) {
        Ok(ClientOutcome::Finished {
            races,
            verdict,
            resumed_chunks,
            chunks_sent,
            attempts,
        }) => {
            println!("{file}: {chunks_sent} chunk(s) streamed to {}", args.addr);
            if resumed_chunks > 0 {
                println!("resumed: daemon skipped {resumed_chunks} already-analyzed chunk(s)");
            }
            if attempts > 1 {
                println!("reconnected: verdict reached on attempt {attempts}");
            }
            println!("{verdict}");
            if races > 0 {
                std::process::exit(3);
            }
        }
        Ok(ClientOutcome::Suspended { chunks }) => {
            println!(
                "suspended after {chunks} chunk(s): daemon checkpoint keyed by \
                 session name {:?}",
                opts.trace_name
            );
            println!(
                "resume with: tracetool client {} {} --name {} (daemon needs --resume)",
                args.addr, file, opts.trace_name
            );
        }
        Err(
            e @ (futrace_service::ClientError::Busy { .. }
            | futrace_service::ClientError::RetriesExhausted { .. }),
        ) => {
            eprintln!("error: {e}");
            std::process::exit(5);
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match tracetool_cli::parse(&args) {
        Ok(Command::Record(r)) => record(r),
        Ok(Command::Exec(e)) => exec(e),
        Ok(Command::Analyze(a)) => analyze(a),
        Ok(Command::Compare(c)) => compare(c),
        Ok(Command::Info { file }) => info(&file),
        Ok(Command::Verify { file }) => verify(&file),
        Ok(Command::Corpus(c)) => corpus(c),
        Ok(Command::Fuzz(f)) => fuzz(f),
        Ok(Command::Serve(s)) => serve(s),
        Ok(Command::Client(c)) => client(c),
        Ok(Command::Help) => help(),
        Err(e) => usage(&e),
    }
}
