//! Record and analyze execution traces.
//!
//! ```text
//! # record a benchmark's event stream to a compact binary trace
//! # (--stream writes the framed v2 format incrementally, with bounded
//! # memory; default buffers an event log and writes flat v1):
//! tracetool record --bench jacobi --out /tmp/jacobi.trace \
//!     [--tiny|--scaled] [--planted] [--stream [--chunk-bytes N]]
//!
//! # offline race detection + statistics over a trace (either format;
//! # --detector picks the analysis, --shards N runs the parallel
//! # pipeline for loc-routable detectors, verdict identical to serial):
//! tracetool analyze /tmp/jacobi.trace [--detector NAME] [--shards N]
//!     [--lenient] [--graph] [--dot /tmp/graph.dot]
//!
//! # run several detectors over one trace and report where they agree:
//! tracetool compare /tmp/jacobi.trace [--detectors a,b,...] [--lenient]
//!
//! # structural summary / full integrity check of a trace file:
//! tracetool info /tmp/jacobi.trace
//! tracetool verify /tmp/jacobi.trace
//! ```
//!
//! Exit codes: 0 clean, 1 invalid/damaged trace, 2 usage error, 3 races
//! detected by `analyze` (`compare` always exits 0 when the trace reads
//! cleanly — its product is the agreement report, not a verdict).

use futrace_bench::detectors::{self, AnyReport, DETECTOR_NAMES};
use futrace_bench::tracetool_cli::{self, AnalyzeArgs, Command, CompareArgs, RecordArgs};
use futrace_benchsuite::{jacobi, lu, pipeline, smithwaterman};
use futrace_compgraph::{dot, GraphBuilder, GraphStats};
use futrace_detector::RaceReport;
use futrace_offline::framed::{self, DEFAULT_CHUNK_BYTES};
use futrace_offline::{trace_events, ShardPlan, StreamWriter};
use futrace_runtime::engine::{run_analysis_recorded, AnalysisOutcome, EngineCounters};
use futrace_runtime::{run_serial, trace, Event, EventLog, Monitor, SerialCtx};
use std::io::BufWriter;

fn usage(err: &str) -> ! {
    eprintln!("error: {err}");
    eprintln!("usage:");
    eprintln!("  tracetool record --bench <jacobi|smithwaterman|lu|pipeline> --out FILE");
    eprintln!("                   [--tiny|--scaled] [--planted] [--stream [--chunk-bytes N]]");
    eprintln!("  tracetool analyze FILE [--detector NAME] [--shards N] [--lenient]");
    eprintln!("                   [--graph] [--dot FILE]");
    eprintln!("  tracetool compare FILE [--detectors NAME,NAME,...] [--lenient]");
    eprintln!("  tracetool info FILE");
    eprintln!("  tracetool verify FILE");
    eprintln!("detectors: {}", DETECTOR_NAMES.join(", "));
    std::process::exit(2);
}

/// Drives the selected benchmark against any monitor — an [`EventLog`]
/// for buffered v1 recording, a [`StreamWriter`] for direct-to-disk v2.
fn run_bench<M: Monitor>(mon: &mut M, bench: &str, tiny: bool, planted: bool) {
    fn go<M: Monitor>(mon: &mut M, f: impl FnOnce(&mut SerialCtx<'_, M>)) {
        run_serial(mon, f);
    }
    match bench {
        "jacobi" => {
            let p = if tiny {
                jacobi::JacobiParams::tiny()
            } else {
                jacobi::JacobiParams::scaled()
            };
            go(mon, |ctx| {
                jacobi::jacobi_run(ctx, &p, planted);
            });
        }
        "smithwaterman" => {
            let p = if tiny {
                smithwaterman::SwParams::tiny()
            } else {
                smithwaterman::SwParams::scaled()
            };
            go(mon, |ctx| {
                smithwaterman::sw_run(ctx, &p, planted);
            });
        }
        "lu" => {
            let p = if tiny {
                lu::LuParams::tiny()
            } else {
                lu::LuParams::scaled()
            };
            go(mon, |ctx| {
                lu::lu_run(ctx, &p, planted);
            });
        }
        "pipeline" => {
            let p = if tiny {
                pipeline::PipelineParams::tiny()
            } else {
                pipeline::PipelineParams::scaled()
            };
            go(mon, |ctx| {
                pipeline::pipeline_run(ctx, &p, planted);
            });
        }
        other => unreachable!("parser admits only known benches, got {other}"),
    }
}

fn record(args: RecordArgs) {
    if args.stream {
        let file = std::fs::File::create(&args.out).expect("create trace file");
        let chunk = args.chunk_bytes.unwrap_or(DEFAULT_CHUNK_BYTES);
        let mut writer = StreamWriter::with_chunk_bytes(BufWriter::new(file), chunk)
            .expect("write trace header");
        run_bench(&mut writer, &args.bench, args.tiny, args.planted);
        let (_, stats) = writer.finish().expect("flush trace file");
        eprintln!(
            "recorded {} events in {} framed chunks ({} bytes, {:.2} B/event) to {}",
            stats.events,
            stats.chunks,
            stats.bytes_written,
            stats.bytes_written as f64 / stats.events.max(1) as f64,
            args.out
        );
    } else {
        let mut log = EventLog::new();
        run_bench(&mut log, &args.bench, args.tiny, args.planted);
        let blob = trace::encode(&log.events);
        std::fs::write(&args.out, &blob).expect("write trace file");
        eprintln!(
            "recorded {} events ({} bytes, {:.2} B/event) to {}",
            log.events.len(),
            blob.len(),
            blob.len() as f64 / log.events.len().max(1) as f64,
            args.out
        );
    }
}

fn read_trace(file: &str) -> Vec<u8> {
    match std::fs::read(file) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("cannot read {file}: {e}");
            std::process::exit(1);
        }
    }
}

/// Prints the race verdict. This section must stay byte-identical between
/// the serial and sharded paths — CI's smoke test diffs it.
fn print_verdict(report: &RaceReport) -> bool {
    if report.has_races() {
        println!(
            "\n{} determinacy race(s); first {}:",
            report.total_detected,
            report.races.len().min(5)
        );
        for r in report.races.iter().take(5) {
            println!("  {r}");
        }
        true
    } else {
        println!("\nno determinacy races: the traced program is determinate");
        false
    }
}

fn decode_all(file: &str, blob: &[u8], lenient: bool) -> (Vec<Event>, u64) {
    let mut it = trace_events(blob, lenient);
    let mut events = Vec::new();
    for item in it.by_ref() {
        match item {
            Ok(e) => events.push(e),
            Err(e) => {
                eprintln!("invalid trace {file}: {e}");
                std::process::exit(1);
            }
        }
    }
    (events, it.skipped_chunks())
}

/// Prints any detector's verdict (and up to 5 race lines where the
/// detector records them). For the DTRG detector this defers to
/// [`print_verdict`] so the wording stays byte-identical across paths.
fn print_report(name: &str, report: &AnyReport) -> bool {
    if let AnyReport::Dtrg(r) = report {
        return print_verdict(&r.report);
    }
    let n = report.race_count();
    if n > 0 {
        println!("\n{n} race(s) flagged by {name}");
        for line in report.race_lines().iter().take(5) {
            println!("  {line}");
        }
        true
    } else {
        println!("\nno races flagged by {name}");
        false
    }
}

/// Runs a registry detector serially over an in-memory event list.
fn run_detector(name: &str, events: &[Event]) -> AnalysisOutcome<AnyReport> {
    let iter = events.iter().cloned().map(Ok::<_, std::convert::Infallible>);
    match detectors::run_on_events(name, iter) {
        Ok(o) => o,
        Err(never) => match never {},
    }
}

fn print_engine_counters(counters: &EngineCounters) {
    println!("\n-- engine --");
    println!("{counters}");
}

fn analyze(args: AnalyzeArgs) {
    let blob = read_trace(&args.file);

    let racy = if let Some(shards) = args.shards {
        let plan = ShardPlan::with_shards(shards);
        let mut events = trace_events(&blob, args.lenient);
        let run = match detectors::run_sharded_on_events(&args.detector, &mut events, &plan) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("invalid trace {}: {e}", args.file);
                std::process::exit(1);
            }
        };
        let skipped = events.skipped_chunks();
        let s = &run.stats;
        println!("{}: {} events", args.file, s.events);
        if skipped > 0 {
            eprintln!("warning: skipped {skipped} damaged chunk(s)");
        }
        println!("\n-- sharded pipeline --");
        println!("shards:      {}", s.shards);
        println!(
            "events:      {} ({} control broadcast, {} accesses routed)",
            s.events, s.control_events, s.accesses
        );
        println!(
            "accesses:    {} reads, {} writes; per shard: {:?}",
            s.reads, s.writes, s.per_shard_accesses
        );
        print_report(&args.detector, &run.report)
    } else {
        let (events, skipped) = decode_all(&args.file, &blob, args.lenient);
        println!("{}: {} events", args.file, events.len());
        if skipped > 0 {
            eprintln!("warning: skipped {skipped} damaged chunk(s)");
        }
        let out = run_detector(&args.detector, &events);
        print_engine_counters(&out.counters);
        if let AnyReport::Dtrg(r) = &out.report {
            println!("\n-- detector --");
            println!("{}", r.stats);
            println!("footprint:   {}", r.footprint);
        } else {
            for note in out.report.notes() {
                println!("note: {note}");
            }
        }
        let racy = print_report(&args.detector, &out.report);

        if args.graph {
            let graph = run_analysis_recorded(&events, GraphBuilder::new())
                .report;
            let gstats = GraphStats::compute(&graph);
            println!("\n-- computation graph --");
            println!("{gstats}");
            println!("parallelism:    {:.2}", gstats.parallelism());
            let mhp = futrace_compgraph::mhp::summarize(&graph);
            println!(
                "MHP:            {:.1}% of step pairs parallel ({} of {}); {} of {} task pairs",
                100.0 * mhp.step_parallel_fraction(),
                mhp.parallel_step_pairs,
                mhp.total_step_pairs,
                mhp.parallel_task_pairs,
                mhp.total_task_pairs
            );
            if let Some(path) = args.dot {
                std::fs::write(&path, dot::to_dot(&graph, &args.file)).expect("write dot");
                println!("wrote {path}");
            }
        }
        racy
    };

    if racy {
        std::process::exit(3);
    }
}

fn compare(args: CompareArgs) {
    let blob = read_trace(&args.file);
    let (events, skipped) = decode_all(&args.file, &blob, args.lenient);
    println!(
        "{}: {} events, {} detector(s)",
        args.file,
        events.len(),
        args.detectors.len()
    );
    if skipped > 0 {
        eprintln!("warning: skipped {skipped} damaged chunk(s)");
    }

    let runs: Vec<(&str, AnalysisOutcome<AnyReport>)> = args
        .detectors
        .iter()
        .map(|name| (name.as_str(), run_detector(name, &events)))
        .collect();

    let verdict = |racy: bool| if racy { "racy" } else { "clean" };
    println!();
    println!(
        "{:<12} {:>7} {:>8} {:>10} {:>10} {:>9}",
        "detector", "verdict", "races", "events", "checks", "wall ms"
    );
    for (name, out) in &runs {
        println!(
            "{:<12} {:>7} {:>8} {:>10} {:>10} {:>9.2}",
            name,
            verdict(out.report.has_races()),
            out.report.race_count(),
            out.counters.events,
            out.counters.checks(),
            out.counters.wall_ms
        );
    }

    if runs.iter().any(|(_, o)| !o.report.notes().is_empty()) {
        println!();
        for (name, out) in &runs {
            for note in out.report.notes() {
                println!("note [{name}]: {note}");
            }
        }
    }

    // The DTRG detector is the reference implementation (the paper's
    // algorithm, exact for this model); fall back to the first listed.
    let reference = if args.detectors.iter().any(|d| d == "dtrg") {
        "dtrg"
    } else {
        runs[0].0
    };
    let ref_racy = runs
        .iter()
        .find(|(n, _)| *n == reference)
        .map(|(_, o)| o.report.has_races())
        .expect("reference is one of the runs");
    let disagree: Vec<&str> = runs
        .iter()
        .filter(|(_, o)| o.report.has_races() != ref_racy)
        .map(|(n, _)| *n)
        .collect();
    println!("\nreference: {reference} ({})", verdict(ref_racy));
    if disagree.is_empty() {
        println!(
            "agreement: all {} detector(s) say {}",
            runs.len(),
            verdict(ref_racy)
        );
    } else {
        let agree: Vec<&str> = runs
            .iter()
            .filter(|(_, o)| o.report.has_races() == ref_racy)
            .map(|(n, _)| *n)
            .collect();
        println!("agree:     {}", agree.join(", "));
        println!("disagree:  {} ({})", disagree.join(", "), verdict(!ref_racy));
    }
}

fn info(file: &str) {
    let blob = read_trace(file);
    if framed::is_framed(&blob) {
        println!("{file}: framed trace (format v2), {} bytes", blob.len());
        let mut good = 0u64;
        let mut damaged = 0u64;
        let mut events = 0u64;
        let mut payload = 0u64;
        for chunk in framed::chunks(&blob) {
            match chunk {
                Ok(c) => {
                    good += 1;
                    events += u64::from(c.event_count);
                    payload += c.payload.len() as u64;
                }
                Err(e) => {
                    damaged += 1;
                    eprintln!("  damaged: {e}");
                }
            }
        }
        println!("chunks:      {good} intact, {damaged} damaged");
        println!("events:      {events} (declared by intact chunks)");
        println!(
            "payload:     {payload} bytes ({:.2} B/event)",
            payload as f64 / events.max(1) as f64
        );
        if damaged > 0 {
            std::process::exit(1);
        }
    } else {
        // v1 flat: the only structure is the event stream itself.
        let mut events = 0u64;
        for item in trace::decode_iter(&blob) {
            match item {
                Ok(_) => events += 1,
                Err(e) => {
                    println!("{file}: flat trace (format v1), {} bytes", blob.len());
                    eprintln!("damaged after {events} events: {e}");
                    std::process::exit(1);
                }
            }
        }
        println!("{file}: flat trace (format v1), {} bytes", blob.len());
        println!("events:      {events}");
        println!(
            "bytes/event: {:.2}",
            blob.len() as f64 / events.max(1) as f64
        );
    }
}

fn verify(file: &str) {
    let blob = read_trace(file);
    // Strict full pass: every chunk CRC, every event decode, every
    // declared event count. Any damage → exit 1.
    let mut events = 0u64;
    for item in trace_events(&blob, false) {
        match item {
            Ok(_) => events += 1,
            Err(e) => {
                eprintln!("{file}: FAILED after {events} events: {e}");
                std::process::exit(1);
            }
        }
    }
    let format = if framed::is_framed(&blob) { "v2" } else { "v1" };
    println!("{file}: OK ({format}, {events} events, {} bytes)", blob.len());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match tracetool_cli::parse(&args) {
        Ok(Command::Record(r)) => record(r),
        Ok(Command::Analyze(a)) => analyze(a),
        Ok(Command::Compare(c)) => compare(c),
        Ok(Command::Info { file }) => info(&file),
        Ok(Command::Verify { file }) => verify(&file),
        Err(e) => usage(&e),
    }
}
