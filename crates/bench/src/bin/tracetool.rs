//! Record and analyze execution traces.
//!
//! ```text
//! # record a benchmark's event stream to a compact binary trace:
//! tracetool record --bench jacobi --out /tmp/jacobi.trace [--tiny|--scaled] [--planted]
//!
//! # offline race detection + statistics over a trace:
//! tracetool analyze /tmp/jacobi.trace [--graph] [--dot /tmp/graph.dot]
//! ```
//!
//! `analyze` replays the trace into the DTRG detector (identical verdict
//! to the online run); `--graph` additionally rebuilds the step-level
//! computation graph for work/span analytics (memory-heavy on large
//! traces), and `--dot` writes its Graphviz rendering.

use futrace_benchsuite::{jacobi, lu, pipeline, smithwaterman};
use futrace_compgraph::{dot, GraphBuilder, GraphStats};
use futrace_detector::RaceDetector;
use futrace_runtime::{replay, run_serial, trace, EventLog};

fn usage() -> ! {
    eprintln!("usage:");
    eprintln!("  tracetool record --bench <jacobi|smithwaterman|lu|pipeline> --out FILE [--tiny|--scaled] [--planted]");
    eprintln!("  tracetool analyze FILE [--graph] [--dot FILE]");
    std::process::exit(2);
}

fn record(args: &[String]) {
    let mut bench = None;
    let mut out = None;
    let mut tiny = true;
    let mut planted = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--bench" => {
                i += 1;
                bench = Some(args[i].clone());
            }
            "--out" => {
                i += 1;
                out = Some(args[i].clone());
            }
            "--tiny" => tiny = true,
            "--scaled" => tiny = false,
            "--planted" => planted = true,
            _ => usage(),
        }
        i += 1;
    }
    let (Some(bench), Some(out)) = (bench, out) else {
        usage()
    };
    let mut log = EventLog::new();
    match bench.as_str() {
        "jacobi" => {
            let p = if tiny {
                jacobi::JacobiParams::tiny()
            } else {
                jacobi::JacobiParams::scaled()
            };
            run_serial(&mut log, |ctx| {
                jacobi::jacobi_run(ctx, &p, planted);
            });
        }
        "smithwaterman" => {
            let p = if tiny {
                smithwaterman::SwParams::tiny()
            } else {
                smithwaterman::SwParams::scaled()
            };
            run_serial(&mut log, |ctx| {
                smithwaterman::sw_run(ctx, &p, planted);
            });
        }
        "lu" => {
            let p = if tiny {
                lu::LuParams::tiny()
            } else {
                lu::LuParams::scaled()
            };
            run_serial(&mut log, |ctx| {
                lu::lu_run(ctx, &p, planted);
            });
        }
        "pipeline" => {
            let p = if tiny {
                pipeline::PipelineParams::tiny()
            } else {
                pipeline::PipelineParams::scaled()
            };
            run_serial(&mut log, |ctx| {
                pipeline::pipeline_run(ctx, &p, planted);
            });
        }
        other => {
            eprintln!("unknown benchmark {other}");
            usage()
        }
    }
    let blob = trace::encode(&log.events);
    std::fs::write(&out, &blob).expect("write trace file");
    eprintln!(
        "recorded {} events ({} bytes, {:.2} B/event) to {out}",
        log.events.len(),
        blob.len(),
        blob.len() as f64 / log.events.len().max(1) as f64
    );
}

fn analyze(args: &[String]) {
    let mut file = None;
    let mut want_graph = false;
    let mut dot_out = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--graph" => want_graph = true,
            "--dot" => {
                i += 1;
                dot_out = Some(args[i].clone());
                want_graph = true;
            }
            f if file.is_none() => file = Some(f.to_string()),
            _ => usage(),
        }
        i += 1;
    }
    let Some(file) = file else { usage() };
    let blob = std::fs::read(&file).expect("read trace file");
    let events = match trace::decode(&blob) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("invalid trace: {e}");
            std::process::exit(1);
        }
    };
    println!("{}: {} events", file, events.len());

    let mut det = RaceDetector::new();
    replay(&events, &mut det);
    let stats = det.stats();
    println!("\n-- detector --");
    println!("{stats}");
    println!("footprint:   {}", det.memory_footprint());
    let report_races = det.races().to_vec();
    let report = det.into_report();
    if report.has_races() {
        println!(
            "\n{} determinacy race(s); first {}:",
            report.total_detected,
            report_races.len().min(5)
        );
        for r in report_races.iter().take(5) {
            println!("  {r}");
        }
        std::process::exit(3);
    }
    println!("\nno determinacy races: the traced program is determinate");

    if want_graph {
        let mut builder = GraphBuilder::new();
        replay(&events, &mut builder);
        let graph = builder.into_graph();
        let gstats = GraphStats::compute(&graph);
        println!("\n-- computation graph --");
        println!("{gstats}");
        println!("parallelism:    {:.2}", gstats.parallelism());
        let mhp = futrace_compgraph::mhp::summarize(&graph);
        println!(
            "MHP:            {:.1}% of step pairs parallel ({} of {}); {} of {} task pairs",
            100.0 * mhp.step_parallel_fraction(),
            mhp.parallel_step_pairs,
            mhp.total_step_pairs,
            mhp.parallel_task_pairs,
            mhp.total_task_pairs
        );
        if let Some(path) = dot_out {
            std::fs::write(&path, dot::to_dot(&graph, &file)).expect("write dot");
            println!("wrote {path}");
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("record") => record(&args[1..]),
        Some("analyze") => analyze(&args[1..]),
        _ => usage(),
    }
}
