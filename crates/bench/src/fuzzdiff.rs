//! Differential fuzzing of the detector zoo with counterexample
//! minimization.
//!
//! `tracetool fuzz` drives this module: generate seeded random
//! async/finish/future programs ([`futrace_benchsuite::randomprog`],
//! future-heavy presets), record each one, and replay the trace through
//! every detector in [`crate::detectors::DETECTOR_NAMES`] — plus the
//! sharded pipeline at 1/2/4 workers for the loc-routable detectors —
//! comparing every verdict against the serial DTRG reference.
//!
//! Not every disagreement is a bug. Each baseline carries a documented
//! unsoundness envelope (the same facts `AnyReport::notes` prints):
//!
//! - **dtrg, vc, closure** are exact — any divergence among them is a
//!   detector bug.
//! - **espbags, spd3** are sound for pure async-finish programs but may
//!   over-report once futures appear; over-reporting on a future-*free*
//!   program is a bug.
//! - **spbags, offsetspan** run in lenient mode (out-of-model edges
//!   dropped), so they may over-report on any program here.
//! - **Under-reporting** — missing a race the reference finds — is a bug
//!   for every detector, always.
//! - **Sharded vs serial** runs of the same detector must agree exactly.
//!
//! Disagreements inside the envelope are tallied as *expected*; anything
//! outside it fails the property, and the [`propcheck`] shrinker distills
//! the offending program before [`run`] returns it as a
//! [`Counterexample`] complete with a replayable `.ftrc` encoding of its
//! trace.

use crate::detectors;
use futrace_benchsuite::randomprog::{self, GenParams, Program};
use futrace_offline::{ShardPlan, StreamWriter};
use futrace_runtime::{replay, run_serial, EventLog};
use futrace_util::propcheck::{self, Config, Strategy};
use futrace_util::rng::Rng;
use std::cell::{Cell, RefCell};
use std::convert::Infallible;

/// Counts accumulated over a fuzz run (and, via [`Tally::absorb`], over
/// the batches of a time-boxed campaign).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Tally {
    /// Programs that passed the differential check.
    pub programs: u64,
    /// Individual detector executions (serial and sharded).
    pub detector_runs: u64,
    /// Verdict divergences inside a baseline's documented unsoundness
    /// envelope (e.g. SP-bags over-reporting under futures).
    pub expected_disagreements: u64,
}

impl Tally {
    /// Adds another tally's counts into this one.
    pub fn absorb(&mut self, other: &Tally) {
        self.programs += other.programs;
        self.detector_runs += other.detector_runs;
        self.expected_disagreements += other.expected_disagreements;
    }
}

/// One fuzz batch's configuration.
#[derive(Clone, Debug)]
pub struct FuzzOptions {
    /// Programs to generate and check.
    pub programs: u32,
    /// Base seed; each case derives its own seed from it.
    pub seed: u64,
    /// Generator preset (`GenParams::nontree_heavy()` biases toward the
    /// non-tree join structure the exact detectors exist for).
    pub params: GenParams,
    /// Shrink budget once a case fails.
    pub max_shrink_steps: u32,
    /// Fault injection for testing the harness itself: the named
    /// detector's verdict is inverted everywhere it is consulted, which
    /// must surface as an unexpected disagreement.
    pub broken_detector: Option<String>,
}

impl Default for FuzzOptions {
    fn default() -> Self {
        FuzzOptions {
            programs: 256,
            seed: 7,
            params: GenParams::nontree_heavy(),
            max_shrink_steps: 2048,
            broken_detector: None,
        }
    }
}

/// A minimized program on which some detector disagreed outside its
/// unsoundness envelope.
#[derive(Clone, Debug)]
pub struct Counterexample {
    /// Case seed — `FUTRACE_PROPCHECK_SEED=<seed>` replays it.
    pub seed: u64,
    /// Zero-based index of the failing case in its batch.
    pub case: u32,
    /// Shrink candidates evaluated while minimizing.
    pub shrink_steps: u32,
    /// The minimal failing program.
    pub program: Program,
    /// What disagreed and why it is a bug.
    pub detail: String,
    /// The program's recorded trace, framed-v2 encoded — ready to write
    /// to an `.ftrc` file and feed back through `tracetool compare`.
    pub trace: Vec<u8>,
}

/// Result of one fuzz batch.
#[derive(Clone, Debug)]
pub struct FuzzReport {
    /// Counts over the batch.
    pub tally: Tally,
    /// The first unexpected disagreement, minimized — `None` on a clean
    /// sweep.
    pub counterexample: Option<Counterexample>,
}

/// How far a detector's verdict may stray from the exact reference.
enum Expectation {
    /// Must match exactly (dtrg, vc, closure).
    Exact,
    /// May over-report, but only on programs that create futures
    /// (espbags, spd3).
    OverReportOnFutures,
    /// May over-report on any program (spbags, offsetspan, which run
    /// lenient here).
    OverReportAlways,
}

fn expectation(name: &str) -> Expectation {
    match name {
        "dtrg" | "vc" | "closure" => Expectation::Exact,
        "espbags" | "spd3" => Expectation::OverReportOnFutures,
        "spbags" | "offsetspan" => Expectation::OverReportAlways,
        other => panic!("unknown detector {other:?}"),
    }
}

/// The verdict as the harness sees it, with the deliberate fault applied.
fn observed(broken: Option<&str>, name: &str, racy: bool) -> bool {
    if broken == Some(name) {
        !racy
    } else {
        racy
    }
}

/// Records `prog` under the serial executor.
fn record(prog: &Program) -> EventLog {
    let mut log = EventLog::new();
    run_serial(&mut log, |ctx| {
        randomprog::execute(ctx, prog);
    });
    log
}

/// Encodes a recorded log as a framed-v2 trace blob.
fn encode_trace(log: &EventLog) -> Vec<u8> {
    let mut w = StreamWriter::with_chunk_bytes(Vec::new(), 4096)
        .expect("writing to a Vec cannot fail");
    replay(&log.events, &mut w);
    let (blob, _stats) = w.finish().expect("writing to a Vec cannot fail");
    blob
}

/// Runs one program through the full detector matrix. `Ok` means every
/// verdict was either identical to the reference or inside the detector's
/// unsoundness envelope; `Err` carries the description of the first
/// disagreement outside it.
fn check_program(prog: &Program, broken: Option<&str>, tally: &mut Tally) -> Result<(), String> {
    let log = record(prog);
    let has_futures = randomprog::stmt_census(&prog.body)[4] > 0;

    let reference = detectors::run_on_recorded("dtrg", &log.events);
    tally.detector_runs += 1;
    let ref_racy = observed(broken, "dtrg", reference.report.has_races());

    let mut serial = Vec::new();
    for &name in detectors::DETECTOR_NAMES {
        let racy = if name == "dtrg" {
            ref_racy
        } else {
            let out = detectors::run_on_recorded(name, &log.events);
            tally.detector_runs += 1;
            observed(broken, name, out.report.has_races())
        };
        serial.push((name, racy));
        if racy == ref_racy {
            continue;
        }
        if ref_racy && !racy {
            return Err(format!(
                "{name} under-reports: the dtrg reference finds a race but {name} reports \
                 race-free — under-reporting is a bug for every detector"
            ));
        }
        match expectation(name) {
            Expectation::Exact => {
                return Err(format!(
                    "{name} diverges from the dtrg reference: dtrg reports race-free, {name} \
                     reports a race — {name} is an exact detector, any divergence is a bug"
                ));
            }
            Expectation::OverReportOnFutures if !has_futures => {
                return Err(format!(
                    "{name} over-reports on a future-free program: dtrg reports race-free, \
                     {name} reports a race — {name} is sound for pure async-finish programs"
                ));
            }
            Expectation::OverReportOnFutures | Expectation::OverReportAlways => {
                tally.expected_disagreements += 1;
            }
        }
    }

    // Sharding must be verdict-preserving: compare each loc-routable
    // detector's sharded runs against its own serial verdict.
    for &(name, serial_racy) in serial.iter().filter(|(n, _)| detectors::is_shardable(n)) {
        for shards in [1usize, 2, 4] {
            let events = log.events.iter().cloned().map(Ok::<_, Infallible>);
            let run = match detectors::run_sharded_on_events(
                name,
                events,
                &ShardPlan::with_shards(shards),
            ) {
                Ok(r) => r,
                Err(never) => match never {},
            };
            tally.detector_runs += 1;
            let racy = observed(broken, name, run.report.has_races());
            if racy != serial_racy {
                return Err(format!(
                    "{name} sharded over {shards} worker(s) diverges from its serial verdict \
                     (serial: {}, sharded: {}) — sharding must never change the verdict",
                    if serial_racy { "racy" } else { "race-free" },
                    if racy { "racy" } else { "race-free" },
                ));
            }
        }
    }

    tally.programs += 1;
    Ok(())
}

struct ProgStrategy {
    params: GenParams,
}

impl Strategy for ProgStrategy {
    type Repr = Program;
    type Value = Program;

    fn generate(&self, rng: &mut Rng) -> Program {
        randomprog::generate_with(rng, &self.params)
    }

    fn realize(&self, repr: &Program) -> Program {
        repr.clone()
    }

    fn shrink(&self, repr: &Program) -> Vec<Program> {
        randomprog::shrink(repr)
    }
}

/// Runs one fuzz batch: `opts.programs` random programs through the full
/// detector matrix, shrinking the first unexpected disagreement.
pub fn run(opts: &FuzzOptions) -> FuzzReport {
    let strategy = ProgStrategy { params: opts.params };
    let config = Config {
        cases: opts.programs,
        max_shrink_steps: opts.max_shrink_steps,
        seed: opts.seed,
        suite: Some("tracetool fuzz"),
    };
    let broken = opts.broken_detector.as_deref();
    // The shrinker reruns the property on ever-smaller candidates; only
    // pre-failure cases should count, so stop absorbing once one fails.
    let tally = RefCell::new(Tally::default());
    let failed = Cell::new(false);

    let failure = propcheck::check_silent(&config, &strategy, |prog: Program| {
        let mut case = Tally::default();
        match check_program(&prog, broken, &mut case) {
            Ok(()) => {
                if !failed.get() {
                    tally.borrow_mut().absorb(&case);
                }
            }
            Err(detail) => {
                failed.set(true);
                panic!("{detail}");
            }
        }
    });

    let counterexample = failure.map(|f| {
        let trace = encode_trace(&record(&f.repr));
        Counterexample {
            seed: f.seed,
            case: f.case,
            shrink_steps: f.shrink_steps,
            program: f.repr,
            detail: f.message,
            trace,
        }
    });
    FuzzReport {
        tally: tally.into_inner(),
        counterexample,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use futrace_benchsuite::randomprog::stmt_census;
    use futrace_offline::trace_events;

    /// Serial runs of all seven detectors plus sharded dtrg/vc at each of
    /// three worker counts.
    const RUNS_PER_PROGRAM: u64 = 7 + 2 * 3;

    #[test]
    fn clean_sweep_has_no_counterexample_and_full_coverage() {
        let opts = FuzzOptions {
            programs: 64,
            seed: 7,
            ..FuzzOptions::default()
        };
        let report = run(&opts);
        assert!(
            report.counterexample.is_none(),
            "unexpected disagreement: {:?}",
            report.counterexample
        );
        assert_eq!(report.tally.programs, 64);
        assert_eq!(report.tally.detector_runs, 64 * RUNS_PER_PROGRAM);
        // The nontree-heavy preset reliably produces programs on which
        // the lenient bags baselines over-report; a sweep with zero
        // expected disagreements would mean the classifier is not
        // actually exercising the envelope.
        assert!(report.tally.expected_disagreements > 0);
    }

    #[test]
    fn broken_detector_yields_a_minimized_replayable_counterexample() {
        let opts = FuzzOptions {
            programs: 16,
            seed: 3,
            broken_detector: Some("vc".to_string()),
            ..FuzzOptions::default()
        };
        let report = run(&opts);
        let cx = report
            .counterexample
            .expect("an inverted vc verdict must surface as an unexpected disagreement");
        assert!(cx.detail.contains("vc"), "detail: {}", cx.detail);
        // The shrinker strips the program down to (nearly) nothing: with
        // vc inverted the property fails on every program, including the
        // empty one.
        let stmts: u64 = stmt_census(&cx.program.body).iter().sum();
        assert!(stmts <= 2, "not minimized: {:?}", cx.program);
        // The attached trace is a decodable framed blob of the minimal
        // program's recording.
        let decoded: Result<Vec<_>, _> = trace_events(&cx.trace, false).collect();
        let decoded = decoded.expect("counterexample trace must decode");
        assert_eq!(decoded, record(&cx.program).events);
        // And the minimal program still fails the check directly.
        let mut t = Tally::default();
        assert!(check_program(&cx.program, Some("vc"), &mut t).is_err());
    }

    #[test]
    fn broken_reference_is_caught_via_the_exact_detectors() {
        // Inverting the reference itself must also be flagged: vc and
        // closure still tell the truth, so the first program disagrees.
        let opts = FuzzOptions {
            programs: 4,
            seed: 5,
            broken_detector: Some("dtrg".to_string()),
            ..FuzzOptions::default()
        };
        let report = run(&opts);
        assert!(report.counterexample.is_some());
    }

    #[test]
    fn tally_absorb_sums_counts() {
        let mut a = Tally {
            programs: 1,
            detector_runs: 13,
            expected_disagreements: 2,
        };
        a.absorb(&Tally {
            programs: 2,
            detector_runs: 26,
            expected_disagreements: 0,
        });
        assert_eq!(
            a,
            Tally {
                programs: 3,
                detector_runs: 39,
                expected_disagreements: 2,
            }
        );
    }

    #[test]
    fn observed_inverts_only_the_broken_detector() {
        assert!(observed(Some("vc"), "vc", false));
        assert!(!observed(Some("vc"), "vc", true));
        assert!(observed(Some("vc"), "dtrg", true));
        assert!(!observed(None, "vc", false));
    }
}
