//! Shared harness for the Table-2 reproduction and the microbenchmarks.
//!
//! [`run_row`] measures one benchmark exactly the way the paper does
//! (§5): `Seq` is the mean wall-clock time of the serial elision (the
//! plain-Rust reference implementation), `Racedet` is the mean wall-clock
//! time of a 1-processor (serial depth-first) execution under the DTRG
//! detector, and `Slowdown = Racedet / Seq`. The structural columns
//! (#Tasks, #NTJoins, #SharedMem, #AvgReaders) come from the detector's
//! counters of one instrumented run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

// The named-detector registry moved to `futrace-corpus` (the corpus DAG
// runs every detector, and `futrace-bench` sits above it); this re-export
// keeps the long-standing `futrace_bench::detectors` path working.
pub use futrace_corpus::detectors;

pub mod fuzzdiff;
pub mod runner;
pub mod tracetool_cli;

use futrace_benchsuite::{crypt, jacobi, lu, pipeline, series, smithwaterman, sor, strassen};
use futrace_detector::RaceDetector;
use futrace_runtime::engine::{run_analysis_live, Engine};
use futrace_runtime::SerialCtx;
use futrace_util::stats::mean_time_ms;

/// Which parameter scale to run at.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Size {
    /// Unit-test scale (seconds for the whole table).
    Tiny,
    /// Laptop scale — the default; preserves each benchmark's
    /// work-per-task and topology character.
    Scaled,
    /// The paper's sizes (JGF Size C etc.). Hours of runtime and many GB
    /// of shadow memory; opt-in via `--paper`.
    Paper,
}

/// One row of the reproduced Table 2.
#[derive(Clone, Debug)]
pub struct Row {
    /// Benchmark name as in the paper.
    pub name: &'static str,
    /// Dynamic tasks created (#Tasks).
    pub tasks: u64,
    /// Non-tree joins (#NTJoins).
    pub nt_joins: u64,
    /// Shared-memory accesses (#SharedMem).
    pub shared_mem: u64,
    /// Mean stored readers per access (#AvgReaders).
    pub avg_readers: f64,
    /// Serial-elision mean time (ms).
    pub seq_ms: f64,
    /// Instrumented serial mean time (ms).
    pub racedet_ms: f64,
    /// Races detected (must be 0 — all Table-2 benchmarks are race-free).
    pub races: u64,
}

impl Row {
    /// The paper's Slowdown column.
    pub fn slowdown(&self) -> f64 {
        if self.seq_ms > 0.0 {
            self.racedet_ms / self.seq_ms
        } else {
            f64::NAN
        }
    }
}

/// Measures one row: `seq` runs the serial elision, `prog` runs the DSL
/// program (invoked under the detector through the engine driver).
pub fn run_row<F, G>(name: &'static str, reps: usize, mut seq: F, prog: G) -> Row
where
    F: FnMut(),
    G: Fn(&mut SerialCtx<Engine<RaceDetector>>) + Copy,
{
    let seq_ms = mean_time_ms(reps, &mut seq);
    // One instrumented run for the structural columns...
    let out = run_analysis_live(prog, RaceDetector::new());
    let stats = out.report.stats;
    let races = out.report.report.total_detected;
    // ...and timed instrumented runs for the Racedet column.
    let racedet_ms = mean_time_ms(reps, || {
        let out = run_analysis_live(prog, RaceDetector::new());
        std::hint::black_box(out.counters.checks());
    });
    Row {
        name,
        tasks: stats.tasks,
        nt_joins: stats.nt_joins(),
        shared_mem: stats.shared_mem(),
        avg_readers: stats.avg_readers(),
        seq_ms,
        racedet_ms,
        races,
    }
}

/// Parameter sets for a size.
pub fn series_params(size: Size) -> series::SeriesParams {
    match size {
        Size::Tiny => series::SeriesParams::tiny(),
        Size::Scaled => series::SeriesParams::scaled(),
        Size::Paper => series::SeriesParams::paper(),
    }
}

/// Crypt parameters for a size.
pub fn crypt_params(size: Size) -> crypt::CryptParams {
    match size {
        Size::Tiny => crypt::CryptParams::tiny(),
        Size::Scaled => crypt::CryptParams::scaled(),
        Size::Paper => crypt::CryptParams::paper(),
    }
}

/// Jacobi parameters for a size.
pub fn jacobi_params(size: Size) -> jacobi::JacobiParams {
    match size {
        Size::Tiny => jacobi::JacobiParams::tiny(),
        Size::Scaled => jacobi::JacobiParams::scaled(),
        Size::Paper => jacobi::JacobiParams::paper(),
    }
}

/// Smith-Waterman parameters for a size.
pub fn sw_params(size: Size) -> smithwaterman::SwParams {
    match size {
        Size::Tiny => smithwaterman::SwParams::tiny(),
        Size::Scaled => smithwaterman::SwParams::scaled(),
        Size::Paper => smithwaterman::SwParams::paper(),
    }
}

/// Strassen parameters for a size.
pub fn strassen_params(size: Size) -> strassen::StrassenParams {
    match size {
        Size::Tiny => strassen::StrassenParams::tiny(),
        Size::Scaled => strassen::StrassenParams::scaled(),
        Size::Paper => strassen::StrassenParams::paper(),
    }
}

/// Runs every Table-2 row at the given size. `filter` (substring) selects
/// a subset.
pub fn table2_rows(size: Size, reps: usize, filter: Option<&str>) -> Vec<Row> {
    let want = |name: &str| filter.map(|f| name.contains(f)).unwrap_or(true);
    let mut rows = Vec::new();

    if want("Series-af") {
        let p = series_params(size);
        rows.push(run_row(
            "Series-af",
            reps,
            || {
                std::hint::black_box(series::series_seq(&p));
            },
            move |ctx| {
                series::series_af(ctx, &p);
            },
        ));
    }
    if want("Series-future") {
        let p = series_params(size);
        rows.push(run_row(
            "Series-future",
            reps,
            || {
                std::hint::black_box(series::series_seq(&p));
            },
            move |ctx| {
                series::series_future(ctx, &p);
            },
        ));
    }
    if want("Crypt-af") {
        let p = crypt_params(size);
        rows.push(run_row(
            "Crypt-af",
            reps,
            || {
                std::hint::black_box(crypt::crypt_seq(&p));
            },
            move |ctx| {
                crypt::crypt_run(ctx, &p, crypt::CryptVariant::AsyncFinish);
            },
        ));
    }
    if want("Crypt-future") {
        let p = crypt_params(size);
        rows.push(run_row(
            "Crypt-future",
            reps,
            || {
                std::hint::black_box(crypt::crypt_seq(&p));
            },
            move |ctx| {
                crypt::crypt_run(ctx, &p, crypt::CryptVariant::Future);
            },
        ));
    }
    if want("Jacobi") {
        let p = jacobi_params(size);
        rows.push(run_row(
            "Jacobi",
            reps,
            || {
                std::hint::black_box(jacobi::jacobi_seq(&p));
            },
            move |ctx| {
                jacobi::jacobi_run(ctx, &p, false);
            },
        ));
    }
    if want("Smith-Waterman") {
        let p = sw_params(size);
        rows.push(run_row(
            "Smith-Waterman",
            reps,
            || {
                std::hint::black_box(smithwaterman::sw_seq(&p));
            },
            move |ctx| {
                smithwaterman::sw_run(ctx, &p, false);
            },
        ));
    }
    if want("Strassen") {
        let p = strassen_params(size);
        let (a, b) = strassen::inputs(&p);
        rows.push(run_row(
            "Strassen",
            reps,
            move || {
                std::hint::black_box(strassen::strassen_seq(&a, &b, p.n, p.cutoff));
            },
            move |ctx| {
                strassen::strassen_run(ctx, &p);
            },
        ));
    }
    rows
}

/// Extension rows beyond Table 2 (blocked LU, dataflow pipeline) — run
/// with `table2 --ext`.
pub fn extension_rows(size: Size, reps: usize, filter: Option<&str>) -> Vec<Row> {
    let want = |name: &str| filter.map(|f| name.contains(f)).unwrap_or(true);
    let mut rows = Vec::new();
    if want("BlockedLU") {
        let p = match size {
            Size::Tiny => lu::LuParams::tiny(),
            _ => lu::LuParams::scaled(),
        };
        rows.push(run_row(
            "BlockedLU",
            reps,
            || {
                std::hint::black_box(lu::lu_seq_blocked(&p));
            },
            move |ctx| {
                lu::lu_run(ctx, &p, false);
            },
        ));
    }
    if want("SOR") {
        let p = match size {
            Size::Tiny => sor::SorParams::tiny(),
            _ => sor::SorParams::scaled(),
        };
        rows.push(run_row(
            "SOR",
            reps,
            || {
                std::hint::black_box(sor::sor_seq(&p));
            },
            move |ctx| {
                sor::sor_run(ctx, &p, false);
            },
        ));
    }
    if want("Pipeline") {
        let p = match size {
            Size::Tiny => pipeline::PipelineParams::tiny(),
            _ => pipeline::PipelineParams::scaled(),
        };
        rows.push(run_row(
            "Pipeline",
            reps,
            || {
                std::hint::black_box(pipeline::pipeline_seq(&p));
            },
            move |ctx| {
                pipeline::pipeline_run(ctx, &p, false);
            },
        ));
    }
    rows
}

/// Serializes rows (plus derived slowdowns) as a JSON document.
///
/// Hand-rolled: the schema is a flat array of flat objects with numeric
/// and (escape-free, compile-time-known) string fields, so no JSON
/// dependency is warranted.
pub fn rows_to_json(rows: &[Row]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            concat!(
                "  {{\"name\": \"{}\", \"tasks\": {}, \"nt_joins\": {}, ",
                "\"shared_mem\": {}, \"avg_readers\": {:.6}, \"seq_ms\": {:.3}, ",
                "\"racedet_ms\": {:.3}, \"slowdown\": {:.3}, \"races\": {}}}{}\n"
            ),
            r.name,
            r.tasks,
            r.nt_joins,
            r.shared_mem,
            r.avg_readers,
            r.seq_ms,
            r.racedet_ms,
            r.slowdown(),
            r.races,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push(']');
    out
}

/// Formats rows as the paper's Table 2.
pub fn format_table(rows: &[Row]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<16} {:>12} {:>10} {:>14} {:>12} {:>12} {:>12} {:>9}\n",
        "Benchmark", "#Tasks", "#NTJoins", "#SharedMem", "#AvgReaders", "Seq(ms)", "Racedet(ms)", "Slowdown"
    ));
    out.push_str(&"-".repeat(103));
    out.push('\n');
    for r in rows {
        out.push_str(&format!(
            "{:<16} {:>12} {:>10} {:>14} {:>12.3} {:>12.1} {:>12.1} {:>8.2}x\n",
            r.name,
            r.tasks,
            r.nt_joins,
            r.shared_mem,
            r.avg_readers,
            r.seq_ms,
            r.racedet_ms,
            r.slowdown()
        ));
    }
    out
}

/// Panics if any row detected races — every Table-2 and extension
/// benchmark is race-free, so a nonzero count means a detector or
/// benchmark regression.
pub fn assert_race_free(rows: &[Row]) {
    for r in rows {
        assert_eq!(r.races, 0, "{} must be race-free", r.name);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_table_has_seven_race_free_rows() {
        let rows = table2_rows(Size::Tiny, 1, None);
        assert_eq!(rows.len(), 7);
        for r in &rows {
            assert_eq!(r.races, 0, "{} must be race-free", r.name);
            assert!(r.tasks > 0, "{} creates tasks", r.name);
            assert!(r.shared_mem > 0);
        }
        // The af rows have zero non-tree joins; the dependence-driven
        // benchmarks have plenty.
        let by_name = |n: &str| rows.iter().find(|r| r.name == n).unwrap();
        assert_eq!(by_name("Series-af").nt_joins, 0);
        assert_eq!(by_name("Series-future").nt_joins, 0);
        assert_eq!(by_name("Crypt-af").nt_joins, 0);
        assert_eq!(by_name("Crypt-future").nt_joins, 0);
        assert!(by_name("Jacobi").nt_joins > 0);
        assert!(by_name("Smith-Waterman").nt_joins > 0);
        assert!(by_name("Strassen").nt_joins > 0);
    }

    #[test]
    fn filter_selects_subset() {
        let rows = table2_rows(Size::Tiny, 1, Some("Jacobi"));
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].name, "Jacobi");
    }

    #[test]
    fn formatting_contains_all_columns() {
        let rows = table2_rows(Size::Tiny, 1, Some("Series-af"));
        let table = format_table(&rows);
        assert!(table.contains("#NTJoins"));
        assert!(table.contains("Series-af"));
        assert!(table.contains('x'));
    }
}

#[cfg(test)]
mod extension_tests {
    use super::*;

    #[test]
    fn extension_rows_are_race_free() {
        let rows = extension_rows(Size::Tiny, 1, None);
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert_eq!(r.races, 0, "{}", r.name);
        }
        // LU and Pipeline exercise non-tree joins; SOR is pure async-finish.
        assert!(rows.iter().filter(|r| r.nt_joins > 0).count() == 2);
        assert_eq!(
            rows.iter().find(|r| r.name == "SOR").unwrap().nt_joins,
            0
        );
    }

    #[test]
    fn json_output_is_wellformed_enough() {
        let rows = table2_rows(Size::Tiny, 1, Some("Series-af"));
        let json = rows_to_json(&rows);
        assert!(json.starts_with('['));
        assert!(json.ends_with(']'));
        assert!(json.contains("\"name\": \"Series-af\""));
        assert!(json.contains("\"slowdown\":"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
