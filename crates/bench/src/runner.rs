//! Deterministic in-tree microbenchmark runner (std-only).
//!
//! A minimal replacement for the external benchmark harness the `benches/`
//! targets used to depend on, keeping its call-site surface —
//! [`Runner::benchmark_group`], [`Group::sample_size`],
//! [`Group::bench_function`], [`Group::bench_with_input`],
//! [`BenchmarkId::new`], [`Group::finish`] — so bench files read the same
//! way, but with a fixed, configuration-driven measurement protocol:
//!
//! 1. `warmup` untimed iterations (default 3, `FUTRACE_BENCH_WARMUP`);
//! 2. `samples` timed iterations (default 10, `FUTRACE_BENCH_SAMPLES`,
//!    or per-group [`Group::sample_size`]);
//! 3. one JSON line per benchmark with `min`/`median`/`mean`/`MAD`
//!    nanoseconds, to stdout and (if `FUTRACE_BENCH_OUT` is set) appended
//!    to that file.
//!
//! Median and MAD (median absolute deviation) are the headline statistics:
//! both are robust to the occasional scheduling outlier, which matters for
//! the short deterministic runs used in CI. No statistical stopping rule,
//! no plotting, no timer calibration — runs are exactly reproducible in
//! iteration count, which is what a zero-dependency offline harness needs.

use std::io::Write as _;
use std::time::Instant;

/// Identifier `"function/parameter"` for parameterized benchmarks.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("racedet", 64)` → `"racedet/64"`.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{parameter}", function.into()),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

/// One measured benchmark, as serialized to a JSON line.
#[derive(Clone, Debug, PartialEq)]
pub struct Record {
    /// Group name (from [`Runner::benchmark_group`]).
    pub group: String,
    /// Benchmark id within the group.
    pub bench: String,
    /// Timed iterations contributing to the statistics.
    pub iters: u64,
    /// Untimed warmup iterations that preceded them.
    pub warmup: u64,
    /// Fastest sample (ns).
    pub min_ns: u64,
    /// Median sample (ns).
    pub median_ns: u64,
    /// Mean sample (ns).
    pub mean_ns: u64,
    /// Median absolute deviation from the median (ns).
    pub mad_ns: u64,
}

impl Record {
    /// The JSON-line form (flat object, no escaping needed: group/bench
    /// names are code-controlled identifiers).
    pub fn to_json_line(&self) -> String {
        format!(
            concat!(
                "{{\"group\":\"{}\",\"bench\":\"{}\",\"iters\":{},\"warmup\":{},",
                "\"min_ns\":{},\"median_ns\":{},\"mean_ns\":{},\"mad_ns\":{}}}"
            ),
            self.group,
            self.bench,
            self.iters,
            self.warmup,
            self.min_ns,
            self.median_ns,
            self.mean_ns,
            self.mad_ns
        )
    }

    /// Parses a line produced by [`Record::to_json_line`]. Hand-rolled flat
    /// parser (the schema is fixed); returns `None` on any mismatch.
    pub fn parse_json_line(line: &str) -> Option<Record> {
        let body = line.trim().strip_prefix('{')?.strip_suffix('}')?;
        let mut group = None;
        let mut bench = None;
        let mut nums = std::collections::HashMap::new();
        for field in body.split(',') {
            let (k, v) = field.split_once(':')?;
            let k = k.trim().strip_prefix('"')?.strip_suffix('"')?;
            let v = v.trim();
            if let Some(s) = v.strip_prefix('"').and_then(|s| s.strip_suffix('"')) {
                match k {
                    "group" => group = Some(s.to_string()),
                    "bench" => bench = Some(s.to_string()),
                    _ => return None,
                }
            } else {
                nums.insert(k.to_string(), v.parse::<u64>().ok()?);
            }
        }
        Some(Record {
            group: group?,
            bench: bench?,
            iters: *nums.get("iters")?,
            warmup: *nums.get("warmup")?,
            min_ns: *nums.get("min_ns")?,
            median_ns: *nums.get("median_ns")?,
            mean_ns: *nums.get("mean_ns")?,
            mad_ns: *nums.get("mad_ns")?,
        })
    }
}

/// Top-level handle a bench `main` threads through its bench functions (the
/// role the external harness's `Criterion` struct used to play).
pub struct Runner {
    default_samples: u64,
    warmup: u64,
    quiet: bool,
    records: Vec<Record>,
}

impl Default for Runner {
    fn default() -> Self {
        Runner::from_env()
    }
}

impl Runner {
    /// A runner configured from `FUTRACE_BENCH_SAMPLES` /
    /// `FUTRACE_BENCH_WARMUP` (defaults 10 / 3).
    pub fn from_env() -> Self {
        let env_u64 = |k: &str, d: u64| {
            std::env::var(k)
                .ok()
                .and_then(|v| v.parse().ok())
                .filter(|&v| v >= 1)
                .unwrap_or(d)
        };
        Runner {
            default_samples: env_u64("FUTRACE_BENCH_SAMPLES", 10),
            warmup: env_u64("FUTRACE_BENCH_WARMUP", 3),
            quiet: false,
            records: Vec::new(),
        }
    }

    /// A silent runner for tests: nothing printed, records only collected.
    pub fn quiet(samples: u64, warmup: u64) -> Self {
        Runner {
            default_samples: samples.max(1),
            warmup,
            quiet: true,
            records: Vec::new(),
        }
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> Group<'_> {
        Group {
            name: name.into(),
            samples: self.default_samples,
            runner: self,
        }
    }

    /// Every record measured so far, in execution order.
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    fn emit(&mut self, record: Record) {
        if !self.quiet {
            println!("{}", record.to_json_line());
            if let Ok(path) = std::env::var("FUTRACE_BENCH_OUT") {
                if let Ok(mut f) = std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(&path)
                {
                    let _ = writeln!(f, "{}", record.to_json_line());
                }
            }
        }
        self.records.push(record);
    }
}

/// A named group of related benchmarks sharing a sample count.
pub struct Group<'a> {
    runner: &'a mut Runner,
    name: String,
    samples: u64,
}

impl Group<'_> {
    /// Overrides the timed-iteration count for this group.
    pub fn sample_size(&mut self, n: u64) {
        self.samples = n.max(1);
    }

    /// Measures `f` under the id `id` (a `&str` or a [`BenchmarkId`]).
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            warmup: self.runner.warmup,
            samples: self.samples,
            durations_ns: Vec::new(),
        };
        f(&mut b);
        let record = b.into_record(&self.name, &id.id);
        self.runner.emit(record);
    }

    /// Measures `f` with an input threaded through (parameterized sweeps).
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input));
    }

    /// Measures two closures with their timed samples interleaved
    /// (`a b a b …`) instead of back-to-back blocks. On a shared or
    /// thermally-throttled machine, noise arrives in bursts that span a
    /// whole sequential sampling window and lands entirely on whichever
    /// closure happened to be running — interleaving spreads each burst
    /// across both, so the *ratio* of the two medians stays meaningful.
    /// Use this whenever the quantity being reported is a comparison of
    /// the two sides rather than either side's absolute time. Emits one
    /// [`Record`] per closure, same shape as [`Group::bench_function`].
    pub fn bench_pair<OA, OB, F, G>(
        &mut self,
        id_a: impl Into<BenchmarkId>,
        mut a: F,
        id_b: impl Into<BenchmarkId>,
        mut b: G,
    ) where
        F: FnMut() -> OA,
        G: FnMut() -> OB,
    {
        let (id_a, id_b) = (id_a.into(), id_b.into());
        let warmup = self.runner.warmup;
        for _ in 0..warmup {
            std::hint::black_box(a());
            std::hint::black_box(b());
        }
        let mut ans = Vec::with_capacity(self.samples as usize);
        let mut bns = Vec::with_capacity(self.samples as usize);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            std::hint::black_box(a());
            ans.push(u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX));
            let t0 = Instant::now();
            std::hint::black_box(b());
            bns.push(u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX));
        }
        for (id, durations_ns) in [(id_a, ans), (id_b, bns)] {
            let bencher = Bencher {
                warmup,
                samples: self.samples,
                durations_ns,
            };
            let record = bencher.into_record(&self.name, &id.id);
            self.runner.emit(record);
        }
    }

    /// Ends the group. (A no-op — records are emitted as they complete —
    /// but kept so bench files read identically to the old harness.)
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; [`Bencher::iter`] does the measuring.
pub struct Bencher {
    warmup: u64,
    samples: u64,
    durations_ns: Vec<u64>,
}

impl Bencher {
    /// Runs `f` for the configured warmup + timed iterations, timing each
    /// timed call individually. The return value is passed through
    /// [`std::hint::black_box`] so computing it cannot be optimized away.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..self.warmup {
            std::hint::black_box(f());
        }
        self.durations_ns.clear();
        for _ in 0..self.samples {
            let t0 = Instant::now();
            std::hint::black_box(f());
            let dt = t0.elapsed();
            self.durations_ns
                .push(u64::try_from(dt.as_nanos()).unwrap_or(u64::MAX));
        }
    }

    fn into_record(self, group: &str, bench: &str) -> Record {
        let mut sorted = self.durations_ns.clone();
        sorted.sort_unstable();
        assert!(
            !sorted.is_empty(),
            "benchmark {group}/{bench} never called Bencher::iter"
        );
        let min = sorted[0];
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<u64>() / sorted.len() as u64;
        let mut devs: Vec<u64> = sorted.iter().map(|&d| d.abs_diff(median)).collect();
        devs.sort_unstable();
        let mad = devs[devs.len() / 2];
        Record {
            group: group.to_string(),
            bench: bench.to_string(),
            iters: sorted.len() as u64,
            warmup: self.warmup,
            min_ns: min,
            median_ns: median,
            mean_ns: mean,
            mad_ns: mad,
        }
    }
}

/// Generates `fn main()` for a bench target: runs each listed bench
/// function against one [`Runner`] configured from the environment.
#[macro_export]
macro_rules! bench_main {
    ($($f:path),+ $(,)?) => {
        fn main() {
            let mut runner = $crate::runner::Runner::from_env();
            $($f(&mut runner);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrip() {
        let r = Record {
            group: "g".into(),
            bench: "b/32".into(),
            iters: 10,
            warmup: 3,
            min_ns: 100,
            median_ns: 150,
            mean_ns: 160,
            mad_ns: 5,
        };
        let line = r.to_json_line();
        assert_eq!(Record::parse_json_line(&line), Some(r));
        assert!(Record::parse_json_line("not json").is_none());
        assert!(Record::parse_json_line("{\"group\":\"g\"}").is_none());
    }

    #[test]
    fn bencher_measures_and_orders_stats() {
        let mut runner = Runner::quiet(7, 1);
        let mut g = runner.benchmark_group("unit");
        let mut calls = 0u64;
        g.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
                std::hint::black_box(calls)
            })
        });
        g.finish();
        assert_eq!(calls, 8); // 1 warmup + 7 timed
        let rec = &runner.records()[0];
        assert_eq!((rec.group.as_str(), rec.bench.as_str()), ("unit", "count"));
        assert_eq!(rec.iters, 7);
        assert!(rec.min_ns <= rec.median_ns);
        assert!(rec.median_ns <= *[rec.mean_ns, rec.median_ns].iter().max().unwrap());
    }

    #[test]
    fn benchmark_id_formats_parameter() {
        let id = BenchmarkId::new("sweep", 128);
        let mut runner = Runner::quiet(2, 0);
        let mut g = runner.benchmark_group("ids");
        g.bench_with_input(id, &128usize, |b, &n| b.iter(|| n * 2));
        g.finish();
        assert_eq!(runner.records()[0].bench, "sweep/128");
    }

    #[test]
    fn bench_pair_interleaves_and_emits_two_records() {
        let mut runner = Runner::quiet(5, 2);
        let mut g = runner.benchmark_group("paired");
        // Record the call order: interleaving means strict a b a b …
        // after the warmup prefix (which is also interleaved).
        let order = std::cell::RefCell::new(Vec::new());
        g.bench_pair(
            "a",
            || order.borrow_mut().push('a'),
            "b",
            || order.borrow_mut().push('b'),
        );
        g.finish();
        let order = order.into_inner();
        assert_eq!(order.len(), 14); // (2 warmup + 5 timed) × 2
        assert!(order.chunks(2).all(|c| c == ['a', 'b']));
        let recs = runner.records();
        assert_eq!(recs.len(), 2);
        assert_eq!((recs[0].bench.as_str(), recs[0].iters), ("a", 5));
        assert_eq!((recs[1].bench.as_str(), recs[1].iters), ("b", 5));
        assert_eq!(recs[0].group, "paired");
    }

    #[test]
    fn sample_size_overrides_default() {
        let mut runner = Runner::quiet(50, 0);
        let mut g = runner.benchmark_group("sized");
        g.sample_size(4);
        g.bench_function("f", |b| b.iter(|| 1 + 1));
        g.finish();
        assert_eq!(runner.records()[0].iters, 4);
    }
}
