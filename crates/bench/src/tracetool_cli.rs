//! Argument parsing for the `tracetool` binary, kept out of the binary so
//! it is unit-testable (the old inline parser silently accepted unknown
//! benchmark names and only failed after flag processing).
//!
//! Conventions: unknown flags and missing values are errors (exit 2 via
//! the binary); `--bench` is validated against the benchsuite
//! [`registry`](futrace_benchsuite::registry) *at parse time* — as is
//! `--planted`, which only plantable workloads accept; when both
//! `--tiny` and `--scaled` appear, the last one wins (explicitly tested,
//! since scripts commonly append overrides).

use crate::detectors::{is_detector, is_shardable, DETECTOR_NAMES};
use futrace_benchsuite::registry;

/// A parsed `tracetool` invocation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Command {
    /// `tracetool record …`
    Record(RecordArgs),
    /// `tracetool analyze …`
    Analyze(AnalyzeArgs),
    /// `tracetool compare …`
    Compare(CompareArgs),
    /// `tracetool info FILE`
    Info {
        /// Trace file to summarize.
        file: String,
    },
    /// `tracetool verify FILE`
    Verify {
        /// Trace file to fully validate.
        file: String,
    },
    /// `tracetool exec …`
    Exec(ExecArgs),
    /// `tracetool fuzz …`
    Fuzz(FuzzArgs),
    /// `tracetool corpus DIR …`
    Corpus(CorpusArgs),
    /// `tracetool serve --listen ADDR …`
    Serve(ServeArgs),
    /// `tracetool client ADDR FILE …` / `tracetool client ADDR --shutdown`
    Client(ClientArgs),
    /// `tracetool help` / `--help` / `-h`: print usage + exit-code table
    /// to stdout and exit 0 (unlike a usage *error*, which exits 2).
    Help,
}

/// Options for `tracetool record`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecordArgs {
    /// Benchmark name (guaranteed to be a registry key).
    pub bench: String,
    /// Output trace path.
    pub out: String,
    /// Tiny input size (`--scaled` clears it; last flag wins).
    pub tiny: bool,
    /// Plant a determinacy race.
    pub planted: bool,
    /// Write the framed v2 format incrementally instead of buffering the
    /// whole event log.
    pub stream: bool,
    /// Target chunk payload size for `--stream` (bytes).
    pub chunk_bytes: Option<usize>,
    /// Seed for deterministic write-fault injection (`--stream` only):
    /// derives a [`futrace_util::faultinject::FaultPlan`] and wraps the
    /// sink in a `FaultyWriter`.
    pub inject: Option<u64>,
}

/// Options for `tracetool exec` (instrumented parallel execution with
/// online detection — no trace file anywhere).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExecArgs {
    /// Benchmark name (guaranteed to be a registry key).
    pub bench: String,
    /// Executor worker threads (≥ 1).
    pub threads: usize,
    /// Detector to run online (currently only `dtrg` consumes the
    /// canonical stream sharded; validated at parse time).
    pub detector: String,
    /// Detector shard workers; fitted to the machine's spare
    /// cores when absent (`OnlineOptions::auto`).
    pub shards: Option<usize>,
    /// Tiny input size (`--scaled` clears it; last flag wins, as in
    /// `record`).
    pub tiny: bool,
    /// Plant a determinacy race (plantable workloads only).
    pub planted: bool,
    /// Seed for randomized steal order (schedule exploration).
    pub steal_seed: Option<u64>,
}

/// Options for `tracetool analyze`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AnalyzeArgs {
    /// Trace file to analyze.
    pub file: String,
    /// Detector to run (guaranteed to be one of
    /// [`crate::detectors::DETECTOR_NAMES`]; defaults to `dtrg`).
    pub detector: String,
    /// Run the sharded offline pipeline with this many detect workers
    /// instead of the serial replay (loc-routable detectors only).
    pub shards: Option<usize>,
    /// Skip damaged framed chunks instead of aborting.
    pub lenient: bool,
    /// Also rebuild the step-level computation graph.
    pub graph: bool,
    /// Write the computation graph as Graphviz to this path.
    pub dot: Option<String>,
    /// Seed for deterministic fault injection: read faults on the trace
    /// file plus worker panic/stall faults in the supervised pipeline.
    pub inject: Option<u64>,
    /// Barrier-snapshot every N chunk boundaries (supervised pipeline).
    /// When absent but `--inject` is given on a framed trace, the tool
    /// defaults an interval so the replay buffer stays bounded.
    pub checkpoint_every: Option<u64>,
    /// Write a resumable checkpoint to this path when the run suspends.
    pub checkpoint: Option<String>,
    /// Resume from a checkpoint file written by an earlier `--checkpoint`
    /// run.
    pub resume: Option<String>,
    /// Suspend after this many trace chunks (absolute count; requires
    /// `--checkpoint` to receive the snapshot).
    pub stop_after: Option<u64>,
}

impl AnalyzeArgs {
    /// True iff any fault-tolerance flag was given, which routes the run
    /// through the supervised pipeline instead of the plain sharded one.
    pub fn supervised(&self) -> bool {
        self.inject.is_some()
            || self.checkpoint_every.is_some()
            || self.checkpoint.is_some()
            || self.resume.is_some()
            || self.stop_after.is_some()
    }
}

/// Options for `tracetool fuzz` (the differential fuzzing mode; see
/// `crate::fuzzdiff`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FuzzArgs {
    /// Programs per fuzzing batch.
    pub programs: u32,
    /// Base seed (batch `k` of a time-budgeted run derives its own seed).
    pub seed: u64,
    /// Program-generator preset: `nontree` (default), `future-heavy`, or
    /// `default`.
    pub gen: String,
    /// Directory receiving minimized counterexample traces.
    pub out_dir: String,
    /// Keep fuzzing fresh batches until this many seconds have elapsed.
    pub time_budget_secs: Option<u64>,
    /// Test-only fault injection: invert the named detector's verdict so
    /// the disagreement/shrink/repro pipeline can be exercised end to end.
    pub break_detector: Option<String>,
}

/// Options for `tracetool corpus` (DAG-scheduled batch analysis over a
/// directory of traces; see `futrace_corpus`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CorpusArgs {
    /// Corpus root directory (every `*.ftrc` under it, recursively).
    pub dir: String,
    /// Output directory for the manifest and reports. Defaults to
    /// `<dir>/corpus-out` in the binary when absent.
    pub out: Option<String>,
    /// Detectors to run per trace, in order (each valid and unique;
    /// defaults to all of [`crate::detectors::DETECTOR_NAMES`]).
    pub detectors: Vec<String>,
    /// Worker-pool width (≥ 1; default 1).
    pub max_parallel: usize,
    /// `--failure-policy abort`: stop the whole run on the first failed
    /// job instead of poisoning only its dependents.
    pub abort: bool,
    /// Shard count for shardable detectors' analyze jobs.
    pub shards: Option<usize>,
    /// Run shardable detectors under the fault-tolerant supervisor
    /// (requires `--shards`).
    pub supervised: bool,
    /// Skip damaged framed chunks instead of failing the analyze job.
    pub lenient: bool,
    /// Discard any existing resume manifest and start over.
    pub fresh: bool,
    /// Suspend dispatch after N completed jobs (kill-midway hook for
    /// resume testing; the run exits 0 and resumes on the next call).
    pub stop_after_jobs: Option<u64>,
    /// Fail any single job that runs longer than this many milliseconds
    /// (its dependents are poisoned); absent = no deadline.
    pub job_timeout_ms: Option<u64>,
    /// Re-queue a failed or timed-out job up to this many times before it
    /// settles `Failed` and poisons its dependents (default 0).
    pub job_retries: u64,
}

/// Options for `tracetool serve` (the analysis daemon).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServeArgs {
    /// Listen address (`host:port`; port 0 picks one and prints it).
    pub listen: String,
    /// Worker threads — concurrently analyzed sessions (default 4).
    pub workers: usize,
    /// Accepted-but-unclaimed connections queued before `accept` blocks
    /// (default 16).
    pub queue_depth: usize,
    /// Directory for per-session FCKP checkpoint files (default `.`).
    pub checkpoint_dir: Option<String>,
    /// Reopen matching checkpoint files when sessions reconnect.
    pub resume: bool,
    /// Suspend a session to its checkpoint after this much client
    /// silence instead of letting it pin a worker forever.
    pub idle_timeout_ms: Option<u64>,
    /// Per-frame socket write deadline (default 30 000; a stalled reader
    /// cannot wedge a worker past it).
    pub io_deadline_ms: Option<u64>,
    /// Live-session quota: an `Open` past it is shed with `Busy`
    /// (absent = unlimited).
    pub max_sessions: Option<usize>,
    /// Seed for per-connection network fault injection (chaos testing).
    pub inject_net: Option<u64>,
}

/// Options for `tracetool client` (streams a trace to a daemon).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClientArgs {
    /// Daemon address (`host:port`).
    pub addr: String,
    /// Trace file to stream (absent only with `--shutdown`).
    pub file: Option<String>,
    /// Ask the daemon for the sharded backend with this many workers.
    pub shards: Option<usize>,
    /// Ask the daemon to checkpoint the session every N chunks.
    pub checkpoint_every: Option<u64>,
    /// Ask the daemon to skip damaged chunks instead of failing.
    pub lenient: bool,
    /// Session name keying the daemon-side checkpoint file (defaults to
    /// the trace file's basename).
    pub name: Option<String>,
    /// Re-chunk the trace to this many events per chunk before sending.
    pub chunk_events: Option<usize>,
    /// Send `Suspend` after this many chunks instead of finishing.
    pub suspend_after: Option<u64>,
    /// Ask the daemon to drain and exit instead of streaming a trace.
    pub shutdown: bool,
    /// Reconnect attempts after a torn connection or `Busy` shed
    /// (default 0: fail on the first fault).
    pub retries: u32,
    /// Wall-clock cap in milliseconds across all reconnect attempts.
    pub retry_budget_ms: Option<u64>,
    /// Seed for per-attempt network fault injection (chaos testing).
    pub inject_net: Option<u64>,
}

/// Options for `tracetool compare`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompareArgs {
    /// Trace file to analyze.
    pub file: String,
    /// Detectors to run, in order (each valid and unique; defaults to all
    /// of [`crate::detectors::DETECTOR_NAMES`]).
    pub detectors: Vec<String>,
    /// Skip damaged framed chunks instead of aborting.
    pub lenient: bool,
}

fn value<'a>(args: &'a [String], i: &mut usize, flag: &str) -> Result<&'a str, String> {
    *i += 1;
    args.get(*i)
        .map(String::as_str)
        .ok_or_else(|| format!("{flag} requires a value"))
}

/// Parses `--inject`'s seed: any u64, but nothing else (a mistyped seed
/// must not silently become a different fault plan).
fn parse_seed(args: &[String], i: &mut usize) -> Result<u64, String> {
    parse_seed_flag(args, i, "--inject")
}

fn parse_seed_flag(args: &[String], i: &mut usize, flag: &'static str) -> Result<u64, String> {
    let v = value(args, i, flag)?;
    v.parse::<u64>()
        .map_err(|_| format!("{flag}: invalid seed `{v}` (expected an unsigned 64-bit integer)"))
}

fn parse_positive_u64(args: &[String], i: &mut usize, flag: &'static str) -> Result<u64, String> {
    let v = value(args, i, flag)?;
    let n: u64 = v
        .parse()
        .map_err(|_| format!("{flag}: invalid count `{v}` (expected a positive integer)"))?;
    if n == 0 {
        return Err(format!("{flag} must be at least 1"));
    }
    Ok(n)
}

fn validate_bench(name: &str) -> Result<String, String> {
    if registry::find(name).is_none() {
        return Err(format!(
            "unknown benchmark `{name}` (expected one of: {})",
            registry::names().join(", ")
        ));
    }
    Ok(name.to_string())
}

fn validate_planted(bench: &str, planted: bool) -> Result<(), String> {
    if planted && !registry::find(bench).expect("validated above").plantable {
        return Err(format!(
            "benchmark `{bench}` has no planted-race variant; drop --planted"
        ));
    }
    Ok(())
}

fn parse_record(args: &[String]) -> Result<RecordArgs, String> {
    let mut bench = None;
    let mut out = None;
    let mut tiny = true;
    let mut planted = false;
    let mut stream = false;
    let mut chunk_bytes = None;
    let mut inject = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--bench" => bench = Some(validate_bench(value(args, &mut i, "--bench")?)?),
            "--out" => out = Some(value(args, &mut i, "--out")?.to_string()),
            "--tiny" => tiny = true,
            "--scaled" => tiny = false,
            "--planted" => planted = true,
            "--stream" => stream = true,
            "--chunk-bytes" => {
                let v = value(args, &mut i, "--chunk-bytes")?;
                chunk_bytes = Some(
                    v.parse::<usize>()
                        .map_err(|_| format!("--chunk-bytes: invalid byte count `{v}`"))?,
                );
            }
            "--inject" => inject = Some(parse_seed(args, &mut i)?),
            other => return Err(format!("record: unknown argument `{other}`")),
        }
        i += 1;
    }
    if chunk_bytes.is_some() && !stream {
        return Err("--chunk-bytes only applies to --stream recording".into());
    }
    if inject.is_some() && !stream {
        return Err("--inject only applies to --stream recording".into());
    }
    let bench = bench.ok_or("record: --bench is required")?;
    validate_planted(&bench, planted)?;
    let out = out.ok_or("record: --out is required")?;
    Ok(RecordArgs {
        bench,
        out,
        tiny,
        planted,
        stream,
        chunk_bytes,
        inject,
    })
}

fn parse_shards(args: &[String], i: &mut usize) -> Result<usize, String> {
    let v = value(args, i, "--shards")?;
    let n: usize = v
        .parse()
        .map_err(|_| format!("--shards: invalid count `{v}` (expected a positive integer)"))?;
    if n == 0 {
        return Err("--shards must be at least 1".into());
    }
    Ok(n)
}

fn validate_detector(name: &str) -> Result<String, String> {
    if is_detector(name) {
        Ok(name.to_string())
    } else {
        Err(format!(
            "unknown detector `{name}` (expected one of: {})",
            DETECTOR_NAMES.join(", ")
        ))
    }
}

fn parse_analyze(args: &[String]) -> Result<AnalyzeArgs, String> {
    let mut file = None;
    let mut detector = "dtrg".to_string();
    let mut shards = None;
    let mut lenient = false;
    let mut graph = false;
    let mut dot = None;
    let mut inject = None;
    let mut checkpoint_every = None;
    let mut checkpoint = None;
    let mut resume = None;
    let mut stop_after = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--detector" => detector = validate_detector(value(args, &mut i, "--detector")?)?,
            "--shards" => shards = Some(parse_shards(args, &mut i)?),
            "--lenient" => lenient = true,
            "--graph" => graph = true,
            "--dot" => {
                dot = Some(value(args, &mut i, "--dot")?.to_string());
                graph = true;
            }
            "--inject" => inject = Some(parse_seed(args, &mut i)?),
            "--checkpoint-every" => {
                checkpoint_every = Some(parse_positive_u64(args, &mut i, "--checkpoint-every")?)
            }
            "--checkpoint" => checkpoint = Some(value(args, &mut i, "--checkpoint")?.to_string()),
            "--resume" => resume = Some(value(args, &mut i, "--resume")?.to_string()),
            "--stop-after" => {
                stop_after = Some(parse_positive_u64(args, &mut i, "--stop-after")?)
            }
            f if !f.starts_with('-') && file.is_none() => file = Some(f.to_string()),
            other => return Err(format!("analyze: unknown argument `{other}`")),
        }
        i += 1;
    }
    if graph && shards.is_some() {
        return Err("--graph/--dot require the serial path; drop --shards".into());
    }
    if graph && detector != "dtrg" {
        return Err("--graph/--dot only apply to the dtrg detector".into());
    }
    if shards.is_some() && !is_shardable(&detector) {
        return Err(format!(
            "detector `{detector}` needs the global access order and cannot run sharded; \
             drop --shards (shardable: dtrg, vc)"
        ));
    }
    let supervised_flag = inject.is_some()
        || checkpoint_every.is_some()
        || checkpoint.is_some()
        || resume.is_some()
        || stop_after.is_some();
    if supervised_flag && !is_shardable(&detector) {
        return Err(format!(
            "detector `{detector}` cannot run under the supervised pipeline; \
             --inject/--checkpoint*/--resume/--stop-after need a shardable detector (dtrg, vc)"
        ));
    }
    if supervised_flag && graph {
        return Err("--graph/--dot require the serial path; drop the fault-tolerance flags".into());
    }
    if stop_after.is_some() && checkpoint.is_none() {
        return Err("--stop-after needs --checkpoint FILE to receive the snapshot".into());
    }
    Ok(AnalyzeArgs {
        file: file.ok_or("analyze: trace file is required")?,
        detector,
        shards,
        lenient,
        graph,
        dot,
        inject,
        checkpoint_every,
        checkpoint,
        resume,
        stop_after,
    })
}

fn parse_exec(args: &[String]) -> Result<ExecArgs, String> {
    let mut bench = None;
    let mut threads = None;
    let mut detector = "dtrg".to_string();
    let mut shards = None;
    let mut tiny = true;
    let mut planted = false;
    let mut steal_seed = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--bench" => bench = Some(validate_bench(value(args, &mut i, "--bench")?)?),
            "--threads" => {
                let n = parse_positive_u64(args, &mut i, "--threads")?;
                threads = Some(
                    usize::try_from(n)
                        .map_err(|_| format!("--threads: `{n}` exceeds the usize range"))?,
                );
            }
            "--detector" => detector = validate_detector(value(args, &mut i, "--detector")?)?,
            "--shards" => shards = Some(parse_shards(args, &mut i)?),
            "--tiny" => tiny = true,
            "--scaled" => tiny = false,
            "--planted" => planted = true,
            "--steal-seed" => {
                steal_seed = Some(parse_seed_flag(args, &mut i, "--steal-seed")?)
            }
            other => return Err(format!("exec: unknown argument `{other}`")),
        }
        i += 1;
    }
    if detector != "dtrg" {
        return Err(format!(
            "detector `{detector}` cannot run online; exec currently supports dtrg \
             (use `record` + `analyze` for replay-only detectors)"
        ));
    }
    let bench = bench.ok_or("exec: --bench is required")?;
    validate_planted(&bench, planted)?;
    Ok(ExecArgs {
        bench,
        threads: threads.ok_or("exec: --threads N is required")?,
        detector,
        shards,
        tiny,
        planted,
        steal_seed,
    })
}

fn parse_compare(args: &[String]) -> Result<CompareArgs, String> {
    let mut file = None;
    let mut detectors: Vec<String> = Vec::new();
    let mut lenient = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--detector" => {
                let name = validate_detector(value(args, &mut i, "--detector")?)?;
                detectors.push(name);
            }
            "--detectors" => {
                for name in value(args, &mut i, "--detectors")?.split(',') {
                    detectors.push(validate_detector(name.trim())?);
                }
            }
            "--lenient" => lenient = true,
            f if !f.starts_with('-') && file.is_none() => file = Some(f.to_string()),
            other => return Err(format!("compare: unknown argument `{other}`")),
        }
        i += 1;
    }
    if detectors.is_empty() {
        detectors = DETECTOR_NAMES.iter().map(|s| s.to_string()).collect();
    } else {
        let mut seen = Vec::new();
        for d in &detectors {
            if seen.contains(d) {
                return Err(format!("compare: detector `{d}` listed twice"));
            }
            seen.push(d.clone());
        }
    }
    Ok(CompareArgs {
        file: file.ok_or("compare: trace file is required")?,
        detectors,
        lenient,
    })
}

fn parse_fuzz(args: &[String]) -> Result<FuzzArgs, String> {
    let mut programs: u32 = 256;
    let mut seed: u64 = 7;
    let mut gen = "nontree".to_string();
    let mut out_dir = ".".to_string();
    let mut time_budget_secs = None;
    let mut break_detector = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--programs" => {
                let n = parse_positive_u64(args, &mut i, "--programs")?;
                programs = u32::try_from(n)
                    .map_err(|_| format!("--programs: `{n}` exceeds the u32 range"))?;
            }
            "--seed" => {
                let v = value(args, &mut i, "--seed")?;
                seed = v.parse::<u64>().map_err(|_| {
                    format!("--seed: invalid seed `{v}` (expected an unsigned 64-bit integer)")
                })?;
            }
            "--gen" => {
                let v = value(args, &mut i, "--gen")?;
                if !matches!(v, "nontree" | "future-heavy" | "default") {
                    return Err(format!(
                        "--gen: unknown preset `{v}` (expected nontree, future-heavy, or default)"
                    ));
                }
                gen = v.to_string();
            }
            "--out-dir" => out_dir = value(args, &mut i, "--out-dir")?.to_string(),
            "--time-budget-secs" => {
                time_budget_secs = Some(parse_positive_u64(args, &mut i, "--time-budget-secs")?)
            }
            "--break-detector" => {
                break_detector = Some(validate_detector(value(args, &mut i, "--break-detector")?)?)
            }
            other => return Err(format!("fuzz: unknown argument `{other}`")),
        }
        i += 1;
    }
    Ok(FuzzArgs {
        programs,
        seed,
        gen,
        out_dir,
        time_budget_secs,
        break_detector,
    })
}

fn parse_corpus(args: &[String]) -> Result<CorpusArgs, String> {
    let mut dir = None;
    let mut out = None;
    let mut detectors: Vec<String> = Vec::new();
    let mut max_parallel: usize = 1;
    let mut abort = false;
    let mut shards = None;
    let mut supervised = false;
    let mut lenient = false;
    let mut fresh = false;
    let mut stop_after_jobs = None;
    let mut job_timeout_ms = None;
    let mut job_retries = 0u64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => out = Some(value(args, &mut i, "--out")?.to_string()),
            "--detector" => {
                detectors.push(validate_detector(value(args, &mut i, "--detector")?)?)
            }
            "--detectors" => {
                for name in value(args, &mut i, "--detectors")?.split(',') {
                    detectors.push(validate_detector(name.trim())?);
                }
            }
            "--max-parallel" => {
                let n = parse_positive_u64(args, &mut i, "--max-parallel")?;
                max_parallel = usize::try_from(n)
                    .map_err(|_| format!("--max-parallel: `{n}` exceeds the usize range"))?;
            }
            "--failure-policy" => match value(args, &mut i, "--failure-policy")? {
                "continue" => abort = false,
                "abort" => abort = true,
                other => {
                    return Err(format!(
                        "--failure-policy: unknown policy `{other}` (expected continue or abort)"
                    ))
                }
            },
            "--shards" => shards = Some(parse_shards(args, &mut i)?),
            "--supervised" => supervised = true,
            "--lenient" => lenient = true,
            "--fresh" => fresh = true,
            "--stop-after-jobs" => {
                stop_after_jobs = Some(parse_positive_u64(args, &mut i, "--stop-after-jobs")?)
            }
            "--job-timeout-ms" => {
                job_timeout_ms = Some(parse_positive_u64(args, &mut i, "--job-timeout-ms")?)
            }
            "--job-retries" => {
                job_retries = parse_positive_u64(args, &mut i, "--job-retries")?
            }
            d if !d.starts_with('-') && dir.is_none() => dir = Some(d.to_string()),
            other => return Err(format!("corpus: unknown argument `{other}`")),
        }
        i += 1;
    }
    if supervised && shards.is_none() {
        return Err("--supervised needs --shards N (it is sharding plus recovery)".into());
    }
    if detectors.is_empty() {
        detectors = DETECTOR_NAMES.iter().map(|s| s.to_string()).collect();
    } else {
        let mut seen = Vec::new();
        for d in &detectors {
            if seen.contains(d) {
                return Err(format!("corpus: detector `{d}` listed twice"));
            }
            seen.push(d.clone());
        }
    }
    Ok(CorpusArgs {
        dir: dir.ok_or("corpus: a corpus directory is required")?,
        out,
        detectors,
        max_parallel,
        abort,
        shards,
        supervised,
        lenient,
        fresh,
        stop_after_jobs,
        job_timeout_ms,
        job_retries,
    })
}

fn parse_serve(args: &[String]) -> Result<ServeArgs, String> {
    let mut listen = None;
    let mut workers: usize = 4;
    let mut queue_depth: usize = 16;
    let mut checkpoint_dir = None;
    let mut resume = false;
    let mut idle_timeout_ms = None;
    let mut io_deadline_ms = None;
    let mut max_sessions = None;
    let mut inject_net = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--listen" => listen = Some(value(args, &mut i, "--listen")?.to_string()),
            "--workers" => {
                let n = parse_positive_u64(args, &mut i, "--workers")?;
                workers = usize::try_from(n)
                    .map_err(|_| format!("--workers: `{n}` exceeds the usize range"))?;
            }
            "--queue-depth" => {
                let n = parse_positive_u64(args, &mut i, "--queue-depth")?;
                queue_depth = usize::try_from(n)
                    .map_err(|_| format!("--queue-depth: `{n}` exceeds the usize range"))?;
            }
            "--checkpoint-dir" => {
                checkpoint_dir = Some(value(args, &mut i, "--checkpoint-dir")?.to_string())
            }
            "--resume" => resume = true,
            "--idle-timeout-ms" => {
                idle_timeout_ms = Some(parse_positive_u64(args, &mut i, "--idle-timeout-ms")?)
            }
            "--io-deadline-ms" => {
                io_deadline_ms = Some(parse_positive_u64(args, &mut i, "--io-deadline-ms")?)
            }
            "--max-sessions" => {
                let n = parse_positive_u64(args, &mut i, "--max-sessions")?;
                max_sessions = Some(
                    usize::try_from(n)
                        .map_err(|_| format!("--max-sessions: `{n}` exceeds the usize range"))?,
                );
            }
            "--inject-net" => {
                inject_net = Some(parse_seed_flag(args, &mut i, "--inject-net")?)
            }
            other => return Err(format!("serve: unknown argument `{other}`")),
        }
        i += 1;
    }
    Ok(ServeArgs {
        listen: listen.ok_or("serve: --listen ADDR is required")?,
        workers,
        queue_depth,
        checkpoint_dir,
        resume,
        idle_timeout_ms,
        io_deadline_ms,
        max_sessions,
        inject_net,
    })
}

fn parse_client(args: &[String]) -> Result<ClientArgs, String> {
    let mut addr = None;
    let mut file = None;
    let mut shards = None;
    let mut checkpoint_every = None;
    let mut lenient = false;
    let mut name = None;
    let mut chunk_events = None;
    let mut suspend_after = None;
    let mut shutdown = false;
    let mut retries = 0u32;
    let mut retry_budget_ms = None;
    let mut inject_net = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--shards" => shards = Some(parse_shards(args, &mut i)?),
            "--checkpoint-every" => {
                checkpoint_every = Some(parse_positive_u64(args, &mut i, "--checkpoint-every")?)
            }
            "--lenient" => lenient = true,
            "--name" => name = Some(value(args, &mut i, "--name")?.to_string()),
            "--chunk-events" => {
                let n = parse_positive_u64(args, &mut i, "--chunk-events")?;
                chunk_events = Some(
                    usize::try_from(n)
                        .map_err(|_| format!("--chunk-events: `{n}` exceeds the usize range"))?,
                );
            }
            "--suspend-after" => {
                // 0 is meaningful: suspend before sending any chunk.
                let v = value(args, &mut i, "--suspend-after")?;
                suspend_after = Some(v.parse::<u64>().map_err(|_| {
                    format!("--suspend-after: invalid count `{v}` (expected an integer)")
                })?);
            }
            "--shutdown" => shutdown = true,
            "--retries" => {
                // 0 is meaningful: explicitly keep single-shot behavior.
                let v = value(args, &mut i, "--retries")?;
                retries = v.parse::<u32>().map_err(|_| {
                    format!("--retries: invalid count `{v}` (expected an integer)")
                })?;
            }
            "--retry-budget-ms" => {
                retry_budget_ms = Some(parse_positive_u64(args, &mut i, "--retry-budget-ms")?)
            }
            "--inject-net" => {
                inject_net = Some(parse_seed_flag(args, &mut i, "--inject-net")?)
            }
            a if !a.starts_with('-') && addr.is_none() => addr = Some(a.to_string()),
            f if !f.starts_with('-') && file.is_none() => file = Some(f.to_string()),
            other => return Err(format!("client: unknown argument `{other}`")),
        }
        i += 1;
    }
    let addr = addr.ok_or("client: a daemon address is required")?;
    if shutdown && file.is_some() {
        return Err("client: --shutdown takes no trace file".into());
    }
    if !shutdown && file.is_none() {
        return Err("client: a trace file is required (or --shutdown)".into());
    }
    Ok(ClientArgs {
        addr,
        file,
        shards,
        checkpoint_every,
        lenient,
        name,
        chunk_events,
        suspend_after,
        shutdown,
        retries,
        retry_budget_ms,
        inject_net,
    })
}

fn parse_single_file(sub: &str, args: &[String]) -> Result<String, String> {
    match args {
        [f] if !f.starts_with('-') => Ok(f.clone()),
        [] => Err(format!("{sub}: trace file is required")),
        _ => Err(format!("{sub}: expected exactly one trace file")),
    }
}

/// Parses a full `tracetool` argument vector (without the program name).
pub fn parse(args: &[String]) -> Result<Command, String> {
    match args.split_first() {
        Some((sub, rest)) => match sub.as_str() {
            "record" => parse_record(rest).map(Command::Record),
            "analyze" => parse_analyze(rest).map(Command::Analyze),
            "exec" => parse_exec(rest).map(Command::Exec),
            "compare" => parse_compare(rest).map(Command::Compare),
            "info" => parse_single_file("info", rest).map(|file| Command::Info { file }),
            "verify" => parse_single_file("verify", rest).map(|file| Command::Verify { file }),
            "fuzz" => parse_fuzz(rest).map(Command::Fuzz),
            "corpus" => parse_corpus(rest).map(Command::Corpus),
            "serve" => parse_serve(rest).map(Command::Serve),
            "client" => parse_client(rest).map(Command::Client),
            "help" | "--help" | "-h" => Ok(Command::Help),
            other => Err(format!("unknown subcommand `{other}`")),
        },
        None => Err("a subcommand is required".into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn bench_name_is_validated_up_front() {
        // Regression: the old parser deferred validation until after flag
        // processing, so a typo'd bench name died with a generic usage
        // message after side effects. Now it is a parse error naming the
        // valid set — even when later flags are themselves broken.
        let err = parse(&argv(
            "record --bench jacobii --out t.trace --chunk-bytes nope",
        ))
        .unwrap_err();
        assert!(err.contains("unknown benchmark `jacobii`"), "{err}");
        assert!(err.contains("jacobi, smithwaterman, lu, pipeline"), "{err}");
        assert!(
            err.contains("prodcons") && err.contains("actor"),
            "the error names the future-structured families too: {err}"
        );
    }

    #[test]
    fn planted_requires_a_plantable_workload() {
        // series_future and crypt have no plant_race switch; requesting
        // one is a parse error, not a runtime panic.
        let err =
            parse(&argv("record --bench series_future --out t --planted")).unwrap_err();
        assert!(err.contains("no planted-race variant"), "{err}");
        let Command::Record(r) =
            parse(&argv("record --bench prodcons --out t --planted")).unwrap()
        else {
            panic!()
        };
        assert!(r.planted);
        // Unplanted recording of non-plantable workloads stays fine.
        assert!(parse(&argv("record --bench crypt --out t")).is_ok());
    }

    #[test]
    fn fuzz_defaults_and_flags() {
        let Command::Fuzz(f) = parse(&argv("fuzz")).unwrap() else {
            panic!()
        };
        assert_eq!((f.programs, f.seed, f.gen.as_str()), (256, 7, "nontree"));
        assert_eq!(f.out_dir, ".");
        assert!(f.time_budget_secs.is_none() && f.break_detector.is_none());

        let Command::Fuzz(f) = parse(&argv(
            "fuzz --programs 64 --seed 9 --gen future-heavy --out-dir /tmp/cx \
             --time-budget-secs 30 --break-detector vc",
        ))
        .unwrap() else {
            panic!()
        };
        assert_eq!((f.programs, f.seed), (64, 9));
        assert_eq!(f.gen, "future-heavy");
        assert_eq!(f.out_dir, "/tmp/cx");
        assert_eq!(f.time_budget_secs, Some(30));
        assert_eq!(f.break_detector.as_deref(), Some("vc"));
    }

    #[test]
    fn fuzz_flag_validation() {
        let err = parse(&argv("fuzz --programs 0")).unwrap_err();
        assert!(err.contains("at least 1"), "{err}");
        let err = parse(&argv("fuzz --gen chaotic")).unwrap_err();
        assert!(err.contains("unknown preset `chaotic`"), "{err}");
        let err = parse(&argv("fuzz --break-detector dtrgg")).unwrap_err();
        assert!(err.contains("unknown detector `dtrgg`"), "{err}");
        let err = parse(&argv("fuzz --seed nope")).unwrap_err();
        assert!(err.contains("invalid seed `nope`"), "{err}");
        let err = parse(&argv("fuzz --bench jacobi")).unwrap_err();
        assert!(err.contains("unknown argument"), "{err}");
    }

    #[test]
    fn last_size_flag_wins() {
        let Command::Record(r) =
            parse(&argv("record --bench lu --out t --tiny --scaled")).unwrap()
        else {
            panic!()
        };
        assert!(!r.tiny, "--scaled came last");
        let Command::Record(r) =
            parse(&argv("record --bench lu --out t --scaled --tiny")).unwrap()
        else {
            panic!()
        };
        assert!(r.tiny, "--tiny came last");
    }

    #[test]
    fn record_defaults_and_stream_flags() {
        let Command::Record(r) = parse(&argv("record --bench jacobi --out x.trace")).unwrap()
        else {
            panic!()
        };
        assert!(r.tiny && !r.planted && !r.stream && r.chunk_bytes.is_none());

        let Command::Record(r) = parse(&argv(
            "record --bench jacobi --out x.trace --stream --chunk-bytes 4096 --planted",
        ))
        .unwrap() else {
            panic!()
        };
        assert!(r.stream && r.planted);
        assert_eq!(r.chunk_bytes, Some(4096));

        let err = parse(&argv("record --bench jacobi --out x --chunk-bytes 64")).unwrap_err();
        assert!(err.contains("--stream"), "{err}");
    }

    #[test]
    fn record_missing_required_flags() {
        assert!(parse(&argv("record --out t")).unwrap_err().contains("--bench"));
        assert!(parse(&argv("record --bench lu"))
            .unwrap_err()
            .contains("--out"));
        assert!(parse(&argv("record --bench")).unwrap_err().contains("value"));
    }

    #[test]
    fn analyze_flags() {
        let Command::Analyze(a) =
            parse(&argv("analyze t.trace --shards 4 --lenient")).unwrap()
        else {
            panic!()
        };
        assert_eq!(a.file, "t.trace");
        assert_eq!(a.detector, "dtrg");
        assert_eq!(a.shards, Some(4));
        assert!(a.lenient && !a.graph);

        assert!(parse(&argv("analyze t --shards 2 --graph"))
            .unwrap_err()
            .contains("serial"));
        let Command::Analyze(a) = parse(&argv("analyze t --dot g.dot")).unwrap() else {
            panic!()
        };
        assert!(a.graph, "--dot implies --graph");
    }

    #[test]
    fn analyze_shard_count_is_validated_up_front() {
        // Neither zero nor garbage may reach the pipeline: both are
        // structured usage errors at parse time.
        let err = parse(&argv("analyze t --shards 0")).unwrap_err();
        assert!(err.contains("at least 1"), "{err}");
        let err = parse(&argv("analyze t --shards four")).unwrap_err();
        assert!(err.contains("invalid count `four`"), "{err}");
        assert!(err.contains("positive integer"), "{err}");
        let err = parse(&argv("analyze t --shards -2")).unwrap_err();
        assert!(err.contains("invalid count `-2`"), "{err}");
        assert!(parse(&argv("analyze t --shards"))
            .unwrap_err()
            .contains("value"));
    }

    #[test]
    fn analyze_detector_selection() {
        let Command::Analyze(a) = parse(&argv("analyze t --detector espbags")).unwrap() else {
            panic!()
        };
        assert_eq!(a.detector, "espbags");

        let err = parse(&argv("analyze t --detector dtrgg")).unwrap_err();
        assert!(err.contains("unknown detector `dtrgg`"), "{err}");
        assert!(err.contains("dtrg, espbags"), "error lists valid names: {err}");

        // Sharding is a capability, not a universal feature.
        let Command::Analyze(a) = parse(&argv("analyze t --detector vc --shards 2")).unwrap()
        else {
            panic!()
        };
        assert_eq!((a.detector.as_str(), a.shards), ("vc", Some(2)));
        let err = parse(&argv("analyze t --detector closure --shards 2")).unwrap_err();
        assert!(err.contains("cannot run sharded"), "{err}");
        let err = parse(&argv("analyze t --detector vc --graph")).unwrap_err();
        assert!(err.contains("dtrg"), "{err}");
    }

    #[test]
    fn exec_defaults_and_flags() {
        let Command::Exec(e) = parse(&argv("exec --bench jacobi --threads 4")).unwrap() else {
            panic!()
        };
        assert_eq!((e.bench.as_str(), e.threads), ("jacobi", 4));
        assert_eq!(e.detector, "dtrg");
        assert!(e.tiny && !e.planted);
        assert!(e.shards.is_none() && e.steal_seed.is_none());

        let Command::Exec(e) = parse(&argv(
            "exec --bench sor --threads 2 --detector dtrg --shards 4 --scaled \
             --planted --steal-seed 9",
        ))
        .unwrap() else {
            panic!()
        };
        assert_eq!((e.bench.as_str(), e.threads), ("sor", 2));
        assert_eq!(e.shards, Some(4));
        assert!(!e.tiny && e.planted);
        assert_eq!(e.steal_seed, Some(9));
    }

    #[test]
    fn exec_validation_shares_analyze_and_record_rules() {
        // Bench names, detector names, shard counts, seeds, and planted
        // variants are all validated by the same helpers the other
        // subcommands use — structured errors at parse time.
        let err = parse(&argv("exec --bench jacobii --threads 2")).unwrap_err();
        assert!(err.contains("unknown benchmark `jacobii`"), "{err}");
        assert!(err.contains("jacobi, smithwaterman"), "{err}");

        let err = parse(&argv("exec --bench jacobi --threads 2 --detector dtrgg")).unwrap_err();
        assert!(err.contains("unknown detector `dtrgg`"), "{err}");

        let err = parse(&argv("exec --bench jacobi --threads 2 --detector vc")).unwrap_err();
        assert!(err.contains("cannot run online"), "{err}");

        let err = parse(&argv("exec --bench jacobi --threads 0")).unwrap_err();
        assert!(err.contains("at least 1"), "{err}");
        let err = parse(&argv("exec --bench jacobi --threads four")).unwrap_err();
        assert!(err.contains("invalid count `four`"), "{err}");

        let err = parse(&argv("exec --bench jacobi --threads 2 --shards 0")).unwrap_err();
        assert!(err.contains("at least 1"), "{err}");
        let err = parse(&argv("exec --bench jacobi --threads 2 --steal-seed nope")).unwrap_err();
        assert!(err.contains("invalid seed `nope`"), "{err}");

        let err = parse(&argv("exec --bench series_future --threads 2 --planted")).unwrap_err();
        assert!(err.contains("no planted-race variant"), "{err}");

        assert!(parse(&argv("exec --threads 2")).unwrap_err().contains("--bench"));
        assert!(parse(&argv("exec --bench jacobi")).unwrap_err().contains("--threads"));
        let err = parse(&argv("exec --bench jacobi --threads 2 --out t")).unwrap_err();
        assert!(err.contains("unknown argument"), "{err}");
    }

    #[test]
    fn exec_last_size_flag_wins() {
        let Command::Exec(e) =
            parse(&argv("exec --bench lu --threads 2 --tiny --scaled")).unwrap()
        else {
            panic!()
        };
        assert!(!e.tiny);
        let Command::Exec(e) =
            parse(&argv("exec --bench lu --threads 2 --scaled --tiny")).unwrap()
        else {
            panic!()
        };
        assert!(e.tiny);
    }

    #[test]
    fn compare_defaults_to_all_detectors() {
        let Command::Compare(c) = parse(&argv("compare t.trace")).unwrap() else {
            panic!()
        };
        assert_eq!(c.file, "t.trace");
        assert_eq!(c.detectors, DETECTOR_NAMES);
        assert!(!c.lenient);
    }

    #[test]
    fn compare_detector_lists() {
        let Command::Compare(c) =
            parse(&argv("compare t --detectors dtrg,espbags --lenient")).unwrap()
        else {
            panic!()
        };
        assert_eq!(c.detectors, ["dtrg", "espbags"]);
        assert!(c.lenient);

        let Command::Compare(c) =
            parse(&argv("compare t --detector vc --detector closure")).unwrap()
        else {
            panic!()
        };
        assert_eq!(c.detectors, ["vc", "closure"]);

        let err = parse(&argv("compare t --detectors dtrg,bogus")).unwrap_err();
        assert!(err.contains("unknown detector `bogus`"), "{err}");
        let err = parse(&argv("compare t --detectors dtrg,dtrg")).unwrap_err();
        assert!(err.contains("listed twice"), "{err}");
        assert!(parse(&argv("compare")).unwrap_err().contains("required"));
    }

    #[test]
    fn inject_seed_is_validated_up_front() {
        // A mistyped seed must be a structured usage error, never a
        // silently different fault plan.
        for bad in ["banana", "-1", "0x2a", "1.5", "18446744073709551616"] {
            let err = parse(&argv(&format!("analyze t --inject {bad}"))).unwrap_err();
            assert!(err.contains(&format!("invalid seed `{bad}`")), "{err}");
            assert!(err.contains("unsigned 64-bit"), "{err}");
        }
        assert!(parse(&argv("analyze t --inject")).unwrap_err().contains("value"));

        let Command::Analyze(a) = parse(&argv("analyze t --inject 42")).unwrap() else {
            panic!()
        };
        assert_eq!(a.inject, Some(42));
        assert!(a.supervised());

        // record-side: same validation, and --stream is required.
        let err =
            parse(&argv("record --bench lu --out t --stream --inject nope")).unwrap_err();
        assert!(err.contains("invalid seed `nope`"), "{err}");
        let err = parse(&argv("record --bench lu --out t --inject 7")).unwrap_err();
        assert!(err.contains("--stream"), "{err}");
        let Command::Record(r) =
            parse(&argv("record --bench lu --out t --stream --inject 7")).unwrap()
        else {
            panic!()
        };
        assert_eq!(r.inject, Some(7));
    }

    #[test]
    fn checkpoint_flags() {
        let Command::Analyze(a) = parse(&argv(
            "analyze t --shards 2 --checkpoint-every 4 --stop-after 8 --checkpoint c.ckpt",
        ))
        .unwrap() else {
            panic!()
        };
        assert_eq!(a.checkpoint_every, Some(4));
        assert_eq!(a.stop_after, Some(8));
        assert_eq!(a.checkpoint.as_deref(), Some("c.ckpt"));
        assert!(a.supervised());

        let Command::Analyze(a) = parse(&argv("analyze t --resume c.ckpt")).unwrap() else {
            panic!()
        };
        assert_eq!(a.resume.as_deref(), Some("c.ckpt"));
        assert!(a.supervised());

        let Command::Analyze(a) = parse(&argv("analyze t --shards 2")).unwrap() else {
            panic!()
        };
        assert!(!a.supervised(), "plain sharding is not the supervised path");

        let err = parse(&argv("analyze t --stop-after 3")).unwrap_err();
        assert!(err.contains("--checkpoint"), "{err}");
        let err = parse(&argv("analyze t --checkpoint-every 0")).unwrap_err();
        assert!(err.contains("at least 1"), "{err}");
        let err = parse(&argv("analyze t --stop-after many --checkpoint c")).unwrap_err();
        assert!(err.contains("invalid count `many`"), "{err}");
        let err = parse(&argv("analyze t --detector spbags --inject 1")).unwrap_err();
        assert!(err.contains("supervised"), "{err}");
        let err = parse(&argv("analyze t --graph --resume c.ckpt")).unwrap_err();
        assert!(err.contains("serial"), "{err}");
    }

    #[test]
    fn corpus_defaults() {
        let Command::Corpus(c) = parse(&argv("corpus traces/")).unwrap() else {
            panic!()
        };
        assert_eq!(c.dir, "traces/");
        assert!(c.out.is_none());
        assert_eq!(c.detectors, DETECTOR_NAMES);
        assert_eq!(c.max_parallel, 1);
        assert!(!c.abort && !c.supervised && !c.lenient && !c.fresh);
        assert!(c.shards.is_none() && c.stop_after_jobs.is_none());
        assert!(c.job_timeout_ms.is_none());
    }

    #[test]
    fn corpus_job_timeout_flag() {
        let Command::Corpus(c) = parse(&argv("corpus d --job-timeout-ms 5000")).unwrap() else {
            panic!()
        };
        assert_eq!(c.job_timeout_ms, Some(5000));
        let err = parse(&argv("corpus d --job-timeout-ms 0")).unwrap_err();
        assert!(err.contains("at least 1"), "{err}");
        let err = parse(&argv("corpus d --job-timeout-ms soon")).unwrap_err();
        assert!(err.contains("invalid count `soon`"), "{err}");
    }

    #[test]
    fn serve_flags() {
        let Command::Serve(s) = parse(&argv("serve --listen 127.0.0.1:0")).unwrap() else {
            panic!()
        };
        assert_eq!(s.listen, "127.0.0.1:0");
        assert_eq!((s.workers, s.queue_depth), (4, 16));
        assert!(s.checkpoint_dir.is_none() && !s.resume);

        let Command::Serve(s) = parse(&argv(
            "serve --listen 0.0.0.0:7333 --workers 8 --queue-depth 32 \
             --checkpoint-dir /tmp/ckpts --resume",
        ))
        .unwrap() else {
            panic!()
        };
        assert_eq!((s.workers, s.queue_depth), (8, 32));
        assert_eq!(s.checkpoint_dir.as_deref(), Some("/tmp/ckpts"));
        assert!(s.resume);

        assert!(parse(&argv("serve")).unwrap_err().contains("--listen"));
        let err = parse(&argv("serve --listen a:1 --workers 0")).unwrap_err();
        assert!(err.contains("at least 1"), "{err}");
    }

    #[test]
    fn serve_self_protection_flags() {
        let Command::Serve(s) = parse(&argv("serve --listen a:1")).unwrap() else {
            panic!()
        };
        assert!(s.idle_timeout_ms.is_none() && s.io_deadline_ms.is_none());
        assert!(s.max_sessions.is_none() && s.inject_net.is_none());

        let Command::Serve(s) = parse(&argv(
            "serve --listen a:1 --idle-timeout-ms 2000 --io-deadline-ms 500 \
             --max-sessions 8 --inject-net 42",
        ))
        .unwrap() else {
            panic!()
        };
        assert_eq!(s.idle_timeout_ms, Some(2000));
        assert_eq!(s.io_deadline_ms, Some(500));
        assert_eq!(s.max_sessions, Some(8));
        assert_eq!(s.inject_net, Some(42));

        let err = parse(&argv("serve --listen a:1 --max-sessions 0")).unwrap_err();
        assert!(err.contains("at least 1"), "{err}");
        let err = parse(&argv("serve --listen a:1 --inject-net banana")).unwrap_err();
        assert!(err.contains("invalid seed `banana`"), "{err}");
    }

    #[test]
    fn client_flags() {
        let Command::Client(c) =
            parse(&argv("client 127.0.0.1:7333 t.ftrc --shards 4 --lenient")).unwrap()
        else {
            panic!()
        };
        assert_eq!(c.addr, "127.0.0.1:7333");
        assert_eq!(c.file.as_deref(), Some("t.ftrc"));
        assert_eq!(c.shards, Some(4));
        assert!(c.lenient && !c.shutdown);

        let Command::Client(c) = parse(&argv(
            "client h:1 t --name fixture --chunk-events 64 --checkpoint-every 2 \
             --suspend-after 3",
        ))
        .unwrap() else {
            panic!()
        };
        assert_eq!(c.name.as_deref(), Some("fixture"));
        assert_eq!(c.chunk_events, Some(64));
        assert_eq!(c.checkpoint_every, Some(2));
        assert_eq!(c.suspend_after, Some(3));

        let Command::Client(c) = parse(&argv("client h:1 --shutdown")).unwrap() else {
            panic!()
        };
        assert!(c.shutdown && c.file.is_none());

        assert!(parse(&argv("client")).unwrap_err().contains("address"));
        let err = parse(&argv("client h:1")).unwrap_err();
        assert!(err.contains("trace file"), "{err}");
        let err = parse(&argv("client h:1 t --shutdown")).unwrap_err();
        assert!(err.contains("--shutdown"), "{err}");
    }

    #[test]
    fn client_reconnect_flags() {
        let Command::Client(c) = parse(&argv("client h:1 t")).unwrap() else {
            panic!()
        };
        assert_eq!(c.retries, 0);
        assert!(c.retry_budget_ms.is_none() && c.inject_net.is_none());

        let Command::Client(c) = parse(&argv(
            "client h:1 t --retries 5 --retry-budget-ms 30000 --inject-net 7",
        ))
        .unwrap() else {
            panic!()
        };
        assert_eq!(c.retries, 5);
        assert_eq!(c.retry_budget_ms, Some(30000));
        assert_eq!(c.inject_net, Some(7));

        // --retries 0 is explicit single-shot, not an error.
        let Command::Client(c) = parse(&argv("client h:1 t --retries 0")).unwrap() else {
            panic!()
        };
        assert_eq!(c.retries, 0);

        let err = parse(&argv("client h:1 t --retries many")).unwrap_err();
        assert!(err.contains("invalid count `many`"), "{err}");
        let err = parse(&argv("client h:1 t --retry-budget-ms 0")).unwrap_err();
        assert!(err.contains("at least 1"), "{err}");
    }

    #[test]
    fn corpus_full_flag_set() {
        let Command::Corpus(c) = parse(&argv(
            "corpus traces --out run1 --detectors dtrg,vc --max-parallel 4 \
             --failure-policy abort --shards 2 --supervised --lenient --fresh \
             --stop-after-jobs 9",
        ))
        .unwrap() else {
            panic!()
        };
        assert_eq!(c.dir, "traces");
        assert_eq!(c.out.as_deref(), Some("run1"));
        assert_eq!(c.detectors, ["dtrg", "vc"]);
        assert_eq!(c.max_parallel, 4);
        assert!(c.abort && c.supervised && c.lenient && c.fresh);
        assert_eq!(c.shards, Some(2));
        assert_eq!(c.stop_after_jobs, Some(9));
    }

    #[test]
    fn corpus_job_retries_flag() {
        let Command::Corpus(c) = parse(&argv("corpus d")).unwrap() else {
            panic!()
        };
        assert_eq!(c.job_retries, 0);
        let Command::Corpus(c) = parse(&argv("corpus d --job-retries 3")).unwrap() else {
            panic!()
        };
        assert_eq!(c.job_retries, 3);
        let err = parse(&argv("corpus d --job-retries 0")).unwrap_err();
        assert!(err.contains("at least 1"), "{err}");
    }

    #[test]
    fn corpus_validation_errors() {
        assert!(parse(&argv("corpus")).unwrap_err().contains("required"));
        let err = parse(&argv("corpus d --max-parallel 0")).unwrap_err();
        assert!(err.contains("at least 1"), "{err}");
        let err = parse(&argv("corpus d --failure-policy sometimes")).unwrap_err();
        assert!(err.contains("unknown policy `sometimes`"), "{err}");
        assert!(err.contains("continue or abort"), "{err}");
        let err = parse(&argv("corpus d --detectors dtrg,dtrg")).unwrap_err();
        assert!(err.contains("listed twice"), "{err}");
        let err = parse(&argv("corpus d --detectors dtrg,bogus")).unwrap_err();
        assert!(err.contains("unknown detector `bogus`"), "{err}");
        let err = parse(&argv("corpus d --supervised")).unwrap_err();
        assert!(err.contains("--shards"), "{err}");
        let err = parse(&argv("corpus d --shards 0")).unwrap_err();
        assert!(err.contains("at least 1"), "{err}");
        let err = parse(&argv("corpus d --stop-after-jobs 0")).unwrap_err();
        assert!(err.contains("at least 1"), "{err}");
        let err = parse(&argv("corpus d --frobnicate")).unwrap_err();
        assert!(err.contains("unknown argument"), "{err}");
    }

    #[test]
    fn help_is_a_command_not_an_error() {
        for h in ["help", "--help", "-h"] {
            assert_eq!(parse(&argv(h)).unwrap(), Command::Help, "{h}");
        }
    }

    #[test]
    fn info_verify_and_errors() {
        assert_eq!(
            parse(&argv("info t.trace")).unwrap(),
            Command::Info {
                file: "t.trace".into()
            }
        );
        assert_eq!(
            parse(&argv("verify t.trace")).unwrap(),
            Command::Verify {
                file: "t.trace".into()
            }
        );
        assert!(parse(&argv("verify")).unwrap_err().contains("required"));
        assert!(parse(&argv("frobnicate x")).unwrap_err().contains("unknown subcommand"));
        assert!(parse(&[]).unwrap_err().contains("subcommand"));
    }
}
