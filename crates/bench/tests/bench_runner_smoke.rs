//! Smoke test for the in-tree bench runner: measure a real (trivially
//! sized) Series workload end to end, then check that every emitted
//! JSON line parses back and the statistics are internally consistent.

use futrace_bench::runner::{BenchmarkId, Record, Runner};
use futrace_benchsuite::series::{series_af, series_seq, SeriesParams};
use futrace_detector::RaceDetector;
use futrace_runtime::run_serial;

#[test]
fn series_bench_produces_consistent_json_records() {
    let p = SeriesParams { n: 8, intervals: 8 };
    let mut runner = Runner::quiet(5, 1);
    let mut g = runner.benchmark_group("series-smoke");
    g.bench_function("seq", |b| b.iter(|| series_seq(&p)));
    g.bench_function("racedet-af", |b| {
        b.iter(|| {
            let mut det = RaceDetector::new();
            run_serial(&mut det, |ctx| {
                series_af(ctx, &p);
            });
            assert!(!det.has_races());
        })
    });
    g.bench_with_input(BenchmarkId::new("seq-sized", p.n), &p, |b, p| {
        b.iter(|| series_seq(p))
    });
    g.finish();

    let records = runner.records();
    assert_eq!(records.len(), 3);
    let names: Vec<&str> = records.iter().map(|r| r.bench.as_str()).collect();
    assert_eq!(names, ["seq", "racedet-af", "seq-sized/8"]);
    for rec in records {
        assert_eq!(rec.group, "series-smoke");
        assert!(rec.iters >= 1, "{}: no timed iterations", rec.bench);
        assert_eq!(rec.iters, 5);
        assert!(
            rec.median_ns >= rec.min_ns,
            "{}: median {} < min {}",
            rec.bench,
            rec.median_ns,
            rec.min_ns
        );
        assert!(rec.mean_ns >= rec.min_ns);
        // The JSON line round-trips through the hand-rolled parser.
        let line = rec.to_json_line();
        assert_eq!(Record::parse_json_line(&line).as_ref(), Some(rec));
    }
}
