//! Chaos harness for the analysis daemon (DESIGN §S42).
//!
//! The contract under test: with seeded network fault injection, ≥ 4
//! concurrent reconnecting clients, a daemon SIGKILL mid-stream, and a
//! `serve --resume` restart on the same port, every surviving session's
//! final verdict is byte-identical to one-shot `tracetool analyze`.
//! Also covered: idle eviction suspends a stalled session to a
//! reopenable checkpoint, and an over-quota `Open` is shed with a
//! structured `Busy` (an exit-code-5 client failure, never a hang).

use std::io::{BufRead, BufReader, Read as _};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use futrace_benchsuite::randomprog::{self, GenParams};
use futrace_offline::{trace_events, StreamWriter};
use futrace_runtime::{replay, run_serial, trace, EventLog};
use futrace_util::rng::splitmix64;
use futrace_util::wire::proto::{read_frame, write_frame, Message};

fn tracetool() -> Command {
    Command::new(env!("CARGO_BIN_EXE_tracetool"))
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("futrace_chaos_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Everything from the first verdict line onward.
fn verdict_section(stdout: &str) -> &str {
    let at = stdout
        .find("determinacy")
        .unwrap_or_else(|| panic!("no verdict in:\n{stdout}"));
    let line_start = stdout[..at].rfind('\n').map_or(0, |i| i + 1);
    &stdout[line_start..]
}

/// One-shot `tracetool analyze FILE` → (verdict section, exit code).
fn one_shot(file: &PathBuf) -> (String, Option<i32>) {
    let out = tracetool().arg("analyze").arg(file).output().expect("run analyze");
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    (verdict_section(&stdout).to_string(), out.status.code())
}

/// Writes a generated trace big enough that streaming it takes long
/// enough for mid-stream chaos (daemon kill, connection cuts) to land.
fn gen_trace(path: &PathBuf, seed: u64, min_bytes: usize) {
    let mut programs = 128;
    loop {
        let mut state = seed;
        let progs: Vec<_> = (0..programs)
            .map(|_| randomprog::generate(splitmix64(&mut state), &GenParams::future_heavy()))
            .collect();
        let mut log = EventLog::new();
        run_serial(&mut log, |ctx| {
            for prog in &progs {
                randomprog::execute(ctx, prog);
            }
        });
        let mut w = StreamWriter::with_chunk_bytes(Vec::new(), 4096).expect("writing to a Vec");
        replay(&log.events, &mut w);
        let (blob, _) = w.finish().expect("writing to a Vec");
        if blob.len() >= min_bytes || programs >= 8192 {
            std::fs::write(path, &blob).expect("write trace");
            return;
        }
        programs *= 2;
    }
}

/// Re-chunked payloads for hand-rolled wire conversations.
fn chunk_payloads(file: &PathBuf) -> Vec<Vec<u8>> {
    let blob = std::fs::read(file).expect("read fixture");
    let events: Vec<_> = trace_events(&blob, false)
        .collect::<Result<_, _>>()
        .expect("decode fixture");
    events.chunks(8).map(trace::encode).collect()
}

/// Grabs a port the OS considers free right now. The tiny window between
/// drop and reuse is acceptable for a test; the daemon must sit on a
/// *fixed* port so clients can reconnect across its restart.
fn free_addr() -> String {
    let l = TcpListener::bind("127.0.0.1:0").expect("probe port");
    let addr = l.local_addr().expect("probe addr").to_string();
    drop(l);
    addr
}

/// Spawns `tracetool serve --listen ADDR <extra>`, waits for the
/// listening banner so the daemon is known to be accepting, and returns
/// the bound address the banner reports (resolving a `:0` port).
fn spawn_daemon(
    addr: &str,
    extra: &[&str],
) -> (Child, BufReader<std::process::ChildStdout>, String) {
    let mut child = tracetool()
        .args(["serve", "--listen", addr])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn daemon");
    let mut stdout = BufReader::new(child.stdout.take().expect("daemon stdout"));
    let mut line = String::new();
    stdout.read_line(&mut line).expect("read listen line");
    let bound = line
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected daemon banner: {line:?}"))
        .trim()
        .to_string();
    (child, stdout, bound)
}

/// Waits for a child with a hard deadline — a hung client is itself a
/// test failure, never a wedged CI job.
fn wait_deadline(child: &mut Child, what: &str, limit: Duration) -> std::process::ExitStatus {
    let start = Instant::now();
    loop {
        if let Some(status) = child.try_wait().expect("try_wait") {
            return status;
        }
        if start.elapsed() > limit {
            let _ = child.kill();
            let _ = child.wait();
            panic!("{what} hung past {limit:?}");
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn read_piped(child: &mut Child) -> (String, String) {
    let mut stdout = String::new();
    let mut stderr = String::new();
    if let Some(mut s) = child.stdout.take() {
        s.read_to_string(&mut stdout).expect("client stdout");
    }
    if let Some(mut s) = child.stderr.take() {
        s.read_to_string(&mut stderr).expect("client stderr");
    }
    (stdout, stderr)
}

fn shutdown_daemon(addr: &str, mut child: Child, mut stdout: BufReader<std::process::ChildStdout>) -> String {
    let out = tracetool()
        .args(["client", addr, "--shutdown"])
        .output()
        .expect("run client --shutdown");
    assert_eq!(
        out.status.code(),
        Some(0),
        "shutdown failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    wait_deadline(&mut child, "daemon drain", Duration::from_secs(60));
    let mut rest = String::new();
    stdout.read_to_string(&mut rest).expect("daemon summary");
    rest
}

/// The headline chaos scenario: four clients stream big traces with
/// seeded socket faults and a reconnect budget; the daemon comes up
/// *after* the clients start dialing (forcing a reconnect on every one),
/// is SIGKILLed once periodic checkpoints prove sessions are mid-stream,
/// and restarts with `--resume` on the same port. Every client must land
/// the byte-identical one-shot verdict.
#[test]
fn chaos_clients_survive_faults_and_a_daemon_sigkill() {
    const CLIENTS: usize = 4;
    let dir = scratch_dir("kill");
    let ckpt = dir.join("ckpt");
    std::fs::create_dir_all(&ckpt).expect("ckpt dir");

    // Sizing: each periodic checkpoint cut re-runs analysis over the fed
    // prefix, so cost grows with (chunks / checkpoint-every) × chunks.
    // ~48 KiB at --checkpoint-every 100 keeps a session under a second
    // while still spanning hundreds of chunk round-trips for chaos to
    // land in.
    let mut traces = Vec::new();
    for i in 0..CLIENTS {
        let path = dir.join(format!("chaos_{i}.ftrc"));
        gen_trace(&path, 0xC4A05 + i as u64, 48 * 1024);
        let want = one_shot(&path);
        traces.push((path, want));
    }

    let addr = free_addr();
    let ckpt_flag = ckpt.to_str().unwrap().to_string();
    let serve_args = ["--checkpoint-dir", ckpt_flag.as_str(), "--resume"];

    // Clients first: every one dials a daemon that is not up yet, so
    // every one must exercise the reconnect path to succeed at all.
    let mut clients: Vec<Child> = traces
        .iter()
        .enumerate()
        .map(|(i, (path, _))| {
            tracetool()
                .args(["client", &addr])
                .arg(path)
                .args(["--name", &format!("chaos_{i}")])
                .args(["--chunk-events", "8", "--checkpoint-every", "100"])
                .args(["--retries", "16", "--inject-net", &(1000 + i as u64).to_string()])
                .stdout(Stdio::piped())
                .stderr(Stdio::piped())
                .spawn()
                .expect("spawn client")
        })
        .collect();
    std::thread::sleep(Duration::from_millis(300));

    let (mut daemon, daemon_out, _) = spawn_daemon(&addr, &serve_args);
    drop(daemon_out);

    // Wait until periodic checkpoints appear — positive evidence that
    // sessions are mid-stream — then SIGKILL the daemon under them.
    let start = Instant::now();
    loop {
        let ckpts = std::fs::read_dir(&ckpt)
            .expect("ckpt dir")
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .path()
                    .extension()
                    .is_some_and(|x| x == "fckp")
            })
            .count();
        if ckpts >= 2 {
            break;
        }
        // All clients already done: the machine outran the kill window;
        // the reconnect-at-startup half of the scenario still holds.
        if clients.iter_mut().all(|c| c.try_wait().expect("try_wait").is_some()) {
            break;
        }
        assert!(
            start.elapsed() < Duration::from_secs(60),
            "no periodic checkpoints appeared"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    daemon.kill().expect("SIGKILL daemon");
    let _ = daemon.wait();

    // Restart on the same port with --resume: clients redial, reopen
    // their session names, and the daemon picks up from the periodic
    // checkpoints (or recomputes — the verdict is identical either way).
    let (daemon2, daemon2_out, _) = spawn_daemon(&addr, &serve_args);

    for (i, mut client) in clients.drain(..).enumerate() {
        let status = wait_deadline(&mut client, &format!("client {i}"), Duration::from_secs(120));
        let (stdout, stderr) = read_piped(&mut client);
        let (want_verdict, want_code) = &traces[i].1;
        assert_eq!(
            status.code(),
            *want_code,
            "client {i} exit code; stderr:\n{stderr}\nstdout:\n{stdout}"
        );
        assert_eq!(
            verdict_section(&stdout),
            want_verdict,
            "client {i} verdict diverged from one-shot analyze"
        );
        assert!(
            stdout.contains("reconnected: verdict reached on attempt"),
            "client {i} never reconnected — chaos was inert:\n{stdout}"
        );
        assert!(stderr.is_empty(), "client {i} stderr:\n{stderr}");
    }

    let summary = shutdown_daemon(&addr, daemon2, daemon2_out);
    assert!(
        summary.contains("session(s) finished"),
        "missing drain summary:\n{summary}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Idle eviction: a client that opens a session, streams a chunk, and
/// then goes silent is *suspended to its checkpoint* (told so with a
/// `Suspended` frame), and a later client under the same name resumes it
/// to the one-shot verdict.
#[test]
fn idle_stalled_session_is_suspended_to_a_reopenable_checkpoint() {
    let dir = scratch_dir("idle");
    let file = dir.join("idle.ftrc");
    gen_trace(&file, 0x1D7E, 4 * 1024);
    let (want_verdict, want_code) = one_shot(&file);

    let ckpt_flag = dir.to_str().unwrap().to_string();
    let (daemon, daemon_out, addr) = spawn_daemon(
        "127.0.0.1:0",
        &["--checkpoint-dir", &ckpt_flag, "--resume", "--idle-timeout-ms", "150"],
    );

    let payloads = chunk_payloads(&file);
    assert!(payloads.len() >= 2, "fixture must span several chunks");
    {
        let mut stream = TcpStream::connect(&addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("read timeout");
        write_frame(
            &mut stream,
            &Message::Open {
                shards: 0,
                checkpoint_every: 0,
                lenient: false,
                trace_name: "parked_idle".to_string(),
            },
        )
        .expect("send open");
        assert!(matches!(
            read_frame(&mut stream).expect("hello").expect("hello"),
            Message::Hello { .. }
        ));
        // Feed two chunks: a session needs ≥ 2 before it has anything
        // checkpointable to suspend to.
        for (seq, payload) in payloads.iter().take(2).enumerate() {
            write_frame(
                &mut stream,
                &Message::Chunk {
                    seq: seq as u64,
                    payload: payload.clone(),
                },
            )
            .expect("send chunk");
            assert!(matches!(
                read_frame(&mut stream).expect("delta").expect("delta"),
                Message::VerdictDelta { .. }
            ));
        }

        // Stall. The daemon must evict us to a checkpoint and say so —
        // a Suspended frame, not a dropped connection.
        match read_frame(&mut stream).expect("eviction notice").expect("eviction notice") {
            Message::Suspended { chunks } => assert_eq!(chunks, 2, "two chunks were fed"),
            other => panic!("expected idle eviction Suspended, got {other:?}"),
        }
    }
    let checkpoint = futrace_service::checkpoint_path(&dir, "parked_idle");
    assert!(checkpoint.exists(), "idle eviction must leave a checkpoint");

    // Reopening under the same name resumes the parked work.
    let out = tracetool()
        .args(["client", &addr])
        .arg(&file)
        .args(["--chunk-events", "8", "--name", "parked_idle"])
        .output()
        .expect("run resuming client");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), want_code, "resumed exit code");
    assert!(
        stdout.contains("resumed: daemon skipped"),
        "expected a resume notice:\n{stdout}"
    );
    assert_eq!(verdict_section(&stdout), want_verdict, "resumed verdict");
    assert!(!checkpoint.exists(), "finish must delete the checkpoint");

    let summary = shutdown_daemon(&addr, daemon, daemon_out);
    assert!(
        summary.contains("(1 idle-evicted)"),
        "idle eviction missing from drain summary:\n{summary}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Load shedding: past `--max-sessions`, an `Open` is answered with a
/// structured `Busy` — the client fails fast with exit code 5 (or rides
/// its retry budget), and never hangs.
#[test]
fn over_quota_open_is_shed_with_a_structured_busy() {
    let dir = scratch_dir("busy");
    let file = dir.join("busy.ftrc");
    gen_trace(&file, 0xB054, 4 * 1024);
    let (want_verdict, want_code) = one_shot(&file);

    let ckpt_flag = dir.to_str().unwrap().to_string();
    let (daemon, daemon_out, addr) = spawn_daemon(
        "127.0.0.1:0",
        &["--checkpoint-dir", &ckpt_flag, "--max-sessions", "1"],
    );

    // Occupy the only session slot with a hand-rolled client.
    let mut hog = TcpStream::connect(&addr).expect("connect hog");
    hog.set_read_timeout(Some(Duration::from_secs(30))).expect("read timeout");
    write_frame(
        &mut hog,
        &Message::Open {
            shards: 0,
            checkpoint_every: 0,
            lenient: false,
            trace_name: "hog".to_string(),
        },
    )
    .expect("open hog");
    assert!(matches!(
        read_frame(&mut hog).expect("hello").expect("hello"),
        Message::Hello { .. }
    ));

    // Single-shot second client: structured Busy, exit code 5, fast.
    let mut shed = tracetool()
        .args(["client", &addr])
        .arg(&file)
        .args(["--name", "shed", "--retries", "0"])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn shed client");
    let status = wait_deadline(&mut shed, "shed client", Duration::from_secs(30));
    let (_, stderr) = read_piped(&mut shed);
    assert_eq!(status.code(), Some(5), "busy must map to exit 5:\n{stderr}");
    assert!(
        stderr.contains("daemon busy: retry after"),
        "expected the structured busy error:\n{stderr}"
    );

    // A bounded retry budget that cannot outlast the hog also exits 5.
    let mut patient = tracetool()
        .args(["client", &addr])
        .arg(&file)
        .args(["--name", "patient", "--retries", "2", "--retry-budget-ms", "400"])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn patient client");
    let status = wait_deadline(&mut patient, "patient client", Duration::from_secs(30));
    let (_, stderr) = read_piped(&mut patient);
    assert_eq!(status.code(), Some(5), "budget exhaustion must map to exit 5:\n{stderr}");
    assert!(
        stderr.contains("daemon busy: retry after"),
        "busy must stay structured through the retry loop:\n{stderr}"
    );

    // Release the slot; a retrying client now gets through.
    write_frame(&mut hog, &Message::Finish).expect("finish hog");
    assert!(matches!(
        read_frame(&mut hog).expect("final").expect("final"),
        Message::Final { .. }
    ));
    drop(hog);

    let mut winner = tracetool()
        .args(["client", &addr])
        .arg(&file)
        .args(["--name", "winner", "--retries", "8"])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn winner client");
    let status = wait_deadline(&mut winner, "winner client", Duration::from_secs(60));
    let (stdout, stderr) = read_piped(&mut winner);
    assert_eq!(status.code(), want_code, "winner exit; stderr:\n{stderr}");
    assert_eq!(verdict_section(&stdout), want_verdict, "winner verdict");

    let summary = shutdown_daemon(&addr, daemon, daemon_out);
    assert!(
        summary.contains("shed busy") && !summary.contains(" 0 shed busy"),
        "busy rejections missing from drain summary:\n{summary}"
    );
    std::fs::remove_dir_all(&dir).ok();
}
