//! An empty trace — a valid FTRC header with zero chunks (or a
//! zero-byte v1 file) — is not damage: `analyze`, `info`, and `verify`
//! must all exit 0, say explicitly that the trace holds no events, and
//! report a clean verdict. The note is printed *before* the verdict
//! section and byte-identically across the serial, sharded, and
//! supervised analyze paths (CI diffs that section between paths).

use std::path::PathBuf;
use std::process::Command;

const NOTE: &str = "note: trace holds no events; verdict is trivially clean";
const CLEAN_VERDICT: &str = "no determinacy races: the traced program is determinate";

fn tracetool() -> Command {
    Command::new(env!("CARGO_BIN_EXE_tracetool"))
}

fn scratch_trace(tag: &str, bytes: &[u8]) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("futrace_empty_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    let path = dir.join("empty.ftrc");
    std::fs::write(&path, bytes).expect("write trace");
    path
}

/// Runs tracetool, asserting exit 0, and returns stdout.
fn run_ok(args: &[&str], path: &PathBuf) -> String {
    let mut cmd = tracetool();
    cmd.arg(args[0]).arg(path).args(&args[1..]);
    let out = cmd.output().expect("run tracetool");
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert_eq!(
        out.status.code(),
        Some(0),
        "args {args:?}\nstdout: {stdout}\nstderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    stdout
}

/// Everything from the first line of the verdict section onward — the
/// part CI requires to be byte-identical between analyze paths.
fn verdict_section(stdout: &str) -> &str {
    let at = stdout.find("determinacy").expect("verdict section present");
    let line_start = stdout[..at].rfind('\n').map_or(0, |i| i + 1);
    &stdout[line_start..]
}

#[test]
fn analyze_empty_v2_is_clean_across_all_paths() {
    let path = scratch_trace("analyze", b"FTRC\x02");
    let serial = run_ok(&["analyze"], &path);
    let sharded = run_ok(&["analyze", "--shards", "2"], &path);
    let supervised = run_ok(
        &["analyze", "--shards", "2", "--checkpoint-every", "2"],
        &path,
    );
    for (label, stdout) in [
        ("serial", &serial),
        ("sharded", &sharded),
        ("supervised", &supervised),
    ] {
        assert!(stdout.contains(NOTE), "{label} lacks note:\n{stdout}");
        assert!(
            stdout.contains(CLEAN_VERDICT),
            "{label} lacks clean verdict:\n{stdout}"
        );
        // The note must sit above the verdict section, not inside it.
        assert!(
            !verdict_section(stdout).contains(NOTE),
            "{label} note leaked into the verdict section:\n{stdout}"
        );
    }
    assert_eq!(
        verdict_section(&serial),
        verdict_section(&sharded),
        "serial vs sharded verdict section"
    );
    assert_eq!(
        verdict_section(&serial),
        verdict_section(&supervised),
        "serial vs supervised verdict section"
    );
}

#[test]
fn info_empty_v2_is_clean() {
    let path = scratch_trace("info", b"FTRC\x02");
    let stdout = run_ok(&["info"], &path);
    assert!(stdout.contains("0 intact, 0 damaged"), "{stdout}");
    assert!(stdout.contains(NOTE), "{stdout}");
}

#[test]
fn verify_empty_v2_is_clean() {
    let path = scratch_trace("verify", b"FTRC\x02");
    let stdout = run_ok(&["verify"], &path);
    assert!(stdout.contains("OK (v2, 0 events"), "{stdout}");
    assert!(stdout.contains(NOTE), "{stdout}");
}

#[test]
fn zero_byte_v1_is_clean_everywhere() {
    let path = scratch_trace("v1", b"");
    let stdout = run_ok(&["verify"], &path);
    assert!(stdout.contains("OK (v1, 0 events"), "{stdout}");
    assert!(stdout.contains(NOTE), "{stdout}");
    let stdout = run_ok(&["info"], &path);
    assert!(stdout.contains(NOTE), "{stdout}");
    let stdout = run_ok(&["analyze"], &path);
    assert!(stdout.contains(NOTE), "{stdout}");
    assert!(stdout.contains(CLEAN_VERDICT), "{stdout}");
}

#[test]
fn corpus_of_one_empty_trace_is_clean() {
    let path = scratch_trace("corpus", b"FTRC\x02");
    let dir = path.parent().unwrap();
    let out = tracetool()
        .arg("corpus")
        .arg(dir)
        .args(["--detectors", "dtrg", "--fresh"])
        .output()
        .expect("run tracetool corpus");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        out.status.code(),
        Some(0),
        "stdout: {stdout}\nstderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("1 clean (1 empty)"), "{stdout}");
    let json =
        std::fs::read_to_string(dir.join("corpus-out").join("report.json")).expect("report.json");
    assert!(json.contains("\"empty_traces\": 1"), "{json}");
    std::fs::remove_dir_all(dir.join("corpus-out")).ok();
}
