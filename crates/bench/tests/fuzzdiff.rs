//! End-to-end tests of `tracetool fuzz`: a clean sweep exits 0, and a
//! deliberately broken detector produces a minimized `.ftrc`
//! counterexample plus a copy-pasteable replay command.

use std::path::PathBuf;
use std::process::Command;

fn tracetool() -> Command {
    Command::new(env!("CARGO_BIN_EXE_tracetool"))
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("futrace_fuzz_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

#[test]
fn clean_sweep_exits_zero_and_reports_zero_unexpected() {
    let dir = scratch_dir("clean");
    let out = tracetool()
        .args(["fuzz", "--programs", "64", "--seed", "7"])
        .arg("--out-dir")
        .arg(&dir)
        .output()
        .expect("run tracetool fuzz");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "expected exit 0, got {:?}\nstdout: {stdout}\nstderr: {}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        stdout.contains("0 unexpected disagreements"),
        "stdout: {stdout}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn broken_detector_writes_minimized_counterexample_and_replay_command() {
    let dir = scratch_dir("broken");
    let out = tracetool()
        .args(["fuzz", "--programs", "8", "--seed", "7", "--break-detector", "vc"])
        .arg("--out-dir")
        .arg(&dir)
        .output()
        .expect("run tracetool fuzz");
    let stderr = String::from_utf8_lossy(&out.stderr);

    // Exit code 4 is the fuzz-disagreement code (0 clean, 3 races found
    // by analyze/compare).
    assert_eq!(out.status.code(), Some(4), "stderr: {stderr}");
    assert!(stderr.contains("UNEXPECTED DISAGREEMENT"), "stderr: {stderr}");
    assert!(stderr.contains("vc"), "stderr: {stderr}");
    // The replay command names the env var, the seed, and the fault.
    assert!(stderr.contains("FUTRACE_PROPCHECK_SEED=0x"), "stderr: {stderr}");
    assert!(
        stderr.contains("tracetool fuzz --programs 1 --seed 7 --gen nontree --break-detector vc"),
        "stderr: {stderr}"
    );

    // Exactly one .ftrc reproducer was written, and it is a valid trace.
    let traces: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("read scratch dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "ftrc"))
        .collect();
    assert_eq!(traces.len(), 1, "traces: {traces:?}\nstderr: {stderr}");
    let verify = tracetool()
        .arg("verify")
        .arg(&traces[0])
        .output()
        .expect("run tracetool verify");
    assert!(
        verify.status.success(),
        "verify failed: {}",
        String::from_utf8_lossy(&verify.stderr)
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn replay_env_var_reruns_exactly_the_failing_case() {
    // The printed replay line sets FUTRACE_PROPCHECK_SEED; with it, a
    // one-program run must reproduce the same disagreement.
    let dir = scratch_dir("replay");
    let out = tracetool()
        .args(["fuzz", "--programs", "4", "--seed", "9", "--break-detector", "closure"])
        .arg("--out-dir")
        .arg(&dir)
        .output()
        .expect("run tracetool fuzz");
    assert_eq!(out.status.code(), Some(4));
    let stderr = String::from_utf8_lossy(&out.stderr);
    let seed_hex = stderr
        .lines()
        .find_map(|l| {
            let l = l.trim();
            l.strip_prefix("FUTRACE_PROPCHECK_SEED=")
                .and_then(|rest| rest.split_whitespace().next())
        })
        .expect("replay line present")
        .to_string();

    let replay = tracetool()
        .args(["fuzz", "--programs", "1", "--seed", "9", "--break-detector", "closure"])
        .arg("--out-dir")
        .arg(&dir)
        .env("FUTRACE_PROPCHECK_SEED", &seed_hex)
        .output()
        .expect("replay tracetool fuzz");
    assert_eq!(replay.status.code(), Some(4));
    assert!(
        String::from_utf8_lossy(&replay.stderr).contains("UNEXPECTED DISAGREEMENT"),
        "replay stderr: {}",
        String::from_utf8_lossy(&replay.stderr)
    );
    std::fs::remove_dir_all(&dir).ok();
}
