//! Session-daemon lifecycle tests driving the `tracetool` binary.
//!
//! The contract under test (DESIGN §S42): for every golden fixture the
//! race verdict a streamed session reports is byte-identical to one-shot
//! `tracetool analyze` — serially, under `--shards 4`, across ≥ 4
//! concurrent client sessions, after a client is killed mid-stream, and
//! after the daemon itself dies mid-session and is restarted with
//! `serve --resume`.

use std::io::{BufRead, BufReader};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};

use futrace_offline::trace_events;
use futrace_runtime::trace;
use futrace_util::wire::proto::{read_frame, write_frame, Message};

fn tracetool() -> Command {
    Command::new(env!("CARGO_BIN_EXE_tracetool"))
}

/// Every golden fixture under tests/data, sorted.
fn fixtures() -> Vec<PathBuf> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/data");
    let mut out: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("fixture dir")
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "ftrc"))
        .collect();
    out.sort();
    assert!(out.len() >= 4, "expected the golden fixture set in {dir:?}");
    out
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("futrace_serve_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// A running daemon plus the buffered reader over its stdout.
struct Daemon {
    child: Child,
    stdout: BufReader<std::process::ChildStdout>,
    addr: String,
}

impl Daemon {
    /// Spawns `tracetool serve --listen 127.0.0.1:0 <extra>` and waits
    /// for the "listening on ADDR" line to learn the picked port.
    fn start(extra: &[&str]) -> Daemon {
        let mut child = tracetool()
            .args(["serve", "--listen", "127.0.0.1:0"])
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn daemon");
        let mut stdout = BufReader::new(child.stdout.take().expect("daemon stdout"));
        let mut line = String::new();
        stdout.read_line(&mut line).expect("read listen line");
        let addr = line
            .strip_prefix("listening on ")
            .unwrap_or_else(|| panic!("unexpected daemon banner: {line:?}"))
            .trim()
            .to_string();
        Daemon {
            child,
            stdout,
            addr,
        }
    }

    /// Sends `Shutdown`, waits for exit, and returns (exit code, the
    /// rest of the daemon's stdout — the drain summary).
    fn shutdown(mut self) -> (Option<i32>, String) {
        let out = tracetool()
            .args(["client", &self.addr, "--shutdown"])
            .output()
            .expect("run client --shutdown");
        assert_eq!(
            out.status.code(),
            Some(0),
            "shutdown failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let status = self.child.wait().expect("daemon exit");
        let mut rest = String::new();
        std::io::Read::read_to_string(&mut self.stdout, &mut rest).expect("daemon summary");
        (status.code(), rest)
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Everything from the first verdict line onward — the section required
/// to be byte-identical between the one-shot and streamed paths.
fn verdict_section(stdout: &str) -> &str {
    let at = stdout
        .find("determinacy")
        .unwrap_or_else(|| panic!("no verdict in:\n{stdout}"));
    let line_start = stdout[..at].rfind('\n').map_or(0, |i| i + 1);
    &stdout[line_start..]
}

/// One-shot `tracetool analyze FILE` → (verdict section, exit code).
fn one_shot(file: &PathBuf) -> (String, Option<i32>) {
    let out = tracetool()
        .arg("analyze")
        .arg(file)
        .output()
        .expect("run analyze");
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    (verdict_section(&stdout).to_string(), out.status.code())
}

/// `tracetool client ADDR FILE <extra>` → (stdout, exit code).
fn client(addr: &str, file: &PathBuf, extra: &[&str]) -> (String, Option<i32>) {
    let out = tracetool()
        .arg("client")
        .arg(addr)
        .arg(file)
        .args(extra)
        .output()
        .expect("run client");
    assert!(
        out.stderr.is_empty(),
        "client stderr for {file:?}: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        out.status.code(),
    )
}

#[test]
fn streamed_verdicts_match_one_shot_for_every_fixture() {
    let dir = scratch_dir("oneshot");
    let daemon = Daemon::start(&["--checkpoint-dir", dir.to_str().unwrap()]);

    let mut finished = 0u64;
    for file in fixtures() {
        let (want, want_code) = one_shot(&file);

        // Default chunking (the fixture's own framed chunks) and forced
        // re-chunking both must agree with one-shot, serially and under
        // the sharded backend.
        for extra in [
            &[][..],
            &["--chunk-events", "8"][..],
            &["--shards", "4", "--chunk-events", "8"][..],
        ] {
            let (stdout, code) = client(&daemon.addr, &file, extra);
            assert_eq!(
                verdict_section(&stdout),
                want,
                "streamed vs one-shot verdict for {file:?} with {extra:?}"
            );
            assert_eq!(code, want_code, "exit code for {file:?} with {extra:?}");
            finished += 1;
        }
    }

    let (code, summary) = daemon.shutdown();
    assert_eq!(code, Some(0), "daemon drain: {summary}");
    assert!(
        summary.contains(&format!("{finished} session(s) finished")),
        "summary: {summary}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn four_concurrent_clients_share_one_daemon() {
    let dir = scratch_dir("concurrent");
    let daemon = Daemon::start(&[
        "--workers",
        "4",
        "--checkpoint-dir",
        dir.to_str().unwrap(),
    ]);

    let files: Vec<PathBuf> = fixtures().into_iter().take(4).collect();
    let expected: Vec<(String, Option<i32>)> = files.iter().map(one_shot).collect();

    std::thread::scope(|scope| {
        let handles: Vec<_> = files
            .iter()
            .map(|file| {
                let addr = daemon.addr.clone();
                scope.spawn(move || client(&addr, file, &["--chunk-events", "8"]))
            })
            .collect();
        for ((handle, file), (want, want_code)) in
            handles.into_iter().zip(&files).zip(&expected)
        {
            let (stdout, code) = handle.join().expect("client thread");
            assert_eq!(
                verdict_section(&stdout),
                want,
                "concurrent streamed verdict for {file:?}"
            );
            assert_eq!(code, *want_code, "exit code for {file:?}");
        }
    });

    let (code, summary) = daemon.shutdown();
    assert_eq!(code, Some(0), "daemon drain: {summary}");
    assert!(
        summary.contains("4 session(s) finished"),
        "summary: {summary}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Splits a fixture into per-8-event chunk payloads, exactly as
/// `client --chunk-events 8` does.
fn chunk_payloads(file: &PathBuf) -> Vec<Vec<u8>> {
    let blob = std::fs::read(file).expect("fixture");
    let events: Vec<_> = trace_events(&blob, false)
        .collect::<Result<_, _>>()
        .expect("decode fixture");
    events.chunks(8).map(trace::encode).collect()
}

#[test]
fn killed_client_leaves_a_resumable_checkpoint() {
    let dir = scratch_dir("clientkill");
    let daemon = Daemon::start(&[
        "--resume",
        "--checkpoint-dir",
        dir.to_str().unwrap(),
    ]);
    let file = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/data/prodcons_racy.ftrc");
    let (want, want_code) = one_shot(&file);

    // Speak the wire protocol by hand: open a session, feed three
    // chunks, then vanish without Finish or Suspend — the "kill -9 the
    // client" case. The daemon must suspend the session to disk on EOF.
    let payloads = chunk_payloads(&file);
    assert!(payloads.len() > 4, "need an interior kill point");
    {
        let mut stream = TcpStream::connect(&daemon.addr).expect("connect");
        write_frame(
            &mut stream,
            &Message::Open {
                shards: 0,
                checkpoint_every: 0,
                lenient: false,
                trace_name: "prodcons_racy".to_string(),
            },
        )
        .expect("open");
        assert!(matches!(
            read_frame(&mut stream).expect("hello").expect("hello"),
            Message::Hello {
                resumed_chunks: 0,
                ..
            }
        ));
        for (seq, payload) in payloads.iter().take(3).enumerate() {
            write_frame(
                &mut stream,
                &Message::Chunk {
                    seq: seq as u64,
                    payload: payload.clone(),
                },
            )
            .expect("chunk");
            assert!(matches!(
                read_frame(&mut stream).expect("delta").expect("delta"),
                Message::VerdictDelta { .. }
            ));
        }
        // Drop: abrupt disconnect mid-stream.
    }

    // The daemon suspends on EOF asynchronously; wait for the file.
    let checkpoint = futrace_service::checkpoint_path(&dir, "prodcons_racy");
    for _ in 0..100 {
        if checkpoint.exists() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    assert!(checkpoint.exists(), "daemon never wrote {checkpoint:?}");

    // A fresh client re-streams the full trace under the same session
    // name; the daemon resumes from the checkpoint and the final
    // verdict is byte-identical to an uninterrupted one-shot run.
    let (stdout, code) = client(
        &daemon.addr,
        &file,
        &["--chunk-events", "8", "--name", "prodcons_racy"],
    );
    assert!(
        stdout.contains("resumed: daemon skipped"),
        "expected a resume notice:\n{stdout}"
    );
    assert_eq!(verdict_section(&stdout), want, "resumed verdict");
    assert_eq!(code, want_code);
    assert!(
        !checkpoint.exists(),
        "finish must delete the consumed checkpoint"
    );

    let (dcode, _) = daemon.shutdown();
    assert_eq!(dcode, Some(0));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn killed_daemon_resumes_with_byte_identical_report() {
    let dir = scratch_dir("daemonkill");
    let file = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/data/futtree_racy.ftrc");
    let (want, want_code) = one_shot(&file);

    // First daemon: the client streams three chunks and suspends, so a
    // checkpoint is durably on disk; then the daemon is killed outright
    // (no drain) — the mid-session death case.
    let daemon_a = Daemon::start(&["--checkpoint-dir", dir.to_str().unwrap()]);
    let (stdout, code) = client(
        &daemon_a.addr,
        &file,
        &[
            "--chunk-events",
            "8",
            "--name",
            "futtree",
            "--suspend-after",
            "3",
        ],
    );
    assert_eq!(code, Some(0), "suspended client exits clean:\n{stdout}");
    assert!(
        stdout.contains("suspended after 3 chunk(s)"),
        "suspension notice:\n{stdout}"
    );
    assert!(
        futrace_service::checkpoint_path(&dir, "futtree").exists(),
        "checkpoint on disk"
    );
    drop(daemon_a); // SIGKILL, no drain

    // Second daemon, same checkpoint dir, --resume: the re-streamed
    // session must skip the completed prefix and report the same bytes.
    let daemon_b = Daemon::start(&[
        "--resume",
        "--checkpoint-dir",
        dir.to_str().unwrap(),
    ]);
    let (stdout, code) = client(
        &daemon_b.addr,
        &file,
        &["--chunk-events", "8", "--name", "futtree"],
    );
    assert!(
        stdout.contains("resumed: daemon skipped"),
        "expected a resume notice:\n{stdout}"
    );
    assert_eq!(verdict_section(&stdout), want, "resumed verdict");
    assert_eq!(code, want_code);

    let (dcode, summary) = daemon_b.shutdown();
    assert_eq!(dcode, Some(0), "daemon drain: {summary}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn draining_daemon_suspends_inflight_sessions() {
    let dir = scratch_dir("drain");
    let daemon = Daemon::start(&["--checkpoint-dir", dir.to_str().unwrap()]);
    let file = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/data/actor_racy.ftrc");

    // Park a half-fed session on the daemon (no Finish yet), then drain.
    let mut stream = TcpStream::connect(&daemon.addr).expect("connect");
    write_frame(
        &mut stream,
        &Message::Open {
            shards: 0,
            checkpoint_every: 0,
            lenient: false,
            trace_name: "parked".to_string(),
        },
    )
    .expect("open");
    read_frame(&mut stream).expect("hello");
    for (seq, payload) in chunk_payloads(&file).iter().take(3).enumerate() {
        write_frame(
            &mut stream,
            &Message::Chunk {
                seq: seq as u64,
                payload: payload.clone(),
            },
        )
        .expect("chunk");
        read_frame(&mut stream).expect("delta");
    }

    let (code, summary) = daemon.shutdown();
    assert_eq!(code, Some(0), "drain exit: {summary}");
    // The parked session was suspended, not dropped: the drain summary
    // counts it and its checkpoint file exists for `serve --resume`.
    assert!(summary.contains("1 suspended"), "summary: {summary}");
    assert!(
        futrace_service::checkpoint_path(&dir, "parked").exists(),
        "parked checkpoint"
    );
    // The parked client sees the Suspended notice.
    match read_frame(&mut stream) {
        Ok(Some(Message::Suspended { chunks })) => assert_eq!(chunks, 3),
        other => panic!("expected Suspended, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}
