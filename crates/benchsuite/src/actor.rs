//! Actor-style request/response — per-actor state serialized by future
//! chains, with client tasks joining individual responses.
//!
//! `requests` futures target `actors` stateful actors round-robin. Each
//! request `get()`s the *previous* request to the same actor before
//! touching the actor's state cell — the future chain IS the actor's
//! mailbox ordering, so mutable state is race-free without locks. Client
//! async tasks (inside an explicit `finish`) `get()` the individual
//! request futures they care about and read the response cells. Both
//! edge kinds are sibling `get()`s — **non-tree joins** — and they
//! interleave two different join disciplines (per-actor chains crossing
//! request-to-client edges), so the DTRG reachability structure is an
//! irregular braid rather than a pipeline.
//!
//! `plant_race` drops the per-actor chain `get()`: requests to the same
//! actor then race on its state cell (read/write and write/write).

use futrace_runtime::memory::SharedArray;
use futrace_runtime::TaskCtx;

/// Problem size for the actor benchmark.
#[derive(Clone, Copy, Debug)]
pub struct ActorParams {
    /// Number of stateful actors (≥ 1).
    pub actors: usize,
    /// Number of requests, round-robin over the actors (> `actors`).
    pub requests: usize,
    /// Number of client tasks collecting responses (≥ 1).
    pub clients: usize,
    /// Per-request compute rounds (work knob).
    pub rounds: u32,
    /// Input seed.
    pub seed: u64,
}

impl ActorParams {
    /// Laptop-scale configuration.
    pub fn scaled() -> Self {
        ActorParams {
            actors: 16,
            requests: 8192,
            clients: 8,
            rounds: 8,
            seed: 0xAC70,
        }
    }

    /// Minimal configuration for unit tests.
    pub fn tiny() -> Self {
        ActorParams {
            actors: 3,
            requests: 9,
            clients: 2,
            rounds: 4,
            seed: 0xAC70,
        }
    }

    fn validate(&self) {
        assert!(self.actors >= 1 && self.clients >= 1);
        assert!(
            self.requests > self.actors,
            "every actor chain needs at least one link"
        );
    }
}

/// Request payload for request `r`.
fn payload(seed: u64, r: usize) -> u64 {
    (r as u64 ^ seed).wrapping_mul(0x2545_F491_4F6C_DD1D) | 1
}

/// The per-request kernel: fold the payload into the actor state.
fn work(mut x: u64, rounds: u32) -> u64 {
    for _ in 0..rounds {
        x = x
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .rotate_left(19)
            .wrapping_add(0x7F4A_7C15);
    }
    x
}

/// Reference (serial-elision) implementation: the per-client digests.
pub fn actor_seq(p: &ActorParams) -> Vec<u64> {
    p.validate();
    let mut state = vec![0u64; p.actors];
    let mut resp = vec![0u64; p.requests];
    for r in 0..p.requests {
        let a = r % p.actors;
        let v = work(state[a] ^ payload(p.seed, r), p.rounds);
        state[a] = v;
        resp[r] = v;
    }
    let mut out = vec![0u64; p.clients];
    for (r, &v) in resp.iter().enumerate() {
        let c = r % p.clients;
        out[c] = out[c].rotate_left(7) ^ v;
    }
    out
}

/// DSL run; returns the per-client digest array.
pub fn actor_run<C: TaskCtx>(ctx: &mut C, p: &ActorParams, plant_race: bool) -> SharedArray<u64> {
    p.validate();
    let state = ctx.shared_array(p.actors, 0u64, "actor.state");
    let resp = ctx.shared_array(p.requests, 0u64, "actor.resp");
    let out = ctx.shared_array(p.clients, 0u64, "actor.out");
    let rounds = p.rounds;
    let seed = p.seed;

    // Request futures; last[a] is the tail of actor a's mailbox chain.
    let mut handles: Vec<C::Handle<()>> = Vec::with_capacity(p.requests);
    let mut last: Vec<Option<C::Handle<()>>> = vec![None; p.actors];
    for r in 0..p.requests {
        let a = r % p.actors;
        let prev = if plant_race { None } else { last[a].clone() };
        let state = state.clone();
        let resp = resp.clone();
        let h = ctx.future(move |ctx| {
            if let Some(h) = &prev {
                ctx.get(h); // non-tree join: the actor's mailbox order
            }
            let s = state.read(ctx, a);
            let v = work(s ^ payload(seed, r), rounds);
            state.write(ctx, a, v);
            resp.write(ctx, r, v);
        });
        last[a] = Some(h.clone());
        handles.push(h);
    }

    // Clients collect their responses inside an explicit finish, so main
    // is ordered after every digest write (and, transitively through the
    // clients' gets, after every request).
    {
        let handles = &handles;
        let resp = &resp;
        let out = &out;
        ctx.finish(|ctx| {
            for c in 0..p.clients {
                let mine: Vec<(usize, C::Handle<()>)> = (c..p.requests)
                    .step_by(p.clients)
                    .map(|r| (r, handles[r].clone()))
                    .collect();
                let resp = resp.clone();
                let out = out.clone();
                ctx.async_task(move |ctx| {
                    let mut acc = 0u64;
                    for (r, h) in &mine {
                        ctx.get(h); // non-tree join: response edge
                        acc = acc.rotate_left(7) ^ resp.read(ctx, *r);
                    }
                    out.write(ctx, c, acc);
                });
            }
        });
    }
    for c in 0..p.clients {
        let _ = out.read(ctx, c); // ordered by the finish join
    }
    out
}

/// Expected dynamic task count: the requests plus the clients.
pub fn expected_tasks(p: &ActorParams) -> u64 {
    (p.requests + p.clients) as u64
}

/// Expected non-tree joins: one chain edge per request after each
/// actor's first (`requests − actors`) plus one response edge per
/// request (`requests`).
pub fn expected_nt_joins(p: &ActorParams) -> u64 {
    (p.requests - p.actors + p.requests) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::detect_races_with_stats;
    use futrace_runtime::run_parallel;

    #[test]
    fn dsl_matches_reference_and_is_race_free() {
        let p = ActorParams::tiny();
        let want = actor_seq(&p);
        let (rep, stats) = detect_races_with_stats(|ctx| {
            let out = actor_run(ctx, &p, false);
            assert_eq!(out.snapshot(), want);
        });
        assert!(!rep.has_races());
        assert_eq!(stats.tasks, expected_tasks(&p));
        assert_eq!(stats.nt_joins(), expected_nt_joins(&p));
    }

    #[test]
    fn planted_race_is_detected() {
        let p = ActorParams::tiny();
        let (rep, _) = detect_races_with_stats(|ctx| {
            let _ = actor_run(ctx, &p, true);
        });
        assert!(
            rep.has_races(),
            "unchained requests must race on the actor state"
        );
    }

    #[test]
    fn parallel_execution_matches_reference() {
        let p = ActorParams::tiny();
        let want = actor_seq(&p);
        let got = run_parallel(4, |ctx| actor_run(ctx, &p, false).snapshot()).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn single_client_edge_case() {
        let p = ActorParams {
            actors: 2,
            requests: 5,
            clients: 1,
            rounds: 2,
            seed: 3,
        };
        let want = actor_seq(&p);
        let (rep, stats) = detect_races_with_stats(|ctx| {
            let out = actor_run(ctx, &p, false);
            assert_eq!(out.snapshot(), want);
        });
        assert!(!rep.has_races());
        assert_eq!(stats.nt_joins(), expected_nt_joins(&p));
    }
}
