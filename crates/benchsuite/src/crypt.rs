//! Crypt — IDEA encryption (JGF benchmark suite).
//!
//! Encrypts a pseudorandom plaintext with the IDEA block cipher, decrypts
//! the ciphertext, and validates the round trip. The cipher is implemented
//! in full: 128-bit key → 52 16-bit encryption subkeys, the inverse
//! (decryption) schedule via multiplicative inverses modulo 65537, and the
//! 8.5-round block function.
//!
//! Parallel structure (as in the HJ port the paper measures): **one task
//! per 8-byte block per pass** — `2 × ⌈bytes/8⌉` dynamic tasks (encrypt +
//! decrypt), zero non-tree joins. Each task reads its 8 plaintext bytes
//! and the 52 subkeys from shared memory and writes 8 output bytes
//! (~92 shared accesses per 8-byte block), reproducing Table 2's
//! "≈ 100× less work per task than the other benchmarks" property that
//! makes Crypt the worst-slowdown async-finish row.

use futrace_runtime::memory::SharedArray;
use futrace_runtime::TaskCtx;

/// Problem size for the Crypt benchmark.
#[derive(Clone, Copy, Debug)]
pub struct CryptParams {
    /// Plaintext size in bytes (JGF Size C = 50,000,000).
    pub bytes: usize,
    /// RNG seed for plaintext and key generation.
    pub seed: u64,
}

impl CryptParams {
    /// The paper's configuration (JGF Size C).
    pub fn paper() -> Self {
        CryptParams {
            bytes: 50_000_000,
            seed: 0x1dea,
        }
    }

    /// Laptop-scale configuration.
    pub fn scaled() -> Self {
        CryptParams {
            bytes: 200_000,
            seed: 0x1dea,
        }
    }

    /// Minimal configuration for unit tests.
    pub fn tiny() -> Self {
        CryptParams {
            bytes: 256,
            seed: 0x1dea,
        }
    }

    /// Number of 8-byte blocks per pass.
    pub fn blocks(&self) -> usize {
        self.bytes.div_ceil(8)
    }
}

// --- The IDEA cipher (substrate) -------------------------------------------

/// Multiplication modulo 65537 with the IDEA convention 0 ≡ 65536.
fn mul(a: u16, b: u16) -> u16 {
    let a = a as u32;
    let b = b as u32;
    if a == 0 {
        // 65536 * b ≡ -b ≡ 65537 - b (mod 65537); map back to u16.
        (65537 - b) as u16
    } else if b == 0 {
        (65537 - a) as u16
    } else {
        let p = a * b % 65537;
        p as u16 // p == 65536 is impossible: a,b < 65537 and nonzero
    }
}

/// Multiplicative inverse modulo 65537 (extended Euclid), with 0 ≡ 65536.
fn inv(x: u16) -> u16 {
    if x <= 1 {
        return x; // 0 and 1 are self-inverse under the IDEA convention
    }
    let modulus: i64 = 65537;
    let (mut t, mut new_t): (i64, i64) = (0, 1);
    let (mut r, mut new_r): (i64, i64) = (modulus, x as i64);
    while new_r != 0 {
        let q = r / new_r;
        (t, new_t) = (new_t, t - q * new_t);
        (r, new_r) = (new_r, r - q * new_r);
    }
    debug_assert_eq!(r, 1, "65537 is prime");
    (t.rem_euclid(modulus)) as u16
}

/// Expands a 128-bit user key into the 52 encryption subkeys.
pub fn encryption_schedule(user_key: &[u16; 8]) -> [u16; 52] {
    let mut z = [0u16; 52];
    z[..8].copy_from_slice(user_key);
    // Each successive batch of 8 subkeys is the 128-bit key rotated left
    // by 25 more bits.
    for i in 8..52 {
        let prev_batch = i / 8 - 1;
        let j = i % 8;
        // key words of this batch come from rotating the previous batch.
        let a = z[prev_batch * 8 + (j + 1) % 8];
        let b = z[prev_batch * 8 + (j + 2) % 8];
        z[i] = (a << 9) | (b >> 7);
    }
    z
}

/// Derives the 52 decryption subkeys from the encryption schedule.
pub fn decryption_schedule(z: &[u16; 52]) -> [u16; 52] {
    let mut dk = [0u16; 52];
    // Output transform keys become round-1 keys, inverted.
    dk[0] = inv(z[48]);
    dk[1] = z[49].wrapping_neg();
    dk[2] = z[50].wrapping_neg();
    dk[3] = inv(z[51]);
    dk[4] = z[46];
    dk[5] = z[47];
    let mut di = 6;
    for round in 1..8 {
        let zi = 48 - round * 6;
        dk[di] = inv(z[zi]);
        dk[di + 1] = z[zi + 2].wrapping_neg();
        dk[di + 2] = z[zi + 1].wrapping_neg();
        dk[di + 3] = inv(z[zi + 3]);
        dk[di + 4] = z[zi - 2];
        dk[di + 5] = z[zi - 1];
        di += 6;
    }
    dk[di] = inv(z[0]);
    dk[di + 1] = z[1].wrapping_neg();
    dk[di + 2] = z[2].wrapping_neg();
    dk[di + 3] = inv(z[3]);
    dk
}

/// Encrypts/decrypts one 8-byte block with the given schedule.
pub fn idea_block(input: [u8; 8], key: &[u16; 52]) -> [u8; 8] {
    let mut x1 = u16::from_be_bytes([input[0], input[1]]);
    let mut x2 = u16::from_be_bytes([input[2], input[3]]);
    let mut x3 = u16::from_be_bytes([input[4], input[5]]);
    let mut x4 = u16::from_be_bytes([input[6], input[7]]);
    let mut k = 0;
    for _ in 0..8 {
        x1 = mul(x1, key[k]);
        x2 = x2.wrapping_add(key[k + 1]);
        x3 = x3.wrapping_add(key[k + 2]);
        x4 = mul(x4, key[k + 3]);
        let t1 = x1 ^ x3;
        let t2 = x2 ^ x4;
        let t1 = mul(t1, key[k + 4]);
        let t2 = t2.wrapping_add(t1);
        let t2 = mul(t2, key[k + 5]);
        let t1 = t1.wrapping_add(t2);
        x1 ^= t2;
        x4 ^= t1;
        let tmp = x2 ^ t1;
        x2 = x3 ^ t2;
        x3 = tmp;
        k += 6;
    }
    let y1 = mul(x1, key[48]);
    let y2 = x3.wrapping_add(key[49]);
    let y3 = x2.wrapping_add(key[50]);
    let y4 = mul(x4, key[51]);
    let mut out = [0u8; 8];
    out[0..2].copy_from_slice(&y1.to_be_bytes());
    out[2..4].copy_from_slice(&y2.to_be_bytes());
    out[4..6].copy_from_slice(&y3.to_be_bytes());
    out[6..8].copy_from_slice(&y4.to_be_bytes());
    out
}

/// Deterministic key + plaintext for a parameter set.
pub fn workload(p: &CryptParams) -> ([u16; 8], Vec<u8>) {
    let mut plain = vec![0u8; p.blocks() * 8];
    futrace_util::rng::fill_bytes(p.seed, &mut plain);
    let mut key_bytes = [0u8; 16];
    futrace_util::rng::fill_bytes(p.seed ^ KEY_SEED_SALT, &mut key_bytes);
    let mut key = [0u16; 8];
    for (i, w) in key.iter_mut().enumerate() {
        *w = u16::from_be_bytes([key_bytes[2 * i], key_bytes[2 * i + 1]]);
    }
    (key, plain)
}

/// Salt separating the key stream from the plaintext stream.
const KEY_SEED_SALT: u64 = 0x5eed;

/// Reference (serial-elision) implementation: encrypt then decrypt,
/// returning `(ciphertext, roundtrip)`.
pub fn crypt_seq(p: &CryptParams) -> (Vec<u8>, Vec<u8>) {
    let (key, plain) = workload(p);
    let z = encryption_schedule(&key);
    let dk = decryption_schedule(&z);
    let mut cipher = vec![0u8; plain.len()];
    for (i, block) in plain.chunks_exact(8).enumerate() {
        let out = idea_block(block.try_into().unwrap(), &z);
        cipher[i * 8..i * 8 + 8].copy_from_slice(&out);
    }
    let mut round = vec![0u8; plain.len()];
    for (i, block) in cipher.chunks_exact(8).enumerate() {
        let out = idea_block(block.try_into().unwrap(), &dk);
        round[i * 8..i * 8 + 8].copy_from_slice(&out);
    }
    (cipher, round)
}

/// Output arrays of a DSL run.
pub struct CryptOut {
    /// Ciphertext bytes.
    pub cipher: SharedArray<u8>,
    /// Round-tripped plaintext bytes.
    pub round: SharedArray<u8>,
}

/// Which parallel construct to use for the per-block tasks.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CryptVariant {
    /// Crypt-af: `finish { async per block }` per pass.
    AsyncFinish,
    /// Crypt-future: a future per block, joined by the main task, with the
    /// handle-table traffic the paper measures.
    Future,
}

/// One cipher pass (encrypt or decrypt) over `src` into `dst` using the
/// shared `keys` array, one task per 8-byte block.
fn pass<C: TaskCtx>(
    ctx: &mut C,
    variant: CryptVariant,
    src: &SharedArray<u8>,
    dst: &SharedArray<u8>,
    keys: &SharedArray<u16>,
    handle_table: &SharedArray<u32>,
) {
    let blocks = src.len() / 8;
    // The spawning task reads the 52 subkeys while constructing each block
    // task (the HJ translation captures the schedule in the task object):
    // 52 reads per task attributed to the spawner, whose reader entry in
    // the key cells' shadow state is simply replaced on each read — the
    // reader sets never grow with the task count.
    let read_key = |ctx: &mut C, keys: &SharedArray<u16>| {
        let mut key = [0u16; 52];
        for (j, k) in key.iter_mut().enumerate() {
            *k = keys.read(ctx, j);
        }
        key
    };
    let body = |src: SharedArray<u8>, dst: SharedArray<u8>, key: [u16; 52], b: usize| {
        move |ctx: &mut C| {
            let mut input = [0u8; 8];
            for (j, v) in input.iter_mut().enumerate() {
                *v = src.read(ctx, b * 8 + j);
            }
            let out = idea_block(input, &key);
            for (j, v) in out.iter().enumerate() {
                dst.write(ctx, b * 8 + j, *v);
            }
        }
    };
    match variant {
        CryptVariant::AsyncFinish => {
            ctx.finish(|ctx| {
                for b in 0..blocks {
                    let key = read_key(ctx, keys);
                    ctx.async_task(body(src.clone(), dst.clone(), key, b));
                }
            });
        }
        CryptVariant::Future => {
            let mut handles = Vec::with_capacity(blocks);
            for b in 0..blocks {
                let key = read_key(ctx, keys);
                let h = ctx.future(body(src.clone(), dst.clone(), key, b));
                handle_table.write(ctx, b, b as u32);
                handles.push(h);
            }
            for (b, h) in handles.iter().enumerate() {
                let _ = handle_table.read(ctx, b);
                ctx.get(h);
            }
        }
    }
}

/// The full benchmark under the DSL: encrypt pass then decrypt pass.
pub fn crypt_run<C: TaskCtx>(ctx: &mut C, p: &CryptParams, variant: CryptVariant) -> CryptOut {
    let (key, plain_bytes) = workload(p);
    let z = encryption_schedule(&key);
    let dk = decryption_schedule(&z);

    let plain = ctx.shared_array(plain_bytes.len(), 0u8, "crypt.plain");
    for (i, &v) in plain_bytes.iter().enumerate() {
        plain.poke(i, v); // input seeding, not part of the program
    }
    let cipher = ctx.shared_array(plain_bytes.len(), 0u8, "crypt.cipher");
    let round = ctx.shared_array(plain_bytes.len(), 0u8, "crypt.round");
    let zs = ctx.shared_array(52, 0u16, "crypt.z");
    let dks = ctx.shared_array(52, 0u16, "crypt.dk");
    for i in 0..52 {
        zs.poke(i, z[i]);
        dks.poke(i, dk[i]);
    }
    let handle_table = ctx.shared_array(p.blocks().max(1), 0u32, "crypt.handles");

    pass(ctx, variant, &plain, &cipher, &zs, &handle_table);
    pass(ctx, variant, &cipher, &round, &dks, &handle_table);
    CryptOut { cipher, round }
}

/// Expected dynamic task count: `2 × blocks`.
pub fn expected_tasks(p: &CryptParams) -> u64 {
    2 * p.blocks() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::detect_races_with_stats;
    use futrace_runtime::{run_parallel, run_serial, NullMonitor};

    #[test]
    fn mul_convention() {
        assert_eq!(mul(0, 1), 65536u32 as u16); // 65537 - 1 = 65536 -> 0
        assert_eq!(mul(1, 1), 1);
        assert_eq!(mul(2, 3), 6);
        // 0 represents 65536 ≡ -1: (-1) * (-1) = 1.
        assert_eq!(mul(0, 0), 1);
    }

    #[test]
    fn inverse_is_inverse() {
        for x in [1u16, 2, 3, 5, 1000, 65535] {
            assert_eq!(mul(x, inv(x)), 1, "x = {x}");
        }
        assert_eq!(inv(0), 0, "0 (≡65536 ≡ -1) is self-inverse");
        assert_eq!(mul(0, inv(0)), 1);
    }

    #[test]
    fn block_roundtrip() {
        let key: [u16; 8] = [1, 2, 3, 4, 5, 6, 7, 8];
        let z = encryption_schedule(&key);
        let dk = decryption_schedule(&z);
        let plain = [10u8, 20, 30, 40, 50, 60, 70, 80];
        let cipher = idea_block(plain, &z);
        assert_ne!(cipher, plain);
        let round = idea_block(cipher, &dk);
        assert_eq!(round, plain, "decrypt(encrypt(x)) == x");
    }

    #[test]
    fn roundtrip_many_random_blocks() {
        let (key, plain) = workload(&CryptParams::tiny());
        let z = encryption_schedule(&key);
        let dk = decryption_schedule(&z);
        for block in plain.chunks_exact(8) {
            let b: [u8; 8] = block.try_into().unwrap();
            assert_eq!(idea_block(idea_block(b, &z), &dk), b);
        }
    }

    #[test]
    fn reference_roundtrips() {
        let p = CryptParams::tiny();
        let (_, plain) = workload(&p);
        let (cipher, round) = crypt_seq(&p);
        assert_ne!(cipher, plain);
        assert_eq!(round, plain);
    }

    #[test]
    fn af_variant_matches_reference_and_is_race_free() {
        let p = CryptParams::tiny();
        let (ref_cipher, ref_round) = crypt_seq(&p);
        let (rep, stats) = detect_races_with_stats(|ctx| {
            let out = crypt_run(ctx, &p, CryptVariant::AsyncFinish);
            assert_eq!(out.cipher.snapshot(), ref_cipher);
            assert_eq!(out.round.snapshot(), ref_round);
        });
        assert!(!rep.has_races());
        assert_eq!(stats.tasks, expected_tasks(&p));
        assert_eq!(stats.nt_joins(), 0);
        // 52 key reads + 8 input reads + 8 output writes per task.
        assert_eq!(stats.shared_mem(), 68 * expected_tasks(&p));
    }

    #[test]
    fn future_variant_matches_reference_and_adds_handle_traffic() {
        let p = CryptParams::tiny();
        let (ref_cipher, ref_round) = crypt_seq(&p);
        let (rep, stats) = detect_races_with_stats(|ctx| {
            let out = crypt_run(ctx, &p, CryptVariant::Future);
            assert_eq!(out.cipher.snapshot(), ref_cipher);
            assert_eq!(out.round.snapshot(), ref_round);
        });
        assert!(!rep.has_races());
        assert_eq!(stats.tasks, expected_tasks(&p));
        assert_eq!(stats.nt_joins(), 0, "main's gets are tree joins");
        assert_eq!(stats.shared_mem(), (68 + 2) * expected_tasks(&p));
    }

    #[test]
    fn parallel_execution_roundtrips() {
        let p = CryptParams::tiny();
        let (_, plain) = workload(&p);
        let round = run_parallel(4, |ctx| {
            let out = crypt_run(ctx, &p, CryptVariant::Future);
            out.round.snapshot()
        })
        .unwrap();
        assert_eq!(round, plain);
    }

    #[test]
    fn serial_dsl_equals_reference_under_null_monitor() {
        let p = CryptParams::tiny();
        let (ref_cipher, _) = crypt_seq(&p);
        let mut mon = NullMonitor;
        let cipher = run_serial(&mut mon, |ctx| {
            crypt_run(ctx, &p, CryptVariant::AsyncFinish).cipher.snapshot()
        });
        assert_eq!(cipher, ref_cipher);
    }
}

#[cfg(test)]
mod published_vector {
    use super::*;

    /// The classic IDEA reference vector (Lai & Massey):
    /// key = (1,2,3,4,5,6,7,8) as 16-bit words,
    /// plaintext = (0,1,2,3) → ciphertext = (0x11FB, 0xED2B, 0x0198, 0x6DE5).
    #[test]
    fn lai_massey_test_vector() {
        let key: [u16; 8] = [1, 2, 3, 4, 5, 6, 7, 8];
        let z = encryption_schedule(&key);
        let plain: [u8; 8] = [0, 0, 0, 1, 0, 2, 0, 3];
        let cipher = idea_block(plain, &z);
        assert_eq!(
            cipher,
            [0x11, 0xFB, 0xED, 0x2B, 0x01, 0x98, 0x6D, 0xE5],
            "got {cipher:02X?}"
        );
        // And the inverse schedule round-trips it.
        let dk = decryption_schedule(&z);
        assert_eq!(idea_block(cipher, &dk), plain);
    }
}
