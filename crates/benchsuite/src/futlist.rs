//! Future-linked list — a chain of futures each joining its predecessor,
//! plus detached readers joining interior nodes.
//!
//! Node `i` is a future that `get()`s node `i−1`, reads its cell, and
//! writes its own: a linked list whose links are future handles (the
//! ADT-style future pattern of the pipelining literature). Every link is
//! a sibling `get()` — a **non-tree join** — and the chain has length
//! `n`, so the detector's `Precede` traversal and the `lsa` maintenance
//! see the deepest non-tree structure in the suite. A handful of async
//! *reader* tasks join interior nodes directly, which keeps multiple
//! entries alive in the per-location reader lists (the paper's
//! `#AvgReaders` pressure).
//!
//! `plant_race` drops every link `get()` while keeping the predecessor
//! reads: adjacent nodes then race on each cell.

use futrace_runtime::memory::SharedArray;
use futrace_runtime::TaskCtx;

/// Problem size for the future-linked-list benchmark.
#[derive(Clone, Copy, Debug)]
pub struct FutListParams {
    /// Chain length (≥ 2).
    pub n: usize,
    /// Number of detached reader tasks joining interior nodes.
    pub readers: usize,
    /// Per-node compute rounds (work knob).
    pub rounds: u32,
    /// Input seed.
    pub seed: u64,
}

impl FutListParams {
    /// Laptop-scale configuration.
    pub fn scaled() -> Self {
        FutListParams {
            n: 16_384,
            readers: 8,
            rounds: 8,
            seed: 0x1157,
        }
    }

    /// Minimal configuration for unit tests.
    pub fn tiny() -> Self {
        FutListParams {
            n: 6,
            readers: 2,
            rounds: 4,
            seed: 0x1157,
        }
    }

    fn validate(&self) {
        assert!(self.n >= 2, "a list needs at least one link");
    }
}

/// The per-node kernel: a few rounds of integer mixing.
fn work(mut x: u64, rounds: u32) -> u64 {
    for _ in 0..rounds {
        x = x
            .wrapping_mul(0xD6E8_FEB8_6659_FD93)
            .rotate_left(31)
            .wrapping_add(0x1657_667B);
    }
    x
}

/// Reference (serial-elision) implementation: all node values.
pub fn futlist_seq(p: &FutListParams) -> Vec<u64> {
    p.validate();
    let mut cells = vec![0u64; p.n];
    cells[0] = work(p.seed, p.rounds);
    for i in 1..p.n {
        cells[i] = work(cells[i - 1] ^ i as u64, p.rounds);
    }
    cells
}

/// Index of reader `k`'s target node (spread over the interior).
fn reader_target(p: &FutListParams, k: usize) -> usize {
    ((k + 1) * p.n / (p.readers + 1)).min(p.n - 1)
}

/// DSL run; returns the node cell array.
pub fn futlist_run<C: TaskCtx>(
    ctx: &mut C,
    p: &FutListParams,
    plant_race: bool,
) -> SharedArray<u64> {
    p.validate();
    let cells = ctx.shared_array(p.n, 0u64, "flist.cells");
    let rounds = p.rounds;
    let seed = p.seed;

    let mut handles: Vec<C::Handle<()>> = Vec::with_capacity(p.n);
    for i in 0..p.n {
        let cells = cells.clone();
        let prev = (i > 0 && !plant_race).then(|| handles[i - 1].clone());
        let h = ctx.future(move |ctx| {
            if let Some(h) = &prev {
                ctx.get(h); // the list link: a sibling (non-tree) join
            }
            let v = if i == 0 {
                work(seed, rounds)
            } else {
                let in_v = cells.read(ctx, i - 1);
                work(in_v ^ i as u64, rounds)
            };
            cells.write(ctx, i, v);
        });
        handles.push(h);
    }

    // Detached readers: async tasks joining interior nodes by handle.
    for k in 0..p.readers {
        let t = reader_target(p, k);
        let h = handles[t].clone();
        let cells = cells.clone();
        ctx.async_task(move |ctx| {
            ctx.get(&h); // async-on-future join: also non-tree
            let _ = cells.read(ctx, t);
        });
    }

    ctx.get(&handles[p.n - 1]); // tree join: main awaits its own child
    cells
}

/// Expected dynamic task count: `n` nodes plus the readers.
pub fn expected_tasks(p: &FutListParams) -> u64 {
    (p.n + p.readers) as u64
}

/// Expected non-tree joins: one link per node after the head plus one
/// join per detached reader.
pub fn expected_nt_joins(p: &FutListParams) -> u64 {
    (p.n - 1 + p.readers) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::detect_races_with_stats;
    use futrace_runtime::run_parallel;

    #[test]
    fn dsl_matches_reference_and_is_race_free() {
        let p = FutListParams::tiny();
        let want = futlist_seq(&p);
        let (rep, stats) = detect_races_with_stats(|ctx| {
            let out = futlist_run(ctx, &p, false);
            assert_eq!(out.snapshot(), want);
        });
        assert!(!rep.has_races());
        assert_eq!(stats.tasks, expected_tasks(&p));
        assert_eq!(stats.nt_joins(), expected_nt_joins(&p));
    }

    #[test]
    fn planted_race_is_detected() {
        let p = FutListParams::tiny();
        let (rep, _) = detect_races_with_stats(|ctx| {
            let _ = futlist_run(ctx, &p, true);
        });
        assert!(rep.has_races(), "unlinked nodes must race on the cells");
    }

    #[test]
    fn parallel_execution_matches_reference() {
        let p = FutListParams::tiny();
        let want = futlist_seq(&p);
        let got = run_parallel(4, |ctx| futlist_run(ctx, &p, false).snapshot()).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn zero_readers_edge_case() {
        let p = FutListParams {
            n: 3,
            readers: 0,
            rounds: 2,
            seed: 9,
        };
        let (rep, stats) = detect_races_with_stats(|ctx| {
            let _ = futlist_run(ctx, &p, false);
        });
        assert!(!rep.has_races());
        assert_eq!(stats.nt_joins(), 2);
    }
}
