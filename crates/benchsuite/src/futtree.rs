//! Future-linked binary tree — a bottom-up combine tree whose internal
//! edges are future handles.
//!
//! `leaves` leaf futures each write one cell; internal node futures
//! `get()` both children, read their cells, and write the combined value
//! to their own cell (heap layout, root at index 0). Every internal edge
//! is a sibling `get()` — a **non-tree join** — because all `2·leaves−1`
//! futures are spawned by main, so the reduction tree exists only in the
//! future-edge structure, never in the spawn tree. This is the shape
//! where SP-based detectors must serialize or mis-order the two child
//! subtrees, while DTRG's `nt`/`lsa` machinery keeps them concurrent.
//!
//! `plant_race` drops the *left* child `get()` at every internal node
//! while keeping the left-cell read: parent and left child then race.

use futrace_runtime::memory::SharedArray;
use futrace_runtime::TaskCtx;

/// Problem size for the future-tree benchmark.
#[derive(Clone, Copy, Debug)]
pub struct FutTreeParams {
    /// Number of leaves (a power of two, ≥ 2).
    pub leaves: usize,
    /// Per-node compute rounds (work knob).
    pub rounds: u32,
    /// Input seed.
    pub seed: u64,
}

impl FutTreeParams {
    /// Laptop-scale configuration.
    pub fn scaled() -> Self {
        FutTreeParams {
            leaves: 8192,
            rounds: 8,
            seed: 0x7EEE,
        }
    }

    /// Minimal configuration for unit tests.
    pub fn tiny() -> Self {
        FutTreeParams {
            leaves: 8,
            rounds: 4,
            seed: 0x7EEE,
        }
    }

    fn validate(&self) {
        assert!(
            self.leaves >= 2 && self.leaves.is_power_of_two(),
            "leaves must be a power of two ≥ 2"
        );
    }
}

/// Leaf payload for leaf index `k`.
fn leaf_value(seed: u64, k: usize) -> u64 {
    (k as u64 ^ seed).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1
}

/// The combine kernel: mix the two child values for a few rounds.
fn combine(a: u64, b: u64, rounds: u32) -> u64 {
    let mut x = a ^ b.rotate_left(17);
    for _ in 0..rounds {
        x = x
            .wrapping_mul(0xBF58_476D_1CE4_E5B9)
            .rotate_left(29)
            .wrapping_add(a ^ b);
    }
    x
}

/// Reference (serial-elision) implementation: every heap cell
/// (`2·leaves−1` entries, root at index 0, leaves at the tail).
pub fn futtree_seq(p: &FutTreeParams) -> Vec<u64> {
    p.validate();
    let n = 2 * p.leaves - 1;
    let first_leaf = p.leaves - 1;
    let mut cells = vec![0u64; n];
    for k in 0..p.leaves {
        cells[first_leaf + k] = leaf_value(p.seed, k);
    }
    for j in (0..first_leaf).rev() {
        cells[j] = combine(cells[2 * j + 1], cells[2 * j + 2], p.rounds);
    }
    cells
}

/// DSL run; returns the heap cell array.
pub fn futtree_run<C: TaskCtx>(
    ctx: &mut C,
    p: &FutTreeParams,
    plant_race: bool,
) -> SharedArray<u64> {
    p.validate();
    let n = 2 * p.leaves - 1;
    let first_leaf = p.leaves - 1;
    let cells = ctx.shared_array(n, 0u64, "ftree.cells");
    let rounds = p.rounds;
    let seed = p.seed;

    // handles[j] = future computing heap cell j; built bottom-up so child
    // handles exist before the parent spawns.
    let mut handles: Vec<Option<C::Handle<()>>> = vec![None; n];
    for k in 0..p.leaves {
        let j = first_leaf + k;
        let cells = cells.clone();
        handles[j] = Some(ctx.future(move |ctx| {
            cells.write(ctx, j, leaf_value(seed, k));
        }));
    }
    for j in (0..first_leaf).rev() {
        let (lc, rc) = (2 * j + 1, 2 * j + 2);
        let left = (!plant_race).then(|| handles[lc].clone().expect("bottom-up order"));
        let right = handles[rc].clone().expect("bottom-up order");
        let cells = cells.clone();
        handles[j] = Some(ctx.future(move |ctx| {
            if let Some(h) = &left {
                ctx.get(h); // non-tree join: sibling future edge
            }
            ctx.get(&right); // non-tree join: sibling future edge
            let a = cells.read(ctx, lc);
            let b = cells.read(ctx, rc);
            cells.write(ctx, j, combine(a, b, rounds));
        }));
    }

    ctx.get(handles[0].as_ref().expect("root exists")); // tree join
    let _ = cells.read(ctx, 0);
    cells
}

/// Expected dynamic task count: one future per heap cell.
pub fn expected_tasks(p: &FutTreeParams) -> u64 {
    (2 * p.leaves - 1) as u64
}

/// Expected non-tree joins: two child edges per internal node.
pub fn expected_nt_joins(p: &FutTreeParams) -> u64 {
    2 * (p.leaves as u64 - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::detect_races_with_stats;
    use futrace_runtime::run_parallel;

    #[test]
    fn dsl_matches_reference_and_is_race_free() {
        let p = FutTreeParams::tiny();
        let want = futtree_seq(&p);
        let (rep, stats) = detect_races_with_stats(|ctx| {
            let out = futtree_run(ctx, &p, false);
            assert_eq!(out.snapshot(), want);
        });
        assert!(!rep.has_races());
        assert_eq!(stats.tasks, expected_tasks(&p));
        assert_eq!(stats.nt_joins(), expected_nt_joins(&p));
    }

    #[test]
    fn planted_race_is_detected() {
        let p = FutTreeParams::tiny();
        let (rep, _) = detect_races_with_stats(|ctx| {
            let _ = futtree_run(ctx, &p, true);
        });
        assert!(
            rep.has_races(),
            "dropping the left-child edge must race parent against child"
        );
    }

    #[test]
    fn parallel_execution_matches_reference() {
        let p = FutTreeParams::tiny();
        let want = futtree_seq(&p);
        let got = run_parallel(4, |ctx| futtree_run(ctx, &p, false).snapshot()).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn two_leaf_edge_case() {
        let p = FutTreeParams {
            leaves: 2,
            rounds: 2,
            seed: 5,
        };
        let want = futtree_seq(&p);
        let (rep, stats) = detect_races_with_stats(|ctx| {
            let out = futtree_run(ctx, &p, false);
            assert_eq!(out.snapshot(), want);
        });
        assert!(!rep.has_races());
        assert_eq!(stats.nt_joins(), 2);
    }
}
