//! Irregular graph traversal — a seeded random DAG evaluated by one
//! future per node, joining an irregular predecessor set.
//!
//! The DAG is generated deterministically from the seed: node `j` draws
//! `1..=maxdeg` predecessors from a sliding window of earlier nodes, so
//! in-degree, fan-out, and edge span all vary node to node. Every node is
//! a future spawned by main; each predecessor edge is a sibling `get()`
//! — a **non-tree join** — so the computation graph is an arbitrary DAG
//! rather than anything series-parallel, the regime the DTRG `nt`/`lsa`
//! machinery exists for. Unlike the pipeline families there is no
//! regular stride for a detector to get lucky with: reachability queries
//! walk genuinely irregular non-tree edges.
//!
//! `plant_race` makes the *last* node skip all of its `get()`s while
//! still reading its predecessors' cells — with no alternative ordering
//! path, every one of those reads races with the predecessor's write.

use futrace_runtime::memory::SharedArray;
use futrace_runtime::TaskCtx;
use futrace_util::rng::Rng;

/// Problem size for the graph-walk benchmark.
#[derive(Clone, Copy, Debug)]
pub struct GraphWalkParams {
    /// Number of DAG nodes (≥ 2).
    pub n: usize,
    /// Maximum in-degree drawn per node (≥ 1).
    pub maxdeg: usize,
    /// Predecessors are drawn from the `window` nodes before `j` (≥ 1).
    pub window: usize,
    /// Per-node compute rounds (work knob).
    pub rounds: u32,
    /// Structure + input seed.
    pub seed: u64,
}

impl GraphWalkParams {
    /// Laptop-scale configuration.
    pub fn scaled() -> Self {
        GraphWalkParams {
            n: 20_000,
            maxdeg: 4,
            window: 64,
            rounds: 8,
            seed: 0xDA6,
        }
    }

    /// Minimal configuration for unit tests.
    pub fn tiny() -> Self {
        GraphWalkParams {
            n: 10,
            maxdeg: 3,
            window: 4,
            rounds: 4,
            seed: 0xDA6,
        }
    }

    fn validate(&self) {
        assert!(self.n >= 2, "a DAG walk needs at least one edge");
        assert!(self.maxdeg >= 1 && self.window >= 1);
    }
}

/// The deterministic DAG: `edges(p)[j]` is node `j`'s sorted, deduplicated
/// predecessor list (empty only for the source node 0).
pub fn edges(p: &GraphWalkParams) -> Vec<Vec<usize>> {
    p.validate();
    let mut rng = Rng::seeded(p.seed ^ 0x6A09_E667_F3BC_C908);
    let mut preds = Vec::with_capacity(p.n);
    preds.push(Vec::new());
    for j in 1..p.n {
        let lo = j.saturating_sub(p.window);
        let deg = 1 + rng.gen_range(0..p.maxdeg as u64) as usize;
        let mut ps: Vec<usize> = (0..deg)
            .map(|_| lo + rng.gen_range(0..(j - lo) as u64) as usize)
            .collect();
        ps.sort_unstable();
        ps.dedup();
        preds.push(ps);
    }
    preds
}

/// The per-node kernel: fold the predecessor values into the node seed.
fn fold(j: usize, seed: u64, inputs: &[u64], rounds: u32) -> u64 {
    let mut x = j as u64 ^ seed;
    for &v in inputs {
        x = x.rotate_left(13) ^ v.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    }
    for _ in 0..rounds {
        x = x
            .wrapping_mul(0xC4CE_B9FE_1A85_EC53)
            .rotate_left(27)
            .wrapping_add(seed);
    }
    x
}

/// Reference (serial-elision) implementation: every node value.
pub fn graphwalk_seq(p: &GraphWalkParams) -> Vec<u64> {
    let preds = edges(p);
    let mut cells = vec![0u64; p.n];
    for j in 0..p.n {
        let inputs: Vec<u64> = preds[j].iter().map(|&k| cells[k]).collect();
        cells[j] = fold(j, p.seed, &inputs, p.rounds);
    }
    cells
}

/// DSL run; returns the node cell array.
pub fn graphwalk_run<C: TaskCtx>(
    ctx: &mut C,
    p: &GraphWalkParams,
    plant_race: bool,
) -> SharedArray<u64> {
    let preds = edges(p);
    let cells = ctx.shared_array(p.n, 0u64, "gw.cells");
    let rounds = p.rounds;
    let seed = p.seed;

    let mut handles: Vec<C::Handle<()>> = Vec::with_capacity(p.n);
    for (j, ps) in preds.into_iter().enumerate() {
        let skip_joins = plant_race && j == p.n - 1;
        let pred_handles: Vec<C::Handle<()>> = if skip_joins {
            Vec::new()
        } else {
            ps.iter().map(|&k| handles[k].clone()).collect()
        };
        let cells = cells.clone();
        let h = ctx.future(move |ctx| {
            for h in &pred_handles {
                ctx.get(h); // non-tree join: irregular sibling edge
            }
            let inputs: Vec<u64> = ps.iter().map(|&k| cells.read(ctx, k)).collect();
            cells.write(ctx, j, fold(j, seed, &inputs, rounds));
        });
        handles.push(h);
    }

    for h in &handles {
        ctx.get(h); // tree joins: main awaits its own children
    }
    cells
}

/// Expected dynamic task count: one future per node.
pub fn expected_tasks(p: &GraphWalkParams) -> u64 {
    p.n as u64
}

/// Expected non-tree joins: the DAG's total edge count.
pub fn expected_nt_joins(p: &GraphWalkParams) -> u64 {
    edges(p).iter().map(|ps| ps.len() as u64).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::detect_races_with_stats;
    use futrace_runtime::run_parallel;

    #[test]
    fn structure_is_deterministic_and_acyclic() {
        let p = GraphWalkParams::tiny();
        let a = edges(&p);
        let b = edges(&p);
        assert_eq!(a, b);
        assert_eq!(a.len(), p.n);
        assert!(a[0].is_empty());
        for (j, ps) in a.iter().enumerate().skip(1) {
            assert!(!ps.is_empty(), "node {j} must have a predecessor");
            assert!(ps.iter().all(|&k| k < j), "edges must point backwards");
        }
    }

    #[test]
    fn dsl_matches_reference_and_is_race_free() {
        let p = GraphWalkParams::tiny();
        let want = graphwalk_seq(&p);
        let (rep, stats) = detect_races_with_stats(|ctx| {
            let out = graphwalk_run(ctx, &p, false);
            assert_eq!(out.snapshot(), want);
        });
        assert!(!rep.has_races());
        assert_eq!(stats.tasks, expected_tasks(&p));
        assert_eq!(stats.nt_joins(), expected_nt_joins(&p));
    }

    #[test]
    fn planted_race_is_detected() {
        let p = GraphWalkParams::tiny();
        let (rep, _) = detect_races_with_stats(|ctx| {
            let _ = graphwalk_run(ctx, &p, true);
        });
        assert!(
            rep.has_races(),
            "the unjoined sink node must race with its predecessors"
        );
    }

    #[test]
    fn parallel_execution_matches_reference() {
        let p = GraphWalkParams::tiny();
        let want = graphwalk_seq(&p);
        let got = run_parallel(4, |ctx| graphwalk_run(ctx, &p, false).snapshot()).unwrap();
        assert_eq!(got, want);
    }
}
