//! Jacobi — 2D 5-point stencil with future-based tile dependences
//! (translated from the Kastors OpenMP-4.0 `depends` version, as in the
//! paper).
//!
//! The grid is split into square tiles. Every sweep creates one future
//! task per tile; a tile task of sweep `s` performs `get()` on the
//! previous sweep's futures of itself and its 4 neighbours before reading
//! the halo — point-to-point synchronization that async-finish cannot
//! express without losing parallelism. All those gets are sibling joins,
//! i.e. **non-tree joins**:
//!
//! > #NTJoins = (sweeps − 1) × (5·t² − boundary) where `t` = tiles/side;
//!
//! for the paper's 2048²/64² grid and 8 sweeps that is
//! `7 × 4992 = 34,944`, matching Table 2 exactly
//! ([`expected_nt_joins`]).

use futrace_runtime::memory::SharedArray;
use futrace_runtime::TaskCtx;

/// Problem size for the Jacobi benchmark.
#[derive(Clone, Copy, Debug)]
pub struct JacobiParams {
    /// Grid side length (points), a multiple of `tile`.
    pub n: usize,
    /// Tile side length.
    pub tile: usize,
    /// Number of sweeps.
    pub sweeps: usize,
    /// Seed for the initial grid contents.
    pub seed: u64,
}

impl JacobiParams {
    /// The paper's configuration: 2048×2048, 64×64 tiles, 8 sweeps
    /// (8 × 32² = 8192 tasks).
    pub fn paper() -> Self {
        JacobiParams {
            n: 2048,
            tile: 64,
            sweeps: 8,
            seed: 0xacab,
        }
    }

    /// Laptop-scale configuration with the same tile topology flavour.
    pub fn scaled() -> Self {
        JacobiParams {
            n: 256,
            tile: 32,
            sweeps: 4,
            seed: 0xacab,
        }
    }

    /// Minimal configuration for unit tests.
    pub fn tiny() -> Self {
        JacobiParams {
            n: 12,
            tile: 4,
            sweeps: 3,
            seed: 0xacab,
        }
    }

    /// Tiles per side.
    pub fn tiles(&self) -> usize {
        assert_eq!(self.n % self.tile, 0, "n must be a multiple of tile");
        self.n / self.tile
    }
}

/// Deterministic initial grid.
pub fn initial_grid(p: &JacobiParams) -> Vec<f64> {
    let mut rng = futrace_util::rng::seeded(p.seed);
    (0..p.n * p.n).map(|_| rng.gen_range(0.0..1.0)).collect()
}

/// One 5-point Jacobi update of interior point `(i, j)` reading `src`.
#[inline]
fn relax(src: &[f64], n: usize, i: usize, j: usize) -> f64 {
    0.25 * (src[(i - 1) * n + j] + src[(i + 1) * n + j] + src[i * n + j - 1] + src[i * n + j + 1])
}

/// Reference (serial-elision) implementation; returns the final grid.
pub fn jacobi_seq(p: &JacobiParams) -> Vec<f64> {
    let n = p.n;
    let mut a = initial_grid(p);
    let mut b = a.clone();
    for _ in 0..p.sweeps {
        for i in 1..n - 1 {
            for j in 1..n - 1 {
                b[i * n + j] = relax(&a, n, i, j);
            }
        }
        std::mem::swap(&mut a, &mut b);
    }
    a
}

/// DSL run; returns the array holding the final grid.
///
/// `plant_race` (tests only) drops the `get()` on the *west* neighbour, so
/// a halo read races with that neighbour's previous-sweep write.
pub fn jacobi_run<C: TaskCtx>(ctx: &mut C, p: &JacobiParams, plant_race: bool) -> SharedArray<f64> {
    let n = p.n;
    let t = p.tiles();
    let init = initial_grid(p);
    let grids = [
        ctx.shared_array(n * n, 0.0f64, "jacobi.a"),
        ctx.shared_array(n * n, 0.0f64, "jacobi.b"),
    ];
    for (i, &v) in init.iter().enumerate() {
        grids[0].poke(i, v); // input seeding
        grids[1].poke(i, v); // boundary values never rewritten
    }

    // futures[tile] from the previous sweep (type-erased to unit values).
    let mut prev: Vec<Option<C::Handle<()>>> = vec![None; t * t];
    for sweep in 0..p.sweeps {
        let src = grids[sweep % 2].clone();
        let dst = grids[(sweep + 1) % 2].clone();
        let mut cur: Vec<Option<C::Handle<()>>> = vec![None; t * t];
        for ti in 0..t {
            for tj in 0..t {
                // Handles of the previous sweep this tile must wait for:
                // itself and the 4 neighbours (those that exist).
                let mut deps: Vec<C::Handle<()>> = Vec::with_capacity(5);
                let mut dep = |h: &Option<C::Handle<()>>| {
                    if let Some(h) = h {
                        deps.push(h.clone());
                    }
                };
                dep(&prev[ti * t + tj]);
                if ti > 0 {
                    dep(&prev[(ti - 1) * t + tj]);
                }
                if ti + 1 < t {
                    dep(&prev[(ti + 1) * t + tj]);
                }
                if !plant_race && tj > 0 {
                    dep(&prev[ti * t + tj - 1]); // west neighbour
                }
                if tj + 1 < t {
                    dep(&prev[ti * t + tj + 1]);
                }
                let (src, dst) = (src.clone(), dst.clone());
                let tile = p.tile;
                let h = ctx.future(move |ctx| {
                    for d in &deps {
                        ctx.get(d);
                    }
                    let (r0, c0) = (ti * tile, tj * tile);
                    for i in r0.max(1)..(r0 + tile).min(n - 1) {
                        for j in c0.max(1)..(c0 + tile).min(n - 1) {
                            let v = 0.25
                                * (src.read(ctx, (i - 1) * n + j)
                                    + src.read(ctx, (i + 1) * n + j)
                                    + src.read(ctx, i * n + j - 1)
                                    + src.read(ctx, i * n + j + 1));
                            dst.write(ctx, i * n + j, v);
                        }
                    }
                });
                cur[ti * t + tj] = Some(h);
            }
        }
        prev = cur;
    }
    // Implicit program end joins the last sweep's futures via the root
    // finish; we also get them explicitly so the main task may read the
    // result (as the Kastors driver does for the residual check).
    for h in prev.iter().flatten() {
        ctx.get(h);
    }
    grids[p.sweeps % 2].clone()
}

/// Expected dynamic task count: `sweeps × tiles²` (Table 2: 8192).
pub fn expected_tasks(p: &JacobiParams) -> u64 {
    (p.sweeps * p.tiles() * p.tiles()) as u64
}

/// Expected non-tree joins: every get performed by a tile task of sweeps
/// 1.. on a sibling future. Sweep-0 tiles perform no gets; the main task's
/// final gets are tree joins. Per sweep: `5t² − 4t` (self + neighbour
/// pairs). Paper size: 7 × 4992 = 34,944 (Table 2).
pub fn expected_nt_joins(p: &JacobiParams) -> u64 {
    let t = p.tiles() as u64;
    let per_sweep = 5 * t * t - 4 * t;
    (p.sweeps as u64 - 1) * per_sweep
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::detect_races_with_stats;
    use futrace_runtime::run_parallel;

    fn grids_close(a: &[f64], b: &[f64]) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() < 1e-12)
    }

    #[test]
    fn paper_size_structural_counts() {
        let p = JacobiParams::paper();
        assert_eq!(expected_tasks(&p), 8192, "Table 2 #Tasks");
        assert_eq!(expected_nt_joins(&p), 34_944, "Table 2 #NTJoins");
    }

    #[test]
    fn dsl_matches_reference() {
        let p = JacobiParams::tiny();
        let expect = jacobi_seq(&p);
        let (rep, stats) = detect_races_with_stats(|ctx| {
            let out = jacobi_run(ctx, &p, false);
            assert!(grids_close(&out.snapshot(), &expect));
        });
        assert!(!rep.has_races());
        assert_eq!(stats.tasks, expected_tasks(&p));
        assert_eq!(stats.nt_joins(), expected_nt_joins(&p));
    }

    #[test]
    fn planted_race_is_detected() {
        let p = JacobiParams::tiny();
        let (rep, _) = detect_races_with_stats(|ctx| {
            let _ = jacobi_run(ctx, &p, true);
        });
        assert!(rep.has_races(), "dropping the west get must race");
    }

    #[test]
    fn single_sweep_has_no_nt_joins() {
        let p = JacobiParams {
            sweeps: 1,
            ..JacobiParams::tiny()
        };
        let (rep, stats) = detect_races_with_stats(|ctx| {
            let _ = jacobi_run(ctx, &p, false);
        });
        assert!(!rep.has_races());
        assert_eq!(stats.nt_joins(), 0);
    }

    #[test]
    fn parallel_execution_matches_reference() {
        let p = JacobiParams::tiny();
        let expect = jacobi_seq(&p);
        let got = run_parallel(4, |ctx| jacobi_run(ctx, &p, false).snapshot()).unwrap();
        assert!(grids_close(&got, &expect));
    }

    #[test]
    fn boundary_rows_are_preserved() {
        let p = JacobiParams::tiny();
        let init = initial_grid(&p);
        let out = jacobi_seq(&p);
        for j in 0..p.n {
            assert_eq!(out[j], init[j], "top row untouched");
            assert_eq!(out[(p.n - 1) * p.n + j], init[(p.n - 1) * p.n + j]);
        }
    }
}
