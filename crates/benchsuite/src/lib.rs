//! The Table-2 benchmark suite and workload generators.
//!
//! One module per benchmark of the paper's evaluation (§5), each ported
//! with the same task decomposition as the original so the structural
//! columns of Table 2 (#Tasks, #NTJoins, #SharedMem shape, #AvgReaders
//! behaviour) are reproduced:
//!
//! | module | origin | parallel structure |
//! |---|---|---|
//! | [`series`] | JGF Fourier coefficient analysis | one task per coefficient; af + future variants |
//! | [`crypt`] | JGF IDEA encryption | one task per 8-byte block, encrypt + decrypt passes; af + future variants |
//! | [`jacobi`] | Kastors 2D 5-point stencil (OpenMP `depends` → futures) | one future per tile per sweep, gets on the 5 neighbour tiles of the previous sweep |
//! | [`smithwaterman`] | COMP322 sequence alignment | tiled wavefront DP, gets on left/up/up-left tiles |
//! | [`strassen`] | Kastors Strassen multiply | 7 multiply futures + 4 combine futures per recursion node |
//!
//! Every benchmark provides a plain-Rust **reference implementation** (the
//! serial elision, used for the Seq column and correctness checking), the
//! DSL program generic over [`futrace_runtime::TaskCtx`], paper-scale and
//! laptop-scale parameter sets, and — for the test suite — a `plant_race`
//! switch that removes one synchronization edge to create a known race.
//!
//! Two extension workloads beyond Table 2 stress richer dependence
//! patterns: [`lu`] (blocked LU with three-way block dependences, the
//! densest joins-per-task ratio) and [`pipeline`] (long non-tree-join
//! chains).
//!
//! [`randomprog`] generates seeded random async/finish/future programs
//! with realizable handle flow; the property-test suites use it to compare
//! the DTRG detector against the transitive-closure oracle, the ablation
//! benches use it to sweep non-tree-join density, and the differential
//! fuzzer (`futrace_bench::fuzzdiff`) uses its future-heavy presets.
//!
//! Four future-structured families stress join structure that is *not*
//! series-parallel — the regime the DTRG detector exists for (§4):
//! [`prodcons`] (bounded-buffer producer–consumer, slot-free edges
//! pointing downstream), [`futlist`] (future-linked lists, depth-`n`
//! sibling get chains), [`futtree`] (bottom-up combine trees living
//! entirely in future edges), [`graphwalk`] (seeded irregular DAGs), and
//! [`actor`] (per-actor mailbox chains braided with response edges).
//!
//! [`registry`] is the workload table driving `tracetool record` and
//! `dtrgperf`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod actor;
pub mod crypt;
pub mod futlist;
pub mod futtree;
pub mod graphwalk;
pub mod jacobi;
pub mod lu;
pub mod pipeline;
pub mod prodcons;
pub mod randomprog;
pub mod registry;
pub mod series;
pub mod smithwaterman;
pub mod sor;
pub mod strassen;

/// In-crate stand-ins for the deprecated `futrace_detector` entry points.
/// This crate sits below the `futrace` umbrella, so it cannot use the
/// `Analyze` builder without a dependency cycle; its tests drive the
/// engine directly instead.
#[cfg(test)]
pub(crate) mod testutil {
    use futrace_detector::{DetectorStats, RaceDetector, RaceReport};
    use futrace_runtime::engine::{run_analysis_live, Engine};
    use futrace_runtime::SerialCtx;

    pub(crate) fn detect_races<F>(f: F) -> RaceReport
    where
        F: FnOnce(&mut SerialCtx<Engine<RaceDetector>>),
    {
        run_analysis_live(f, RaceDetector::new()).report.report
    }

    pub(crate) fn detect_races_with_stats<F>(f: F) -> (RaceReport, DetectorStats)
    where
        F: FnOnce(&mut SerialCtx<Engine<RaceDetector>>),
    {
        let report = run_analysis_live(f, RaceDetector::new()).report;
        (report.report, report.stats)
    }
}
