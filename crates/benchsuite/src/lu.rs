//! Blocked LU decomposition with future-based block dependences
//! (modeled on Kastors' SparseLU, the same OpenMP-`depends` family the
//! paper's Jacobi and Strassen ports come from — an *extension* benchmark
//! beyond Table 2, exercising a denser dependence pattern: each trailing
//! update waits on three producers).
//!
//! Right-looking blocked LU without pivoting over an `nb × nb` grid of
//! `bs × bs` blocks; per elimination step `k`:
//!
//! ```text
//! diag:  A[k][k] ← lu(A[k][k])               (dep: A[k][k])
//! row:   A[k][j] ← trsm_L(A[k][k], A[k][j])  (deps: diag k, A[k][j])
//! col:   A[i][k] ← trsm_U(A[k][k], A[i][k])  (deps: diag k, A[i][k])
//! trail: A[i][j] ← A[i][j] − A[i][k]·A[k][j] (deps: col ik, row kj, A[i][j])
//! ```
//!
//! Every dependence is a `get()` on a sibling future — a non-tree join —
//! so #NTJoins grows as Θ(nb³) while #Tasks is Θ(nb³)/3: the highest
//! joins-per-task ratio in the suite ([`expected_nt_joins`]).

use futrace_runtime::memory::SharedArray;
use futrace_runtime::TaskCtx;

/// Problem size for the blocked LU benchmark.
#[derive(Clone, Copy, Debug)]
pub struct LuParams {
    /// Blocks per side.
    pub nb: usize,
    /// Block side length.
    pub bs: usize,
    /// Input seed.
    pub seed: u64,
}

impl LuParams {
    /// Laptop-scale configuration.
    pub fn scaled() -> Self {
        LuParams {
            nb: 8,
            bs: 16,
            seed: 0x1f,
        }
    }

    /// Minimal configuration for unit tests.
    pub fn tiny() -> Self {
        LuParams {
            nb: 3,
            bs: 4,
            seed: 0x1f,
        }
    }

    /// Matrix side length.
    pub fn n(&self) -> usize {
        self.nb * self.bs
    }
}

/// Deterministic diagonally-dominant input (so unpivoted LU is stable).
pub fn input(p: &LuParams) -> Vec<f64> {
    let n = p.n();
    let mut rng = futrace_util::rng::seeded(p.seed);
    let mut a: Vec<f64> = (0..n * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    for i in 0..n {
        a[i * n + i] += n as f64; // dominance
    }
    a
}

/// Reference (serial-elision) unblocked LU, in-place Doolittle without
/// pivoting. Returns the combined LU factors.
pub fn lu_seq_unblocked(mut a: Vec<f64>, n: usize) -> Vec<f64> {
    for k in 0..n {
        let pivot = a[k * n + k];
        for i in k + 1..n {
            a[i * n + k] /= pivot;
            let lik = a[i * n + k];
            for j in k + 1..n {
                a[i * n + j] -= lik * a[k * n + j];
            }
        }
    }
    a
}

// Block kernels on row-major `bs × bs` blocks.

fn lu0(a: &mut [f64], bs: usize) {
    for k in 0..bs {
        let pivot = a[k * bs + k];
        for i in k + 1..bs {
            a[i * bs + k] /= pivot;
            let lik = a[i * bs + k];
            for j in k + 1..bs {
                a[i * bs + j] -= lik * a[k * bs + j];
            }
        }
    }
}

/// Row update: solve `L(diag) · X = A[k][j]` (unit-lower forward subst).
fn fwd(diag: &[f64], a: &mut [f64], bs: usize) {
    for k in 0..bs {
        for i in k + 1..bs {
            let lik = diag[i * bs + k];
            for j in 0..bs {
                a[i * bs + j] -= lik * a[k * bs + j];
            }
        }
    }
}

/// Column update: solve `X · U(diag) = A[i][k]` (upper back-subst).
fn bdiv(diag: &[f64], a: &mut [f64], bs: usize) {
    for i in 0..bs {
        for k in 0..bs {
            a[i * bs + k] /= diag[k * bs + k];
            let aik = a[i * bs + k];
            for j in k + 1..bs {
                a[i * bs + j] -= aik * diag[k * bs + j];
            }
        }
    }
}

/// Trailing update: `A[i][j] −= A[i][k] · A[k][j]`.
fn bmod(l: &[f64], u: &[f64], a: &mut [f64], bs: usize) {
    for i in 0..bs {
        for kk in 0..bs {
            let lik = l[i * bs + kk];
            for j in 0..bs {
                a[i * bs + j] -= lik * u[kk * bs + j];
            }
        }
    }
}

/// Reference blocked LU in plain Rust (same kernel order as the DSL run).
pub fn lu_seq_blocked(p: &LuParams) -> Vec<Vec<f64>> {
    let (nb, bs) = (p.nb, p.bs);
    let a = input(p);
    let n = p.n();
    // Split into blocks.
    let mut blocks: Vec<Vec<f64>> = (0..nb * nb)
        .map(|b| {
            let (bi, bj) = (b / nb, b % nb);
            let mut out = vec![0.0; bs * bs];
            for i in 0..bs {
                for j in 0..bs {
                    out[i * bs + j] = a[(bi * bs + i) * n + bj * bs + j];
                }
            }
            out
        })
        .collect();
    for k in 0..nb {
        let diag = {
            let d = &mut blocks[k * nb + k];
            lu0(d, bs);
            d.clone()
        };
        for j in k + 1..nb {
            fwd(&diag, &mut blocks[k * nb + j], bs);
        }
        for i in k + 1..nb {
            bdiv(&diag, &mut blocks[i * nb + k], bs);
        }
        for i in k + 1..nb {
            let l = blocks[i * nb + k].clone();
            for j in k + 1..nb {
                let u = blocks[k * nb + j].clone();
                bmod(&l, &u, &mut blocks[i * nb + j], bs);
            }
        }
    }
    blocks
}

/// Instrumented block read/write helpers.
fn read_block<C: TaskCtx>(ctx: &mut C, m: &SharedArray<f64>, nb: usize, bs: usize, bi: usize, bj: usize) -> Vec<f64> {
    let mut out = vec![0.0; bs * bs];
    let base = (bi * nb + bj) * bs * bs;
    for (t, v) in out.iter_mut().enumerate() {
        *v = m.read(ctx, base + t);
    }
    out
}

fn write_block<C: TaskCtx>(ctx: &mut C, m: &SharedArray<f64>, nb: usize, bs: usize, bi: usize, bj: usize, data: &[f64]) {
    let base = (bi * nb + bj) * bs * bs;
    for (t, v) in data.iter().enumerate() {
        m.write(ctx, base + t, *v);
    }
}

/// DSL run: the matrix is stored block-contiguously in one shared array;
/// `handles[i][j]` tracks the future that last produced block `(i,j)`.
///
/// `plant_race` (tests only) drops the trailing update's dependence on the
/// *row* producer, racing on `A[k][j]`.
pub fn lu_run<C: TaskCtx>(ctx: &mut C, p: &LuParams, plant_race: bool) -> SharedArray<f64> {
    let (nb, bs) = (p.nb, p.bs);
    let a = input(p);
    let n = p.n();
    let m = ctx.shared_array(nb * nb * bs * bs, 0.0f64, "lu.blocks");
    for bi in 0..nb {
        for bj in 0..nb {
            let base = (bi * nb + bj) * bs * bs;
            for i in 0..bs {
                for j in 0..bs {
                    m.poke(base + i * bs + j, a[(bi * bs + i) * n + bj * bs + j]);
                }
            }
        }
    }

    let mut handles: Vec<Option<C::Handle<()>>> = vec![None; nb * nb];
    for k in 0..nb {
        // diag task
        let dep = handles[k * nb + k].clone();
        let mh = m.clone();
        let diag = ctx.future(move |ctx| {
            if let Some(d) = &dep {
                ctx.get(d);
            }
            let mut blk = read_block(ctx, &mh, nb, bs, k, k);
            lu0(&mut blk, bs);
            write_block(ctx, &mh, nb, bs, k, k, &blk);
        });
        handles[k * nb + k] = Some(diag.clone());

        // row tasks
        for j in k + 1..nb {
            let (d, prev, mh) = (diag.clone(), handles[k * nb + j].clone(), m.clone());
            let h = ctx.future(move |ctx| {
                ctx.get(&d);
                if let Some(pv) = &prev {
                    ctx.get(pv);
                }
                let dblk = read_block(ctx, &mh, nb, bs, k, k);
                let mut blk = read_block(ctx, &mh, nb, bs, k, j);
                fwd(&dblk, &mut blk, bs);
                write_block(ctx, &mh, nb, bs, k, j, &blk);
            });
            handles[k * nb + j] = Some(h);
        }
        // col tasks
        for i in k + 1..nb {
            let (d, prev, mh) = (diag.clone(), handles[i * nb + k].clone(), m.clone());
            let h = ctx.future(move |ctx| {
                ctx.get(&d);
                if let Some(pv) = &prev {
                    ctx.get(pv);
                }
                let dblk = read_block(ctx, &mh, nb, bs, k, k);
                let mut blk = read_block(ctx, &mh, nb, bs, i, k);
                bdiv(&dblk, &mut blk, bs);
                write_block(ctx, &mh, nb, bs, i, k, &blk);
            });
            handles[i * nb + k] = Some(h);
        }
        // trailing updates
        for i in k + 1..nb {
            for j in k + 1..nb {
                let col = handles[i * nb + k].clone().unwrap();
                let row = handles[k * nb + j].clone().unwrap();
                let prev = handles[i * nb + j].clone();
                let mh = m.clone();
                let h = ctx.future(move |ctx| {
                    ctx.get(&col);
                    if !plant_race {
                        ctx.get(&row);
                    }
                    if let Some(pv) = &prev {
                        ctx.get(pv);
                    }
                    let l = read_block(ctx, &mh, nb, bs, i, k);
                    let u = read_block(ctx, &mh, nb, bs, k, j);
                    let mut blk = read_block(ctx, &mh, nb, bs, i, j);
                    bmod(&l, &u, &mut blk, bs);
                    write_block(ctx, &mh, nb, bs, i, j, &blk);
                });
                handles[i * nb + j] = Some(h);
            }
        }
    }
    for h in handles.iter().flatten() {
        ctx.get(h);
    }
    m
}

/// Expected dynamic task count: `Σ_k 1 + 2(nb−k−1) + (nb−k−1)²`.
pub fn expected_tasks(p: &LuParams) -> u64 {
    (0..p.nb)
        .map(|k| {
            let r = (p.nb - k - 1) as u64;
            1 + 2 * r + r * r
        })
        .sum()
}

/// Expected non-tree joins: every `get()` performed by a *task* (the main
/// task's final gets merge). diag: 1 if k>0; row/col: 1 (diag) + 1 if a
/// previous producer exists; trail: 2 (or 3 with a previous producer).
pub fn expected_nt_joins(p: &LuParams) -> u64 {
    let nb = p.nb as u64;
    let mut total = 0u64;
    for k in 0..nb {
        let r = nb - k - 1;
        if k > 0 {
            total += 1; // diag's dep on the previous trail of (k,k)
        }
        // rows/cols: diag dep + prev dep (prev exists iff k > 0).
        total += 2 * r * (1 + u64::from(k > 0));
        // trails: col + row + prev (prev exists iff k > 0).
        total += r * r * (2 + u64::from(k > 0));
    }
    total
}

/// Extracts block `(bi, bj)` from a DSL run's output (uninstrumented).
pub fn peek_block(m: &SharedArray<f64>, p: &LuParams, bi: usize, bj: usize) -> Vec<f64> {
    let bs = p.bs;
    let base = (bi * p.nb + bj) * bs * bs;
    (0..bs * bs).map(|t| m.peek(base + t)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::detect_races_with_stats;
    use futrace_runtime::run_parallel;

    fn close(a: &[f64], b: &[f64]) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() < 1e-9)
    }

    #[test]
    fn blocked_matches_unblocked() {
        let p = LuParams::tiny();
        let n = p.n();
        let want = lu_seq_unblocked(input(&p), n);
        let blocks = lu_seq_blocked(&p);
        for bi in 0..p.nb {
            for bj in 0..p.nb {
                let blk = &blocks[bi * p.nb + bj];
                for i in 0..p.bs {
                    for j in 0..p.bs {
                        let w = want[(bi * p.bs + i) * n + bj * p.bs + j];
                        assert!(
                            (blk[i * p.bs + j] - w).abs() < 1e-9,
                            "block ({bi},{bj}) cell ({i},{j}): {} vs {w}",
                            blk[i * p.bs + j]
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn dsl_matches_blocked_reference_and_is_race_free() {
        let p = LuParams::tiny();
        let want = lu_seq_blocked(&p);
        let (rep, stats) = detect_races_with_stats(|ctx| {
            let m = lu_run(ctx, &p, false);
            for bi in 0..p.nb {
                for bj in 0..p.nb {
                    assert!(close(&peek_block(&m, &p, bi, bj), &want[bi * p.nb + bj]));
                }
            }
        });
        assert!(!rep.has_races());
        assert_eq!(stats.tasks, expected_tasks(&p));
        assert_eq!(stats.nt_joins(), expected_nt_joins(&p));
    }

    #[test]
    fn planted_race_is_detected() {
        let p = LuParams::tiny();
        let (rep, _) = detect_races_with_stats(|ctx| {
            let _ = lu_run(ctx, &p, true);
        });
        assert!(rep.has_races(), "dropping the row dependence must race");
    }

    #[test]
    fn parallel_execution_matches_reference() {
        let p = LuParams::tiny();
        let want = lu_seq_blocked(&p);
        let ok = run_parallel(4, |ctx| {
            let m = lu_run(ctx, &p, false);
            (0..p.nb * p.nb).all(|b| close(&peek_block(&m, &p, b / p.nb, b % p.nb), &want[b]))
        })
        .unwrap();
        assert!(ok);
    }

    #[test]
    fn task_count_formula() {
        // nb=3: k=0: 1+4+4=9; k=1: 1+2+1=4; k=2: 1 → 14.
        let p = LuParams::tiny();
        assert_eq!(expected_tasks(&p), 14);
    }
}
