//! Dataflow pipeline — an extension workload (beyond Table 2) exercising
//! long chains of non-tree joins.
//!
//! `stages × items` future tasks: task `(s, i)` processes item `i` at
//! stage `s`, waiting for the same item's previous stage `(s−1, i)` and
//! for the stage's previous item `(s, i−1)` (stages keep per-stage state,
//! so they process items in order — the classic software-pipeline shape).
//! Both dependences are sibling `get()`s: **non-tree joins** with chain
//! length up to `stages + items`, probing the `Precede` traversal depth
//! the paper's benchmarks keep at 1–2 hops (§5: "the producer and
//! consumer tasks … are closely located").

use futrace_runtime::memory::SharedArray;
use futrace_runtime::TaskCtx;

/// Problem size for the pipeline benchmark.
#[derive(Clone, Copy, Debug)]
pub struct PipelineParams {
    /// Number of stages.
    pub stages: usize,
    /// Number of items flowing through.
    pub items: usize,
    /// Per-task compute rounds (work knob).
    pub rounds: u32,
    /// Input seed.
    pub seed: u64,
}

impl PipelineParams {
    /// Laptop-scale configuration.
    pub fn scaled() -> Self {
        PipelineParams {
            stages: 8,
            items: 256,
            rounds: 64,
            seed: 0x9199,
        }
    }

    /// Minimal configuration for unit tests.
    pub fn tiny() -> Self {
        PipelineParams {
            stages: 3,
            items: 5,
            rounds: 4,
            seed: 0x9199,
        }
    }
}

/// The per-task kernel: a few rounds of integer mixing.
fn work(mut x: u64, rounds: u32) -> u64 {
    for _ in 0..rounds {
        x = x
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .rotate_left(29)
            .wrapping_add(0x6A09_E667);
    }
    x
}

/// Reference (serial-elision) implementation: returns the final item
/// values after the last stage.
// Stage/item indices are the domain concept here; iterator forms obscure
// the (s, i) wavefront structure.
#[allow(clippy::needless_range_loop)]
pub fn pipeline_seq(p: &PipelineParams) -> Vec<u64> {
    let mut items: Vec<u64> = (0..p.items as u64).map(|i| i ^ p.seed).collect();
    let mut state = vec![0u64; p.stages];
    for s in 0..p.stages {
        for i in 0..p.items {
            // Each stage folds its running state into the item.
            let v = work(items[i] ^ state[s], p.rounds);
            state[s] = state[s].wrapping_add(v);
            items[i] = v;
        }
    }
    items
}

/// DSL run; returns the item array after the final stage.
///
/// `plant_race` (tests only) drops the dependence on the stage's previous
/// item, racing on the per-stage state cell.
#[allow(clippy::needless_range_loop)]
pub fn pipeline_run<C: TaskCtx>(
    ctx: &mut C,
    p: &PipelineParams,
    plant_race: bool,
) -> SharedArray<u64> {
    let items = ctx.shared_array(p.items, 0u64, "pipe.items");
    let state = ctx.shared_array(p.stages, 0u64, "pipe.state");
    for i in 0..p.items {
        items.poke(i, i as u64 ^ p.seed); // input seeding
    }

    // prev_item[s] = handle of (s, i−1); prev_stage[i] = handle of (s−1, i).
    let mut prev_item: Vec<Option<C::Handle<()>>> = vec![None; p.stages];
    let mut prev_stage: Vec<Option<C::Handle<()>>> = vec![None; p.items];
    for s in 0..p.stages {
        for i in 0..p.items {
            let mut deps: Vec<C::Handle<()>> = Vec::with_capacity(2);
            if let Some(h) = &prev_stage[i] {
                deps.push(h.clone());
            }
            if !plant_race {
                if let Some(h) = &prev_item[s] {
                    deps.push(h.clone());
                }
            }
            let (items_h, state_h) = (items.clone(), state.clone());
            let rounds = p.rounds;
            let h = ctx.future(move |ctx| {
                for d in &deps {
                    ctx.get(d);
                }
                let x = items_h.read(ctx, i);
                let st = state_h.read(ctx, s);
                let v = work(x ^ st, rounds);
                state_h.write(ctx, s, st.wrapping_add(v));
                items_h.write(ctx, i, v);
            });
            prev_item[s] = Some(h.clone());
            prev_stage[i] = Some(h);
        }
    }
    for h in prev_stage.iter().flatten() {
        ctx.get(h);
    }
    items
}

/// Expected dynamic task count: `stages × items`.
pub fn expected_tasks(p: &PipelineParams) -> u64 {
    (p.stages * p.items) as u64
}

/// Expected non-tree joins: one per prev-stage dep (`(stages−1)·items`)
/// plus one per prev-item dep (`stages·(items−1)`).
pub fn expected_nt_joins(p: &PipelineParams) -> u64 {
    let (s, n) = (p.stages as u64, p.items as u64);
    (s - 1) * n + s * (n - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::detect_races_with_stats;
    use futrace_runtime::run_parallel;

    #[test]
    fn dsl_matches_reference_and_is_race_free() {
        let p = PipelineParams::tiny();
        let want = pipeline_seq(&p);
        let (rep, stats) = detect_races_with_stats(|ctx| {
            let out = pipeline_run(ctx, &p, false);
            assert_eq!(out.snapshot(), want);
        });
        assert!(!rep.has_races());
        assert_eq!(stats.tasks, expected_tasks(&p));
        assert_eq!(stats.nt_joins(), expected_nt_joins(&p));
    }

    #[test]
    fn planted_race_is_detected() {
        let p = PipelineParams::tiny();
        let (rep, _) = detect_races_with_stats(|ctx| {
            let _ = pipeline_run(ctx, &p, true);
        });
        assert!(rep.has_races(), "dropping the in-stage order must race");
    }

    #[test]
    fn parallel_execution_matches_reference() {
        let p = PipelineParams::tiny();
        let want = pipeline_seq(&p);
        let got = run_parallel(4, |ctx| pipeline_run(ctx, &p, false).snapshot()).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn single_stage_single_item_edge_cases() {
        let p = PipelineParams {
            stages: 1,
            items: 1,
            rounds: 2,
            seed: 7,
        };
        let want = pipeline_seq(&p);
        let (rep, stats) = detect_races_with_stats(|ctx| {
            let out = pipeline_run(ctx, &p, false);
            assert_eq!(out.snapshot(), want);
        });
        assert!(!rep.has_races());
        assert_eq!(stats.tasks, 1);
        assert_eq!(stats.nt_joins(), 0);
    }

    #[test]
    fn work_is_deterministic_nontrivial() {
        assert_eq!(work(1, 8), work(1, 8));
        assert_ne!(work(1, 8), work(2, 8));
        assert_ne!(work(1, 8), 1);
    }
}
