//! Bounded-buffer producer–consumer pipeline — tunable stage count, the
//! canonical future pattern whose join structure is *not* series-parallel.
//!
//! `stages × items` future tasks connected by a ring buffer of `cap`
//! cells per stage boundary. Task `(s, i)` consumes item `i` from buffer
//! `s−1` and produces into buffer `s`; before overwriting slot
//! `i mod cap` it must wait for the *downstream* task `(s+1, i−cap)` that
//! last read the slot. Both the item-ready edge and the slot-free edge
//! are sibling `get()`s — **non-tree joins** — and the slot-free edge
//! points *down* the pipeline, so the DTRG reachability queries cross
//! between subtrees in both directions (unlike [`crate::pipeline`],
//! whose dependences all point upstream). Dropping the slot-free edge
//! (`plant_race`) is the classic bounded-buffer bug: the producer
//! overwrites a slot the consumer is still reading.

use futrace_runtime::memory::SharedArray;
use futrace_runtime::TaskCtx;

/// Problem size for the producer–consumer benchmark.
#[derive(Clone, Copy, Debug)]
pub struct ProdConsParams {
    /// Number of pipeline stages (≥ 2).
    pub stages: usize,
    /// Number of items flowing through (> `cap`).
    pub items: usize,
    /// Ring-buffer capacity per stage boundary (≥ 2).
    pub cap: usize,
    /// Per-task compute rounds (work knob).
    pub rounds: u32,
    /// Input seed.
    pub seed: u64,
}

impl ProdConsParams {
    /// Laptop-scale configuration.
    pub fn scaled() -> Self {
        ProdConsParams {
            stages: 6,
            items: 2048,
            cap: 8,
            rounds: 16,
            seed: 0xBCAF,
        }
    }

    /// Minimal configuration for unit tests.
    pub fn tiny() -> Self {
        ProdConsParams {
            stages: 3,
            items: 6,
            cap: 2,
            rounds: 4,
            seed: 0xBCAF,
        }
    }

    fn validate(&self) {
        assert!(self.stages >= 2, "need at least a producer and a consumer");
        assert!(self.cap >= 2, "slot-free edges must point to earlier spawns");
        assert!(self.items > self.cap, "ring buffer must wrap at least once");
    }
}

/// The per-task kernel: a few rounds of integer mixing.
fn work(mut x: u64, rounds: u32) -> u64 {
    for _ in 0..rounds {
        x = x
            .wrapping_mul(0x2545_F491_4F6C_DD1D)
            .rotate_left(23)
            .wrapping_add(0x9E37_79B9);
    }
    x
}

/// Per-stage salt folded into the item (stages are pure functions of the
/// item, so the final values are schedule-independent).
fn salt(s: usize) -> u64 {
    (s as u64).wrapping_mul(0xA076_1D64_78BD_642F) ^ 0x5851_F42D
}

/// Reference (serial-elision) implementation: the items after the last
/// stage.
pub fn prodcons_seq(p: &ProdConsParams) -> Vec<u64> {
    p.validate();
    (0..p.items as u64)
        .map(|i| {
            let mut v = i ^ p.seed;
            for s in 0..p.stages {
                v = work(v ^ salt(s), p.rounds);
            }
            v
        })
        .collect()
}

/// DSL run; returns the output array written by the final stage.
///
/// `plant_race` (tests only) drops the slot-free dependence, so producers
/// overwrite ring slots concurrently with the downstream reads.
pub fn prodcons_run<C: TaskCtx>(
    ctx: &mut C,
    p: &ProdConsParams,
    plant_race: bool,
) -> SharedArray<u64> {
    p.validate();
    let (stages, items, cap) = (p.stages, p.items, p.cap);
    // One ring buffer per stage boundary 0..stages−1 (stage s writes
    // buffer s, stage s+1 reads it); the last stage writes `out`.
    let bufs: Vec<SharedArray<u64>> = (0..stages - 1)
        .map(|b| ctx.shared_array(cap, 0u64, &format!("pc.buf{b}")))
        .collect();
    let input = ctx.shared_array(items, 0u64, "pc.input");
    let out = ctx.shared_array(items, 0u64, "pc.out");
    for i in 0..items {
        input.poke(i, i as u64 ^ p.seed); // input seeding
    }

    // handles[s][i] = handle of task (s, i), filled in wavefront order so
    // both dependences exist before their dependents spawn.
    let mut handles: Vec<Vec<Option<C::Handle<()>>>> = vec![vec![None; items]; stages];
    for d in 0..(stages + items - 1) {
        for s in 0..stages.min(d + 1) {
            let i = d - s;
            if i >= items {
                continue;
            }
            // Item-ready: the same item one stage upstream.
            let ready = (s > 0).then(|| handles[s - 1][i].clone().expect("wavefront order"));
            // Slot-free: the downstream task that last read the slot this
            // task is about to overwrite (only stages that write a ring
            // buffer, only once the ring has wrapped).
            let free = (!plant_race && s + 1 < stages && i >= cap)
                .then(|| handles[s + 1][i - cap].clone().expect("wavefront order"));
            let src = (s > 0).then(|| bufs[s - 1].clone());
            let dst = if s + 1 < stages {
                bufs[s].clone()
            } else {
                out.clone()
            };
            let input = input.clone();
            let rounds = p.rounds;
            let h = ctx.future(move |ctx| {
                if let Some(h) = &ready {
                    ctx.get(h);
                }
                if let Some(h) = &free {
                    ctx.get(h);
                }
                let v = match &src {
                    Some(buf) => buf.read(ctx, i % cap),
                    None => input.read(ctx, i),
                };
                let v = work(v ^ salt(s), rounds);
                if s + 1 < stages {
                    dst.write(ctx, i % cap, v);
                } else {
                    dst.write(ctx, i, v);
                }
            });
            handles[s][i] = Some(h);
        }
    }
    for h in handles[stages - 1].iter().flatten() {
        ctx.get(h); // tree joins: main awaits its own children
    }
    out
}

/// Expected dynamic task count: `stages × items`.
pub fn expected_tasks(p: &ProdConsParams) -> u64 {
    (p.stages * p.items) as u64
}

/// Expected non-tree joins: one item-ready edge per non-source task
/// (`(stages−1)·items`) plus one slot-free edge per ring-writing task
/// past the first wrap (`(stages−1)·(items−cap)`).
pub fn expected_nt_joins(p: &ProdConsParams) -> u64 {
    let (s, n, c) = (p.stages as u64, p.items as u64, p.cap as u64);
    (s - 1) * n + (s - 1) * (n - c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::detect_races_with_stats;
    use futrace_runtime::run_parallel;

    #[test]
    fn dsl_matches_reference_and_is_race_free() {
        let p = ProdConsParams::tiny();
        let want = prodcons_seq(&p);
        let (rep, stats) = detect_races_with_stats(|ctx| {
            let out = prodcons_run(ctx, &p, false);
            assert_eq!(out.snapshot(), want);
        });
        assert!(!rep.has_races());
        assert_eq!(stats.tasks, expected_tasks(&p));
        assert_eq!(stats.nt_joins(), expected_nt_joins(&p));
    }

    #[test]
    fn planted_race_is_detected() {
        let p = ProdConsParams::tiny();
        let (rep, _) = detect_races_with_stats(|ctx| {
            let _ = prodcons_run(ctx, &p, true);
        });
        assert!(
            rep.has_races(),
            "dropping the slot-free edge must race on the ring buffer"
        );
    }

    #[test]
    fn parallel_execution_matches_reference() {
        let p = ProdConsParams::tiny();
        let want = prodcons_seq(&p);
        let got = run_parallel(4, |ctx| prodcons_run(ctx, &p, false).snapshot()).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn deeper_pipeline_still_clean() {
        let p = ProdConsParams {
            stages: 5,
            items: 9,
            cap: 3,
            rounds: 2,
            seed: 7,
        };
        let want = prodcons_seq(&p);
        let (rep, stats) = detect_races_with_stats(|ctx| {
            let out = prodcons_run(ctx, &p, false);
            assert_eq!(out.snapshot(), want);
        });
        assert!(!rep.has_races());
        assert_eq!(stats.nt_joins(), expected_nt_joins(&p));
    }
}
