//! Seeded random async/finish/future programs with realizable handle flow.
//!
//! Property tests need a large space of structurally diverse programs —
//! racy and race-free — on which the DTRG detector can be compared against
//! the transitive-closure oracle. This module generates such programs as
//! small ASTs and interprets them over any [`TaskCtx`].
//!
//! **Handle flow is realizable by construction**: a `Get(k)` statement may
//! reference only futures whose handles are *in scope* at that point —
//! futures created earlier by the same task or by an ancestor before the
//! current task was spawned (handles propagate into children by closure
//! capture, exactly as a real program would pass them). This matches
//! Lemma 1's observation that handle availability itself is a
//! happens-before constraint, and means generated programs never deadlock
//! and never perform "impossible" joins. Races on *data* locations remain
//! entirely possible, which is the point.

use crate::randomprog::Stmt::*;
use futrace_runtime::TaskCtx;

/// One statement of a generated program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Stmt {
    /// Read shared location `loc`.
    Read(u8),
    /// Write the given value to shared location `loc`. Values are unique
    /// per statement so schedule-independent final memory can be checked
    /// for race-free programs.
    Write(u8, u64),
    /// Spawn an async task with the given body.
    Async(Vec<Stmt>),
    /// Execute a finish scope around the body.
    Finish(Vec<Stmt>),
    /// Spawn a future task with the given body. The handle is appended to
    /// the *handle environment* visible to subsequent statements and
    /// descendants.
    Future(Vec<Stmt>),
    /// `get()` the `k`-th handle of the current handle environment
    /// (index modulo the environment size; no-op if empty).
    Get(usize),
}

/// A generated program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Program {
    /// Top-level (main task) statements.
    pub body: Vec<Stmt>,
    /// Number of shared locations the program touches.
    pub locs: u8,
}

/// Generation knobs.
#[derive(Clone, Copy, Debug)]
pub struct GenParams {
    /// Maximum nesting depth of tasks/finishes.
    pub max_depth: usize,
    /// Maximum statements per body.
    pub max_stmts: usize,
    /// Number of shared locations.
    pub locs: u8,
    /// Per-statement probability weights:
    /// (read, write, async, finish, future, get).
    pub weights: [u32; 6],
    /// Extra `get` weight inside nested bodies (depth > 0). Sibling gets
    /// performed by tasks other than the spawner are what make a join
    /// *non-tree*, so this knob biases toward the structure the DTRG
    /// machinery exists for. `0` leaves the generated streams identical
    /// to the pre-knob generator.
    pub deep_get_bonus: u32,
    /// Percent chance that a generated future immediately `get`s the most
    /// recently visible future — chaining futures into linked-list /
    /// pipeline shapes. `0` draws no randomness and leaves streams
    /// identical to the pre-knob generator.
    pub link_pct: u8,
}

impl Default for GenParams {
    fn default() -> Self {
        GenParams {
            max_depth: 4,
            max_stmts: 6,
            locs: 3,
            weights: [3, 3, 2, 1, 3, 3],
            deep_get_bonus: 0,
            link_pct: 0,
        }
    }
}

impl GenParams {
    /// Parameters biased toward many futures and gets (non-tree joins),
    /// for the ablation sweeps.
    pub fn future_heavy() -> Self {
        GenParams {
            max_depth: 3,
            max_stmts: 8,
            locs: 4,
            weights: [2, 2, 1, 1, 5, 6],
            deep_get_bonus: 0,
            link_pct: 0,
        }
    }

    /// Parameters producing pure async-finish programs (no futures).
    pub fn async_finish_only() -> Self {
        GenParams {
            max_depth: 4,
            max_stmts: 6,
            locs: 3,
            weights: [3, 3, 3, 2, 0, 0],
            deep_get_bonus: 0,
            link_pct: 0,
        }
    }

    /// Parameters biased toward *non-tree* join structure: futures linked
    /// into chains (`link_pct`) and sibling gets performed deep in the
    /// spawn tree (`deep_get_bonus`), the regime where SP-based detectors
    /// diverge from the DTRG reference. The differential fuzzer's default.
    pub fn nontree_heavy() -> Self {
        GenParams {
            max_depth: 4,
            max_stmts: 8,
            locs: 4,
            weights: [2, 3, 2, 1, 5, 4],
            deep_get_bonus: 6,
            link_pct: 60,
        }
    }
}

fn gen_body(rng: &mut futrace_util::rng::Rng, p: &GenParams, depth: usize, visible_futures: &mut usize) -> Vec<Stmt> {
    let n = rng.gen_range(1..=p.max_stmts);
    let mut body = Vec::with_capacity(n);
    // Effective weights at this depth: `deep_get_bonus` only applies
    // inside spawned bodies, where a `get` is a *sibling* (non-tree) join.
    let mut weights = p.weights;
    if depth > 0 {
        weights[5] += p.deep_get_bonus;
    }
    let total: u32 = weights.iter().sum();
    for _ in 0..n {
        let mut pick = rng.gen_range(0..total);
        let mut kind = 0;
        for (i, w) in weights.iter().enumerate() {
            if pick < *w {
                kind = i;
                break;
            }
            pick -= w;
        }
        match kind {
            0 => body.push(Read(rng.gen_range(0..p.locs))),
            1 => body.push(Write(rng.gen_range(0..p.locs), rng.next_u64())),
            2 if depth < p.max_depth => {
                // Children see the handles visible at their spawn point but
                // must not leak their own futures upward (the parent holds
                // no reference to them) — restore the count afterwards.
                let mut inner = *visible_futures;
                body.push(Async(gen_body(rng, p, depth + 1, &mut inner)));
            }
            3 if depth < p.max_depth => {
                let mut inner = *visible_futures;
                body.push(Finish(gen_body(rng, p, depth + 1, &mut inner)));
            }
            4 if depth < p.max_depth => {
                let mut inner = *visible_futures;
                let mut b = gen_body(rng, p, depth + 1, &mut inner);
                // Chain futures: the new future's first act is joining the
                // previously visible one (the linked-list/pipeline shape).
                // Guarded on the knob so `link_pct == 0` draws nothing and
                // preserves pre-knob streams bit for bit.
                if p.link_pct > 0
                    && *visible_futures > 0
                    && rng.gen_range(0..100u32) < u32::from(p.link_pct)
                {
                    b.insert(0, Get(*visible_futures - 1));
                }
                body.push(Future(b));
                *visible_futures += 1;
            }
            5 => {
                if *visible_futures > 0 {
                    body.push(Get(rng.gen_range(0..*visible_futures)));
                }
            }
            _ => body.push(Read(rng.gen_range(0..p.locs))),
        }
    }
    body
}

/// Generates a program from a caller-provided RNG (the propcheck
/// [`Strategy`](futrace_util::propcheck::Strategy) entry point — the
/// fuzzer's strategy draws from the case's seeded RNG).
pub fn generate_with(rng: &mut futrace_util::rng::Rng, p: &GenParams) -> Program {
    let mut visible = 0usize;
    Program {
        body: gen_body(rng, p, 0, &mut visible),
        locs: p.locs.max(1),
    }
}

/// Generates a deterministic random program from a seed.
pub fn generate(seed: u64, p: &GenParams) -> Program {
    let mut rng = futrace_util::rng::seeded(seed);
    generate_with(&mut rng, p)
}

/// Counts statements of each kind `(reads, writes, asyncs, finishes,
/// futures, gets)`, recursively.
pub fn stmt_census(body: &[Stmt]) -> [u64; 6] {
    let mut c = [0u64; 6];
    for s in body {
        match s {
            Read(_) => c[0] += 1,
            Write(..) => c[1] += 1,
            Async(b) => {
                c[2] += 1;
                let inner = stmt_census(b);
                for (a, b) in c.iter_mut().zip(inner) {
                    *a += b;
                }
            }
            Finish(b) => {
                c[3] += 1;
                let inner = stmt_census(b);
                for (a, b) in c.iter_mut().zip(inner) {
                    *a += b;
                }
            }
            Future(b) => {
                c[4] += 1;
                let inner = stmt_census(b);
                for (a, b) in c.iter_mut().zip(inner) {
                    *a += b;
                }
            }
            Get(_) => c[5] += 1,
        }
    }
    c
}

fn shrink_body(body: &[Stmt]) -> Vec<Vec<Stmt>> {
    let mut out = Vec::new();
    let n = body.len();
    // Halves first (most aggressive), then single-statement drops.
    if n >= 2 {
        out.push(body[..n / 2].to_vec());
        out.push(body[n - n / 2..].to_vec());
    }
    for i in 0..n {
        let mut v = body.to_vec();
        v.remove(i);
        out.push(v);
    }
    // Splice a block's contents in place of the block: removes one layer
    // of task/finish structure while keeping the accesses that race.
    for (i, s) in body.iter().enumerate() {
        if let Async(b) | Finish(b) | Future(b) = s {
            let mut v = body.to_vec();
            v.splice(i..=i, b.iter().cloned());
            out.push(v);
        }
    }
    // Recursively shrink block bodies, re-wrapped in the same constructor.
    for (i, s) in body.iter().enumerate() {
        let rewrap: Option<(fn(Vec<Stmt>) -> Stmt, &Vec<Stmt>)> = match s {
            Async(b) => Some((Async, b)),
            Finish(b) => Some((Finish, b)),
            Future(b) => Some((Future, b)),
            _ => None,
        };
        if let Some((wrap, b)) = rewrap {
            for smaller in shrink_body(b) {
                let mut v = body.to_vec();
                v[i] = wrap(smaller);
                out.push(v);
            }
        }
    }
    out
}

/// Shrink candidates for a program, most aggressive first: drop halves of
/// a body, drop single statements, inline a task/finish/future body in
/// place of the block, and recurse into nested bodies. Every candidate
/// remains executable — `Get` indices are modulo the (possibly smaller)
/// handle environment and a `Get` in an empty environment is a no-op —
/// so the propcheck shrinker can apply these unconditionally.
pub fn shrink(prog: &Program) -> Vec<Program> {
    shrink_body(&prog.body)
        .into_iter()
        .map(|body| Program {
            body,
            locs: prog.locs,
        })
        .collect()
}

fn exec_body<C: TaskCtx>(
    ctx: &mut C,
    body: &[Stmt],
    mem: &futrace_runtime::SharedArray<u64>,
    env: &mut Vec<C::Handle<()>>,
) {
    for s in body {
        match s {
            Read(l) => {
                let _ = mem.read(ctx, *l as usize % mem.len());
            }
            Write(l, v) => {
                mem.write(ctx, *l as usize % mem.len(), *v);
            }
            Async(b) => {
                // The child captures a snapshot of the handles visible now.
                let b = b.clone();
                let mem = mem.clone();
                let mut child_env = env.clone();
                ctx.async_task(move |ctx| exec_body(ctx, &b, &mem, &mut child_env));
            }
            Finish(b) => {
                // A finish body runs in the same task: it shares the
                // parent's environment (and may extend it).
                ctx.finish(|ctx| exec_body(ctx, b, mem, env));
            }
            Future(b) => {
                let b = b.clone();
                let mem = mem.clone();
                let mut child_env = env.clone();
                let h = ctx.future(move |ctx| exec_body(ctx, &b, &mem, &mut child_env));
                env.push(h);
            }
            Get(k) => {
                if !env.is_empty() {
                    let h = env[k % env.len()].clone();
                    ctx.get(&h);
                }
            }
        }
    }
}

/// Executes a program under any task context, returning its shared memory
/// so callers can compare final states across executors (for race-free
/// programs the final state is schedule-independent).
pub fn execute<C: TaskCtx>(ctx: &mut C, prog: &Program) -> futrace_runtime::SharedArray<u64> {
    let mem = ctx.shared_array(prog.locs as usize, 0u64, "randprog.mem");
    let mut env: Vec<C::Handle<()>> = Vec::new();
    exec_body(ctx, &prog.body, &mem, &mut env);
    mem
}

#[cfg(test)]
mod tests {
    use super::*;
    use futrace_baselines::{run_baseline, BaselineDetector, ClosureDetector};
    use crate::testutil::detect_races;
    use futrace_runtime::{run_serial, EventLog};

    #[test]
    fn generation_is_deterministic() {
        let p = GenParams::default();
        assert_eq!(generate(42, &p), generate(42, &p));
        assert_ne!(generate(1, &p), generate(2, &p));
    }

    #[test]
    fn execution_is_deterministic() {
        let prog = generate(7, &GenParams::default());
        let run = || {
            let mut log = EventLog::new();
            run_serial(&mut log, |ctx| execute(ctx, &prog));
            log.events
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn async_finish_only_generates_no_futures() {
        for seed in 0..20 {
            let prog = generate(seed, &GenParams::async_finish_only());
            let c = stmt_census(&prog.body);
            assert_eq!(c[4], 0, "no futures");
            assert_eq!(c[5], 0, "no gets");
        }
    }

    #[test]
    fn future_heavy_generates_futures() {
        let mut any = false;
        for seed in 0..20 {
            let c = stmt_census(&generate(seed, &GenParams::future_heavy()).body);
            if c[4] > 0 {
                any = true;
            }
        }
        assert!(any, "future-heavy params must produce futures");
    }

    #[test]
    fn nontree_heavy_generates_deep_gets_and_chains() {
        // The knobs must actually bias the population: across a seed
        // sweep, nontree-heavy programs carry more gets than the plain
        // future-heavy preset, and linked futures (a Future whose body
        // starts with a Get) appear.
        fn has_linked_future(body: &[Stmt]) -> bool {
            body.iter().any(|s| match s {
                Future(b) => matches!(b.first(), Some(Get(_))) || has_linked_future(b),
                Async(b) | Finish(b) => has_linked_future(b),
                _ => false,
            })
        }
        let (mut nt_gets, mut fh_gets, mut chains) = (0u64, 0u64, 0u64);
        for seed in 0..60u64 {
            let nt = generate(seed, &GenParams::nontree_heavy());
            nt_gets += stmt_census(&nt.body)[5];
            fh_gets += stmt_census(&generate(seed, &GenParams::future_heavy()).body)[5];
            if has_linked_future(&nt.body) {
                chains += 1;
            }
        }
        assert!(nt_gets > fh_gets, "deep_get_bonus biases gets: {nt_gets} vs {fh_gets}");
        assert!(chains > 10, "link_pct produces future chains: {chains}/60");
    }

    #[test]
    fn zero_knobs_preserve_generator_streams() {
        // deep_get_bonus = 0 / link_pct = 0 must not consume randomness,
        // so the zero-knob presets keep their historical streams — the
        // fixed-seed suites across the workspace replay those. Golden
        // values captured from the pre-knob generator.
        let d = generate(42, &GenParams::default());
        assert_eq!(stmt_census(&d.body), [32, 19, 7, 3, 15, 21]);
        assert_eq!(d.locs, 3);

        let fh = generate(7, &GenParams::future_heavy());
        assert_eq!(
            fh,
            Program {
                body: vec![Write(2, 7880630202246103356)],
                locs: 4
            }
        );
    }

    #[test]
    fn shrink_candidates_are_smaller_and_executable() {
        let count = |prog: &Program| stmt_census(&prog.body).iter().sum::<u64>();
        let mut produced = 0usize;
        for seed in 0..20u64 {
            let prog = generate(seed, &GenParams::nontree_heavy());
            for cand in shrink(&prog) {
                produced += 1;
                assert!(
                    count(&cand) < count(&prog),
                    "candidate not smaller: {cand:?} vs {prog:?}"
                );
                // Executable: no panics, no impossible joins.
                let mut log = EventLog::new();
                run_serial(&mut log, |ctx| {
                    execute(ctx, &cand);
                });
            }
        }
        assert!(produced > 0, "shrinker produced no candidates");
    }

    #[test]
    fn shrink_inlines_block_bodies() {
        // [Future [Write, Read]] must offer the spliced [Write, Read]
        // (plus the empty and recursively-shrunk variants).
        let prog = Program {
            body: vec![Future(vec![Write(0, 1), Read(1)])],
            locs: 2,
        };
        let candidates = shrink(&prog);
        assert!(
            candidates
                .iter()
                .any(|c| c.body == vec![Write(0, 1), Read(1)]),
            "splice candidate missing: {candidates:?}"
        );
        assert!(candidates.iter().any(|c| c.body.is_empty()));
    }

    #[test]
    fn detector_agrees_with_oracle_on_a_seed_sweep() {
        // A quick deterministic slice of the big property test in tests/.
        for seed in 0..60u64 {
            let prog = generate(seed, &GenParams::default());
            let report = detect_races(|ctx| {
                execute(ctx, &prog);
            });
            let mut oracle = ClosureDetector::new();
            run_baseline(&mut oracle, |ctx| {
                execute(ctx, &prog);
            });
            assert_eq!(
                report.has_races(),
                oracle.has_races(),
                "seed {seed}: detector={} oracle={} prog={prog:?}",
                report.has_races(),
                oracle.has_races()
            );
        }
    }
}
