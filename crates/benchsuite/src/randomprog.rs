//! Seeded random async/finish/future programs with realizable handle flow.
//!
//! Property tests need a large space of structurally diverse programs —
//! racy and race-free — on which the DTRG detector can be compared against
//! the transitive-closure oracle. This module generates such programs as
//! small ASTs and interprets them over any [`TaskCtx`].
//!
//! **Handle flow is realizable by construction**: a `Get(k)` statement may
//! reference only futures whose handles are *in scope* at that point —
//! futures created earlier by the same task or by an ancestor before the
//! current task was spawned (handles propagate into children by closure
//! capture, exactly as a real program would pass them). This matches
//! Lemma 1's observation that handle availability itself is a
//! happens-before constraint, and means generated programs never deadlock
//! and never perform "impossible" joins. Races on *data* locations remain
//! entirely possible, which is the point.

use crate::randomprog::Stmt::*;
use futrace_runtime::TaskCtx;

/// One statement of a generated program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Stmt {
    /// Read shared location `loc`.
    Read(u8),
    /// Write the given value to shared location `loc`. Values are unique
    /// per statement so schedule-independent final memory can be checked
    /// for race-free programs.
    Write(u8, u64),
    /// Spawn an async task with the given body.
    Async(Vec<Stmt>),
    /// Execute a finish scope around the body.
    Finish(Vec<Stmt>),
    /// Spawn a future task with the given body. The handle is appended to
    /// the *handle environment* visible to subsequent statements and
    /// descendants.
    Future(Vec<Stmt>),
    /// `get()` the `k`-th handle of the current handle environment
    /// (index modulo the environment size; no-op if empty).
    Get(usize),
}

/// A generated program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Program {
    /// Top-level (main task) statements.
    pub body: Vec<Stmt>,
    /// Number of shared locations the program touches.
    pub locs: u8,
}

/// Generation knobs.
#[derive(Clone, Copy, Debug)]
pub struct GenParams {
    /// Maximum nesting depth of tasks/finishes.
    pub max_depth: usize,
    /// Maximum statements per body.
    pub max_stmts: usize,
    /// Number of shared locations.
    pub locs: u8,
    /// Per-statement probability weights:
    /// (read, write, async, finish, future, get).
    pub weights: [u32; 6],
}

impl Default for GenParams {
    fn default() -> Self {
        GenParams {
            max_depth: 4,
            max_stmts: 6,
            locs: 3,
            weights: [3, 3, 2, 1, 3, 3],
        }
    }
}

impl GenParams {
    /// Parameters biased toward many futures and gets (non-tree joins),
    /// for the ablation sweeps.
    pub fn future_heavy() -> Self {
        GenParams {
            max_depth: 3,
            max_stmts: 8,
            locs: 4,
            weights: [2, 2, 1, 1, 5, 6],
        }
    }

    /// Parameters producing pure async-finish programs (no futures).
    pub fn async_finish_only() -> Self {
        GenParams {
            max_depth: 4,
            max_stmts: 6,
            locs: 3,
            weights: [3, 3, 3, 2, 0, 0],
        }
    }
}

fn gen_body(rng: &mut futrace_util::rng::Rng, p: &GenParams, depth: usize, visible_futures: &mut usize) -> Vec<Stmt> {
    let n = rng.gen_range(1..=p.max_stmts);
    let mut body = Vec::with_capacity(n);
    let total: u32 = p.weights.iter().sum();
    for _ in 0..n {
        let mut pick = rng.gen_range(0..total);
        let mut kind = 0;
        for (i, w) in p.weights.iter().enumerate() {
            if pick < *w {
                kind = i;
                break;
            }
            pick -= w;
        }
        match kind {
            0 => body.push(Read(rng.gen_range(0..p.locs))),
            1 => body.push(Write(rng.gen_range(0..p.locs), rng.next_u64())),
            2 if depth < p.max_depth => {
                // Children see the handles visible at their spawn point but
                // must not leak their own futures upward (the parent holds
                // no reference to them) — restore the count afterwards.
                let mut inner = *visible_futures;
                body.push(Async(gen_body(rng, p, depth + 1, &mut inner)));
            }
            3 if depth < p.max_depth => {
                let mut inner = *visible_futures;
                body.push(Finish(gen_body(rng, p, depth + 1, &mut inner)));
            }
            4 if depth < p.max_depth => {
                let mut inner = *visible_futures;
                body.push(Future(gen_body(rng, p, depth + 1, &mut inner)));
                *visible_futures += 1;
            }
            5 => {
                if *visible_futures > 0 {
                    body.push(Get(rng.gen_range(0..*visible_futures)));
                }
            }
            _ => body.push(Read(rng.gen_range(0..p.locs))),
        }
    }
    body
}

/// Generates a deterministic random program from a seed.
pub fn generate(seed: u64, p: &GenParams) -> Program {
    let mut rng = futrace_util::rng::seeded(seed);
    let mut visible = 0usize;
    Program {
        body: gen_body(&mut rng, p, 0, &mut visible),
        locs: p.locs.max(1),
    }
}

/// Counts statements of each kind `(reads, writes, asyncs, finishes,
/// futures, gets)`, recursively.
pub fn stmt_census(body: &[Stmt]) -> [u64; 6] {
    let mut c = [0u64; 6];
    for s in body {
        match s {
            Read(_) => c[0] += 1,
            Write(..) => c[1] += 1,
            Async(b) => {
                c[2] += 1;
                let inner = stmt_census(b);
                for (a, b) in c.iter_mut().zip(inner) {
                    *a += b;
                }
            }
            Finish(b) => {
                c[3] += 1;
                let inner = stmt_census(b);
                for (a, b) in c.iter_mut().zip(inner) {
                    *a += b;
                }
            }
            Future(b) => {
                c[4] += 1;
                let inner = stmt_census(b);
                for (a, b) in c.iter_mut().zip(inner) {
                    *a += b;
                }
            }
            Get(_) => c[5] += 1,
        }
    }
    c
}

fn exec_body<C: TaskCtx>(
    ctx: &mut C,
    body: &[Stmt],
    mem: &futrace_runtime::SharedArray<u64>,
    env: &mut Vec<C::Handle<()>>,
) {
    for s in body {
        match s {
            Read(l) => {
                let _ = mem.read(ctx, *l as usize % mem.len());
            }
            Write(l, v) => {
                mem.write(ctx, *l as usize % mem.len(), *v);
            }
            Async(b) => {
                // The child captures a snapshot of the handles visible now.
                let b = b.clone();
                let mem = mem.clone();
                let mut child_env = env.clone();
                ctx.async_task(move |ctx| exec_body(ctx, &b, &mem, &mut child_env));
            }
            Finish(b) => {
                // A finish body runs in the same task: it shares the
                // parent's environment (and may extend it).
                ctx.finish(|ctx| exec_body(ctx, b, mem, env));
            }
            Future(b) => {
                let b = b.clone();
                let mem = mem.clone();
                let mut child_env = env.clone();
                let h = ctx.future(move |ctx| exec_body(ctx, &b, &mem, &mut child_env));
                env.push(h);
            }
            Get(k) => {
                if !env.is_empty() {
                    let h = env[k % env.len()].clone();
                    ctx.get(&h);
                }
            }
        }
    }
}

/// Executes a program under any task context, returning its shared memory
/// so callers can compare final states across executors (for race-free
/// programs the final state is schedule-independent).
pub fn execute<C: TaskCtx>(ctx: &mut C, prog: &Program) -> futrace_runtime::SharedArray<u64> {
    let mem = ctx.shared_array(prog.locs as usize, 0u64, "randprog.mem");
    let mut env: Vec<C::Handle<()>> = Vec::new();
    exec_body(ctx, &prog.body, &mem, &mut env);
    mem
}

#[cfg(test)]
mod tests {
    use super::*;
    use futrace_baselines::{run_baseline, BaselineDetector, ClosureDetector};
    use crate::testutil::detect_races;
    use futrace_runtime::{run_serial, EventLog};

    #[test]
    fn generation_is_deterministic() {
        let p = GenParams::default();
        assert_eq!(generate(42, &p), generate(42, &p));
        assert_ne!(generate(1, &p), generate(2, &p));
    }

    #[test]
    fn execution_is_deterministic() {
        let prog = generate(7, &GenParams::default());
        let run = || {
            let mut log = EventLog::new();
            run_serial(&mut log, |ctx| execute(ctx, &prog));
            log.events
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn async_finish_only_generates_no_futures() {
        for seed in 0..20 {
            let prog = generate(seed, &GenParams::async_finish_only());
            let c = stmt_census(&prog.body);
            assert_eq!(c[4], 0, "no futures");
            assert_eq!(c[5], 0, "no gets");
        }
    }

    #[test]
    fn future_heavy_generates_futures() {
        let mut any = false;
        for seed in 0..20 {
            let c = stmt_census(&generate(seed, &GenParams::future_heavy()).body);
            if c[4] > 0 {
                any = true;
            }
        }
        assert!(any, "future-heavy params must produce futures");
    }

    #[test]
    fn detector_agrees_with_oracle_on_a_seed_sweep() {
        // A quick deterministic slice of the big property test in tests/.
        for seed in 0..60u64 {
            let prog = generate(seed, &GenParams::default());
            let report = detect_races(|ctx| {
                execute(ctx, &prog);
            });
            let mut oracle = ClosureDetector::new();
            run_baseline(&mut oracle, |ctx| {
                execute(ctx, &prog);
            });
            assert_eq!(
                report.has_races(),
                oracle.has_races(),
                "seed {seed}: detector={} oracle={} prog={prog:?}",
                report.has_races(),
                oracle.has_races()
            );
        }
    }
}
