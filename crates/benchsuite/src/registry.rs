//! The benchsuite workload registry — one table driving `tracetool
//! record`, `dtrgperf`, and the golden-trace fixtures.
//!
//! Each entry names a workload, describes its join structure, and carries
//! a monomorphic runner `fn(&mut dyn Monitor, Scale, bool)` so tools can
//! look workloads up by name at runtime without being generic over the
//! monitor. (The `&mut dyn Monitor` indirection is what the blanket
//! `impl Monitor for &mut M` in the runtime exists for.)

use crate::{actor, crypt, futlist, futtree, graphwalk, jacobi, lu, pipeline, prodcons,
    series, smithwaterman, sor};
use futrace_runtime::{run_serial, EventLog, Monitor, ParCtx};

/// Problem-size selector for registry runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Unit-test sizes (hundreds of events).
    Tiny,
    /// Laptop-scale sizes, as in the Table-2 rows.
    Scaled,
    /// Profiling sizes for `dtrgperf`: many cheap tasks so per-event
    /// medians measure the detector, not the kernel. Identical to
    /// `Scaled` except where a workload's scaled kernel dominates
    /// (currently `series_future`).
    Perf,
}

/// A registered workload.
pub struct Workload {
    /// Registry key, as accepted by `tracetool record --bench`.
    pub name: &'static str,
    /// Which Table-2 family / extension group the workload belongs to.
    pub family: &'static str,
    /// One-line description of the join structure the workload stresses.
    pub join_structure: &'static str,
    /// Whether the workload has a `plant_race` variant.
    pub plantable: bool,
    /// Whether `dtrgperf` profiles this workload.
    pub perf: bool,
    runner: fn(&mut dyn Monitor, Scale, bool),
    par_runner: fn(&mut ParCtx, Scale, bool),
}

impl Workload {
    /// Runs the workload under the serial instrumented executor, feeding
    /// `mon`. Panics if `planted` is requested for a workload without a
    /// planted-race variant (the CLI validates this earlier).
    pub fn run_into(&self, mon: &mut dyn Monitor, scale: Scale, planted: bool) {
        assert!(
            !planted || self.plantable,
            "workload `{}` has no planted-race variant",
            self.name
        );
        (self.runner)(mon, scale, planted);
    }

    /// Records the workload into a fresh [`EventLog`].
    pub fn record(&self, scale: Scale, planted: bool) -> EventLog {
        let mut log = EventLog::new();
        self.run_into(&mut log, scale, planted);
        log
    }

    /// Runs the workload's kernel inside an already-running parallel
    /// context — the body `futrace_runtime::online::run_online` (or plain
    /// `run_parallel`) hands out. Same monomorphization of the same
    /// generic kernel the serial runner uses, so the canonical access
    /// stream is identical. Panics like [`Workload::run_into`] on a
    /// `planted` request without a planted variant.
    pub fn run_parallel_into(&self, ctx: &mut ParCtx, scale: Scale, planted: bool) {
        assert!(
            !planted || self.plantable,
            "workload `{}` has no planted-race variant",
            self.name
        );
        (self.par_runner)(ctx, scale, planted);
    }
}

macro_rules! runner {
    ($params:ty, $run:path) => {
        |mut mon: &mut dyn Monitor, scale: Scale, planted: bool| {
            let p = match scale {
                Scale::Tiny => <$params>::tiny(),
                Scale::Scaled | Scale::Perf => <$params>::scaled(),
            };
            run_serial(&mut mon, |ctx| {
                $run(ctx, &p, planted);
            });
        }
    };
}

macro_rules! par_runner {
    ($params:ty, $run:path) => {
        |ctx: &mut ParCtx, scale: Scale, planted: bool| {
            let p = match scale {
                Scale::Tiny => <$params>::tiny(),
                Scale::Scaled | Scale::Perf => <$params>::scaled(),
            };
            $run(ctx, &p, planted);
        }
    };
}

fn run_series_future(mut mon: &mut dyn Monitor, scale: Scale, _planted: bool) {
    let p = match scale {
        Scale::Tiny => series::SeriesParams::tiny(),
        Scale::Scaled => series::SeriesParams::scaled(),
        Scale::Perf => series::SeriesParams::perf(),
    };
    run_serial(&mut mon, |ctx| {
        series::series_future(ctx, &p);
    });
}

fn run_crypt_future(mut mon: &mut dyn Monitor, scale: Scale, _planted: bool) {
    let p = match scale {
        Scale::Tiny => crypt::CryptParams::tiny(),
        Scale::Scaled | Scale::Perf => crypt::CryptParams::scaled(),
    };
    run_serial(&mut mon, |ctx| {
        crypt::crypt_run(ctx, &p, crypt::CryptVariant::Future);
    });
}

fn par_series_future(ctx: &mut ParCtx, scale: Scale, _planted: bool) {
    let p = match scale {
        Scale::Tiny => series::SeriesParams::tiny(),
        Scale::Scaled => series::SeriesParams::scaled(),
        Scale::Perf => series::SeriesParams::perf(),
    };
    series::series_future(ctx, &p);
}

fn par_crypt_future(ctx: &mut ParCtx, scale: Scale, _planted: bool) {
    let p = match scale {
        Scale::Tiny => crypt::CryptParams::tiny(),
        Scale::Scaled | Scale::Perf => crypt::CryptParams::scaled(),
    };
    crypt::crypt_run(ctx, &p, crypt::CryptVariant::Future);
}

static WORKLOADS: &[Workload] = &[
    Workload {
        name: "jacobi",
        family: "table2",
        join_structure: "per-tile futures, gets on 5 neighbour tiles of the previous sweep",
        plantable: true,
        perf: true,
        runner: runner!(jacobi::JacobiParams, jacobi::jacobi_run),
        par_runner: par_runner!(jacobi::JacobiParams, jacobi::jacobi_run),
    },
    Workload {
        name: "smithwaterman",
        family: "table2",
        join_structure: "tiled wavefront DP, gets on left/up/up-left tiles",
        plantable: true,
        perf: true,
        runner: runner!(smithwaterman::SwParams, smithwaterman::sw_run),
        par_runner: par_runner!(smithwaterman::SwParams, smithwaterman::sw_run),
    },
    Workload {
        name: "lu",
        family: "extension",
        join_structure: "blocked LU, three-way block dependences (densest joins/task)",
        plantable: true,
        perf: false,
        runner: runner!(lu::LuParams, lu::lu_run),
        par_runner: par_runner!(lu::LuParams, lu::lu_run),
    },
    Workload {
        name: "pipeline",
        family: "extension",
        join_structure: "stage-to-stage future chains, all edges pointing upstream",
        plantable: true,
        perf: true,
        runner: runner!(pipeline::PipelineParams, pipeline::pipeline_run),
        par_runner: par_runner!(pipeline::PipelineParams, pipeline::pipeline_run),
    },
    Workload {
        name: "sor",
        family: "table2",
        join_structure: "red-black sweep futures over neighbour tiles",
        plantable: true,
        perf: true,
        runner: runner!(sor::SorParams, sor::sor_run),
        par_runner: par_runner!(sor::SorParams, sor::sor_run),
    },
    Workload {
        name: "series_future",
        family: "table2",
        join_structure: "independent coefficient futures, zero non-tree joins",
        plantable: false,
        perf: true,
        runner: run_series_future,
        par_runner: par_series_future,
    },
    Workload {
        name: "crypt",
        family: "table2",
        join_structure: "per-block futures joined by main, handle-table traffic",
        plantable: false,
        perf: true,
        runner: run_crypt_future,
        par_runner: par_crypt_future,
    },
    Workload {
        name: "prodcons",
        family: "futures",
        join_structure: "bounded-buffer ring: item-ready edges upstream + slot-free edges downstream",
        plantable: true,
        perf: true,
        runner: runner!(prodcons::ProdConsParams, prodcons::prodcons_run),
        par_runner: par_runner!(prodcons::ProdConsParams, prodcons::prodcons_run),
    },
    Workload {
        name: "futlist",
        family: "futures",
        join_structure: "future-linked list: depth-n sibling get chain + detached readers",
        plantable: true,
        perf: true,
        runner: runner!(futlist::FutListParams, futlist::futlist_run),
        par_runner: par_runner!(futlist::FutListParams, futlist::futlist_run),
    },
    Workload {
        name: "futtree",
        family: "futures",
        join_structure: "bottom-up combine tree living entirely in future edges",
        plantable: true,
        perf: true,
        runner: runner!(futtree::FutTreeParams, futtree::futtree_run),
        par_runner: par_runner!(futtree::FutTreeParams, futtree::futtree_run),
    },
    Workload {
        name: "graphwalk",
        family: "futures",
        join_structure: "seeded irregular DAG, 1..=maxdeg sibling gets per node",
        plantable: true,
        perf: true,
        runner: runner!(graphwalk::GraphWalkParams, graphwalk::graphwalk_run),
        par_runner: par_runner!(graphwalk::GraphWalkParams, graphwalk::graphwalk_run),
    },
    Workload {
        name: "actor",
        family: "futures",
        join_structure: "per-actor mailbox chains braided with request-to-client edges",
        plantable: true,
        perf: true,
        runner: runner!(actor::ActorParams, actor::actor_run),
        par_runner: par_runner!(actor::ActorParams, actor::actor_run),
    },
];

/// All registered workloads, in registry order.
pub fn workloads() -> &'static [Workload] {
    WORKLOADS
}

/// Looks a workload up by registry key.
pub fn find(name: &str) -> Option<&'static Workload> {
    WORKLOADS.iter().find(|w| w.name == name)
}

/// All registry keys, in registry order (for CLI help text).
pub fn names() -> Vec<&'static str> {
    WORKLOADS.iter().map(|w| w.name).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_findable() {
        let names = names();
        for (i, n) in names.iter().enumerate() {
            assert!(!names[i + 1..].contains(n), "duplicate name {n}");
            assert_eq!(find(n).unwrap().name, *n);
        }
        assert!(find("nope").is_none());
    }

    #[test]
    fn every_workload_records_tiny_events() {
        for w in workloads() {
            let log = w.record(Scale::Tiny, false);
            assert!(
                !log.events.is_empty(),
                "workload `{}` recorded no events",
                w.name
            );
        }
    }

    #[test]
    fn plantable_workloads_record_planted_variants() {
        for w in workloads().iter().filter(|w| w.plantable) {
            let clean = w.record(Scale::Tiny, false);
            let racy = w.record(Scale::Tiny, true);
            assert_ne!(
                clean.events.len(),
                0,
                "workload `{}` clean variant empty",
                w.name
            );
            // The planted variant drops joins, so the traces differ.
            assert_ne!(
                clean.events,
                racy.events,
                "workload `{}` planted variant identical to clean",
                w.name
            );
        }
    }

    #[test]
    #[should_panic(expected = "no planted-race variant")]
    fn planting_a_nonplantable_workload_panics() {
        find("series_future").unwrap().record(Scale::Tiny, true);
    }

    #[test]
    fn parallel_runner_reproduces_the_serial_stream() {
        use futrace_runtime::online::{run_online, OnlineOptions, Serialized};
        for w in workloads() {
            let serial = w.record(Scale::Tiny, false);
            let run = run_online(
                OnlineOptions::threads(2),
                Serialized::new(EventLog::new()),
                |ctx| w.run_parallel_into(ctx, Scale::Tiny, false),
            );
            assert!(run.result.is_ok(), "workload `{}` failed online", w.name);
            assert_eq!(
                run.report.events, serial.events,
                "workload `{}` online stream diverged from the serial elision",
                w.name
            );
        }
    }
}
