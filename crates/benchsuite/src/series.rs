//! Series — Fourier coefficient analysis (JGF benchmark suite).
//!
//! Computes the first `n` pairs of Fourier coefficients of
//! `f(x) = (x+1)^x` on `[0, 2]` by composite trapezoid integration. The
//! JGF kernel's parallel structure: coefficient pair 0 is computed by the
//! main task; every other pair is an independent task — `n − 1` dynamic
//! tasks, zero non-tree joins (Table 2: Series-af / Series-future rows).
//!
//! Per-task shared-memory traffic mirrors the HJ version: each task reads
//! the two shared problem parameters and writes its two coefficients
//! (4 accesses/task for the af variant). The future variant additionally
//! stores each future reference in a shared handle table (one write at
//! creation, one read before `get`), reproducing the paper's observation
//! that Series-future performs ≈ `2 × (n−1)` more shared accesses than
//! Series-af.

use futrace_runtime::memory::SharedArray;
use futrace_runtime::TaskCtx;

/// Problem size for the Series benchmark.
#[derive(Clone, Copy, Debug)]
pub struct SeriesParams {
    /// Number of coefficient pairs (JGF Size C = 1,000,000).
    pub n: usize,
    /// Trapezoid intervals per integration (JGF uses 1000).
    pub intervals: usize,
}

impl SeriesParams {
    /// The paper's configuration (JGF Size C).
    pub fn paper() -> Self {
        SeriesParams {
            n: 1_000_000,
            intervals: 1000,
        }
    }

    /// Laptop-scale configuration preserving the work-per-task ratio that
    /// makes Series' detection overhead negligible (slowdown ≈ 1.00×).
    pub fn scaled() -> Self {
        SeriesParams {
            n: 2_000,
            intervals: 1000,
        }
    }

    /// Bench-profiling configuration. [`SeriesParams::scaled`] keeps the
    /// JGF work-per-task ratio (1000 intervals ≈ 6000 `powf` calls per
    /// event), which is right for the Table-2 slowdown columns but makes
    /// per-event timing meaningless: the uninstrumented run is ~10⁴×
    /// slower than the detector per event. This profile inverts the
    /// ratio — many cheap tasks — so `dtrgperf`'s per-event medians
    /// measure the detector, not the kernel.
    pub fn perf() -> Self {
        SeriesParams {
            n: 20_000,
            intervals: 4,
        }
    }

    /// Minimal configuration for unit tests.
    pub fn tiny() -> Self {
        SeriesParams { n: 8, intervals: 40 }
    }
}

/// The function being analyzed, `(x+1)^x`, optionally multiplied by the
/// basis function `cos(ωnx)` (`select == 1`) or `sin(ωnx)` (`select == 2`).
fn the_function(x: f64, omega_n: f64, select: u32) -> f64 {
    match select {
        0 => (x + 1.0).powf(x),
        1 => (x + 1.0).powf(x) * (omega_n * x).cos(),
        _ => (x + 1.0).powf(x) * (omega_n * x).sin(),
    }
}

/// Composite trapezoid integration over `[lower, upper]`, as in JGF.
fn trapezoid_integrate(lower: f64, upper: f64, intervals: usize, omega_n: f64, select: u32) -> f64 {
    let dx = (upper - lower) / intervals as f64;
    let mut x = lower;
    let mut value = the_function(x, omega_n, select) / 2.0;
    for _ in 1..intervals {
        x += dx;
        value += the_function(x, omega_n, select);
    }
    value += the_function(upper, omega_n, select) / 2.0;
    value * dx
}

/// Computes coefficient pair `i` (the per-task kernel).
fn coefficient_pair(i: usize, intervals: usize) -> (f64, f64) {
    let omega = std::f64::consts::PI; // 2π / period, period = 2
    if i == 0 {
        (trapezoid_integrate(0.0, 2.0, intervals, 0.0, 0) / 2.0, 0.0)
    } else {
        let omega_n = omega * i as f64;
        (
            trapezoid_integrate(0.0, 2.0, intervals, omega_n, 1),
            trapezoid_integrate(0.0, 2.0, intervals, omega_n, 2),
        )
    }
}

/// Reference (serial-elision) implementation: returns `(a, b)` coefficient
/// vectors.
pub fn series_seq(p: &SeriesParams) -> (Vec<f64>, Vec<f64>) {
    let mut a = vec![0.0; p.n];
    let mut b = vec![0.0; p.n];
    for i in 0..p.n {
        let (ai, bi) = coefficient_pair(i, p.intervals);
        a[i] = ai;
        b[i] = bi;
    }
    (a, b)
}

/// Output arrays of a DSL run, for post-run verification.
pub struct SeriesOut {
    /// Cosine coefficients.
    pub a: SharedArray<f64>,
    /// Sine coefficients.
    pub b: SharedArray<f64>,
}

/// Async-finish variant (Series-af): `finish { for i in 1..n async … }`.
pub fn series_af<C: TaskCtx>(ctx: &mut C, p: &SeriesParams) -> SeriesOut {
    let a = ctx.shared_array(p.n, 0.0f64, "series.a");
    let b = ctx.shared_array(p.n, 0.0f64, "series.b");
    // Shared problem parameters, read by every task (2 reads/task).
    let param_n = ctx.shared_var(p.n as u64, "series.n");
    let param_iv = ctx.shared_var(p.intervals as u64, "series.intervals");

    let (a0, b0) = coefficient_pair(0, p.intervals);
    ctx.finish(|ctx| {
        for i in 1..p.n {
            let (a, b) = (a.clone(), b.clone());
            // The spawning task reads the shared parameters while
            // constructing the child (the HJ translation captures them in
            // the task object): 2 reads per task, but the reader set of
            // the parameter cells stays at one entry — the main task.
            let _n = param_n.read(ctx);
            let iv = param_iv.read(ctx) as usize;
            ctx.async_task(move |ctx| {
                let (ai, bi) = coefficient_pair(i, iv);
                a.write(ctx, i, ai);
                b.write(ctx, i, bi);
            });
        }
    });
    a.write(ctx, 0, a0);
    b.write(ctx, 0, b0);
    SeriesOut { a, b }
}

/// Future variant (Series-future): one future per coefficient pair, with
/// each handle stored to / loaded from a shared handle table (the extra
/// `2 × (n−1)` accesses the paper measures), then joined by the main task.
pub fn series_future<C: TaskCtx>(ctx: &mut C, p: &SeriesParams) -> SeriesOut {
    let a = ctx.shared_array(p.n, 0.0f64, "series.a");
    let b = ctx.shared_array(p.n, 0.0f64, "series.b");
    let param_n = ctx.shared_var(p.n as u64, "series.n");
    let param_iv = ctx.shared_var(p.intervals as u64, "series.intervals");
    // The shared heap slots the HJ version keeps future references in.
    let handle_table = ctx.shared_array(p.n.max(1), 0u32, "series.handles");

    let (a0, b0) = coefficient_pair(0, p.intervals);
    let mut handles = Vec::with_capacity(p.n.saturating_sub(1));
    for i in 1..p.n {
        let (a, b) = (a.clone(), b.clone());
        // Parameters are read by the spawning task (see series_af).
        let _n = param_n.read(ctx);
        let iv = param_iv.read(ctx) as usize;
        let h = ctx.future(move |ctx| {
            let (ai, bi) = coefficient_pair(i, iv);
            a.write(ctx, i, ai);
            b.write(ctx, i, bi);
        });
        handle_table.write(ctx, i, i as u32); // store the reference
        handles.push(h);
    }
    for (i, h) in handles.iter().enumerate() {
        let _ = handle_table.read(ctx, i + 1); // load the reference
        ctx.get(h);
    }
    a.write(ctx, 0, a0);
    b.write(ctx, 0, b0);
    SeriesOut { a, b }
}

/// Expected dynamic task count for a given size (Table 2 column #Tasks):
/// `n − 1`.
pub fn expected_tasks(p: &SeriesParams) -> u64 {
    (p.n - 1) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::detect_races_with_stats;
    use futrace_runtime::{run_parallel, run_serial, NullMonitor};

    fn close(x: f64, y: f64) -> bool {
        (x - y).abs() < 1e-9
    }

    #[test]
    fn reference_first_coefficients() {
        // Validation values computed independently with Simpson quadrature
        // at 2M intervals: a0 = 2.8819181, a1 = 1.1340356, b1 = -1.8820903.
        let p = SeriesParams {
            n: 4,
            intervals: 1000,
        };
        let (a, b) = series_seq(&p);
        assert!((a[0] - 2.8819181).abs() < 1e-4, "a0 = {}", a[0]);
        assert!((a[1] - 1.1340356).abs() < 1e-4, "a1 = {}", a[1]);
        assert!((b[1] + 1.8820903).abs() < 1e-4, "b1 = {}", b[1]);
        assert_eq!(b[0], 0.0);
    }

    #[test]
    fn af_matches_reference() {
        let p = SeriesParams::tiny();
        let (ra, rb) = series_seq(&p);
        let mut mon = NullMonitor;
        let out = run_serial(&mut mon, |ctx| series_af(ctx, &p));
        for i in 0..p.n {
            assert!(close(out.a.peek(i), ra[i]), "a[{i}]");
            assert!(close(out.b.peek(i), rb[i]), "b[{i}]");
        }
    }

    #[test]
    fn future_matches_reference() {
        let p = SeriesParams::tiny();
        let (ra, rb) = series_seq(&p);
        let mut mon = NullMonitor;
        let out = run_serial(&mut mon, |ctx| series_future(ctx, &p));
        for i in 0..p.n {
            assert!(close(out.a.peek(i), ra[i]), "a[{i}]");
            assert!(close(out.b.peek(i), rb[i]), "b[{i}]");
        }
    }

    #[test]
    fn both_variants_race_free_with_expected_structure() {
        let p = SeriesParams::tiny();
        let (rep, stats) = detect_races_with_stats(|ctx| {
            series_af(ctx, &p);
        });
        assert!(!rep.has_races());
        assert_eq!(stats.tasks, expected_tasks(&p));
        assert_eq!(stats.nt_joins(), 0, "Series-af has zero non-tree joins");
        // 4 accesses per task (+ main's 2 writes for pair 0).
        assert_eq!(stats.shared_mem(), 4 * expected_tasks(&p) + 2);

        let (rep, stats) = detect_races_with_stats(|ctx| {
            series_future(ctx, &p);
        });
        assert!(!rep.has_races());
        assert_eq!(stats.tasks, expected_tasks(&p));
        assert_eq!(stats.nt_joins(), 0, "parent gets are tree joins");
        // +2 handle-table accesses per task relative to af.
        assert_eq!(stats.shared_mem(), 6 * expected_tasks(&p) + 2);
    }

    #[test]
    fn parallel_execution_matches_reference() {
        let p = SeriesParams::tiny();
        let (ra, _) = series_seq(&p);
        let out = run_parallel(4, |ctx| {
            let out = series_future(ctx, &p);
            out.a.snapshot()
        })
        .unwrap();
        for i in 0..p.n {
            assert!(close(out[i], ra[i]), "a[{i}]");
        }
    }
}
