//! Smith-Waterman — local sequence alignment with a tiled wavefront of
//! future tasks (based on the COMP322 programming project the paper cites).
//!
//! The H-matrix of the affine-free Smith-Waterman recurrence
//!
//! ```text
//! H[i][j] = max(0,
//!               H[i-1][j-1] + sub(a[i], b[j]),
//!               H[i-1][j]   - gap,
//!               H[i][j-1]   - gap)
//! ```
//!
//! is computed by a `t × t` grid of tiles; the tile task `(ti, tj)`
//! performs `get()` on the tiles to its **left**, **top** and **top-left**
//! before reading their boundary cells. All three are sibling joins, hence
//! non-tree:
//!
//! > #NTJoins = 3(t−1)² + 2(t−1); paper size `t = 40` gives
//! > `3·39² + 78 = 4,641`, matching Table 2 ([`expected_nt_joins`]).
//!
//! This benchmark has the paper's largest #SharedMem and #AvgReaders
//! (boundary rows are read by two later tiles in parallel), which is why
//! it shows the worst slowdown (9.92×).

use futrace_runtime::memory::SharedArray;
use futrace_runtime::TaskCtx;

/// Problem size for the Smith-Waterman benchmark.
#[derive(Clone, Copy, Debug)]
pub struct SwParams {
    /// Sequence length (both sequences), a multiple of `tiles`.
    pub n: usize,
    /// Tiles per side (the paper uses a 40×40 task grid over n = 10,000).
    pub tiles: usize,
    /// Seed for the random ACGT sequences.
    pub seed: u64,
}

impl SwParams {
    /// The paper's configuration.
    pub fn paper() -> Self {
        SwParams {
            n: 10_000,
            tiles: 40,
            seed: 0xac97,
        }
    }

    /// Laptop-scale configuration.
    pub fn scaled() -> Self {
        SwParams {
            n: 800,
            tiles: 20,
            seed: 0xac97,
        }
    }

    /// Minimal configuration for unit tests.
    pub fn tiny() -> Self {
        SwParams {
            n: 24,
            tiles: 4,
            seed: 0xac97,
        }
    }

    /// Cells per tile side.
    pub fn tile_size(&self) -> usize {
        assert_eq!(self.n % self.tiles, 0, "n must be a multiple of tiles");
        self.n / self.tiles
    }
}

/// Scoring scheme (match/mismatch/gap), as in the COMP322 project.
pub const MATCH: i32 = 2;
/// Mismatch penalty.
pub const MISMATCH: i32 = -1;
/// Linear gap penalty.
pub const GAP: i32 = 1;

#[inline]
fn sub(a: u8, b: u8) -> i32 {
    if a == b {
        MATCH
    } else {
        MISMATCH
    }
}

/// Deterministic random ACGT sequences for a parameter set.
pub fn sequences(p: &SwParams) -> (Vec<u8>, Vec<u8>) {
    let mut rng = futrace_util::rng::seeded(p.seed);
    let mk = |rng: &mut futrace_util::rng::Rng, n: usize| {
        (0..n).map(|_| b"ACGT"[rng.gen_range(0usize..4)]).collect()
    };
    let a = mk(&mut rng, p.n);
    let b = mk(&mut rng, p.n);
    (a, b)
}

/// Reference (serial-elision) implementation: returns the full
/// `(n+1)×(n+1)` H matrix (row-major).
pub fn sw_seq(p: &SwParams) -> Vec<i32> {
    let n = p.n;
    let (a, b) = sequences(p);
    let w = n + 1;
    let mut h = vec![0i32; w * w];
    for i in 1..=n {
        for j in 1..=n {
            let diag = h[(i - 1) * w + j - 1] + sub(a[i - 1], b[j - 1]);
            let up = h[(i - 1) * w + j] - GAP;
            let left = h[i * w + j - 1] - GAP;
            h[i * w + j] = diag.max(up).max(left).max(0);
        }
    }
    h
}

/// Maximum alignment score of the reference matrix.
pub fn sw_seq_score(p: &SwParams) -> i32 {
    sw_seq(p).into_iter().max().unwrap_or(0)
}

/// DSL run. Returns the shared H matrix (`(n+1)²`, row-major).
///
/// `plant_race` (tests only) drops the `get()` on the top tile, so reads
/// of the boundary row above race with that tile's writes.
pub fn sw_run<C: TaskCtx>(ctx: &mut C, p: &SwParams, plant_race: bool) -> SharedArray<i32> {
    let n = p.n;
    let t = p.tiles;
    let ts = p.tile_size();
    let w = n + 1;
    let (a, b) = sequences(p);

    let h = ctx.shared_array(w * w, 0i32, "sw.h");
    let seq_a = ctx.shared_array(n, 0u8, "sw.a");
    let seq_b = ctx.shared_array(n, 0u8, "sw.b");
    for i in 0..n {
        seq_a.poke(i, a[i]); // input seeding
        seq_b.poke(i, b[i]);
    }

    let mut handles: Vec<Option<C::Handle<()>>> = vec![None; t * t];
    for ti in 0..t {
        for tj in 0..t {
            let mut deps: Vec<C::Handle<()>> = Vec::with_capacity(3);
            if tj > 0 {
                deps.push(handles[ti * t + tj - 1].clone().unwrap()); // left
            }
            if !plant_race && ti > 0 {
                // The top dependence is NOT implied transitively (the left
                // tile only orders the top-left corner), so dropping it
                // plants a genuine race on the boundary row above.
                deps.push(handles[(ti - 1) * t + tj].clone().unwrap()); // top
            }
            if ti > 0 && tj > 0 {
                deps.push(handles[(ti - 1) * t + tj - 1].clone().unwrap()); // diag
            }
            let (h, seq_a, seq_b) = (h.clone(), seq_a.clone(), seq_b.clone());
            let fut = ctx.future(move |ctx| {
                for d in &deps {
                    ctx.get(d);
                }
                // Matrix rows/cols covered by this tile (1-based).
                let (r0, c0) = (ti * ts + 1, tj * ts + 1);
                for i in r0..r0 + ts {
                    let ai = seq_a.read(ctx, i - 1);
                    for j in c0..c0 + ts {
                        let bj = seq_b.read(ctx, j - 1);
                        let diag = h.read(ctx, (i - 1) * w + j - 1) + sub(ai, bj);
                        let up = h.read(ctx, (i - 1) * w + j) - GAP;
                        let left = h.read(ctx, i * w + j - 1) - GAP;
                        h.write(ctx, i * w + j, diag.max(up).max(left).max(0));
                    }
                }
            });
            handles[ti * t + tj] = Some(fut);
        }
    }
    // The driver joins the bottom-right tile (which transitively dominates
    // the whole wavefront) before scanning for the maximum score.
    let last = handles[t * t - 1].clone().unwrap();
    ctx.get(&last);
    h
}

/// Maximum score from a DSL run's matrix (uninstrumented post-run scan).
pub fn max_score(h: &SharedArray<i32>) -> i32 {
    h.snapshot().into_iter().max().unwrap_or(0)
}

/// Expected dynamic task count: `tiles²` (paper: 1,600 of the 1,608 tasks
/// Table 2 reports; the remainder are driver tasks in the original
/// harness).
pub fn expected_tasks(p: &SwParams) -> u64 {
    (p.tiles * p.tiles) as u64
}

/// Expected non-tree joins: left + top + diagonal gets over the tile grid:
/// `3(t−1)² + 2(t−1)` (paper: 4,641, Table 2).
pub fn expected_nt_joins(p: &SwParams) -> u64 {
    let t = p.tiles as u64;
    3 * (t - 1) * (t - 1) + 2 * (t - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::detect_races_with_stats;
    use futrace_runtime::run_parallel;

    #[test]
    fn paper_size_structural_counts() {
        let p = SwParams::paper();
        assert_eq!(expected_tasks(&p), 1600);
        assert_eq!(expected_nt_joins(&p), 4641, "Table 2 #NTJoins");
    }

    #[test]
    fn identical_sequences_score_perfect() {
        // Hand-check the recurrence on identical sequences: the best local
        // alignment is the full match, scoring n × MATCH.
        let p = SwParams {
            n: 6,
            tiles: 2,
            seed: 1,
        };
        let (a, _) = sequences(&p);
        let w = p.n + 1;
        let mut h = vec![0i32; w * w];
        for i in 1..=p.n {
            for j in 1..=p.n {
                let diag = h[(i - 1) * w + j - 1] + sub(a[i - 1], a[j - 1]);
                let up = h[(i - 1) * w + j] - GAP;
                let left = h[i * w + j - 1] - GAP;
                h[i * w + j] = diag.max(up).max(left).max(0);
            }
        }
        assert_eq!(h[p.n * w + p.n], (p.n as i32) * MATCH);
    }

    #[test]
    fn dsl_matches_reference() {
        let p = SwParams::tiny();
        let expect = sw_seq(&p);
        let (rep, stats) = detect_races_with_stats(|ctx| {
            let h = sw_run(ctx, &p, false);
            assert_eq!(h.snapshot(), expect);
        });
        assert!(!rep.has_races());
        assert_eq!(stats.tasks, expected_tasks(&p));
        assert_eq!(stats.nt_joins(), expected_nt_joins(&p));
    }

    #[test]
    fn boundary_rows_have_multiple_parallel_readers() {
        // The right and bottom neighbours of a tile read its boundary in
        // parallel: #AvgReaders must exceed the async-finish ceiling of 1
        // somewhere (Table 2's explanation for the 9.92× slowdown).
        let p = SwParams::tiny();
        let (_, stats) = detect_races_with_stats(|ctx| {
            let _ = sw_run(ctx, &p, false);
        });
        assert!(
            stats.readers_at_access.max().unwrap() >= 2.0,
            "some cell must be watched by two parallel future readers"
        );
    }

    #[test]
    fn planted_race_is_detected() {
        let p = SwParams::tiny();
        let (rep, _) = detect_races_with_stats(|ctx| {
            let _ = sw_run(ctx, &p, true);
        });
        assert!(rep.has_races(), "dropping the top get must race");
    }

    #[test]
    fn parallel_execution_matches_reference() {
        let p = SwParams::tiny();
        let expect_score = sw_seq_score(&p);
        let got = run_parallel(4, |ctx| {
            let h = sw_run(ctx, &p, false);
            max_score(&h)
        })
        .unwrap();
        assert_eq!(got, expect_score);
    }
}
