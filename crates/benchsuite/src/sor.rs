//! SOR — red-black successive over-relaxation (JGF benchmark suite), an
//! extension workload on the async-finish side of the suite.
//!
//! Each sweep updates the red cells (`(i+j)` even) and then the black
//! cells of a 2D grid with the over-relaxed 4-point stencil
//!
//! ```text
//! G[i][j] ← ω/4 · (G[i−1][j] + G[i+1][j] + G[i][j−1] + G[i][j+1])
//!           + (1−ω) · G[i][j]
//! ```
//!
//! Within one color phase no cell reads another cell of the same color,
//! so a `finish { async per row-band }` per phase is race-free; the two
//! phases are ordered by their finishes. Pure async-finish: zero non-tree
//! joins — SOR extends the `af-overhead` comparison (DTRG vs. ESP-bags)
//! with a stencil-shaped access pattern.

use futrace_runtime::memory::SharedArray;
use futrace_runtime::TaskCtx;

/// Problem size for the SOR benchmark.
#[derive(Clone, Copy, Debug)]
pub struct SorParams {
    /// Grid side length.
    pub n: usize,
    /// Number of red+black sweeps.
    pub sweeps: usize,
    /// Rows per task.
    pub band: usize,
    /// Input seed.
    pub seed: u64,
}

/// The JGF over-relaxation factor.
pub const OMEGA: f64 = 1.25;

impl SorParams {
    /// Laptop-scale configuration.
    pub fn scaled() -> Self {
        SorParams {
            n: 256,
            sweeps: 10,
            band: 8,
            seed: 0x50f,
        }
    }

    /// Minimal configuration for unit tests.
    pub fn tiny() -> Self {
        SorParams {
            n: 16,
            sweeps: 3,
            band: 2,
            seed: 0x50f,
        }
    }
}

/// Deterministic initial grid.
pub fn initial_grid(p: &SorParams) -> Vec<f64> {
    let mut rng = futrace_util::rng::seeded(p.seed);
    (0..p.n * p.n).map(|_| rng.gen_range(0.0..1.0)).collect()
}

#[inline]
fn relax(g: &[f64], n: usize, i: usize, j: usize) -> f64 {
    OMEGA / 4.0 * (g[(i - 1) * n + j] + g[(i + 1) * n + j] + g[i * n + j - 1] + g[i * n + j + 1])
        + (1.0 - OMEGA) * g[i * n + j]
}

/// Reference (serial-elision) implementation.
pub fn sor_seq(p: &SorParams) -> Vec<f64> {
    let n = p.n;
    let mut g = initial_grid(p);
    for _ in 0..p.sweeps {
        for color in 0..2usize {
            for i in 1..n - 1 {
                let start = 1 + (i + color) % 2;
                let mut j = start;
                while j < n - 1 {
                    g[i * n + j] = relax(&g, n, i, j);
                    j += 2;
                }
            }
        }
    }
    g
}

/// DSL run (async-finish): one finish per color phase, one async per
/// row band.
///
/// `plant_race` (tests only) fuses the two phases into one finish, so
/// black updates race with the red updates they read.
pub fn sor_run<C: TaskCtx>(ctx: &mut C, p: &SorParams, plant_race: bool) -> SharedArray<f64> {
    let n = p.n;
    let grid = ctx.shared_array(n * n, 0.0f64, "sor.grid");
    for (i, v) in initial_grid(p).into_iter().enumerate() {
        grid.poke(i, v); // input seeding
    }
    let bands = (n - 2).div_ceil(p.band);
    let phase = |ctx: &mut C, color: usize| {
        let g = grid.clone();
        let band = p.band;
        ctx.forasync(0..bands, move |ctx, b| {
            let row0 = 1 + b * band;
            for i in row0..(row0 + band).min(n - 1) {
                let start = 1 + (i + color) % 2;
                let mut j = start;
                while j < n - 1 {
                    let v = OMEGA / 4.0
                        * (g.read(ctx, (i - 1) * n + j)
                            + g.read(ctx, (i + 1) * n + j)
                            + g.read(ctx, i * n + j - 1)
                            + g.read(ctx, i * n + j + 1))
                        + (1.0 - OMEGA) * g.read(ctx, i * n + j);
                    g.write(ctx, i * n + j, v);
                    j += 2;
                }
            }
        });
    };
    for _ in 0..p.sweeps {
        if plant_race {
            // Both colors inside one finish: the black stencil reads red
            // cells updated by parallel sibling tasks.
            ctx.finish(|ctx| {
                phase(ctx, 0);
                phase(ctx, 1);
            });
        } else {
            ctx.finish(|ctx| phase(ctx, 0));
            ctx.finish(|ctx| phase(ctx, 1));
        }
    }
    grid
}

/// Expected dynamic task count: `2 × sweeps × ⌈(n−2)/band⌉`.
pub fn expected_tasks(p: &SorParams) -> u64 {
    (2 * p.sweeps * (p.n - 2).div_ceil(p.band)) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::detect_races_with_stats;
    use futrace_runtime::run_parallel;

    fn close(a: &[f64], b: &[f64]) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() < 1e-12)
    }

    #[test]
    fn dsl_matches_reference_and_is_race_free() {
        let p = SorParams::tiny();
        let want = sor_seq(&p);
        let (rep, stats) = detect_races_with_stats(|ctx| {
            let g = sor_run(ctx, &p, false);
            assert!(close(&g.snapshot(), &want));
        });
        assert!(!rep.has_races());
        assert_eq!(stats.tasks, expected_tasks(&p));
        assert_eq!(stats.nt_joins(), 0, "pure async-finish");
        assert_eq!(stats.future_tasks, 0);
    }

    #[test]
    fn fused_phases_race() {
        let p = SorParams::tiny();
        let (rep, _) = detect_races_with_stats(|ctx| {
            let _ = sor_run(ctx, &p, true);
        });
        assert!(rep.has_races(), "fused red/black phases must race");
    }

    #[test]
    fn parallel_execution_matches_reference() {
        let p = SorParams::tiny();
        let want = sor_seq(&p);
        let got = run_parallel(4, |ctx| sor_run(ctx, &p, false).snapshot()).unwrap();
        assert!(close(&got, &want));
    }

    #[test]
    fn red_black_decomposition_is_gauss_seidel() {
        // One sweep by hand on a small grid equals the reference.
        let p = SorParams {
            n: 6,
            sweeps: 1,
            band: 1,
            seed: 9,
        };
        let mut g = initial_grid(&p);
        let n = p.n;
        for color in 0..2usize {
            let snapshot = g.clone();
            for i in 1..n - 1 {
                let start = 1 + (i + color) % 2;
                let mut j = start;
                while j < n - 1 {
                    // Within one color, neighbours are the other color, so
                    // reading from the live grid or the snapshot of the
                    // phase start is identical:
                    assert_eq!(relax(&g, n, i, j), relax_from(&snapshot, &g, n, i, j));
                    g[i * n + j] = relax(&g, n, i, j);
                    j += 2;
                }
            }
        }
        assert!(close(&g, &sor_seq(&p)));

        fn relax_from(snap: &[f64], live: &[f64], n: usize, i: usize, j: usize) -> f64 {
            OMEGA / 4.0
                * (snap[(i - 1) * n + j]
                    + snap[(i + 1) * n + j]
                    + snap[i * n + j - 1]
                    + snap[i * n + j + 1])
                + (1.0 - OMEGA) * live[i * n + j]
        }
    }
}
