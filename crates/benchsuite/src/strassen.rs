//! Strassen — recursive matrix multiplication with future-based dependence
//! (translated from the Kastors OpenMP `depends` version, as in the
//! paper).
//!
//! Each recursion node of size `n > cutoff` creates **11 future tasks**:
//! the 7 Strassen products `M1..M7` (each recursing) and the 4 quadrant
//! combinations `C11, C12, C21, C22`. The combinations `get()` the
//! products they consume — 12 sibling joins per node, all non-tree:
//!
//! ```text
//! M1 = (A11+A22)(B11+B22)   C11 = M1+M4−M5+M7   (4 gets)
//! M2 = (A21+A22)B11         C12 = M3+M5         (2 gets)
//! M3 = A11(B12−B22)         C21 = M2+M4         (2 gets)
//! M4 = A22(B21−B11)         C22 = M1−M2+M3+M6   (4 gets)
//! M5 = (A11+A12)B22
//! M6 = (A21−A11)(B11+B12)
//! M7 = (A12−A22)(B21+B22)
//! ```
//!
//! With the paper's 1024×1024 / cutoff 32 there are
//! `1+7+49+343+2401 = 2801` internal nodes, hence `11 × 2801 = 30,811`
//! tasks and `12 × 2801 = 33,612` non-tree joins — Table 2's #Tasks and
//! #NTJoins **exactly** ([`expected_tasks`], [`expected_nt_joins`]).
//!
//! `M5` is consumed by both `C11` and `C12` (and `M1`, `M2`, `M3`, `M4` by
//! two combiners each): a future value read by two parallel readers, the
//! situation that pushes #AvgReaders above the async-finish ceiling.

use futrace_runtime::memory::SharedArray;
use futrace_runtime::TaskCtx;

/// Problem size for the Strassen benchmark.
#[derive(Clone, Copy, Debug)]
pub struct StrassenParams {
    /// Matrix side; must be `cutoff × 2^k`.
    pub n: usize,
    /// Side length below which classical multiplication is used.
    pub cutoff: usize,
    /// Seed for the input matrices.
    pub seed: u64,
}

impl StrassenParams {
    /// The paper's configuration (1024×1024, cutoff 32).
    pub fn paper() -> Self {
        StrassenParams {
            n: 1024,
            cutoff: 32,
            seed: 0x57a5,
        }
    }

    /// Laptop-scale configuration.
    pub fn scaled() -> Self {
        StrassenParams {
            n: 128,
            cutoff: 16,
            seed: 0x57a5,
        }
    }

    /// Minimal configuration for unit tests.
    pub fn tiny() -> Self {
        StrassenParams {
            n: 16,
            cutoff: 4,
            seed: 0x57a5,
        }
    }

    /// Number of internal (recursing) nodes: `Σ 7^k` for the levels above
    /// the cutoff.
    pub fn internal_nodes(&self) -> u64 {
        let mut n = self.n;
        let mut level = 1u64;
        let mut total = 0u64;
        while n > self.cutoff {
            total += level;
            level *= 7;
            n /= 2;
        }
        total
    }
}

/// Deterministic input matrices.
pub fn inputs(p: &StrassenParams) -> (Vec<f64>, Vec<f64>) {
    let mut rng = futrace_util::rng::seeded(p.seed);
    let mk = |rng: &mut futrace_util::rng::Rng| {
        (0..p.n * p.n).map(|_| rng.gen_range(-1.0..1.0)).collect()
    };
    let a = mk(&mut rng);
    let b = mk(&mut rng);
    (a, b)
}

/// Classical O(n³) multiply (correctness oracle for tests).
pub fn classical_seq(a: &[f64], b: &[f64], n: usize) -> Vec<f64> {
    let mut c = vec![0.0; n * n];
    for i in 0..n {
        for k in 0..n {
            let aik = a[i * n + k];
            for j in 0..n {
                c[i * n + j] += aik * b[k * n + j];
            }
        }
    }
    c
}

/// Reference (serial-elision) Strassen — the same algorithm and cutoff as
/// the DSL program, in plain Rust. This is Table 2's Seq measurement.
pub fn strassen_seq(a: &[f64], b: &[f64], n: usize, cutoff: usize) -> Vec<f64> {
    if n <= cutoff {
        return classical_seq(a, b, n);
    }
    let h = n / 2;
    let quad = |m: &[f64], qi: usize, qj: usize| -> Vec<f64> {
        let mut out = vec![0.0; h * h];
        for i in 0..h {
            for j in 0..h {
                out[i * h + j] = m[(qi * h + i) * n + qj * h + j];
            }
        }
        out
    };
    let add = |x: &[f64], y: &[f64]| -> Vec<f64> { x.iter().zip(y).map(|(a, b)| a + b).collect() };
    let sub = |x: &[f64], y: &[f64]| -> Vec<f64> { x.iter().zip(y).map(|(a, b)| a - b).collect() };
    let (a11, a12, a21, a22) = (quad(a, 0, 0), quad(a, 0, 1), quad(a, 1, 0), quad(a, 1, 1));
    let (b11, b12, b21, b22) = (quad(b, 0, 0), quad(b, 0, 1), quad(b, 1, 0), quad(b, 1, 1));
    let m1 = strassen_seq(&add(&a11, &a22), &add(&b11, &b22), h, cutoff);
    let m2 = strassen_seq(&add(&a21, &a22), &b11, h, cutoff);
    let m3 = strassen_seq(&a11, &sub(&b12, &b22), h, cutoff);
    let m4 = strassen_seq(&a22, &sub(&b21, &b11), h, cutoff);
    let m5 = strassen_seq(&add(&a11, &a12), &b22, h, cutoff);
    let m6 = strassen_seq(&sub(&a21, &a11), &add(&b11, &b12), h, cutoff);
    let m7 = strassen_seq(&sub(&a12, &a22), &add(&b21, &b22), h, cutoff);
    let mut c = vec![0.0; n * n];
    for i in 0..h {
        for j in 0..h {
            let k = i * h + j;
            c[i * n + j] = m1[k] + m4[k] - m5[k] + m7[k];
            c[i * n + j + h] = m3[k] + m5[k];
            c[(i + h) * n + j] = m2[k] + m4[k];
            c[(i + h) * n + j + h] = m1[k] - m2[k] + m3[k] + m6[k];
        }
    }
    c
}

/// A read-only square view into a shared matrix.
struct View {
    arr: SharedArray<f64>,
    r0: usize,
    c0: usize,
    stride: usize,
}

impl Clone for View {
    fn clone(&self) -> Self {
        View {
            arr: self.arr.clone(),
            r0: self.r0,
            c0: self.c0,
            stride: self.stride,
        }
    }
}

impl View {
    fn whole(arr: SharedArray<f64>, n: usize) -> Self {
        View {
            arr,
            r0: 0,
            c0: 0,
            stride: n,
        }
    }

    fn quad(&self, h: usize, qi: usize, qj: usize) -> View {
        View {
            arr: self.arr.clone(),
            r0: self.r0 + qi * h,
            c0: self.c0 + qj * h,
            stride: self.stride,
        }
    }

    #[inline]
    fn read(&self, ctx: &mut impl futrace_runtime::memory::MemCtx, i: usize, j: usize) -> f64 {
        self.arr
            .read(ctx, (self.r0 + i) * self.stride + self.c0 + j)
    }
}

/// Element-wise `x op y` of two `h×h` views into a fresh shared temp.
fn combine_views<C: TaskCtx>(ctx: &mut C, x: &View, y: &View, h: usize, minus: bool) -> View {
    let t = ctx.shared_array(h * h, 0.0f64, "strassen.tmp");
    for i in 0..h {
        for j in 0..h {
            let v = if minus {
                x.read(ctx, i, j) - y.read(ctx, i, j)
            } else {
                x.read(ctx, i, j) + y.read(ctx, i, j)
            };
            t.write(ctx, i * h + j, v);
        }
    }
    View::whole(t, h)
}

/// Recursive Strassen multiply of two `n×n` views, returning a dense
/// shared result (the future-task structure described in the module docs).
fn mult<C: TaskCtx>(ctx: &mut C, a: View, b: View, n: usize, cutoff: usize) -> SharedArray<f64> {
    if n <= cutoff {
        let out = ctx.shared_array(n * n, 0.0f64, "strassen.leaf");
        for i in 0..n {
            for j in 0..n {
                let mut sum = 0.0;
                for k in 0..n {
                    sum += a.read(ctx, i, k) * b.read(ctx, k, j);
                }
                out.write(ctx, i * n + j, sum);
            }
        }
        return out;
    }
    let h = n / 2;
    let (a11, a12, a21, a22) = (a.quad(h, 0, 0), a.quad(h, 0, 1), a.quad(h, 1, 0), a.quad(h, 1, 1));
    let (b11, b12, b21, b22) = (b.quad(h, 0, 0), b.quad(h, 0, 1), b.quad(h, 1, 0), b.quad(h, 1, 1));

    // The 7 product futures. Operand sums/differences are computed inside
    // each product task (reads of A/B are ordered before the spawn-free
    // recursive work by program order within the task).
    let m1 = {
        let (x1, x2, y1, y2) = (a11.clone(), a22.clone(), b11.clone(), b22.clone());
        ctx.future(move |ctx| {
            let s = combine_views(ctx, &x1, &x2, h, false);
            let t = combine_views(ctx, &y1, &y2, h, false);
            mult(ctx, s, t, h, cutoff)
        })
    };
    let m2 = {
        let (x1, x2, y) = (a21.clone(), a22.clone(), b11.clone());
        ctx.future(move |ctx| {
            let s = combine_views(ctx, &x1, &x2, h, false);
            mult(ctx, s, y, h, cutoff)
        })
    };
    let m3 = {
        let (x, y1, y2) = (a11.clone(), b12.clone(), b22.clone());
        ctx.future(move |ctx| {
            let t = combine_views(ctx, &y1, &y2, h, true);
            mult(ctx, x, t, h, cutoff)
        })
    };
    let m4 = {
        let (x, y1, y2) = (a22.clone(), b21.clone(), b11.clone());
        ctx.future(move |ctx| {
            let t = combine_views(ctx, &y1, &y2, h, true);
            mult(ctx, x, t, h, cutoff)
        })
    };
    let m5 = {
        let (x1, x2, y) = (a11.clone(), a12.clone(), b22.clone());
        ctx.future(move |ctx| {
            let s = combine_views(ctx, &x1, &x2, h, false);
            mult(ctx, s, y, h, cutoff)
        })
    };
    let m6 = {
        let (x1, x2, y1, y2) = (a21.clone(), a11.clone(), b11.clone(), b12.clone());
        ctx.future(move |ctx| {
            let s = combine_views(ctx, &x1, &x2, h, true);
            let t = combine_views(ctx, &y1, &y2, h, false);
            mult(ctx, s, t, h, cutoff)
        })
    };
    let m7 = {
        let (x1, x2, y1, y2) = (a12.clone(), a22.clone(), b21.clone(), b22.clone());
        ctx.future(move |ctx| {
            let s = combine_views(ctx, &x1, &x2, h, true);
            let t = combine_views(ctx, &y1, &y2, h, false);
            mult(ctx, s, t, h, cutoff)
        })
    };

    let out = ctx.shared_array(n * n, 0.0f64, "strassen.out");
    // The 4 combination futures; their gets on sibling products are the
    // node's 12 non-tree joins.
    let combine = |ms: Vec<(C::Handle<SharedArray<f64>>, f64)>, qi: usize, qj: usize| {
        let out = out.clone();
        move |ctx: &mut C| {
            let parts: Vec<(SharedArray<f64>, f64)> =
                ms.iter().map(|(hdl, sign)| (ctx.get(hdl), *sign)).collect();
            for i in 0..h {
                for j in 0..h {
                    let mut v = 0.0;
                    for (m, sign) in &parts {
                        v += sign * m.read(ctx, i * h + j);
                    }
                    out.write(ctx, (qi * h + i) * n + qj * h + j, v);
                }
            }
        }
    };
    let c11 = ctx.future(combine(
        vec![(m1.clone(), 1.0), (m4.clone(), 1.0), (m5.clone(), -1.0), (m7, 1.0)],
        0,
        0,
    ));
    let c12 = ctx.future(combine(vec![(m3.clone(), 1.0), (m5, 1.0)], 0, 1));
    let c21 = ctx.future(combine(vec![(m2.clone(), 1.0), (m4, 1.0)], 1, 0));
    let c22 = ctx.future(combine(
        vec![(m1, 1.0), (m2, -1.0), (m3, 1.0), (m6, 1.0)],
        1,
        1,
    ));
    ctx.get(&c11);
    ctx.get(&c12);
    ctx.get(&c21);
    ctx.get(&c22);
    out
}

/// DSL run: multiplies the two seeded input matrices; returns the result.
pub fn strassen_run<C: TaskCtx>(ctx: &mut C, p: &StrassenParams) -> SharedArray<f64> {
    let (a, b) = inputs(p);
    let sa = ctx.shared_array(p.n * p.n, 0.0f64, "strassen.a");
    let sb = ctx.shared_array(p.n * p.n, 0.0f64, "strassen.b");
    for i in 0..p.n * p.n {
        sa.poke(i, a[i]); // input seeding
        sb.poke(i, b[i]);
    }
    mult(
        ctx,
        View::whole(sa, p.n),
        View::whole(sb, p.n),
        p.n,
        p.cutoff,
    )
}

/// Expected dynamic task count: `11 × internal_nodes` (paper: 30,811).
pub fn expected_tasks(p: &StrassenParams) -> u64 {
    11 * p.internal_nodes()
}

/// Expected non-tree joins: `12 × internal_nodes` (paper: 33,612).
pub fn expected_nt_joins(p: &StrassenParams) -> u64 {
    12 * p.internal_nodes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::detect_races_with_stats;
    use futrace_runtime::run_parallel;

    fn close(a: &[f64], b: &[f64]) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() < 1e-8)
    }

    #[test]
    fn paper_size_structural_counts() {
        let p = StrassenParams::paper();
        assert_eq!(p.internal_nodes(), 2801);
        assert_eq!(expected_tasks(&p), 30_811, "Table 2 #Tasks");
        assert_eq!(expected_nt_joins(&p), 33_612, "Table 2 #NTJoins");
    }

    #[test]
    fn strassen_seq_matches_classical() {
        let p = StrassenParams::tiny();
        let (a, b) = inputs(&p);
        let want = classical_seq(&a, &b, p.n);
        let got = strassen_seq(&a, &b, p.n, p.cutoff);
        assert!(close(&want, &got));
    }

    #[test]
    fn dsl_matches_classical_and_is_race_free() {
        let p = StrassenParams::tiny();
        let (a, b) = inputs(&p);
        let want = classical_seq(&a, &b, p.n);
        let (rep, stats) = detect_races_with_stats(|ctx| {
            let out = strassen_run(ctx, &p);
            assert!(close(&out.snapshot(), &want));
        });
        assert!(!rep.has_races());
        assert_eq!(stats.tasks, expected_tasks(&p));
        assert_eq!(stats.nt_joins(), expected_nt_joins(&p));
    }

    #[test]
    fn shared_products_have_parallel_readers() {
        // M1/M5 etc. are read by two parallel combiners: #AvgReaders > 0
        // and the max stored-reader count reaches 2.
        let p = StrassenParams::tiny();
        let (_, stats) = detect_races_with_stats(|ctx| {
            let _ = strassen_run(ctx, &p);
        });
        assert!(stats.readers_at_access.max().unwrap() >= 2.0);
    }

    #[test]
    fn cutoff_equal_n_is_pure_classical() {
        let p = StrassenParams {
            n: 8,
            cutoff: 8,
            seed: 3,
        };
        assert_eq!(p.internal_nodes(), 0);
        let (a, b) = inputs(&p);
        let want = classical_seq(&a, &b, p.n);
        let (rep, stats) = detect_races_with_stats(|ctx| {
            let out = strassen_run(ctx, &p);
            assert!(close(&out.snapshot(), &want));
        });
        assert!(!rep.has_races());
        assert_eq!(stats.tasks, 0);
    }

    #[test]
    fn parallel_execution_matches_classical() {
        let p = StrassenParams::tiny();
        let (a, b) = inputs(&p);
        let want = classical_seq(&a, &b, p.n);
        let got = run_parallel(4, |ctx| strassen_run(ctx, &p).snapshot()).unwrap();
        assert!(close(&got, &want));
    }
}
