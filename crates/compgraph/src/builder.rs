//! Builds the computation graph from the instrumentation event stream.
//!
//! [`GraphBuilder`] implements [`Monitor`] and applies Definition 1
//! mechanically: a task's current step ends whenever the task spawns,
//! starts/ends a finish, or performs a `get`; the events then insert the
//! continue/spawn/join edges of §3. Because the serial executor runs
//! depth-first, every join source (the joined task's last step) already
//! exists when the join edge is inserted, so all edges point forward in
//! step-id order and step ids form a topological order of the DAG.

use crate::graph::{Access, CompGraph, Edge, EdgeKind, JoinKind, TaskInfo};
use futrace_runtime::monitor::{Monitor, TaskKind};
use futrace_util::ids::{FinishId, LocId, StepId, TaskId};

/// Monitor that records the full step-level computation graph.
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    graph: CompGraph,
    /// Current (open) step of each task, indexed by task id.
    cur_step: Vec<StepId>,
}

impl Default for GraphBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl GraphBuilder {
    /// Fresh builder, pre-seeded with the main task and its first step.
    pub fn new() -> Self {
        let mut graph = CompGraph::default();
        graph.step_task.push(TaskId::MAIN);
        graph.tasks.push(TaskInfo {
            parent: None,
            is_future: false,
            first_step: StepId(0),
            last_step: StepId(0),
        });
        GraphBuilder {
            graph,
            cur_step: vec![StepId(0)],
        }
    }

    /// Finalizes and returns the graph (call after `run_serial` returns).
    pub fn into_graph(self) -> CompGraph {
        self.graph
    }

    /// Read-only view of the graph built so far.
    pub fn graph(&self) -> &CompGraph {
        &self.graph
    }

    fn new_step(&mut self, task: TaskId) -> StepId {
        let id = StepId::from_index(self.graph.step_task.len());
        self.graph.step_task.push(task);
        id
    }

    /// Ends `task`'s current step and opens the next one, linked by a
    /// continue edge. Returns (ended, opened).
    fn advance(&mut self, task: TaskId) -> (StepId, StepId) {
        let ended = self.cur_step[task.index()];
        let opened = self.new_step(task);
        self.graph.edges.push(Edge {
            from: ended,
            to: opened,
            kind: EdgeKind::Continue,
        });
        self.cur_step[task.index()] = opened;
        (ended, opened)
    }
}

impl Monitor for GraphBuilder {
    fn task_create(&mut self, parent: TaskId, child: TaskId, kind: TaskKind, _ief: FinishId) {
        debug_assert_eq!(child.index(), self.graph.tasks.len(), "dense task ids");
        // Parent's step ends with the async; spawn edge to the child's first
        // step, continue edge to the parent's next step.
        let (ended, _opened) = self.advance(parent);
        let child_first = self.new_step(child);
        self.graph.edges.push(Edge {
            from: ended,
            to: child_first,
            kind: EdgeKind::Spawn,
        });
        self.graph.tasks.push(TaskInfo {
            parent: Some(parent),
            is_future: kind.is_future(),
            first_step: child_first,
            last_step: child_first,
        });
        self.cur_step.push(child_first);
    }

    fn task_end(&mut self, task: TaskId) {
        let last = self.cur_step[task.index()];
        self.graph.tasks[task.index()].last_step = last;
    }

    fn finish_start(&mut self, task: TaskId, _finish: FinishId) {
        self.advance(task);
    }

    fn finish_end(&mut self, task: TaskId, _finish: FinishId, joined: &[TaskId]) {
        let (_, opened) = self.advance(task);
        for &j in joined {
            // End-of-finish joins always target an ancestor of the joined
            // task (the IEF's owner), so they are tree joins by definition.
            let from = self.graph.tasks[j.index()].last_step;
            self.graph.edges.push(Edge {
                from,
                to: opened,
                kind: EdgeKind::Join(JoinKind::Tree),
            });
        }
    }

    fn get(&mut self, waiter: TaskId, awaited: TaskId) {
        let (_, opened) = self.advance(waiter);
        let kind = if self.graph.is_ancestor(waiter, awaited) {
            JoinKind::Tree
        } else {
            JoinKind::NonTree
        };
        let from = self.graph.tasks[awaited.index()].last_step;
        self.graph.edges.push(Edge {
            from,
            to: opened,
            kind: EdgeKind::Join(kind),
        });
    }

    fn read(&mut self, task: TaskId, loc: LocId) {
        self.graph.accesses.push(Access {
            step: self.cur_step[task.index()],
            task,
            loc,
            is_write: false,
        });
    }

    fn write(&mut self, task: TaskId, loc: LocId) {
        self.graph.accesses.push(Access {
            step: self.cur_step[task.index()],
            task,
            loc,
            is_write: true,
        });
    }
}

impl futrace_runtime::engine::Analysis for GraphBuilder {
    type Report = CompGraph;

    fn apply_control(&mut self, e: &futrace_runtime::Event) {
        futrace_runtime::engine::control_to_monitor(self, e);
    }

    fn check_read_at(&mut self, task: TaskId, loc: LocId, _index: u64) {
        Monitor::read(self, task, loc);
    }

    fn check_write_at(&mut self, task: TaskId, loc: LocId, _index: u64) {
        Monitor::write(self, task, loc);
    }

    fn finish(self) -> CompGraph {
        self.into_graph()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use futrace_runtime::{run_serial, TaskCtx};

    #[test]
    fn edges_point_forward_in_step_order() {
        let mut b = GraphBuilder::new();
        run_serial(&mut b, |ctx| {
            let x = ctx.shared_var(0u64, "x");
            let f = ctx.future(move |ctx| x.write(ctx, 1));
            ctx.finish(|ctx| {
                ctx.async_task(|_| {});
            });
            ctx.get(&f);
        });
        let g = b.into_graph();
        for e in &g.edges {
            assert!(e.from < e.to, "edge {e:?} must point forward");
        }
    }

    #[test]
    fn spawn_creates_three_steps() {
        // One async spawn: parent step ends, child first step + parent next
        // step are created.
        let mut b = GraphBuilder::new();
        run_serial(&mut b, |ctx| {
            ctx.async_task(|_| {});
        });
        let g = b.into_graph();
        // S0 (main before), S1 (main after spawn), S2 (child)? Order: the
        // advance() creates main's next step before the child's first step.
        assert_eq!(g.step_count(), 4); // + one step after implicit finish end
        assert_eq!(
            g.edges
                .iter()
                .filter(|e| e.kind == EdgeKind::Spawn)
                .count(),
            1
        );
        let spawn = g.edges.iter().find(|e| e.kind == EdgeKind::Spawn).unwrap();
        assert_eq!(g.task_of(spawn.from), TaskId(0));
        assert_eq!(g.task_of(spawn.to), TaskId(1));
    }

    #[test]
    fn get_by_sibling_is_non_tree() {
        let mut b = GraphBuilder::new();
        run_serial(&mut b, |ctx| {
            let f = ctx.future(|_| 1u8);
            let f2 = f.clone();
            let _g = ctx.future(move |ctx| ctx.get(&f2));
        });
        let g = b.into_graph();
        assert_eq!(g.non_tree_join_count(), 1);
    }

    #[test]
    fn get_by_parent_is_tree() {
        let mut b = GraphBuilder::new();
        run_serial(&mut b, |ctx| {
            let f = ctx.future(|_| 1u8);
            ctx.get(&f);
        });
        let g = b.into_graph();
        assert_eq!(g.non_tree_join_count(), 0);
        // One tree join from the get + one from the implicit finish.
        assert_eq!(
            g.join_edges().filter(|(_, k)| *k == JoinKind::Tree).count(),
            2
        );
    }

    #[test]
    fn finish_emits_tree_joins_for_all_ief_tasks() {
        let mut b = GraphBuilder::new();
        run_serial(&mut b, |ctx| {
            ctx.finish(|ctx| {
                ctx.async_task(|ctx| {
                    ctx.async_task(|_| {}); // same IEF
                });
            });
        });
        let g = b.into_graph();
        // Both tasks join at the explicit finish; main joins none at F0.
        assert_eq!(g.join_edges().count(), 2);
        assert!(g.join_edges().all(|(_, k)| k == JoinKind::Tree));
    }

    #[test]
    fn accesses_recorded_with_correct_steps() {
        let mut b = GraphBuilder::new();
        run_serial(&mut b, |ctx| {
            let x = ctx.shared_var(7u64, "x");
            let _ = x.read(ctx); // main, step 0
            let x2 = x.clone();
            ctx.async_task(move |ctx| {
                x2.write(ctx, 8); // child
            });
            let _ = x.read(ctx); // main, after spawn -> new step
        });
        let g = b.into_graph();
        assert_eq!(g.accesses.len(), 3);
        assert_eq!(g.accesses[0].task, TaskId(0));
        assert_eq!(g.accesses[1].task, TaskId(1));
        assert!(g.accesses[1].is_write);
        assert_eq!(g.accesses[2].task, TaskId(0));
        assert_ne!(
            g.accesses[0].step, g.accesses[2].step,
            "spawn ends the main task's step"
        );
    }

    #[test]
    fn future_task_flag_recorded() {
        let mut b = GraphBuilder::new();
        run_serial(&mut b, |ctx| {
            ctx.async_task(|_| {});
            let _f = ctx.future(|_| 0u8);
        });
        let g = b.into_graph();
        assert!(!g.tasks[1].is_future);
        assert!(g.tasks[2].is_future);
        assert!(!g.tasks[0].is_future);
    }
}
