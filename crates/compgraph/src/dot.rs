//! Graphviz (DOT) export of computation graphs.
//!
//! Renders Figure-2/Figure-3 style pictures: steps are circles grouped into
//! one box (cluster) per task; continue edges solid, spawn edges bold,
//! tree joins dashed, non-tree joins dashed+red.

use crate::graph::{CompGraph, EdgeKind, JoinKind};
use std::fmt::Write as _;

/// Renders `g` as a DOT document.
pub fn to_dot(g: &CompGraph, title: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{title}\" {{");
    let _ = writeln!(out, "  rankdir=TB;");
    let _ = writeln!(out, "  node [shape=circle, fontsize=10];");
    for (tid, info) in g.tasks.iter().enumerate() {
        let label = if tid == 0 {
            "T_M (main)".to_string()
        } else if info.is_future {
            format!("T{tid} (future)")
        } else {
            format!("T{tid} (async)")
        };
        let _ = writeln!(out, "  subgraph cluster_t{tid} {{");
        let _ = writeln!(out, "    label=\"{label}\"; style=rounded;");
        for (sid, &owner) in g.step_task.iter().enumerate() {
            if owner.index() == tid {
                let _ = writeln!(out, "    s{sid} [label=\"S{sid}\"];");
            }
        }
        let _ = writeln!(out, "  }}");
    }
    for e in &g.edges {
        let attrs = match e.kind {
            EdgeKind::Continue => "",
            EdgeKind::Spawn => " [style=bold]",
            EdgeKind::Join(JoinKind::Tree) => " [style=dashed]",
            EdgeKind::Join(JoinKind::NonTree) => " [style=dashed, color=red]",
        };
        let _ = writeln!(out, "  s{} -> s{}{};", e.from.0, e.to.0, attrs);
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use futrace_runtime::{run_serial, TaskCtx};

    #[test]
    fn dot_contains_clusters_and_edge_styles() {
        let mut b = GraphBuilder::new();
        run_serial(&mut b, |ctx| {
            let f = ctx.future(|_| 0u8);
            let f2 = f.clone();
            let _g = ctx.future(move |ctx| ctx.get(&f2)); // non-tree join
            ctx.get(&f); // tree join
        });
        let dot = to_dot(&b.into_graph(), "example");
        assert!(dot.starts_with("digraph \"example\""));
        assert!(dot.contains("cluster_t0"));
        assert!(dot.contains("T1 (future)"));
        assert!(dot.contains("[style=bold]"), "spawn edge styling");
        assert!(dot.contains("color=red"), "non-tree join styling");
        assert!(dot.trim_end().ends_with('}'));
    }
}
