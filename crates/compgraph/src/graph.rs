//! The computation-graph data structure (§3 of the paper).

use futrace_util::ids::{LocId, StepId, TaskId};
use futrace_util::FxHashMap;

/// Which kind of join edge (paper §3): a join from task `B` to task `A` is
/// a *tree join* if `A` is an ancestor of `B`, otherwise a *non-tree join*.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum JoinKind {
    /// Join into an ancestor task (all finish joins; gets by ancestors).
    Tree,
    /// Join into a non-ancestor task (only possible via future `get()`).
    NonTree,
}

/// Edge kinds of the computation graph (§3).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum EdgeKind {
    /// Sequencing of steps within one task.
    Continue,
    /// From the step ending with an `async`/`future` in the parent to the
    /// first step of the child.
    Spawn,
    /// From the last step of the joined task to the step following the
    /// `get()` / end-finish in the joining task.
    Join(JoinKind),
}

/// A directed edge between steps.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Edge {
    /// Source step.
    pub from: StepId,
    /// Destination step.
    pub to: StepId,
    /// Edge kind.
    pub kind: EdgeKind,
}

/// A recorded shared-memory access, attributed to the step (and task) that
/// performed it.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Access {
    /// The step performing the access.
    pub step: StepId,
    /// The task the step belongs to.
    pub task: TaskId,
    /// The location accessed.
    pub loc: LocId,
    /// Write vs read.
    pub is_write: bool,
}

/// Per-task metadata recorded while building the graph.
#[derive(Clone, Debug)]
pub struct TaskInfo {
    /// Parent in the spawn tree (`None` for the main task).
    pub parent: Option<TaskId>,
    /// Whether the task is a future task (vs async/main).
    pub is_future: bool,
    /// First step of the task.
    pub first_step: StepId,
    /// Last step of the task (set at task end).
    pub last_step: StepId,
}

/// The complete step-level computation graph of one serial depth-first
/// execution, plus the access trace.
#[derive(Clone, Debug, Default)]
pub struct CompGraph {
    /// Owning task of each step, indexed by `StepId`.
    pub step_task: Vec<TaskId>,
    /// All edges. Edges always point from earlier to later step ids, so
    /// step-id order is a topological order of the DAG.
    pub edges: Vec<Edge>,
    /// Per-task metadata, indexed by `TaskId`.
    pub tasks: Vec<TaskInfo>,
    /// The shared-memory access trace in execution order.
    pub accesses: Vec<Access>,
}

impl CompGraph {
    /// Number of steps.
    pub fn step_count(&self) -> usize {
        self.step_task.len()
    }

    /// Number of tasks (including main).
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// The task a step belongs to.
    pub fn task_of(&self, s: StepId) -> TaskId {
        self.step_task[s.index()]
    }

    /// True if `a` is a (weak) ancestor of `d` in the spawn tree.
    pub fn is_ancestor(&self, a: TaskId, d: TaskId) -> bool {
        let mut cur = d;
        loop {
            if cur == a {
                return true;
            }
            match self.tasks[cur.index()].parent {
                Some(p) => cur = p,
                None => return false,
            }
        }
    }

    /// Successor adjacency lists, indexed by step.
    pub fn successors(&self) -> Vec<Vec<StepId>> {
        let mut adj = vec![Vec::new(); self.step_count()];
        for e in &self.edges {
            adj[e.from.index()].push(e.to);
        }
        adj
    }

    /// Join edges only, with their kinds.
    pub fn join_edges(&self) -> impl Iterator<Item = (&Edge, JoinKind)> {
        self.edges.iter().filter_map(|e| match e.kind {
            EdgeKind::Join(k) => Some((e, k)),
            _ => None,
        })
    }

    /// Number of non-tree join edges (Table 2's #NTJoins).
    pub fn non_tree_join_count(&self) -> usize {
        self.join_edges()
            .filter(|(_, k)| *k == JoinKind::NonTree)
            .count()
    }

    /// Number of shared-memory accesses (Table 2's #SharedMem).
    pub fn shared_mem_count(&self) -> usize {
        self.accesses.len()
    }

    /// Groups accesses by location (used by the race oracle).
    pub fn accesses_by_loc(&self) -> FxHashMap<LocId, Vec<Access>> {
        let mut map: FxHashMap<LocId, Vec<Access>> = FxHashMap::default();
        for &a in &self.accesses {
            map.entry(a.loc).or_default().push(a);
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_graph() -> CompGraph {
        // main: S0 -spawn-> child S1; S0 -continue-> S2; S1 -join-> S2.
        CompGraph {
            step_task: vec![TaskId(0), TaskId(1), TaskId(0)],
            edges: vec![
                Edge {
                    from: StepId(0),
                    to: StepId(1),
                    kind: EdgeKind::Spawn,
                },
                Edge {
                    from: StepId(0),
                    to: StepId(2),
                    kind: EdgeKind::Continue,
                },
                Edge {
                    from: StepId(1),
                    to: StepId(2),
                    kind: EdgeKind::Join(JoinKind::Tree),
                },
            ],
            tasks: vec![
                TaskInfo {
                    parent: None,
                    is_future: false,
                    first_step: StepId(0),
                    last_step: StepId(2),
                },
                TaskInfo {
                    parent: Some(TaskId(0)),
                    is_future: true,
                    first_step: StepId(1),
                    last_step: StepId(1),
                },
            ],
            accesses: vec![
                Access {
                    step: StepId(1),
                    task: TaskId(1),
                    loc: LocId(0),
                    is_write: true,
                },
                Access {
                    step: StepId(2),
                    task: TaskId(0),
                    loc: LocId(0),
                    is_write: false,
                },
            ],
        }
    }

    #[test]
    fn counts() {
        let g = tiny_graph();
        assert_eq!(g.step_count(), 3);
        assert_eq!(g.task_count(), 2);
        assert_eq!(g.shared_mem_count(), 2);
        assert_eq!(g.non_tree_join_count(), 0);
        assert_eq!(g.join_edges().count(), 1);
    }

    #[test]
    fn ancestry() {
        let g = tiny_graph();
        assert!(g.is_ancestor(TaskId(0), TaskId(1)));
        assert!(g.is_ancestor(TaskId(0), TaskId(0)));
        assert!(!g.is_ancestor(TaskId(1), TaskId(0)));
    }

    #[test]
    fn adjacency() {
        let g = tiny_graph();
        let adj = g.successors();
        assert_eq!(adj[0], vec![StepId(1), StepId(2)]);
        assert_eq!(adj[1], vec![StepId(2)]);
        assert!(adj[2].is_empty());
    }

    #[test]
    fn accesses_by_loc_groups() {
        let g = tiny_graph();
        let by = g.accesses_by_loc();
        assert_eq!(by[&LocId(0)].len(), 2);
    }
}
