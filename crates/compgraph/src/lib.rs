//! Step-level computation graphs for async/finish/future programs.
//!
//! The paper defines a *computation graph* (§3) whose nodes are **steps**
//! (Definition 1: maximal statement sequences free of async/finish/get
//! boundaries) and whose edges are **continue**, **spawn**, and **join**
//! edges, the latter split into *tree joins* (into an ancestor task) and
//! *non-tree joins* (into a non-ancestor).
//!
//! This crate builds that graph from the serial executor's instrumentation
//! stream ([`builder::GraphBuilder`] is a
//! [`futrace_runtime::Monitor`]), and provides:
//!
//! * [`graph::CompGraph`] — the step graph with task/step metadata and the
//!   recorded shared-memory accesses,
//! * [`oracle`] — exact reachability (transitive closure over the DAG) and
//!   the brute-force determinacy-race check of Definition 3, used as the
//!   ground truth the DTRG detector is validated against,
//! * [`stats`] — the graph analytics behind Table 2's structural columns
//!   (#Tasks, #NTJoins) plus span/work measures,
//! * [`dot`] — Graphviz export used to render Figure-2/Figure-3 style
//!   pictures of small programs.
//!
//! The full graph is *memory-expensive by design* (that is the paper's
//! motivation for the DTRG): it is intended for tests, examples, and
//! analytics on small and medium executions, not for paper-scale runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod dot;
pub mod graph;
pub mod mhp;
pub mod oracle;
pub mod stats;

pub use builder::GraphBuilder;
pub use graph::{Access, CompGraph, EdgeKind, JoinKind};
pub use mhp::MhpSummary;
pub use oracle::{OracleRace, Reachability};
pub use stats::GraphStats;
