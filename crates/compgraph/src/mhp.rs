//! May-happen-in-parallel analytics over the computation graph.
//!
//! Beyond the race oracle, the exact `u ∥ v` relation supports useful
//! whole-program metrics: how much of the computation is actually
//! parallel, per task pair — the quantities race detectors implicitly
//! reason about. Used by the `tracetool` CLI and the analytics tests.

use crate::graph::CompGraph;
use crate::oracle::Reachability;
use futrace_util::ids::TaskId;

/// Exact may-happen-in-parallel summary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MhpSummary {
    /// Unordered step pairs that may run in parallel.
    pub parallel_step_pairs: u64,
    /// All unordered step pairs.
    pub total_step_pairs: u64,
    /// Unordered task pairs with at least one parallel step pair between
    /// them.
    pub parallel_task_pairs: u64,
    /// All unordered task pairs (excluding self-pairs).
    pub total_task_pairs: u64,
}

impl MhpSummary {
    /// Fraction of step pairs that are parallel (0 when no pairs exist).
    pub fn step_parallel_fraction(&self) -> f64 {
        if self.total_step_pairs == 0 {
            0.0
        } else {
            self.parallel_step_pairs as f64 / self.total_step_pairs as f64
        }
    }
}

/// Computes the exact MHP summary (Θ(steps²) — small graphs only, like
/// everything oracle-grade in this crate).
pub fn summarize(g: &CompGraph) -> MhpSummary {
    let reach = Reachability::build(g);
    let n = g.step_count();
    let mut parallel_steps = 0u64;
    let mut task_pairs = futrace_util::FxHashSet::default();
    for u in 0..n {
        for v in (u + 1)..n {
            let (su, sv) = (
                futrace_util::ids::StepId::from_index(u),
                futrace_util::ids::StepId::from_index(v),
            );
            if reach.parallel(su, sv) {
                parallel_steps += 1;
                let (a, b) = (g.task_of(su), g.task_of(sv));
                if a != b {
                    task_pairs.insert((a.min(b), a.max(b)));
                }
            }
        }
    }
    let t = g.task_count() as u64;
    MhpSummary {
        parallel_step_pairs: parallel_steps,
        total_step_pairs: (n as u64) * (n as u64 - 1) / 2,
        parallel_task_pairs: task_pairs.len() as u64,
        total_task_pairs: t * (t - 1) / 2,
    }
}

/// True iff any step of `a` may run in parallel with any step of `b`
/// (task-level MHP, the relation ESP-bags/SPD3 answer per access).
pub fn tasks_may_parallel(g: &CompGraph, reach: &Reachability, a: TaskId, b: TaskId) -> bool {
    if a == b {
        return false;
    }
    (0..g.step_count()).any(|u| {
        let su = futrace_util::ids::StepId::from_index(u);
        g.task_of(su) == a
            && (0..g.step_count()).any(|v| {
                let sv = futrace_util::ids::StepId::from_index(v);
                g.task_of(sv) == b && reach.parallel(su, sv)
            })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use futrace_runtime::{run_serial, TaskCtx};

    fn graph_of(f: impl FnOnce(&mut futrace_runtime::SerialCtx<GraphBuilder>)) -> CompGraph {
        let mut b = GraphBuilder::new();
        run_serial(&mut b, f);
        b.into_graph()
    }

    #[test]
    fn sequential_program_has_zero_parallelism() {
        let g = graph_of(|ctx| {
            let x = ctx.shared_var(0u64, "x");
            x.write(ctx, 1);
            let _ = x.read(ctx);
        });
        let s = summarize(&g);
        assert_eq!(s.parallel_step_pairs, 0);
        assert_eq!(s.parallel_task_pairs, 0);
        assert_eq!(s.step_parallel_fraction(), 0.0);
        assert!(s.total_step_pairs > 0);
    }

    #[test]
    fn unjoined_siblings_are_parallel() {
        let g = graph_of(|ctx| {
            let _a = ctx.future(|_| 1u8);
            let _b = ctx.future(|_| 2u8);
        });
        let s = summarize(&g);
        assert!(s.parallel_step_pairs > 0);
        // T1 ∥ T2, and each future is parallel with part of main.
        assert!(s.parallel_task_pairs >= 1);
        let reach = Reachability::build(&g);
        assert!(tasks_may_parallel(&g, &reach, TaskId(1), TaskId(2)));
        assert!(!tasks_may_parallel(&g, &reach, TaskId(1), TaskId(1)));
    }

    #[test]
    fn gets_eliminate_task_parallelism() {
        // Fully chained futures: no two tasks overlap.
        let g = graph_of(|ctx| {
            let a = ctx.future(|_| ());
            ctx.get(&a);
            let b = ctx.future(|_| ());
            ctx.get(&b);
        });
        let reach = Reachability::build(&g);
        assert!(!tasks_may_parallel(&g, &reach, TaskId(1), TaskId(2)));
        // Main still overlaps each future between its spawn and its get
        // (the step holding the spawn's continuation), so (T0,T1) and
        // (T0,T2) remain parallel task pairs — but not (T1,T2).
        assert_eq!(summarize(&g).parallel_task_pairs, 2);
    }

    #[test]
    fn finish_bounds_parallelism() {
        let g = graph_of(|ctx| {
            ctx.finish(|ctx| {
                ctx.async_task(|_| {});
                ctx.async_task(|_| {});
            });
            ctx.async_task(|_| {});
        });
        let reach = Reachability::build(&g);
        // Siblings inside the finish are parallel.
        assert!(tasks_may_parallel(&g, &reach, TaskId(1), TaskId(2)));
        // The post-finish async is ordered after both.
        assert!(!tasks_may_parallel(&g, &reach, TaskId(1), TaskId(3)));
        assert!(!tasks_may_parallel(&g, &reach, TaskId(2), TaskId(3)));
    }
}
