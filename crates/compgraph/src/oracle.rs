//! Ground-truth reachability and the brute-force race oracle.
//!
//! This is the "brute force approach … building the transitive closure of
//! the happens-before relation" that the paper's DTRG avoids (§1). We build
//! it anyway, because it is the ideal *test oracle*: Definition 2's `u ≺ v`
//! is computed exactly, and Definition 3's race check is evaluated over all
//! access pairs. Every property test in the repository compares the DTRG
//! detector's verdict against this module.
//!
//! Space is Θ(steps²) bits and time Θ(steps · edges / 64); use on small and
//! medium executions only.

use crate::graph::{Access, CompGraph};
use futrace_util::ids::StepId;

/// Dense transitive-closure reachability over the computation graph.
pub struct Reachability {
    n: usize,
    words: usize,
    /// Row `v` = bitset of steps reachable from `v` (excluding `v` itself).
    rows: Vec<u64>,
}

impl Reachability {
    /// Builds the closure. Relies on step ids being a topological order,
    /// which [`crate::builder::GraphBuilder`] guarantees.
    pub fn build(g: &CompGraph) -> Self {
        let n = g.step_count();
        let words = n.div_ceil(64);
        let mut rows = vec![0u64; n * words];
        let adj = g.successors();
        // Reverse topological order: successors' rows are complete.
        for v in (0..n).rev() {
            for &s in &adj[v] {
                let si = s.index();
                debug_assert!(si > v, "step ids must be topological");
                // row[v] |= row[s]; row[v] |= bit(s)
                let (lo, hi) = (si * words, (si + 1) * words);
                let (dlo, _dhi) = (v * words, (v + 1) * words);
                // Split-borrow via indices (si > v so ranges are disjoint).
                let (head, tail) = rows.split_at_mut(lo);
                let dst = &mut head[dlo..dlo + words];
                let src = &tail[..hi - lo];
                for (d, s) in dst.iter_mut().zip(src) {
                    *d |= s;
                }
                rows[v * words + si / 64] |= 1u64 << (si % 64);
            }
        }
        Reachability { n, words, rows }
    }

    /// Definition 2: true iff there is a path from `u` to `v` (strict:
    /// `reaches(u, u)` is false for acyclic graphs).
    pub fn reaches(&self, u: StepId, v: StepId) -> bool {
        let (u, v) = (u.index(), v.index());
        debug_assert!(u < self.n && v < self.n);
        self.rows[u * self.words + v / 64] >> (v % 64) & 1 == 1
    }

    /// `u ≼ v`: equal or reaches.
    pub fn precedes_or_equal(&self, u: StepId, v: StepId) -> bool {
        u == v || self.reaches(u, v)
    }

    /// The paper's `u ∥ v`: distinct steps with no path either way.
    pub fn parallel(&self, u: StepId, v: StepId) -> bool {
        u != v && !self.reaches(u, v) && !self.reaches(v, u)
    }
}

/// A determinacy race found by the oracle (Definition 3): two accesses to
/// the same location, at least one a write, on logically parallel steps.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OracleRace {
    /// The earlier access (in serial execution order).
    pub first: Access,
    /// The later access.
    pub second: Access,
}

/// Exhaustively checks Definition 3 over all access pairs, location by
/// location. Returns every racing pair (deduplicated by step pair), in
/// serial execution order of the second access.
pub fn find_races(g: &CompGraph) -> Vec<OracleRace> {
    let reach = Reachability::build(g);
    find_races_with(g, &reach)
}

/// As [`find_races`], reusing a prebuilt closure.
pub fn find_races_with(g: &CompGraph, reach: &Reachability) -> Vec<OracleRace> {
    let mut races = Vec::new();
    let mut seen = futrace_util::FxHashSet::default();
    for accs in g.accesses_by_loc().values() {
        for (i, a) in accs.iter().enumerate() {
            for b in &accs[i + 1..] {
                if !(a.is_write || b.is_write) {
                    continue;
                }
                if a.step != b.step && reach.parallel(a.step, b.step) {
                    let key = (a.loc, a.step.min(b.step), a.step.max(b.step));
                    if seen.insert(key) {
                        races.push(OracleRace {
                            first: *a,
                            second: *b,
                        });
                    }
                }
            }
        }
    }
    races.sort_by_key(|r| (r.second.step, r.first.step, r.first.loc.0));
    races
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use futrace_runtime::{run_serial, TaskCtx};

    fn graph_of(f: impl FnOnce(&mut futrace_runtime::SerialCtx<GraphBuilder>)) -> CompGraph {
        let mut b = GraphBuilder::new();
        run_serial(&mut b, f);
        b.into_graph()
    }

    #[test]
    fn linear_chain_reaches_everything() {
        let g = graph_of(|ctx| {
            let x = ctx.shared_var(0u64, "x");
            x.write(ctx, 1);
            let _ = x.read(ctx);
        });
        let r = Reachability::build(&g);
        // Single task; every earlier step reaches later ones via continue
        // edges (steps beyond 0 exist because of the implicit finish end).
        for u in 0..g.step_count() {
            for v in (u + 1)..g.step_count() {
                assert!(r.reaches(StepId::from_index(u), StepId::from_index(v)));
            }
        }
        assert!(!r.reaches(StepId(1), StepId(0)));
        assert!(!r.reaches(StepId(0), StepId(0)), "strict reachability");
        assert!(r.precedes_or_equal(StepId(0), StepId(0)));
    }

    #[test]
    fn async_without_sync_is_parallel_to_continuation() {
        let g = graph_of(|ctx| {
            let x = ctx.shared_var(0u64, "x");
            let x2 = x.clone();
            ctx.async_task(move |ctx| x2.write(ctx, 1));
            x.write(ctx, 2); // parallel with the child: race
        });
        let races = find_races(&g);
        assert_eq!(races.len(), 1);
        assert!(races[0].first.is_write && races[0].second.is_write);
    }

    #[test]
    fn finish_orders_child_before_continuation() {
        let g = graph_of(|ctx| {
            let x = ctx.shared_var(0u64, "x");
            ctx.finish(|ctx| {
                let x2 = x.clone();
                ctx.async_task(move |ctx| x2.write(ctx, 1));
            });
            x.write(ctx, 2); // ordered by the finish: no race
        });
        assert!(find_races(&g).is_empty());
    }

    #[test]
    fn future_get_orders_accesses() {
        let g = graph_of(|ctx| {
            let x = ctx.shared_var(0u64, "x");
            let x2 = x.clone();
            let f = ctx.future(move |ctx| x2.write(ctx, 1));
            ctx.get(&f);
            let _ = x.read(ctx); // after get: ordered
        });
        assert!(find_races(&g).is_empty());
    }

    #[test]
    fn read_without_get_races_with_future_write() {
        let g = graph_of(|ctx| {
            let x = ctx.shared_var(0u64, "x");
            let x2 = x.clone();
            let _f = ctx.future(move |ctx| x2.write(ctx, 1));
            let _ = x.read(ctx); // no get: racy
        });
        let races = find_races(&g);
        assert_eq!(races.len(), 1);
        assert!(races[0].first.is_write);
        assert!(!races[0].second.is_write);
    }

    #[test]
    fn two_reads_never_race() {
        let g = graph_of(|ctx| {
            let x = ctx.shared_var(0u64, "x");
            let x2 = x.clone();
            ctx.async_task(move |ctx| {
                let _ = x2.read(ctx);
            });
            let _ = x.read(ctx);
        });
        assert!(find_races(&g).is_empty());
    }

    #[test]
    fn transitive_dependence_through_two_gets() {
        // Figure 1's transitive-join shape: main never gets B directly, but
        // C gets B and main gets C, so B's effects are ordered before main's
        // final read.
        let g = graph_of(|ctx| {
            let x = ctx.shared_var(0u64, "x");
            let xb = x.clone();
            let b = ctx.future(move |ctx| xb.write(ctx, 1));
            let c = ctx.future(move |ctx| {
                ctx.get(&b);
            });
            ctx.get(&c);
            let _ = x.read(ctx);
        });
        assert!(find_races(&g).is_empty());
    }

    #[test]
    fn sibling_get_makes_non_tree_order() {
        // T_A writes; T_B gets T_A then reads: ordered via a non-tree join.
        let g = graph_of(|ctx| {
            let x = ctx.shared_var(0u64, "x");
            let xa = x.clone();
            let a = ctx.future(move |ctx| xa.write(ctx, 1));
            let xb = x.clone();
            let _b = ctx.future(move |ctx| {
                ctx.get(&a);
                let _ = xb.read(ctx);
            });
        });
        assert_eq!(g.non_tree_join_count(), 1);
        assert!(find_races(&g).is_empty());
    }

    #[test]
    fn same_task_accesses_never_race() {
        let g = graph_of(|ctx| {
            let x = ctx.shared_var(0u64, "x");
            x.write(ctx, 1);
            x.write(ctx, 2);
            let _ = x.read(ctx);
        });
        assert!(find_races(&g).is_empty());
    }

    #[test]
    fn racy_pair_counted_once() {
        let g = graph_of(|ctx| {
            let x = ctx.shared_var(0u64, "x");
            let x2 = x.clone();
            ctx.async_task(move |ctx| {
                x2.write(ctx, 1);
            });
            x.write(ctx, 3);
        });
        assert_eq!(find_races(&g).len(), 1);
    }
}
