//! Graph analytics: the structural columns of Table 2 plus work/span.

use crate::graph::{CompGraph, EdgeKind, JoinKind};
use futrace_util::FxHashSet;

/// Summary statistics of a computation graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GraphStats {
    /// Dynamic tasks created, excluding main (Table 2's #Tasks).
    pub tasks: usize,
    /// Future tasks among them.
    pub future_tasks: usize,
    /// Steps (nodes).
    pub steps: usize,
    /// Continue edges.
    pub continue_edges: usize,
    /// Spawn edges.
    pub spawn_edges: usize,
    /// Tree join edges.
    pub tree_joins: usize,
    /// Non-tree join edges (Table 2's #NTJoins).
    pub non_tree_joins: usize,
    /// Shared-memory accesses (Table 2's #SharedMem).
    pub shared_mem: usize,
    /// Distinct shared locations touched.
    pub distinct_locs: usize,
    /// Longest path length in steps (the *span* of the computation,
    /// counting nodes).
    pub span: usize,
}

impl GraphStats {
    /// Computes all statistics for `g`.
    pub fn compute(g: &CompGraph) -> Self {
        let mut continue_edges = 0;
        let mut spawn_edges = 0;
        let mut tree_joins = 0;
        let mut non_tree_joins = 0;
        for e in &g.edges {
            match e.kind {
                EdgeKind::Continue => continue_edges += 1,
                EdgeKind::Spawn => spawn_edges += 1,
                EdgeKind::Join(JoinKind::Tree) => tree_joins += 1,
                EdgeKind::Join(JoinKind::NonTree) => non_tree_joins += 1,
            }
        }
        let distinct_locs = g
            .accesses
            .iter()
            .map(|a| a.loc)
            .collect::<FxHashSet<_>>()
            .len();
        // Longest path over the DAG (step ids are topological).
        let mut depth = vec![1usize; g.step_count()];
        let mut span = if g.step_count() > 0 { 1 } else { 0 };
        for e in &g.edges {
            let cand = depth[e.from.index()] + 1;
            if cand > depth[e.to.index()] {
                depth[e.to.index()] = cand;
                span = span.max(cand);
            }
        }
        GraphStats {
            tasks: g.task_count().saturating_sub(1),
            future_tasks: g.tasks.iter().filter(|t| t.is_future).count(),
            steps: g.step_count(),
            continue_edges,
            spawn_edges,
            tree_joins,
            non_tree_joins,
            shared_mem: g.shared_mem_count(),
            distinct_locs,
            span,
        }
    }
}

impl GraphStats {
    /// Ideal parallelism of the computation, measured in steps: total
    /// steps (work) over the longest path (span). An async-finish or
    /// future program cannot speed up beyond this ratio on any number of
    /// processors (work/span law).
    pub fn parallelism(&self) -> f64 {
        if self.span == 0 {
            0.0
        } else {
            self.steps as f64 / self.span as f64
        }
    }
}

impl std::fmt::Display for GraphStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "tasks:          {}", self.tasks)?;
        writeln!(f, "  futures:      {}", self.future_tasks)?;
        writeln!(f, "steps:          {}", self.steps)?;
        writeln!(f, "continue edges: {}", self.continue_edges)?;
        writeln!(f, "spawn edges:    {}", self.spawn_edges)?;
        writeln!(f, "tree joins:     {}", self.tree_joins)?;
        writeln!(f, "non-tree joins: {}", self.non_tree_joins)?;
        writeln!(f, "shared accesses:{}", self.shared_mem)?;
        writeln!(f, "distinct locs:  {}", self.distinct_locs)?;
        write!(f, "span (steps):   {}", self.span)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use futrace_runtime::{run_serial, TaskCtx};

    #[test]
    fn stats_of_future_pipeline() {
        let mut b = GraphBuilder::new();
        run_serial(&mut b, |ctx| {
            let x = ctx.shared_array(4, 0u64, "x");
            let x0 = x.clone();
            let a = ctx.future(move |ctx| x0.write(ctx, 0, 1));
            let x1 = x.clone();
            let _b = ctx.future(move |ctx| {
                ctx.get(&a); // sibling: non-tree join
                let v = x1.read(ctx, 0);
                x1.write(ctx, 1, v + 1);
            });
        });
        let g = b.into_graph();
        let s = GraphStats::compute(&g);
        assert_eq!(s.tasks, 2);
        assert_eq!(s.future_tasks, 2);
        assert_eq!(s.non_tree_joins, 1);
        assert_eq!(s.shared_mem, 3);
        assert_eq!(s.distinct_locs, 2);
        // Implicit finish joins both futures: 2 tree joins.
        assert_eq!(s.tree_joins, 2);
        assert_eq!(s.spawn_edges, 2);
        assert!(s.span >= 4);
        let text = s.to_string();
        assert!(text.contains("non-tree joins: 1"));
    }

    #[test]
    fn parallelism_of_wide_fanout_exceeds_one() {
        let mut b = GraphBuilder::new();
        run_serial(&mut b, |ctx| {
            ctx.finish(|ctx| {
                for _ in 0..16 {
                    ctx.async_task(|ctx| {
                        let v = ctx.shared_var(0u8, "v");
                        v.write(ctx, 1);
                    });
                }
            });
        });
        let s = GraphStats::compute(&b.into_graph());
        assert!(s.parallelism() > 1.5, "got {}", s.parallelism());
    }

    #[test]
    fn parallelism_of_sequential_chain_is_one() {
        let mut b = GraphBuilder::new();
        run_serial(&mut b, |ctx| {
            let mut prev = ctx.future(|_| ());
            for _ in 0..8 {
                let p = prev.clone();
                prev = ctx.future(move |ctx| ctx.get(&p));
            }
            ctx.get(&prev);
        });
        let s = GraphStats::compute(&b.into_graph());
        // A pure dependence chain has bounded parallelism (the main
        // task's spawn steps add a constant factor over the chain span).
        assert!(s.parallelism() < 3.0, "got {}", s.parallelism());
    }

    #[test]
    fn empty_program_stats() {
        let mut b = GraphBuilder::new();
        run_serial(&mut b, |_| {});
        let s = GraphStats::compute(&b.into_graph());
        assert_eq!(s.tasks, 0);
        assert_eq!(s.shared_mem, 0);
        assert_eq!(s.non_tree_joins, 0);
        assert_eq!(s.steps, 2); // S0 + step after implicit finish end
        assert_eq!(s.span, 2);
    }
}
