//! The on-the-fly determinacy race detector (Algorithms 1–10 assembled).
//!
//! [`RaceDetector`] implements [`Monitor`] and drives the
//! [`crate::dtrg::Dtrg`] and [`crate::shadow::ShadowMemory`] from the
//! serial depth-first event stream:
//!
//! * task creation/termination → Algorithms 2–3 (labels, sets, `lsa`),
//! * `get` → Algorithm 4 (merge or non-tree edge),
//! * finish end → Algorithm 6 (merge all IEF joiners),
//! * write → Algorithm 8 (check readers + writer, become the writer),
//! * read → Algorithm 9 (check writer, update the reader set).
//!
//! ## The reader-set update rule (Algorithm 9, reconstructed)
//!
//! As printed in the paper, Algorithm 9 never adds the first reader of a
//! location (the `update` flag stays false when the loop body never runs).
//! We implement the evidently intended rule, which Lemmas 3–4 justify:
//!
//! * every stored reader `X` with `X ≺ current` is removed — any future
//!   access racing with `X` also races with the current reader (Lemma 3);
//! * the current reader is added **unless** it is an async task and a
//!   *parallel* async reader is already stored — for async triples,
//!   parallelism is transitive (Lemma 4), so the stored one suffices.
//!
//! This preserves the invariant that the reader set holds at most one
//! async task but arbitrarily many pairwise-parallel future tasks, and is
//! validated against the transitive-closure oracle by the property tests
//! in `tests/`.
//!
//! ## First-race semantics
//!
//! Like SP-bags and ESP-bags, the detector is sound and precise up to the
//! first race (Theorem 2): on a racy input, the access at which the first
//! race is reported is exact; subsequent reports are best-effort because
//! the DTRG's encoding assumes race-free handle flow (Lemma 1).

use crate::dtrg::Dtrg;
use crate::report::{AccessKind, Race, RaceReport};
use crate::shadow::{LastClean, Readers, ShadowCell, ShadowMemory};
use crate::stats::DetectorStats;
use futrace_runtime::engine::{
    run_analysis_live, Analysis, Checkpointable, Engine, LocRoutable, StateError,
};
use futrace_runtime::monitor::{Event, Monitor, TaskKind};
use futrace_runtime::online::ParMonitor;
use futrace_runtime::SerialCtx;
#[cfg(test)]
use futrace_runtime::run_serial;
use futrace_util::ids::{FinishId, LocId, TaskId};
use futrace_util::{wire, FxHashSet};

/// Detector configuration.
#[derive(Clone, Debug)]
pub struct DetectorConfig {
    /// Maximum number of distinct races kept in the report (checking
    /// continues past the cap; only storage is bounded).
    pub max_reports: usize,
    /// Sample the stored-reader count on every access to produce Table 2's
    /// #AvgReaders column. Costs a few flops per access.
    pub track_avg_readers: bool,
    /// Stop race *checking* after the first detected race. The detector is
    /// exact only up to the first race anyway (Theorem 2's first-race
    /// semantics); this mode skips all further `Precede` queries and
    /// shadow updates, turning the remainder of the run into pure DTRG
    /// maintenance — useful when the verdict, not the full report, is
    /// wanted.
    pub first_race_only: bool,
    /// Enable the hot-path caches: the per-cell clean-verdict fast path
    /// (skip both `Precede` and shadow updates on a repeated clean access
    /// under an unchanged graph epoch) and the DTRG's `precede` memo
    /// table. Verdicts and race reports are byte-identical either way
    /// (held by the `fastpath_equivalence` propcheck); only the cost
    /// counters (`precede` calls, visit expansions) differ. Disable to
    /// measure the uncached pre-memo detector, as the perf harness does.
    pub caching: bool,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            max_reports: 100,
            track_avg_readers: true,
            first_race_only: false,
            caching: true,
        }
    }
}

/// Space accounting for a detector (the concrete instance of Theorem 1's
/// `O(a + f + n + v·(f+1))` bound).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemoryFootprint {
    /// Tasks tracked by the DTRG (the `a + f` term).
    pub dtrg_tasks: usize,
    /// Non-tree predecessor entries stored (the `n` term).
    pub stored_nt_edges: usize,
    /// Shadow cells allocated (the `v` term).
    pub shadow_cells: usize,
    /// Reader entries stored across all cells (the `v·(f+1)` worst case).
    pub stored_readers: usize,
}

impl std::fmt::Display for MemoryFootprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "dtrg tasks: {}, nt edges: {}, shadow cells: {}, stored readers: {}",
            self.dtrg_tasks, self.stored_nt_edges, self.shadow_cells, self.stored_readers
        )
    }
}

/// The dynamic task reachability graph determinacy race detector.
pub struct RaceDetector {
    dtrg: Dtrg,
    shadow: ShadowMemory,
    stats: DetectorStats,
    races: Vec<Race>,
    dedup: FxHashSet<(LocId, TaskId, TaskId, u8)>,
    total_detected: u64,
    access_index: u64,
    config: DetectorConfig,
}

impl Default for RaceDetector {
    fn default() -> Self {
        Self::new()
    }
}

impl RaceDetector {
    /// Fresh detector with default configuration (Algorithm 1 runs here:
    /// the main task gets label `[0, MAXINT]` and an empty set).
    pub fn new() -> Self {
        Self::with_config(DetectorConfig::default())
    }

    /// Fresh detector with explicit configuration.
    pub fn with_config(config: DetectorConfig) -> Self {
        let mut dtrg = Dtrg::new();
        dtrg.set_memo_enabled(config.caching);
        RaceDetector {
            dtrg,
            shadow: ShadowMemory::new(),
            stats: DetectorStats::default(),
            races: Vec::new(),
            dedup: FxHashSet::default(),
            total_detected: 0,
            access_index: 0,
            config,
        }
    }

    /// True iff any race has been detected so far.
    pub fn has_races(&self) -> bool {
        self.total_detected > 0
    }

    /// Races detected so far, uncapped (the live counter incremental
    /// sessions surface in verdict deltas between chunks).
    pub fn total_detected(&self) -> u64 {
        self.total_detected
    }

    /// Consumes the detector and produces the final report.
    pub fn into_report(self) -> RaceReport {
        RaceReport {
            races: self.races,
            total_detected: self.total_detected,
        }
    }

    /// Statistics accumulated so far (DTRG counters included).
    pub fn stats(&self) -> DetectorStats {
        let mut s = self.stats.clone();
        s.dtrg = self.dtrg.counters;
        s
    }

    /// The DTRG, for white-box tests and the Figure-3/Table-1 example.
    pub fn dtrg(&self) -> &Dtrg {
        &self.dtrg
    }

    /// Mutable DTRG access (reachability queries compress paths).
    pub fn dtrg_mut(&mut self) -> &mut Dtrg {
        &mut self.dtrg
    }

    /// Races reported so far (deduplicated, capped).
    pub fn races(&self) -> &[Race] {
        &self.races
    }

    /// Current space accounting (Theorem 1's bound, measured).
    pub fn memory_footprint(&self) -> MemoryFootprint {
        MemoryFootprint {
            dtrg_tasks: self.dtrg.task_count(),
            stored_nt_edges: self.dtrg.stored_nt_edges(),
            shadow_cells: self.shadow.len(),
            stored_readers: self.shadow.stored_readers(),
        }
    }

    #[inline]
    fn checking(&self) -> bool {
        !(self.config.first_race_only && self.total_detected > 0)
    }

    fn report(
        &mut self,
        loc: LocId,
        prev_task: TaskId,
        prev_kind: AccessKind,
        cur_task: TaskId,
        cur_kind: AccessKind,
    ) {
        self.total_detected += 1;
        let kinds = match (prev_kind, cur_kind) {
            (AccessKind::Read, AccessKind::Write) => 0u8,
            (AccessKind::Write, AccessKind::Read) => 1,
            (AccessKind::Write, AccessKind::Write) => 2,
            (AccessKind::Read, AccessKind::Read) => 3, // unreachable by construction
        };
        if self.races.len() < self.config.max_reports
            && self.dedup.insert((loc, prev_task, cur_task, kinds))
        {
            let render = |path: Vec<TaskId>| {
                path.iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join("\u{2192}")
            };
            self.races.push(Race {
                loc,
                loc_name: self.shadow.describe(loc),
                prev_task,
                prev_kind,
                cur_task,
                cur_kind,
                access_index: self.access_index,
                prev_path: render(self.dtrg.spawn_path(prev_task)),
                cur_path: render(self.dtrg.spawn_path(cur_task)),
            });
        }
    }

    /// Applies the DTRG-maintenance half of the detector: control events
    /// (task create/end, finish start/end, get, alloc) update the
    /// reachability graph and shadow-memory registry but perform no
    /// shadow-memory *checks*. Returns `false` for `Read`/`Write` events,
    /// which callers must route through [`RaceDetector::check_read_at`] /
    /// [`RaceDetector::check_write_at`] instead.
    ///
    /// This split is what makes offline sharding possible: control events
    /// are cheap and can be broadcast to every shard (each maintains an
    /// identical DTRG replica), while the hot access checks are independent
    /// per location and can be partitioned.
    pub fn apply_control(&mut self, e: &Event) -> bool {
        match e {
            Event::TaskCreate {
                parent,
                child,
                kind,
                ief,
            } => self.task_create(*parent, *child, *kind, *ief),
            Event::TaskEnd(t) => self.task_end(*t),
            Event::FinishStart(t, f) => self.finish_start(*t, *f),
            Event::FinishEnd(t, f, joined) => self.finish_end(*t, *f, joined),
            Event::Get { waiter, awaited } => self.get(*waiter, *awaited),
            Event::Alloc(base, n, name) => self.alloc(*base, *n, name),
            Event::Read(..) | Event::Write(..) => return false,
        }
        true
    }

    /// Algorithm 8's write check at an explicit global access index.
    ///
    /// The online [`Monitor`] path numbers accesses itself; sharded offline
    /// replay numbers them in the router (one global stream) so every
    /// shard's race reports carry indices from the *same* sequence and the
    /// merged report is identical to the serial one.
    pub fn check_write_at(&mut self, task: TaskId, loc: LocId, index: u64) {
        self.access_index = index;
        self.stats.writes += 1;
        if !self.checking() {
            return;
        }
        self.sample_readers(loc);

        // Fast path: the cell's last check was this exact (task, write)
        // pair under an unchanged graph epoch, and it came back clean. The
        // slow path below would be a provable no-op (DESIGN S39): the cell
        // already holds this check's post-state, and `precede` verdicts
        // cannot change without an epoch bump.
        //
        // The probe is adaptive: cells whose access pattern the cache can
        // never serve (a different task or epoch on every touch) rack up a
        // miss streak and stop being probed (DESIGN S43) — the probe is
        // pure overhead there. A hit resets the streak, so cells that do
        // serve hits keep their fast path.
        if self.config.caching {
            let epoch = self.dtrg.epoch();
            let cell = self.shadow.cell_mut(loc);
            if cell.probe_enabled() {
                let want = Some(LastClean {
                    task,
                    write: true,
                    epoch,
                });
                if cell.last_clean == want {
                    cell.probe_misses = 0;
                    self.dtrg.counters.shadow_hits += 1;
                    return;
                }
                cell.probe_misses += 1;
            }
        }
        let detected_before = self.total_detected;

        // Readers: every stored reader must precede the writer; preceding
        // readers are removed (subsumed by the new writer), racy readers
        // are kept, as in the paper, so later accesses also check them.
        let readers = std::mem::take(&mut self.shadow.cell_mut(loc).readers);
        let mut kept = Readers::Empty;
        for x in readers.iter() {
            if self.dtrg.precede(x, task) {
                // removed
            } else {
                self.report(loc, x, AccessKind::Read, task, AccessKind::Write);
                kept.push(x);
            }
        }

        // Previous writer must precede.
        let prev_w = self.shadow.cell(loc).and_then(|c| c.writer);
        if let Some(w) = prev_w {
            if !self.dtrg.precede(w, task) {
                self.report(loc, w, AccessKind::Write, task, AccessKind::Write);
            }
        }

        // A racy check must clear the cache: repeating it has to re-count
        // the race, exactly as the uncached detector does.
        let clean = self.config.caching && self.total_detected == detected_before;
        let epoch = self.dtrg.epoch();
        let cell = self.shadow.cell_mut(loc);
        cell.readers = kept;
        cell.writer = Some(task);
        cell.last_clean = clean.then_some(LastClean {
            task,
            write: true,
            epoch,
        });
    }

    /// Algorithm 9's read check at an explicit global access index (see
    /// [`RaceDetector::check_write_at`] for why the index is external).
    pub fn check_read_at(&mut self, task: TaskId, loc: LocId, index: u64) {
        self.access_index = index;
        self.stats.reads += 1;
        if !self.checking() {
            return;
        }
        self.sample_readers(loc);

        // Fast path: see `check_write_at` — a repeated clean read by the
        // same task under the same epoch leaves the cell byte-identical
        // (the take/re-push loop preserves reader order). Same adaptive
        // miss-streak bypass as the write probe.
        if self.config.caching {
            let epoch = self.dtrg.epoch();
            let cell = self.shadow.cell_mut(loc);
            if cell.probe_enabled() {
                let want = Some(LastClean {
                    task,
                    write: false,
                    epoch,
                });
                if cell.last_clean == want {
                    cell.probe_misses = 0;
                    self.dtrg.counters.shadow_hits += 1;
                    return;
                }
                cell.probe_misses += 1;
            }
        }
        let detected_before = self.total_detected;

        // Previous writer must precede the reader.
        let prev_w = self.shadow.cell(loc).and_then(|c| c.writer);
        if let Some(w) = prev_w {
            if !self.dtrg.precede(w, task) {
                self.report(loc, w, AccessKind::Write, task, AccessKind::Read);
            }
        }

        let cur_is_future = self.dtrg.is_future(task);
        let readers = std::mem::take(&mut self.shadow.cell_mut(loc).readers);
        let mut kept = Readers::Empty;
        let mut add = true;
        for x in readers.iter() {
            if self.dtrg.precede(x, task) {
                // Superseded: any future conflict with x is also a conflict
                // with the current reader (Lemma 3).
            } else {
                kept.push(x);
                if !cur_is_future && !self.dtrg.is_future(x) {
                    // Parallel async pair: Lemma 4 makes the stored async
                    // reader a sufficient representative.
                    add = false;
                }
            }
        }
        if add {
            kept.push(task);
        }
        let clean = self.config.caching && self.total_detected == detected_before;
        let epoch = self.dtrg.epoch();
        let cell = self.shadow.cell_mut(loc);
        cell.readers = kept;
        cell.last_clean = clean.then_some(LastClean {
            task,
            write: false,
            epoch,
        });
    }

    #[inline]
    fn sample_readers(&mut self, loc: LocId) {
        if self.config.track_avg_readers {
            let n = self
                .shadow
                .cell(loc)
                .map(|c| c.readers.len())
                .unwrap_or(0);
            self.stats.readers_at_access.push(n as f64);
        }
    }
}

impl Monitor for RaceDetector {
    fn task_create(&mut self, parent: TaskId, child: TaskId, kind: TaskKind, _ief: FinishId) {
        self.stats.tasks += 1;
        match kind {
            TaskKind::Future => self.stats.future_tasks += 1,
            TaskKind::Async => self.stats.async_tasks += 1,
            TaskKind::Main => {}
        }
        self.dtrg.on_task_create(parent, child, kind);
    }

    fn task_end(&mut self, task: TaskId) {
        self.dtrg.on_task_end(task);
    }

    fn get(&mut self, waiter: TaskId, awaited: TaskId) {
        self.dtrg.on_get(waiter, awaited);
    }

    fn finish_end(&mut self, task: TaskId, _finish: FinishId, joined: &[TaskId]) {
        self.dtrg.on_finish_end(task, joined);
    }

    fn alloc(&mut self, base: LocId, n: u32, name: &str) {
        self.shadow.register(base, n, name);
    }

    /// Algorithm 8: write check.
    fn write(&mut self, task: TaskId, loc: LocId) {
        let index = self.access_index;
        self.check_write_at(task, loc, index);
        self.access_index = index + 1;
    }

    /// Algorithm 9: read check (reader-set rule as reconstructed in the
    /// module docs).
    fn read(&mut self, task: TaskId, loc: LocId) {
        let index = self.access_index;
        self.check_read_at(task, loc, index);
        self.access_index = index + 1;
    }
}

/// Everything a DTRG run produces: the race report, the run's structural
/// statistics (Table 2's columns), and the measured space bound.
///
/// This is the [`Analysis::Report`] of [`RaceDetector`] under the engine
/// layer; [`detect_races`]-style helpers project out the pieces they need.
#[derive(Clone, Debug)]
pub struct DtrgReport {
    /// Deduplicated, capped race report (the verdict).
    pub report: RaceReport,
    /// Structural statistics and DTRG cost counters.
    pub stats: DetectorStats,
    /// Theorem 1's space bound, measured at the end of the run.
    pub footprint: MemoryFootprint,
}

impl Analysis for RaceDetector {
    type Report = DtrgReport;

    fn apply_control(&mut self, e: &Event) {
        // Delegates to the inherent split half (inherent methods win name
        // resolution, so this is not a recursive call).
        let applied = RaceDetector::apply_control(self, e);
        debug_assert!(applied, "engine must route accesses to check_*_at");
    }

    fn check_read_at(&mut self, task: TaskId, loc: LocId, index: u64) {
        RaceDetector::check_read_at(self, task, loc, index);
    }

    fn check_write_at(&mut self, task: TaskId, loc: LocId, index: u64) {
        RaceDetector::check_write_at(self, task, loc, index);
    }

    fn finish(self) -> DtrgReport {
        let stats = self.stats();
        let footprint = self.memory_footprint();
        DtrgReport {
            report: self.into_report(),
            stats,
            footprint,
        }
    }
}

impl LocRoutable for RaceDetector {
    /// Merges per-shard [`DtrgReport`]s back into the serial result.
    ///
    /// The race report merge is byte-identical to the serial run (see the
    /// soundness argument in `futrace-offline`'s shard module): concatenate
    /// in shard order, stable-sort by global access index, re-apply the
    /// global cap taken from `self`'s configuration. Statistics merge
    /// field-wise: control-derived counters (task counts, gets, merges,
    /// non-tree edges) are identical in every replica so shard 0's values
    /// are taken verbatim; access-derived counters (reads, writes,
    /// `precede` calls, stored readers, the reader-count distribution) are
    /// summed across shards. The one backend-dependent counter is
    /// `visit_expansions`: path compression interleaves differently across
    /// replicas, so its merged value is the sum of per-shard costs, not the
    /// serial run's cost.
    fn merge_sharded(self, shards: Vec<DtrgReport>) -> DtrgReport {
        let mut stats = shards
            .first()
            .map(|s| s.stats.clone())
            .unwrap_or_default();
        stats.reads = 0;
        stats.writes = 0;
        stats.readers_at_access = Default::default();
        stats.dtrg.precede_calls = 0;
        stats.dtrg.visit_expansions = 0;
        stats.dtrg.memo_hits = 0;
        stats.dtrg.memo_misses = 0;
        stats.dtrg.shadow_hits = 0;

        let mut footprint = shards.first().map(|s| s.footprint).unwrap_or(MemoryFootprint {
            dtrg_tasks: 0,
            stored_nt_edges: 0,
            shadow_cells: 0,
            stored_readers: 0,
        });
        footprint.stored_readers = 0;

        let mut races: Vec<Race> = Vec::new();
        let mut total_detected = 0u64;
        for shard in shards {
            total_detected += shard.report.total_detected;
            races.extend(shard.report.races);
            stats.reads += shard.stats.reads;
            stats.writes += shard.stats.writes;
            stats
                .readers_at_access
                .merge(&shard.stats.readers_at_access);
            stats.dtrg.precede_calls += shard.stats.dtrg.precede_calls;
            stats.dtrg.visit_expansions += shard.stats.dtrg.visit_expansions;
            stats.dtrg.memo_hits += shard.stats.dtrg.memo_hits;
            stats.dtrg.memo_misses += shard.stats.dtrg.memo_misses;
            stats.dtrg.shadow_hits += shard.stats.dtrg.shadow_hits;
            footprint.stored_readers += shard.footprint.stored_readers;
        }
        races.sort_by(|a, b| a.access_index.cmp(&b.access_index));
        races.truncate(self.config.max_reports);

        DtrgReport {
            report: RaceReport {
                races,
                total_detected,
            },
            stats,
            footprint,
        }
    }
}

/// DTRG detection behind the online-parallel [`ParMonitor`] surface.
///
/// `fork` creates one [`RaceDetector`] replica per worker; the online
/// pipeline broadcasts every control event to all replicas (control is
/// cheap — each maintains an identical DTRG) and routes each access to the
/// replica that owns its location (the default [`ParMonitor::route`]:
/// `loc % workers`). `merge` finishes every replica and folds the
/// per-shard [`DtrgReport`]s through [`LocRoutable::merge_sharded`], so
/// the online race report is byte-identical to the serial run's — the
/// same contract the offline sharded replayer relies on, reached through
/// the canonical access stream the online walker reconstructs.
pub struct OnlineDtrg {
    config: DetectorConfig,
}

impl OnlineDtrg {
    /// Online-parallel DTRG detection with default configuration.
    pub fn new() -> Self {
        Self::with_config(DetectorConfig::default())
    }

    /// Online-parallel DTRG detection with explicit configuration. Every
    /// forked shard and the merge step share this configuration.
    pub fn with_config(config: DetectorConfig) -> Self {
        OnlineDtrg { config }
    }
}

impl Default for OnlineDtrg {
    fn default() -> Self {
        Self::new()
    }
}

impl ParMonitor for OnlineDtrg {
    type Worker = RaceDetector;
    type Report = DtrgReport;

    fn fork(&mut self, workers: usize) -> Vec<RaceDetector> {
        (0..workers.max(1))
            .map(|_| RaceDetector::with_config(self.config.clone()))
            .collect()
    }

    fn control(worker: &mut RaceDetector, e: &Event) {
        let applied = RaceDetector::apply_control(worker, e);
        debug_assert!(applied, "online walker must route accesses to check");
    }

    fn check(worker: &mut RaceDetector, task: TaskId, loc: LocId, write: bool, index: u64) {
        if write {
            worker.check_write_at(task, loc, index);
        } else {
            worker.check_read_at(task, loc, index);
        }
    }

    fn merge(self, workers: Vec<RaceDetector>) -> DtrgReport {
        let reports: Vec<DtrgReport> = workers.into_iter().map(Analysis::finish).collect();
        RaceDetector::with_config(self.config).merge_sharded(reports)
    }
}

/// Checkpoint state-blob version for [`RaceDetector`]. Version 2 added the
/// per-cell `last_clean` fast-path cache and the three cache counters
/// (memo hits/misses, shadow fast-path hits): the fast-path cache must
/// survive a suspend/resume so a resumed run's `precede_calls` matches the
/// straight run's, which the checkpoint-roundtrip tests assert. Version 3
/// added the per-cell probe miss streak for the same reason: a cell whose
/// probe was adaptively disabled must stay disabled across a resume, or
/// the resumed run's hit/miss counters diverge from the straight run's.
const DTRG_STATE_VERSION: u64 = 3;

impl Checkpointable for RaceDetector {
    /// Serializes the access-derived half of the detector: shadow-cell
    /// contents, discovered races, the dedup set, access counters, and the
    /// DTRG query-cost counters. Control-derived state (the DTRG itself,
    /// task counts, shadow-memory allocation names) is *not* serialized —
    /// the restore contract rebuilds it by replaying the checkpoint's
    /// control-event prefix, which is exact by construction.
    fn save_state(&self, out: &mut Vec<u8>) {
        wire::put_varint(out, DTRG_STATE_VERSION);

        // Shadow memory: total length (growth from unregistered accesses
        // must survive, for footprint parity) + the non-default cells.
        wire::put_varint(out, self.shadow.len() as u64);
        let dirty: Vec<(usize, &ShadowCell)> = self.shadow.dirty_cells().collect();
        wire::put_varint(out, dirty.len() as u64);
        for (idx, cell) in dirty {
            wire::put_varint(out, idx as u64);
            match cell.writer {
                Some(w) => {
                    wire::put_varint(out, 1);
                    wire::put_varint(out, w.0 as u64);
                }
                None => wire::put_varint(out, 0),
            }
            wire::put_varint(out, cell.readers.len() as u64);
            for r in cell.readers.iter() {
                wire::put_varint(out, r.0 as u64);
            }
            match cell.last_clean {
                Some(lc) => {
                    wire::put_varint(out, 1);
                    wire::put_varint(out, lc.task.0 as u64);
                    wire::put_varint(out, lc.write as u64);
                    wire::put_varint(out, lc.epoch);
                }
                None => wire::put_varint(out, 0),
            }
            wire::put_varint(out, cell.probe_misses as u64);
        }

        wire::put_varint(out, self.access_index);
        wire::put_varint(out, self.total_detected);

        wire::put_varint(out, self.races.len() as u64);
        for race in &self.races {
            wire::put_varint(out, race.loc.0 as u64);
            wire::put_str(out, &race.loc_name);
            wire::put_varint(out, race.prev_task.0 as u64);
            wire::put_varint(out, kind_code(race.prev_kind));
            wire::put_varint(out, race.cur_task.0 as u64);
            wire::put_varint(out, kind_code(race.cur_kind));
            wire::put_varint(out, race.access_index);
            wire::put_str(out, &race.prev_path);
            wire::put_str(out, &race.cur_path);
        }

        // Dedup entries in sorted order so identical detector states always
        // produce identical blobs (the hash set iterates nondeterministically).
        let mut dedup: Vec<(LocId, TaskId, TaskId, u8)> =
            self.dedup.iter().copied().collect();
        dedup.sort_unstable();
        wire::put_varint(out, dedup.len() as u64);
        for (loc, prev, cur, kinds) in dedup {
            wire::put_varint(out, loc.0 as u64);
            wire::put_varint(out, prev.0 as u64);
            wire::put_varint(out, cur.0 as u64);
            wire::put_varint(out, kinds as u64);
        }

        // Access-derived statistics. Control-derived counts (tasks, gets,
        // merges, nt edges) come back from the control replay; the two
        // query-cost counters live in the DTRG and are carried explicitly.
        wire::put_varint(out, self.stats.reads);
        wire::put_varint(out, self.stats.writes);
        let (count, mean, m2, min, max) = self.stats.readers_at_access.to_raw();
        wire::put_varint(out, count);
        wire::put_f64(out, mean);
        wire::put_f64(out, m2);
        wire::put_f64(out, min);
        wire::put_f64(out, max);
        wire::put_varint(out, self.dtrg.counters.precede_calls);
        wire::put_varint(out, self.dtrg.counters.visit_expansions);
        wire::put_varint(out, self.dtrg.counters.memo_hits);
        wire::put_varint(out, self.dtrg.counters.memo_misses);
        wire::put_varint(out, self.dtrg.counters.shadow_hits);
    }

    fn restore_state(&mut self, state: &[u8]) -> Result<(), StateError> {
        let mut c = wire::Cursor::new(state);
        let version = c.varint("dtrg state version")?;
        if version != DTRG_STATE_VERSION {
            return Err(StateError(format!(
                "unsupported dtrg state version {version} (expected {DTRG_STATE_VERSION})"
            )));
        }

        let shadow_len = c.varint("shadow length")? as usize;
        self.shadow.grow_to(shadow_len);
        let dirty = c.varint("dirty cell count")?;
        for _ in 0..dirty {
            let idx = c.varint("cell index")? as usize;
            if idx >= shadow_len {
                return Err(StateError(format!(
                    "cell index {idx} out of range (shadow length {shadow_len})"
                )));
            }
            let has_writer = c.varint("writer flag")?;
            let writer = match has_writer {
                0 => None,
                1 => Some(TaskId(c.varint("writer task")? as u32)),
                other => {
                    return Err(StateError(format!("invalid writer flag {other}")));
                }
            };
            let n_readers = c.varint("reader count")?;
            let mut readers = Readers::Empty;
            for _ in 0..n_readers {
                readers.push(TaskId(c.varint("reader task")? as u32));
            }
            let last_clean = match c.varint("last-clean flag")? {
                0 => None,
                1 => {
                    let task = TaskId(c.varint("last-clean task")? as u32);
                    let write = match c.varint("last-clean write flag")? {
                        0 => false,
                        1 => true,
                        other => {
                            return Err(StateError(format!(
                                "invalid last-clean write flag {other}"
                            )));
                        }
                    };
                    let epoch = c.varint("last-clean epoch")?;
                    Some(LastClean { task, write, epoch })
                }
                other => {
                    return Err(StateError(format!("invalid last-clean flag {other}")));
                }
            };
            let probe_misses = c.varint("probe miss streak")?;
            if probe_misses > u8::MAX as u64 {
                return Err(StateError(format!(
                    "probe miss streak {probe_misses} out of range"
                )));
            }
            let cell = self.shadow.cell_mut(LocId::from_index(idx));
            cell.writer = writer;
            cell.readers = readers;
            cell.last_clean = last_clean;
            cell.probe_misses = probe_misses as u8;
        }

        self.access_index = c.varint("access index")?;
        self.total_detected = c.varint("total detected")?;

        let n_races = c.varint("race count")?;
        self.races.clear();
        for _ in 0..n_races {
            let loc = LocId(c.varint("race loc")? as u32);
            let loc_name = c.str("race loc name")?.to_string();
            let prev_task = TaskId(c.varint("race prev task")? as u32);
            let prev_kind = kind_from_code(c.varint("race prev kind")?)?;
            let cur_task = TaskId(c.varint("race cur task")? as u32);
            let cur_kind = kind_from_code(c.varint("race cur kind")?)?;
            let access_index = c.varint("race access index")?;
            let prev_path = c.str("race prev path")?.to_string();
            let cur_path = c.str("race cur path")?.to_string();
            self.races.push(Race {
                loc,
                loc_name,
                prev_task,
                prev_kind,
                cur_task,
                cur_kind,
                access_index,
                prev_path,
                cur_path,
            });
        }

        let n_dedup = c.varint("dedup count")?;
        self.dedup.clear();
        for _ in 0..n_dedup {
            let loc = LocId(c.varint("dedup loc")? as u32);
            let prev = TaskId(c.varint("dedup prev")? as u32);
            let cur = TaskId(c.varint("dedup cur")? as u32);
            let kinds = c.varint("dedup kinds")? as u8;
            self.dedup.insert((loc, prev, cur, kinds));
        }

        self.stats.reads = c.varint("stats reads")?;
        self.stats.writes = c.varint("stats writes")?;
        let count = c.varint("readers count")?;
        let mean = c.f64("readers mean")?;
        let m2 = c.f64("readers m2")?;
        let min = c.f64("readers min")?;
        let max = c.f64("readers max")?;
        self.stats.readers_at_access =
            futrace_util::stats::Running::from_raw((count, mean, m2, min, max));
        self.dtrg.counters.precede_calls = c.varint("precede calls")?;
        self.dtrg.counters.visit_expansions = c.varint("visit expansions")?;
        self.dtrg.counters.memo_hits = c.varint("memo hits")?;
        self.dtrg.counters.memo_misses = c.varint("memo misses")?;
        self.dtrg.counters.shadow_hits = c.varint("shadow fast-path hits")?;

        if !c.is_empty() {
            return Err(StateError(format!(
                "{} trailing byte(s) after dtrg state",
                c.remaining()
            )));
        }
        Ok(())
    }
}

fn kind_code(k: AccessKind) -> u64 {
    match k {
        AccessKind::Read => 0,
        AccessKind::Write => 1,
    }
}

fn kind_from_code(code: u64) -> Result<AccessKind, StateError> {
    match code {
        0 => Ok(AccessKind::Read),
        1 => Ok(AccessKind::Write),
        other => Err(StateError(format!("invalid access kind code {other}"))),
    }
}

/// Runs `f` under serial depth-first execution with a fresh
/// default-configured [`RaceDetector`] and returns the report.
///
/// ```
/// use futrace_detector::detect_races;
/// use futrace_runtime::TaskCtx;
///
/// // Unsynchronized future write vs parent read: a race.
/// let report = detect_races(|ctx| {
///     let x = ctx.shared_var(0u64, "x");
///     let x2 = x.clone();
///     let _f = ctx.future(move |ctx| x2.write(ctx, 1));
///     let _ = x.read(ctx); // no get() before the read
/// });
/// assert!(report.has_races());
///
/// // With the get() the program is race-free.
/// let report = detect_races(|ctx| {
///     let x = ctx.shared_var(0u64, "x");
///     let x2 = x.clone();
///     let f = ctx.future(move |ctx| x2.write(ctx, 1));
///     ctx.get(&f);
///     let _ = x.read(ctx);
/// });
/// assert!(!report.has_races());
/// ```
#[deprecated(
    since = "0.1.0",
    note = "use the `futrace::Analyze` builder: `Analyze::program(f).run()`"
)]
pub fn detect_races<F>(f: F) -> RaceReport
where
    F: FnOnce(&mut SerialCtx<Engine<RaceDetector>>),
{
    run_analysis_live(f, RaceDetector::new()).report.report
}

/// As [`detect_races`] but also returns the run's statistics (Table 2's
/// structural columns).
#[deprecated(
    since = "0.1.0",
    note = "use the `futrace::Analyze` builder: `Analyze::program(f).run()` \
            returns races and stats in one `AnalysisOutcome`"
)]
pub fn detect_races_with_stats<F>(f: F) -> (RaceReport, DetectorStats)
where
    F: FnOnce(&mut SerialCtx<Engine<RaceDetector>>),
{
    let out = run_analysis_live(f, RaceDetector::new());
    (out.report.report, out.report.stats)
}

#[cfg(test)]
mod tests {
    // The deprecated wrappers stay exercised here on purpose: these tests
    // double as the compile check that the wrappers keep building.
    #![allow(deprecated)]
    use super::*;
    use futrace_runtime::TaskCtx;

    #[test]
    fn race_free_empty_program() {
        let report = detect_races(|_| {});
        assert!(!report.has_races());
    }

    #[test]
    fn online_dtrg_matches_serial_reports() {
        use futrace_runtime::online::{run_online, OnlineOptions};

        // Mixed structure with one planted race (the unjoined writer on
        // `y`): future join edges, a finish, and clean accesses on `x`.
        fn prog<C: TaskCtx>(ctx: &mut C) {
            let x = ctx.shared_var(0i64, "x");
            let y = ctx.shared_var(0i64, "y");
            x.write(ctx, 7);
            let xa = x.clone();
            let ra = ctx.future(move |ctx| xa.read(ctx));
            let yb = y.clone();
            let _rb = ctx.future(move |ctx| yb.write(ctx, 1)); // never joined
            ctx.get(&ra);
            ctx.finish(|ctx| {
                let xc = x.clone();
                ctx.async_task(move |ctx| {
                    let _ = xc.read(ctx);
                });
            });
            x.write(ctx, 8);
            let _ = y.read(ctx); // races with _rb's write
        }

        let serial = run_analysis_live(|ctx| prog(ctx), RaceDetector::new()).report;
        for threads in [1usize, 2, 4] {
            let run = run_online(OnlineOptions::threads(threads), OnlineDtrg::new(), |ctx| {
                prog(ctx)
            });
            assert!(run.result.is_ok());
            assert_eq!(run.report.report.races, serial.report.races);
            assert_eq!(
                run.report.report.total_detected,
                serial.report.total_detected
            );
            assert_eq!(
                run.report.footprint.shadow_cells,
                serial.footprint.shadow_cells
            );
            assert_eq!(run.report.stats.reads, serial.stats.reads);
            assert_eq!(run.report.stats.writes, serial.stats.writes);
        }
    }

    #[test]
    fn async_write_write_race() {
        let report = detect_races(|ctx| {
            let x = ctx.shared_var(0i64, "x");
            ctx.finish(|ctx| {
                let xa = x.clone();
                ctx.async_task(move |ctx| xa.write(ctx, 1));
                let xb = x.clone();
                ctx.async_task(move |ctx| xb.write(ctx, 2));
            });
        });
        assert!(report.has_races());
        let r = report.first().unwrap();
        assert_eq!(r.prev_task, TaskId(1));
        assert_eq!(r.cur_task, TaskId(2));
        assert_eq!(r.prev_kind, AccessKind::Write);
        assert_eq!(r.cur_kind, AccessKind::Write);
        assert_eq!(r.loc_name, "x");
    }

    #[test]
    fn sequential_accesses_no_race() {
        let report = detect_races(|ctx| {
            let x = ctx.shared_var(0i64, "x");
            x.write(ctx, 1);
            let _ = x.read(ctx);
            x.write(ctx, 2);
        });
        assert!(!report.has_races());
    }

    #[test]
    fn finish_synchronizes() {
        let report = detect_races(|ctx| {
            let x = ctx.shared_var(0i64, "x");
            ctx.finish(|ctx| {
                let xa = x.clone();
                ctx.async_task(move |ctx| xa.write(ctx, 1));
            });
            x.write(ctx, 2);
        });
        assert!(!report.has_races());
    }

    #[test]
    fn future_get_synchronizes_sibling() {
        let report = detect_races(|ctx| {
            let x = ctx.shared_var(0i64, "x");
            let xa = x.clone();
            let a = ctx.future(move |ctx| xa.write(ctx, 1));
            let xb = x.clone();
            let _b = ctx.future(move |ctx| {
                ctx.get(&a);
                let _ = xb.read(ctx);
            });
        });
        assert!(!report.has_races());
    }

    #[test]
    fn sibling_without_get_races() {
        let report = detect_races(|ctx| {
            let x = ctx.shared_var(0i64, "x");
            let xa = x.clone();
            let _a = ctx.future(move |ctx| xa.write(ctx, 1));
            let xb = x.clone();
            let _b = ctx.future(move |ctx| {
                let _ = xb.read(ctx);
            });
        });
        assert!(report.has_races());
        let r = report.first().unwrap();
        assert_eq!(r.prev_kind, AccessKind::Write);
        assert_eq!(r.cur_kind, AccessKind::Read);
    }

    #[test]
    fn parallel_reads_then_joined_write_no_race() {
        // Two future readers in parallel (both get the producer), then the
        // parent gets both and writes: no race anywhere.
        let report = detect_races(|ctx| {
            let x = ctx.shared_var(0i64, "x");
            x.write(ctx, 7);
            let xa = x.clone();
            let ra = ctx.future(move |ctx| xa.read(ctx));
            let xb = x.clone();
            let rb = ctx.future(move |ctx| xb.read(ctx));
            ctx.get(&ra);
            ctx.get(&rb);
            x.write(ctx, 8);
        });
        assert!(!report.has_races());
    }

    #[test]
    fn unjoined_parallel_reader_races_with_write() {
        let report = detect_races(|ctx| {
            let x = ctx.shared_var(0i64, "x");
            x.write(ctx, 7);
            let xa = x.clone();
            let ra = ctx.future(move |ctx| xa.read(ctx));
            let xb = x.clone();
            let _rb = ctx.future(move |ctx| xb.read(ctx)); // never joined
            ctx.get(&ra);
            x.write(ctx, 8); // races with rb's read
        });
        assert!(report.has_races());
        let r = report.first().unwrap();
        assert_eq!(r.prev_kind, AccessKind::Read);
        assert_eq!(r.cur_kind, AccessKind::Write);
        assert_eq!(r.prev_task, TaskId(2));
    }

    #[test]
    fn transitive_get_chain_no_race() {
        // Figure 1's shape: main only joins C, but B is ordered before main
        // transitively (C got B).
        let report = detect_races(|ctx| {
            let x = ctx.shared_var(0i64, "x");
            let xb = x.clone();
            let b = ctx.future(move |ctx| xb.write(ctx, 3));
            let c = ctx.future(move |ctx| {
                ctx.get(&b);
            });
            ctx.get(&c);
            let _ = x.read(ctx);
        });
        assert!(!report.has_races());
    }

    #[test]
    fn async_read_replacement_keeps_detection() {
        // Async A reads, async B reads in parallel (only one is stored);
        // a later parallel write must still race.
        let report = detect_races(|ctx| {
            let x = ctx.shared_var(0i64, "x");
            ctx.finish(|ctx| {
                let xa = x.clone();
                ctx.async_task(move |ctx| {
                    let _ = xa.read(ctx);
                });
                let xb = x.clone();
                ctx.async_task(move |ctx| {
                    let _ = xb.read(ctx);
                });
                let xc = x.clone();
                ctx.async_task(move |ctx| xc.write(ctx, 1));
            });
        });
        assert!(report.has_races());
    }

    #[test]
    fn stats_count_structure() {
        let (report, stats) = detect_races_with_stats(|ctx| {
            let x = ctx.shared_var(0i64, "x");
            let xa = x.clone();
            let a = ctx.future(move |ctx| xa.write(ctx, 1));
            let xb = x.clone();
            let ab = a.clone();
            let _b = ctx.future(move |ctx| {
                ctx.get(&ab);
                let _ = xb.read(ctx);
            });
            ctx.async_task(|_| {});
            ctx.get(&a);
        });
        assert!(!report.has_races());
        assert_eq!(stats.tasks, 3);
        assert_eq!(stats.future_tasks, 2);
        assert_eq!(stats.async_tasks, 1);
        assert_eq!(stats.shared_mem(), 2);
        assert_eq!(stats.nt_joins(), 1, "only B's get is a non-tree join");
        assert_eq!(stats.dtrg.gets, 2);
    }

    #[test]
    fn dedup_and_cap() {
        let mut det = RaceDetector::with_config(DetectorConfig {
            max_reports: 2,
            ..Default::default()
        });
        run_serial(&mut det, |ctx| {
            let a = ctx.shared_array(8, 0i64, "a");
            for i in 0..8 {
                let aw = a.clone();
                ctx.async_task(move |ctx| aw.write(ctx, i, 1));
            }
            for i in 0..8 {
                // Main writes everything again: 8 distinct racy locations,
                // but only 2 reports stored.
                a.write(ctx, i, 2);
            }
        });
        let report = det.into_report();
        assert_eq!(report.races.len(), 2);
        assert!(report.total_detected >= 8);
    }

    #[test]
    fn first_race_only_reports_exactly_one() {
        let mut det = RaceDetector::with_config(DetectorConfig {
            first_race_only: true,
            ..Default::default()
        });
        run_serial(&mut det, |ctx| {
            let a = ctx.shared_array(4, 0i64, "a");
            for i in 0..4 {
                let aw = a.clone();
                ctx.async_task(move |ctx| aw.write(ctx, i, 1));
            }
            for i in 0..4 {
                a.write(ctx, i, 2); // 4 distinct racy locations
            }
        });
        let report = det.into_report();
        assert!(report.has_races());
        assert_eq!(report.total_detected, 1, "checking stops at the first race");
        assert_eq!(report.races.len(), 1);
    }

    #[test]
    fn first_race_only_verdict_matches_default() {
        // Same verdict for racy and race-free programs.
        for racy in [false, true] {
            let run = |cfg: DetectorConfig| {
                let mut det = RaceDetector::with_config(cfg);
                run_serial(&mut det, |ctx| {
                    let x = ctx.shared_var(0i64, "x");
                    let xw = x.clone();
                    let f = ctx.future(move |ctx| xw.write(ctx, 1));
                    if !racy {
                        ctx.get(&f);
                    }
                    let _ = x.read(ctx);
                });
                det.has_races()
            };
            assert_eq!(
                run(DetectorConfig::default()),
                run(DetectorConfig {
                    first_race_only: true,
                    ..Default::default()
                }),
                "racy={racy}"
            );
        }
    }

    #[test]
    fn split_control_and_check_match_monitor_path() {
        use futrace_runtime::EventLog;
        // Record a racy program, then drive one detector through the
        // Monitor interface and another through the split
        // apply_control/check_*_at halves: identical reports.
        let mut log = EventLog::new();
        run_serial(&mut log, |ctx| {
            let a = ctx.shared_array(4, 0i64, "a");
            let aw = a.clone();
            let _f = ctx.future(move |ctx| aw.write(ctx, 1, 5));
            let _ = a.read(ctx, 1); // racy: no get
            a.write(ctx, 2, 9);
        });

        let mut online = RaceDetector::new();
        futrace_runtime::replay(&log.events, &mut online);

        let mut split = RaceDetector::new();
        let mut index = 0u64;
        for e in &log.events {
            if !split.apply_control(e) {
                match e {
                    Event::Read(t, l) => split.check_read_at(*t, *l, index),
                    Event::Write(t, l) => split.check_write_at(*t, *l, index),
                    _ => unreachable!(),
                }
                index += 1;
            }
        }

        assert_eq!(online.stats().reads, split.stats().reads);
        assert_eq!(online.stats().writes, split.stats().writes);
        let (ra, rb) = (online.into_report(), split.into_report());
        assert_eq!(ra.total_detected, rb.total_detected);
        assert_eq!(ra.races, rb.races);
        assert!(ra.has_races());
    }

    #[test]
    fn checkpoint_roundtrip_matches_straight_run() {
        use futrace_runtime::EventLog;
        // A program with races both early and late, so every cut point
        // splits interesting state (stored readers, dedup entries, races)
        // across the checkpoint boundary.
        let mut log = EventLog::new();
        run_serial(&mut log, |ctx| {
            let a = ctx.shared_array(4, 0i64, "a");
            for i in 0..4 {
                let aw = a.clone();
                ctx.async_task(move |ctx| aw.write(ctx, i, 1));
            }
            let ar = a.clone();
            let f = ctx.future(move |ctx| ar.read(ctx, 0));
            for i in 0..4 {
                a.write(ctx, i, 2); // races with the async writers
            }
            ctx.get(&f);
            let _ = a.read(ctx, 1);
            let aw = a.clone();
            let _g = ctx.future(move |ctx| aw.write(ctx, 1, 7)); // never joined
            a.write(ctx, 1, 8); // late race
        });

        let route = |det: &mut RaceDetector, e: &Event, idx: &mut u64| {
            if !det.apply_control(e) {
                match e {
                    Event::Read(t, l) => det.check_read_at(*t, *l, *idx),
                    Event::Write(t, l) => det.check_write_at(*t, *l, *idx),
                    _ => unreachable!(),
                }
                *idx += 1;
            }
        };

        let mut straight = RaceDetector::new();
        let mut idx = 0u64;
        for e in &log.events {
            route(&mut straight, e, &mut idx);
        }
        let want_stats = straight.stats();
        let want = straight.into_report();
        assert!(want.has_races(), "test program must be racy");

        for cut in [0, 1, log.events.len() / 3, log.events.len() / 2, log.events.len()] {
            // Run the prefix, snapshot the access-derived state.
            let mut prefix_det = RaceDetector::new();
            let mut prefix_idx = 0u64;
            for e in &log.events[..cut] {
                route(&mut prefix_det, e, &mut prefix_idx);
            }
            let mut blob = Vec::new();
            prefix_det.save_state(&mut blob);

            // Fresh instance: replay only the control prefix, then restore.
            let mut resumed = RaceDetector::new();
            for e in &log.events[..cut] {
                let _ = resumed.apply_control(e);
            }
            resumed.restore_state(&blob).unwrap();

            // Run the suffix on the resumed instance.
            let mut resumed_idx = prefix_idx;
            for e in &log.events[cut..] {
                route(&mut resumed, e, &mut resumed_idx);
            }

            let got_stats = resumed.stats();
            assert_eq!(got_stats.reads, want_stats.reads, "cut={cut}");
            assert_eq!(got_stats.writes, want_stats.writes, "cut={cut}");
            assert_eq!(got_stats.tasks, want_stats.tasks, "cut={cut}");
            assert_eq!(
                got_stats.dtrg.precede_calls, want_stats.dtrg.precede_calls,
                "cut={cut}"
            );
            assert_eq!(
                got_stats.readers_at_access.to_raw(),
                want_stats.readers_at_access.to_raw(),
                "cut={cut}"
            );
            let got = resumed.into_report();
            assert_eq!(got.total_detected, want.total_detected, "cut={cut}");
            assert_eq!(got.races, want.races, "cut={cut}");
        }
    }

    #[test]
    fn checkpoint_restore_rejects_garbage() {
        let mut det = RaceDetector::new();
        assert!(det.restore_state(&[0xFF]).is_err(), "truncated varint");
        assert!(
            det.restore_state(&[9]).is_err(),
            "unsupported state version"
        );
        let mut blob = Vec::new();
        RaceDetector::new().save_state(&mut blob);
        blob.push(0);
        let err = det.restore_state(&blob).unwrap_err();
        assert!(
            err.to_string().contains("trailing"),
            "trailing bytes detected: {err}"
        );
    }

    #[test]
    fn memory_footprint_accounts_structures() {
        let mut det = RaceDetector::new();
        run_serial(&mut det, |ctx| {
            let x = ctx.shared_array(8, 0u64, "x");
            let xa = x.clone();
            let a = ctx.future(move |ctx| xa.read(ctx, 0));
            let xb = x.clone();
            let _b = ctx.future(move |ctx| {
                ctx.get(&a); // one stored non-tree edge
                let _ = xb.read(ctx, 0);
            });
        });
        let fp = det.memory_footprint();
        assert_eq!(fp.dtrg_tasks, 3, "main + 2 futures");
        assert_eq!(fp.shadow_cells, 8);
        assert!(fp.stored_readers >= 1);
        assert!(fp.stored_nt_edges >= 1);
        assert!(fp.to_string().contains("shadow cells: 8"));
    }

    #[test]
    fn avg_readers_zero_for_write_only() {
        let (_, stats) = detect_races_with_stats(|ctx| {
            let x = ctx.shared_var(0i64, "x");
            x.write(ctx, 1);
            x.write(ctx, 2);
        });
        assert_eq!(stats.avg_readers(), 0.0);
    }

    #[test]
    fn avg_readers_counts_future_readers() {
        let (_, stats) = detect_races_with_stats(|ctx| {
            let x = ctx.shared_var(1i64, "x");
            let mut handles = Vec::new();
            for _ in 0..4 {
                let xr = x.clone();
                handles.push(ctx.future(move |ctx| xr.read(ctx)));
            }
            for h in &handles {
                ctx.get(h);
            }
            // At this final read, 4 parallel future readers are stored.
            let _ = x.read(ctx);
        });
        assert!(stats.avg_readers() > 0.5, "got {}", stats.avg_readers());
        assert!(stats.readers_at_access.max().unwrap() >= 4.0);
    }
}

/// Offline detection: decodes a binary trace (see
/// [`futrace_runtime::trace`]) and replays it into a fresh detector,
/// returning the report and statistics. The verdict is identical to the
/// online run that recorded the trace.
#[deprecated(
    since = "0.1.0",
    note = "use the `futrace::Analyze` builder: `Analyze::trace_bytes(blob).run()`"
)]
pub fn detect_races_in_trace(
    blob: &[u8],
) -> Result<(RaceReport, DetectorStats), futrace_runtime::trace::DecodeError> {
    use futrace_runtime::engine::{run_analysis, source};
    let events = futrace_runtime::trace::decode_iter(blob);
    let out = run_analysis(source::stream(events), RaceDetector::new())?;
    Ok((out.report.report, out.report.stats))
}

#[cfg(test)]
mod trace_tests {
    #![allow(deprecated)]
    use super::*;
    use futrace_runtime::{trace, EventLog, TaskCtx};

    #[test]
    fn offline_detection_matches_online() {
        let program = |ctx: &mut SerialCtx<EventLog>| {
            let x = ctx.shared_var(0u64, "x");
            let xw = x.clone();
            let _f = ctx.future(move |ctx| xw.write(ctx, 1));
            let _ = x.read(ctx); // racy: no get
        };
        let mut log = EventLog::new();
        run_serial(&mut log, program);
        let blob = trace::encode(&log.events);
        let (report, stats) = detect_races_in_trace(&blob).unwrap();
        assert!(report.has_races());
        assert_eq!(stats.shared_mem(), 2);
        assert!(detect_races_in_trace(&[0xFF]).is_err());
    }
}
