//! Graphviz rendering of the dynamic task reachability graph — the
//! Figure-3/Table-1 style picture: one cluster per disjoint set, each task
//! annotated with its interval label, red arrows for non-tree predecessor
//! edges, dashed arrows for lowest-significant-ancestor pointers.

use crate::dtrg::Dtrg;
use futrace_util::ids::TaskId;
use futrace_util::FxHashMap;
use std::fmt::Write as _;

/// Renders the DTRG's current state as a DOT document.
pub fn to_dot(dtrg: &mut Dtrg, title: &str) -> String {
    let n = dtrg.task_count();
    // Group tasks by set (representative keyed by the set label's pre).
    let mut groups: FxHashMap<u64, Vec<TaskId>> = FxHashMap::default();
    for i in 0..n {
        let t = TaskId::from_index(i);
        let key = dtrg.set_data(t).interval.pre;
        groups.entry(key).or_default().push(t);
    }
    let mut keys: Vec<u64> = groups.keys().copied().collect();
    keys.sort_unstable();

    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{title}\" {{");
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  node [shape=box, fontsize=10];");
    for (gi, key) in keys.iter().enumerate() {
        let members = &groups[key];
        let set_label = dtrg.set_data(members[0]).interval;
        let _ = writeln!(out, "  subgraph cluster_set{gi} {{");
        let _ = writeln!(
            out,
            "    label=\"set [{}, {}]\"; style=rounded;",
            set_label.pre,
            if set_label.post >= futrace_util::interval::TMPID_START / 2 {
                "live".to_string()
            } else {
                set_label.post.to_string()
            }
        );
        for &t in members {
            let own = dtrg.meta(t).own;
            let kind = if t == TaskId::MAIN {
                "main"
            } else if dtrg.is_future(t) {
                "future"
            } else {
                "async"
            };
            let post = if own.post >= futrace_util::interval::TMPID_START / 2 {
                "·".to_string()
            } else {
                own.post.to_string()
            };
            let _ = writeln!(
                out,
                "    t{} [label=\"{t} ({kind})\\n[{}, {post}]\"];",
                t.0, own.pre
            );
        }
        let _ = writeln!(out, "  }}");
    }
    // Non-tree predecessor edges (red) and LSA pointers (dashed).
    for i in 0..n {
        let t = TaskId::from_index(i);
        // Only draw each set's nt list once, from its representative-most
        // member (the first member encountered per set key).

        let data_nt: Vec<TaskId> = dtrg.set_data(t).nt.to_vec();
        let key = dtrg.set_data(t).interval.pre;
        if groups[&key][0] == t {
            for p in data_nt {
                let _ = writeln!(out, "  t{} -> t{} [color=red, label=\"nt\"];", p.0, t.0);
            }
        }
        if let Some(l) = dtrg.set_data(t).lsa {
            let _ = writeln!(
                out,
                "  t{} -> t{} [style=dashed, color=gray, label=\"lsa\"];",
                t.0, l.0
            );
        }
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use futrace_runtime::monitor::TaskKind;

    #[test]
    fn renders_sets_nt_and_lsa() {
        let mut g = Dtrg::new();
        let m = TaskId::MAIN;
        g.on_task_create(m, TaskId(1), TaskKind::Future); // A
        g.on_task_end(TaskId(1));
        g.on_task_create(m, TaskId(2), TaskKind::Future); // B
        g.on_get(TaskId(2), TaskId(1)); // non-tree edge A -> B
        g.on_task_create(TaskId(2), TaskId(3), TaskKind::Async); // C: lsa = B
        let dot = to_dot(&mut g, "dtrg");
        assert!(dot.contains("digraph \"dtrg\""));
        assert!(dot.contains("cluster_set0"));
        assert!(dot.contains("T1 (future)"));
        assert!(dot.contains("color=red"), "nt edge rendered");
        assert!(dot.contains("lsa"), "lsa pointer rendered");
        assert!(dot.contains("live"), "live sets marked");
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn merged_sets_share_a_cluster() {
        let mut g = Dtrg::new();
        let m = TaskId::MAIN;
        g.on_task_create(m, TaskId(1), TaskKind::Future);
        g.on_task_end(TaskId(1));
        g.on_get(m, TaskId(1)); // merge
        let dot = to_dot(&mut g, "merged");
        // Exactly one cluster with both tasks.
        assert_eq!(dot.matches("subgraph cluster_set").count(), 1);
        assert!(dot.contains("T0 (main)"));
        assert!(dot.contains("T1 (future)"));
    }
}
