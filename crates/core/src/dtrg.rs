//! The dynamic task reachability graph (DTRG) — §4.1 and Algorithms 1–7,
//! 10 of the paper.
//!
//! The DTRG answers, during a serial depth-first execution, the query
//! *"must every already-executed step of task `A` precede the currently
//! executing step of task `B`?"* ([`Dtrg::precede`], the paper's
//! `Precede`). It encodes reachability at task granularity with three
//! mechanisms:
//!
//! 1. **Disjoint sets over tree joins.** Tasks connected to an ancestor by
//!    tree-join + continue edges share a set ([`futrace_util::UnionFind`]);
//!    `Merge` (Algorithm 7) keeps the ancestor-most label and `lsa`, and
//!    unions the non-tree predecessor lists.
//! 2. **Interval labels.** Each set carries a `[pre, post]` spawn-tree
//!    interval ([`futrace_util::interval`]); subsumption answers
//!    ancestor-reachability in O(1).
//! 3. **Non-tree predecessors + lowest significant ancestor.** Non-tree
//!    join edges (future `get`s that cannot merge) are stored per set
//!    (`nt`), and each task remembers its lowest ancestor that performed a
//!    non-tree join (`lsa`), so `Visit` (Algorithm 10) only walks the
//!    "significant" part of the spawn path.
//!
//! `Precede` is implemented iteratively (explicit work stack + visited set
//! keyed by set representative) rather than recursively: a wavefront
//! program like Smith-Waterman can chain thousands of non-tree edges, which
//! would overflow the call stack, and the visited set gives the
//! "each non-tree edge visited once" bound of Theorem 1.

use futrace_runtime::monitor::TaskKind;
use futrace_util::ids::TaskId;
use futrace_util::interval::{Interval, IntervalLabeler};
use futrace_util::{FxHashMap, FxHashSet, UnionFind};

/// Inline capacity of [`NtSet`]. The paper observes (§5) that producers
/// and consumers sit 1–2 non-tree hops apart, and across the benchsuite
/// almost every set stores at most a couple of non-tree predecessors, so
/// four inline slots cover the common case without heap traffic.
const NT_INLINE: usize = 4;

/// Small-set of non-tree predecessor tasks: up to [`NT_INLINE`] entries
/// inline, spilling to a heap vector only for sets that accumulate many
/// unjoined producers (wavefront programs under heavy merging).
#[derive(Clone, Debug)]
pub enum NtSet {
    /// At most `NT_INLINE` entries, stored in place.
    Inline {
        /// Number of valid entries in `buf`.
        len: u8,
        /// Entry storage; only `buf[..len]` is meaningful.
        buf: [TaskId; NT_INLINE],
    },
    /// Spilled storage once the inline capacity is exceeded.
    Spilled(Vec<TaskId>),
}

impl Default for NtSet {
    fn default() -> Self {
        NtSet::new()
    }
}

impl NtSet {
    /// Empty set (no allocation).
    pub const fn new() -> Self {
        NtSet::Inline {
            len: 0,
            buf: [TaskId(0); NT_INLINE],
        }
    }

    /// Number of stored predecessors.
    pub fn len(&self) -> usize {
        match self {
            NtSet::Inline { len, .. } => *len as usize,
            NtSet::Spilled(v) => v.len(),
        }
    }

    /// True if no predecessor is stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True if `t` is stored.
    pub fn contains(&self, t: TaskId) -> bool {
        self.as_slice().contains(&t)
    }

    /// The stored predecessors as a slice (inline or spilled).
    #[inline]
    pub fn as_slice(&self) -> &[TaskId] {
        match self {
            NtSet::Inline { len, buf } => &buf[..*len as usize],
            NtSet::Spilled(v) => v,
        }
    }

    /// Copies the stored predecessors into a fresh vector.
    pub fn to_vec(&self) -> Vec<TaskId> {
        self.as_slice().to_vec()
    }

    /// Appends `t` (no deduplication — callers check [`NtSet::contains`]
    /// first, mirroring the old `Vec` usage), spilling when the inline
    /// buffer is full.
    pub fn push(&mut self, t: TaskId) {
        match self {
            NtSet::Inline { len, buf } => {
                if (*len as usize) < NT_INLINE {
                    buf[*len as usize] = t;
                    *len += 1;
                } else {
                    let mut v = Vec::with_capacity(NT_INLINE * 2);
                    v.extend_from_slice(&buf[..]);
                    v.push(t);
                    *self = NtSet::Spilled(v);
                }
            }
            NtSet::Spilled(v) => v.push(t),
        }
    }

    /// Unions `other` into `self`, deduplicating (Algorithm 7's
    /// `nt := nt_A ∪ nt_B`).
    pub fn merge_from(&mut self, other: &NtSet) {
        for &t in other.as_slice() {
            if !self.contains(t) {
                self.push(t);
            }
        }
    }
}

/// Per-set attributes (the record the paper attaches to every disjoint
/// set: `pre`/`post`, `nt`, `lsa`; `parent` lives per task).
#[derive(Clone, Debug)]
pub struct SetData {
    /// Interval label of the set — the label of the member closest to the
    /// spawn-tree root.
    pub interval: Interval,
    /// Sources of non-tree join edges into any member of this set.
    pub nt: NtSet,
    /// Lowest significant ancestor: the nearest ancestor task whose set had
    /// performed a non-tree join when this task was spawned.
    pub lsa: Option<TaskId>,
}

/// Per-task immutable facts.
#[derive(Clone, Copy, Debug)]
pub struct TaskMeta {
    /// Spawn-tree parent (`None` for main).
    pub parent: Option<TaskId>,
    /// Async vs future vs main.
    pub kind: TaskKind,
    /// The task's *own* interval label (distinct from its set's label once
    /// merged); used for exact ancestor queries and statistics.
    pub own: Interval,
}

/// Counters the DTRG maintains for Theorem-1 style accounting and for
/// Table 2's structural columns.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DtrgCounters {
    /// `get()` operations observed.
    pub gets: u64,
    /// Gets that merged disjoint sets (Algorithm 4's then-branch).
    pub merging_gets: u64,
    /// Gets recorded as non-tree predecessors (Algorithm 4's else-branch).
    pub nt_edges: u64,
    /// Non-tree joins in the computation-graph sense: gets whose waiter is
    /// *not* an ancestor of the awaited task (Table 2's #NTJoins).
    pub graph_nt_joins: u64,
    /// Set merges performed (gets + finish joins).
    pub merges: u64,
    /// `Precede` queries answered.
    pub precede_calls: u64,
    /// Nodes expanded across all `Visit` traversals.
    pub visit_expansions: u64,
    /// `Precede` queries answered from the memo table (no `Visit` run).
    pub memo_hits: u64,
    /// `Precede` queries that ran `Visit` and populated the memo.
    pub memo_misses: u64,
    /// Access checks answered by the shadow-cell fast path without
    /// consulting the DTRG at all (maintained by the detector).
    pub shadow_hits: u64,
}

/// Sentinel in the `task_parent` column for "no parent" (main).
const NO_PARENT: u32 = u32::MAX;

/// The dynamic task reachability graph.
#[derive(Clone, Debug)]
pub struct Dtrg {
    labeler: IntervalLabeler,
    sets: UnionFind<SetData>,
    /// Per-task facts in struct-of-arrays layout: the hot queries
    /// (`is_future` in Algorithm 9's reader rule, `own` in the O(1)
    /// ancestor test) each touch one dense homogeneous column instead of
    /// striding over a wider record.
    task_parent: Vec<u32>,
    task_kind: Vec<TaskKind>,
    task_own: Vec<Interval>,
    /// Scratch for `precede` (kept to avoid per-query allocation).
    visit_stack: Vec<TaskId>,
    /// Visited-set fast path: realistic queries (paper §5: producers and
    /// consumers sit 1–2 non-tree hops apart) expand a handful of nodes,
    /// so a linear-scanned small vector beats hashing; the hash set only
    /// takes over when a query blows past the inline capacity.
    visited_small: Vec<usize>,
    visited: FxHashSet<usize>,
    /// Graph-mutation epoch: bumped exactly when an ordering edge is added
    /// between existing nodes — a real set union (merging `get`, finish
    /// end) or a newly stored non-tree predecessor. `on_task_create` /
    /// `on_task_end` never add edges between existing nodes, so they keep
    /// the epoch, and every cached `precede` verdict stays valid within
    /// one epoch (verdicts are monotone: they can only flip false→true,
    /// and only when an edge is added; see DESIGN S39).
    epoch: u64,
    /// Memoized `precede` verdicts keyed on `(Find(a), Find(b))` set
    /// representatives. Representatives are stable within an epoch (only
    /// unions change them, and unions bump the epoch), so entries are
    /// valid while `memo_epoch == epoch` and lazily cleared otherwise.
    memo: FxHashMap<(u32, u32), bool>,
    memo_epoch: u64,
    memo_enabled: bool,
    /// Counters.
    pub counters: DtrgCounters,
}

impl Default for Dtrg {
    fn default() -> Self {
        Self::new()
    }
}

impl Dtrg {
    /// Algorithm 1: initialization with the main task. Main gets the label
    /// `[0, MAXINT]`, no parent, no `lsa`.
    pub fn new() -> Self {
        let mut labeler = IntervalLabeler::new();
        let own = labeler.on_spawn();
        let mut sets = UnionFind::with_capacity(1024);
        let key = sets.make_set(SetData {
            interval: own,
            nt: NtSet::new(),
            lsa: None,
        });
        debug_assert_eq!(key, TaskId::MAIN.index());
        Dtrg {
            labeler,
            sets,
            task_parent: vec![NO_PARENT],
            task_kind: vec![TaskKind::Main],
            task_own: vec![own],
            visit_stack: Vec::new(),
            visited_small: Vec::new(),
            visited: FxHashSet::default(),
            epoch: 0,
            memo: FxHashMap::default(),
            memo_epoch: 0,
            memo_enabled: true,
            counters: DtrgCounters::default(),
        }
    }

    /// Number of tasks known (including main).
    pub fn task_count(&self) -> usize {
        self.task_own.len()
    }

    /// Per-task facts, assembled by value from the SoA columns.
    pub fn meta(&self, t: TaskId) -> TaskMeta {
        TaskMeta {
            parent: self.parent_of(t),
            kind: self.task_kind[t.index()],
            own: self.task_own[t.index()],
        }
    }

    /// Spawn-tree parent (`None` for main).
    #[inline]
    pub fn parent_of(&self, t: TaskId) -> Option<TaskId> {
        let p = self.task_parent[t.index()];
        if p == NO_PARENT {
            None
        } else {
            Some(TaskId(p))
        }
    }

    /// The paper's `IsFuture`.
    #[inline]
    pub fn is_future(&self, t: TaskId) -> bool {
        self.task_kind[t.index()].is_future()
    }

    /// Current graph-mutation epoch (see the field docs; the detector's
    /// shadow fast path keys its cached verdicts on this).
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Enables or disables the `precede` memo table (enabled by default).
    /// Disabling also drops any cached verdicts, restoring the uncached
    /// pre-memo query path exactly.
    pub fn set_memo_enabled(&mut self, enabled: bool) {
        self.memo_enabled = enabled;
        if !enabled {
            self.memo.clear();
        }
    }

    /// Set attributes of the set currently containing `t`.
    pub fn set_data(&mut self, t: TaskId) -> &SetData {
        self.sets.payload(t.index())
    }

    /// True if `a` and `b` currently share a disjoint set.
    pub fn same_set(&mut self, a: TaskId, b: TaskId) -> bool {
        self.sets.same_set(a.index(), b.index())
    }

    /// Exact spawn-tree ancestry from the tasks' own labels: `a` is a weak
    /// ancestor of `d`.
    #[inline]
    pub fn is_ancestor(&self, a: TaskId, d: TaskId) -> bool {
        self.task_own[a.index()].contains(&self.task_own[d.index()])
    }

    /// Algorithm 2: task creation. Assigns the child its preorder value and
    /// a temporary postorder value, creates its singleton set, and derives
    /// its `lsa` from the parent's set.
    pub fn on_task_create(&mut self, parent: TaskId, child: TaskId, kind: TaskKind) {
        debug_assert_eq!(child.index(), self.task_own.len(), "dense spawn-order ids");
        let own = self.labeler.on_spawn();
        let pdata = self.sets.payload(parent.index());
        let lsa = if pdata.nt.is_empty() {
            pdata.lsa
        } else {
            Some(parent)
        };
        let key = self.sets.make_set(SetData {
            interval: own,
            nt: NtSet::new(),
            lsa,
        });
        debug_assert_eq!(key, child.index());
        self.task_parent.push(parent.0);
        self.task_kind.push(kind);
        self.task_own.push(own);
    }

    /// Algorithm 3: task termination. Replaces the temporary postorder with
    /// the final one, on both the task's own label and its set's label (at
    /// termination the task is the ancestor-most member of its set, so the
    /// set's label is its label).
    pub fn on_task_end(&mut self, task: TaskId) {
        let post = self.labeler.on_terminate();
        self.task_own[task.index()].post = post;
        let data = self.sets.payload_mut(task.index());
        debug_assert_eq!(data.interval.pre, self.task_own[task.index()].pre);
        data.interval.post = post;
    }

    /// Algorithm 7: `Merge(S_A, S_B)` — union keeping `S_A`'s label and
    /// `lsa`, with `nt` the union of both sides. Bumps the mutation epoch
    /// only when the union actually joins two distinct sets (a repeated
    /// `get` on an already-merged future adds no edge, so cached verdicts
    /// stay valid).
    fn merge(&mut self, a: TaskId, b: TaskId) {
        self.counters.merges += 1;
        if self.sets.same_set(a.index(), b.index()) {
            return;
        }
        self.epoch += 1;
        self.sets.union_with(a.index(), b.index(), |pa, pb| {
            let mut nt = pa.nt;
            nt.merge_from(&pb.nt);
            SetData {
                interval: pa.interval,
                nt,
                lsa: pa.lsa,
            }
        });
    }

    /// Algorithm 4: `get()` by task `a` on future task `b`. Merges when the
    /// whole ancestor chain between them has already joined (`Find-Set(a) ==
    /// Find-Set(b.parent)`), otherwise records a non-tree predecessor.
    pub fn on_get(&mut self, a: TaskId, b: TaskId) {
        self.counters.gets += 1;
        if !self.is_ancestor(a, b) {
            self.counters.graph_nt_joins += 1;
        }
        let bparent = self.parent_of(b).expect("future task has a parent");
        if self.sets.same_set(a.index(), bparent.index()) {
            self.counters.merging_gets += 1;
            self.merge(a, b);
        } else {
            self.counters.nt_edges += 1;
            let data = self.sets.payload_mut(a.index());
            if !data.nt.contains(b) {
                data.nt.push(b);
                self.epoch += 1;
            }
        }
    }

    /// Algorithm 6: end of finish `F` executed by `a`; every task in
    /// `F.joins` (tasks whose IEF is `F`) merges into `a`'s set.
    pub fn on_finish_end(&mut self, a: TaskId, joined: &[TaskId]) {
        for &b in joined {
            self.merge(a, b);
        }
    }

    /// The paper's `Precede(T_A, T_B)` (Algorithm 10), asked while `b` is
    /// the currently executing task (or, recursively, a recorded
    /// predecessor): true iff every step of `a` executed so far must
    /// precede `b`'s current step in the computation graph.
    ///
    /// Iterative `Visit`: expands `b`, then `b`'s non-tree predecessors and
    /// the non-tree predecessors of `b`'s significant-ancestor chain,
    /// transitively, pruning nodes whose set preorder is below `a`'s
    /// (non-tree sources always have lower preorder than their sinks in a
    /// race-free execution) and nodes already visited.
    pub fn precede(&mut self, a: TaskId, b: TaskId) -> bool {
        self.counters.precede_calls += 1;
        if a == b {
            return true;
        }
        let ra = self.sets.find(a.index());
        let la = self.sets.payload_no_compress(ra).interval;

        // Memoized path: the first `Visit` iteration's two O(1) verdicts
        // (same set, ancestor subsumption) are answered without touching
        // the work stack, and full traversal results are cached per
        // representative pair until the next graph mutation. Disabled mode
        // falls through to the exact pre-memo query below (the perf
        // harness's before/after baseline).
        let mut memo_key = None;
        if self.memo_enabled {
            let rb = self.sets.find(b.index());
            if rb == ra {
                return true;
            }
            let lb = self.sets.payload_no_compress(rb).interval;
            if la.contains(&lb) {
                return true;
            }
            if self.memo_epoch != self.epoch {
                self.memo.clear();
                self.memo_epoch = self.epoch;
            }
            let key = (ra as u32, rb as u32);
            if let Some(&v) = self.memo.get(&key) {
                self.counters.memo_hits += 1;
                return v;
            }
            self.counters.memo_misses += 1;
            memo_key = Some(key);
        }

        debug_assert!(self.visit_stack.is_empty());
        self.visited_small.clear();
        let mut spilled = false;
        self.visit_stack.push(b);

        // Inline capacity of the small visited set; past this, spill into
        // the hash set (rare: only adversarially long non-tree chains).
        const SMALL: usize = 24;

        // Breadth-first examination order (index walk = FIFO): the paper
        // observes producers and consumers sit 1–2 non-tree hops apart, so
        // the target is almost always among the nearest predecessors —
        // depth-first order would wander into older regions of the graph
        // before examining near siblings (measured 5–50× more expansions
        // on the Jacobi wavefront).
        let mut head = 0usize;
        let mut found = false;
        while head < self.visit_stack.len() {
            let t = self.visit_stack[head];
            head += 1;
            let rt = self.sets.find(t.index());
            // Visited check: linear scan of the small vec, hash set once
            // spilled.
            if spilled {
                if !self.visited.insert(rt) {
                    continue;
                }
            } else if self.visited_small.contains(&rt) {
                continue;
            } else if self.visited_small.len() < SMALL {
                self.visited_small.push(rt);
            } else {
                self.visited.clear();
                self.visited.extend(self.visited_small.iter().copied());
                self.visited.insert(rt);
                spilled = true;
            }
            self.counters.visit_expansions += 1;
            if rt == ra {
                found = true;
                break;
            }
            let data = self.sets.payload_no_compress(rt);
            let lt = data.interval;
            // Lines 6–11: the interval of A's set subsumes the interval of
            // B's set — A's set is an ancestor along tree joins.
            if la.contains(&lt) {
                found = true;
                break;
            }
            // Lines 12–14 (prune): if this set finished before A's set was
            // even spawned, no step of A can reach into it (paths respect
            // serial execution order, Lemma 2), so its predecessors cannot
            // lead back to A either. Note the comparison uses the set's
            // *final* postorder: a live set carries a temporary postorder
            // far above every preorder, so live sets are never pruned. The
            // paper prunes on preorder ("the source of a non-tree join edge
            // has a lower preorder than the sink"), which holds for task
            // labels but not for merged-set labels — a set merged into a
            // low-preorder ancestor would be pruned while still carrying
            // explorable non-tree predecessors, so we prune on the
            // completion-order test instead.
            if lt.post < la.pre {
                continue;
            }
            // Lines 15–20: immediate non-tree predecessors of this node.
            // (`visit_stack` and `sets` are disjoint fields, so the borrows
            // split.)
            self.visit_stack.extend_from_slice(data.nt.as_slice());
            // Lines 21–29: walk the significant-ancestor chain, exploring
            // each significant set's non-tree predecessors.
            let mut anc = data.lsa;
            while let Some(x) = anc {
                let rx = self.sets.find_no_compress(x.index());
                if spilled {
                    if !self.visited.insert(rx) {
                        break; // chain tail already explored
                    }
                } else if self.visited_small.contains(&rx) {
                    break;
                } else if self.visited_small.len() < SMALL {
                    self.visited_small.push(rx);
                } else {
                    self.visited.clear();
                    self.visited.extend(self.visited_small.iter().copied());
                    self.visited.insert(rx);
                    spilled = true;
                }
                self.counters.visit_expansions += 1;
                let adata = self.sets.payload_no_compress(rx);
                self.visit_stack.extend_from_slice(adata.nt.as_slice());
                anc = adata.lsa;
            }
        }
        self.visit_stack.clear();
        if let Some(key) = memo_key {
            self.memo.insert(key, found);
        }
        found
    }

    /// `Precede` lifted to an optional previous accessor (`None` = no
    /// previous writer, which trivially precedes everything).
    pub fn precede_opt(&mut self, a: Option<TaskId>, b: TaskId) -> bool {
        match a {
            None => true,
            Some(a) => self.precede(a, b),
        }
    }

    /// Exact ancestor query by walking parent pointers — the naive
    /// alternative to the O(1) interval-label subsumption test, kept for
    /// the ablation bench (`benches/ablation.rs`) that quantifies what the
    /// labeling scheme buys.
    pub fn is_ancestor_walk(&self, a: TaskId, d: TaskId) -> bool {
        let mut cur = d;
        loop {
            if cur == a {
                return true;
            }
            match self.parent_of(cur) {
                Some(p) => cur = p,
                None => return false,
            }
        }
    }

    /// Total non-tree predecessor entries currently stored across all sets
    /// — the `O(n)` term of Theorem 1's space bound.
    pub fn stored_nt_edges(&self) -> usize {
        self.sets.sets().map(|(_, d)| d.nt.len()).sum()
    }

    /// The spawn path from the main task to `t` (inclusive), for race
    /// reports: "who created the racing task".
    pub fn spawn_path(&self, t: TaskId) -> Vec<TaskId> {
        let mut path = vec![t];
        let mut cur = t;
        while let Some(p) = self.parent_of(cur) {
            path.push(p);
            cur = p;
        }
        path.reverse();
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Helper mirroring the executor's event order for hand-built
    /// scenarios: spawn a child, run `body`-style events, end it.
    struct Driver {
        g: Dtrg,
        next: u32,
    }

    impl Driver {
        fn new() -> Self {
            Driver {
                g: Dtrg::new(),
                next: 1,
            }
        }
        fn spawn(&mut self, parent: TaskId, kind: TaskKind) -> TaskId {
            let c = TaskId(self.next);
            self.next += 1;
            self.g.on_task_create(parent, c, kind);
            c
        }
    }

    const M: TaskId = TaskId::MAIN;

    #[test]
    fn init_state() {
        let mut g = Dtrg::new();
        assert_eq!(g.task_count(), 1);
        assert!(!g.is_future(M));
        assert_eq!(g.meta(M).parent, None);
        assert_eq!(g.set_data(M).lsa, None);
        assert!(g.set_data(M).nt.is_empty());
        assert_eq!(g.set_data(M).interval.pre, 0);
    }

    #[test]
    fn precede_same_task() {
        let mut g = Dtrg::new();
        assert!(g.precede(M, M));
        assert!(g.precede_opt(None, M));
    }

    #[test]
    fn ancestor_precedes_running_descendant() {
        // main spawns A (still running): main's completed steps precede A.
        let mut d = Driver::new();
        let a = d.spawn(M, TaskKind::Future);
        assert!(d.g.precede(M, a), "ancestor set contains descendant");
        assert!(!d.g.precede(a, M), "running child is parallel to parent");
    }

    #[test]
    fn completed_unjoined_future_is_parallel() {
        // main spawns future A; A ends; no get. A's steps are parallel to
        // main's continuation.
        let mut d = Driver::new();
        let a = d.spawn(M, TaskKind::Future);
        d.g.on_task_end(a);
        assert!(!d.g.precede(a, M));
        assert!(d.g.precede(M, a)); // main's earlier steps precede A
    }

    #[test]
    fn parent_get_merges_and_orders() {
        let mut d = Driver::new();
        let a = d.spawn(M, TaskKind::Future);
        d.g.on_task_end(a);
        d.g.on_get(M, a); // Find-Set(M) == Find-Set(A.parent=M): merge
        assert!(d.g.same_set(M, a));
        assert!(d.g.precede(a, M), "after get, A precedes main");
        assert_eq!(d.g.counters.merging_gets, 1);
        assert_eq!(d.g.counters.nt_edges, 0);
        assert_eq!(d.g.counters.graph_nt_joins, 0, "ancestor get is a tree join");
    }

    #[test]
    fn sibling_get_records_non_tree_edge() {
        // main spawns future A (ends), then future B which gets A.
        let mut d = Driver::new();
        let a = d.spawn(M, TaskKind::Future);
        d.g.on_task_end(a);
        let b = d.spawn(M, TaskKind::Future);
        d.g.on_get(b, a); // Find-Set(B) != Find-Set(A.parent=M)
        assert!(!d.g.same_set(a, b));
        assert_eq!(d.g.counters.nt_edges, 1);
        assert_eq!(d.g.counters.graph_nt_joins, 1);
        assert!(d.g.precede(a, b), "A precedes B via the non-tree edge");
        assert!(!d.g.precede(b, a));
        // Main's completed steps (before spawning B) also precede B.
        assert!(d.g.precede(M, b));
    }

    #[test]
    fn finish_end_merges_all_ief_tasks() {
        let mut d = Driver::new();
        let a = d.spawn(M, TaskKind::Async);
        let b = d.spawn(a, TaskKind::Async); // same IEF as a
        d.g.on_task_end(b);
        d.g.on_task_end(a);
        assert!(!d.g.precede(a, M));
        assert!(!d.g.precede(b, M));
        d.g.on_finish_end(M, &[a, b]);
        assert!(d.g.same_set(M, a));
        assert!(d.g.same_set(M, b));
        assert!(d.g.precede(a, M));
        assert!(d.g.precede(b, M));
    }

    #[test]
    fn transitive_non_tree_paths() {
        // Figure-1 shape: A; B gets A; C gets B; main gets C.
        // Then A must precede main transitively.
        let mut d = Driver::new();
        let a = d.spawn(M, TaskKind::Future);
        d.g.on_task_end(a);
        let b = d.spawn(M, TaskKind::Future);
        d.g.on_get(b, a);
        d.g.on_task_end(b);
        let c = d.spawn(M, TaskKind::Future);
        d.g.on_get(c, b);
        d.g.on_task_end(c);
        d.g.on_get(M, c); // merge C into main's set
        assert!(d.g.precede(c, M));
        assert!(d.g.precede(b, M), "via C's non-tree predecessor");
        assert!(d.g.precede(a, M), "two non-tree hops");
        assert_eq!(d.g.counters.nt_edges, 2);
    }

    #[test]
    fn lsa_chain_orders_descendants_of_getter() {
        // A ends; main gets A via... no: main spawns A (future, ends),
        // then B gets A (non-tree), B spawns C. A must precede C because
        // C's lsa is B and B's nt contains A.
        let mut d = Driver::new();
        let a = d.spawn(M, TaskKind::Future);
        d.g.on_task_end(a);
        let b = d.spawn(M, TaskKind::Future);
        d.g.on_get(b, a);
        let c = d.spawn(b, TaskKind::Future);
        assert_eq!(d.g.set_data(c).lsa, Some(b));
        assert!(d.g.precede(a, c), "join into ancestor B precedes C");
        // And deeper descendants inherit the lsa (C performed no non-tree
        // join itself, so E's lsa is still B).
        let e = d.spawn(c, TaskKind::Async);
        assert_eq!(d.g.set_data(e).lsa, Some(b));
    }

    #[test]
    fn lsa_inherited_when_parent_has_no_nt() {
        let mut d = Driver::new();
        let a = d.spawn(M, TaskKind::Future);
        d.g.on_task_end(a);
        let b = d.spawn(M, TaskKind::Future);
        d.g.on_get(b, a); // b.nt = {a}
        let c = d.spawn(b, TaskKind::Future); // lsa = b (b has nt)
        let e = d.spawn(c, TaskKind::Future); // c has no nt: lsa inherited = b
        assert_eq!(d.g.set_data(c).lsa, Some(b));
        assert_eq!(d.g.set_data(e).lsa, Some(b));
        assert!(d.g.precede(a, e), "a -> b join visible from e via lsa chain");
    }

    #[test]
    fn unrelated_siblings_are_parallel() {
        let mut d = Driver::new();
        let a = d.spawn(M, TaskKind::Future);
        d.g.on_task_end(a);
        let b = d.spawn(M, TaskKind::Future);
        assert!(!d.g.precede(a, b));
        assert!(!d.g.precede(b, a));
    }

    #[test]
    fn merge_keeps_ancestor_label() {
        let mut d = Driver::new();
        let a = d.spawn(M, TaskKind::Future);
        d.g.on_task_end(a);
        let main_label = d.g.set_data(M).interval;
        d.g.on_get(M, a);
        assert_eq!(d.g.set_data(a).interval, main_label, "merged set keeps main's label");
    }

    #[test]
    fn merge_unions_nt_lists() {
        // B gets A (nt edge), then main gets B (merge B into main's set):
        // main's set must inherit B's nt predecessor A.
        let mut d = Driver::new();
        let a = d.spawn(M, TaskKind::Future);
        d.g.on_task_end(a);
        let b = d.spawn(M, TaskKind::Future);
        d.g.on_get(b, a);
        d.g.on_task_end(b);
        d.g.on_get(M, b);
        assert!(d.g.set_data(M).nt.contains(a));
    }

    #[test]
    fn repeated_gets_on_same_future_are_idempotent() {
        let mut d = Driver::new();
        let a = d.spawn(M, TaskKind::Future);
        d.g.on_task_end(a);
        let b = d.spawn(M, TaskKind::Future);
        d.g.on_get(b, a);
        d.g.on_get(b, a);
        assert_eq!(d.g.set_data(b).nt.len(), 1);
        assert_eq!(d.g.counters.gets, 2);
    }

    #[test]
    fn preorder_prune_blocks_later_tasks() {
        // B spawned after A ended and never joined: B cannot precede A's
        // set members, and precede(B, anything-earlier) is false quickly.
        let mut d = Driver::new();
        let a = d.spawn(M, TaskKind::Future);
        d.g.on_task_end(a);
        let b = d.spawn(M, TaskKind::Future);
        d.g.on_task_end(b);
        assert!(!d.g.precede(b, a));
    }

    #[test]
    fn counters_track_queries() {
        let mut d = Driver::new();
        let a = d.spawn(M, TaskKind::Future);
        d.g.on_task_end(a);
        let before = d.g.counters.precede_calls;
        let _ = d.g.precede(a, M);
        let _ = d.g.precede(M, a);
        assert_eq!(d.g.counters.precede_calls, before + 2);
        assert!(d.g.counters.visit_expansions > 0);
    }

    #[test]
    fn memo_epoch_invalidates_on_get() {
        // A ends unjoined; B is a later sibling, so precede(A, B) is false
        // and the verdict lands in the memo. B's get() then stores a
        // non-tree edge, which must bump the epoch and flip the recomputed
        // verdict to true.
        let mut d = Driver::new();
        let a = d.spawn(M, TaskKind::Future);
        d.g.on_task_end(a);
        let b = d.spawn(M, TaskKind::Future);
        assert!(!d.g.precede(a, b));
        assert_eq!(d.g.counters.memo_misses, 1);
        assert!(!d.g.precede(a, b), "repeat query served from the memo");
        assert_eq!(d.g.counters.memo_hits, 1);

        let e0 = d.g.epoch();
        d.g.on_get(b, a); // non-tree edge
        assert!(d.g.epoch() > e0, "stored nt edge must bump the epoch");
        assert!(d.g.precede(a, b), "stale memo entry must not survive");
        assert_eq!(d.g.counters.memo_hits, 1, "post-bump query recomputes");
    }

    #[test]
    fn memo_epoch_invalidates_on_finish_end() {
        let mut d = Driver::new();
        let a = d.spawn(M, TaskKind::Async);
        d.g.on_task_end(a);
        assert!(!d.g.precede(a, M), "unjoined async is parallel to main");
        let e0 = d.g.epoch();
        d.g.on_finish_end(M, &[a]); // merge: an ordering edge appears
        assert!(d.g.epoch() > e0, "finish-end merge must bump the epoch");
        assert!(d.g.precede(a, M), "verdict flips after the merge");
    }

    #[test]
    fn idempotent_operations_keep_the_epoch() {
        // Epoch bumps only on *actual* graph mutations: repeated gets on
        // an already-recorded future (both the nt-edge and merged shapes)
        // and plain task create/end add no edges between existing nodes.
        let mut d = Driver::new();
        let a = d.spawn(M, TaskKind::Future);
        d.g.on_task_end(a);
        let b = d.spawn(M, TaskKind::Future);
        d.g.on_get(b, a);
        let e = d.g.epoch();
        d.g.on_get(b, a); // nt edge already stored
        assert_eq!(d.g.epoch(), e);
        d.g.on_task_end(b);
        d.g.on_get(M, a); // merge A into main's set
        let e = d.g.epoch();
        d.g.on_get(M, a); // already merged
        assert_eq!(d.g.epoch(), e);
        let c = d.spawn(M, TaskKind::Async);
        d.g.on_task_end(c);
        assert_eq!(d.g.epoch(), e, "create/end add no edges");
    }

    #[test]
    fn memo_disabled_matches_enabled_verdicts() {
        let build = |memo: bool| {
            let mut d = Driver::new();
            d.g.set_memo_enabled(memo);
            let a = d.spawn(M, TaskKind::Future);
            d.g.on_task_end(a);
            let b = d.spawn(M, TaskKind::Future);
            d.g.on_get(b, a);
            let c = d.spawn(b, TaskKind::Future);
            let tasks = [M, a, b, c];
            let mut verdicts = Vec::new();
            for x in tasks {
                for y in tasks {
                    verdicts.push(d.g.precede(x, y));
                    verdicts.push(d.g.precede(x, y)); // repeat: memo path
                }
            }
            (verdicts, d.g.counters)
        };
        let (with, cw) = build(true);
        let (without, cwo) = build(false);
        assert_eq!(with, without);
        assert_eq!(cw.precede_calls, cwo.precede_calls);
        assert!(cw.memo_hits > 0, "repeat queries must hit the memo");
        assert_eq!(cwo.memo_hits + cwo.memo_misses, 0, "disabled mode never memoizes");
        assert!(
            cw.visit_expansions < cwo.visit_expansions,
            "memo must save traversal work: {} vs {}",
            cw.visit_expansions,
            cwo.visit_expansions
        );
    }

    #[test]
    fn nt_set_spills_past_inline_capacity() {
        let mut s = NtSet::new();
        assert!(s.is_empty());
        for i in 1..=9u32 {
            if !s.contains(TaskId(i)) {
                s.push(TaskId(i));
            }
        }
        s.push(TaskId(9)); // callers may push duplicates explicitly
        assert_eq!(s.len(), 10);
        assert!(matches!(s, NtSet::Spilled(_)));
        assert!(s.contains(TaskId(4)));
        assert_eq!(s.as_slice()[0], TaskId(1));
        let mut t = NtSet::new();
        t.push(TaskId(4));
        t.merge_from(&s);
        // 1..=9 minus the 4 already present; s's duplicate 9 is dropped too.
        assert_eq!(t.len(), 9, "merge deduplicates");
        assert_eq!(t.to_vec()[0], TaskId(4));
    }
}

#[cfg(test)]
mod spill_tests {
    use super::*;
    use futrace_runtime::monitor::TaskKind;

    /// Builds a long pure non-tree chain (future i gets future i−1) plus a
    /// disconnected straggler, forcing `precede`'s small-visited-set to
    /// spill into the hash set on the negative query.
    #[test]
    fn visited_set_spill_path_is_correct() {
        let mut g = Dtrg::new();
        let main = TaskId::MAIN;
        let n = 200u32;
        for i in 1..=n {
            g.on_task_create(main, TaskId(i), TaskKind::Future);
            if i > 1 {
                g.on_get(TaskId(i), TaskId(i - 1));
            }
            g.on_task_end(TaskId(i));
        }
        // Straggler future created last, never joined to the chain.
        let straggler = TaskId(n + 1);
        g.on_task_create(main, straggler, TaskKind::Future);
        g.on_task_end(straggler);

        // Positive long-range query: walks (and spills) the whole chain.
        assert!(g.precede(TaskId(1), TaskId(n)));
        // Negative query from the straggler: nothing reaches it.
        assert!(!g.precede(straggler, TaskId(n)));
        // Negative long-range reverse query: must visit every chain node
        // (spilling) and still answer false.
        assert!(!g.precede(TaskId(n), TaskId(1)));
        // Re-querying after spills stays consistent (scratch reuse).
        assert!(g.precede(TaskId(7), TaskId(n)));
        assert!(!g.precede(TaskId(n), TaskId(7)));
    }
}
