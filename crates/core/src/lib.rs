//! # futrace-detector — determinacy race detection for futures
//!
//! The core contribution of *"Dynamic Determinacy Race Detection for Task
//! Parallelism with Futures"* (Surendran & Sarkar, SPAA 2016): a sound and
//! precise on-the-fly determinacy race detector for programs built from
//! `async`, `finish`, and `future` constructs — the first race detector
//! supporting the **non-strict** computation graphs futures create
//! (multiple joins per task, joins to non-ancestors).
//!
//! The detector runs over a **serial depth-first execution** of the program
//! (provided by [`futrace_runtime::run_serial`]) and maintains:
//!
//! * a [`dtrg::Dtrg`] — the *dynamic task reachability graph*: disjoint
//!   sets over tree joins, spawn-tree interval labels, non-tree predecessor
//!   lists, and lowest-significant-ancestor pointers (§4.1, Algorithms
//!   1–7, 10);
//! * a [`shadow::ShadowMemory`] — per-location last writer and parallel
//!   reader set (§4.2, Algorithms 8–9).
//!
//! One detector run analyzes *all* executions for the given input: a race
//! is reported iff one exists (Theorem 2, first-race semantics), and
//! race-freedom certifies the program determinate and deadlock-free for
//! that input (Appendix A).
//!
//! ```
//! use futrace_detector::RaceDetector;
//! use futrace_runtime::engine::run_analysis_live;
//! use futrace_runtime::TaskCtx;
//!
//! let out = run_analysis_live(
//!     |ctx| {
//!         let x = ctx.shared_var(0u64, "x");
//!         let x2 = x.clone();
//!         let f = ctx.future(move |ctx| x2.write(ctx, 42));
//!         ctx.get(&f); // join before reading: race-free
//!         assert_eq!(x.read(ctx), 42);
//!     },
//!     RaceDetector::new(),
//! );
//! assert!(!out.report.report.has_races());
//! ```
//!
//! Downstream users should prefer the `futrace::Analyze` builder in the
//! umbrella crate, which fronts this detector and the offline backends
//! with one entry point.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod detector;
pub mod dot;
pub mod dtrg;
pub mod report;
pub mod shadow;
pub mod stats;

// The deprecated entry points stay exported so existing callers keep
// compiling during the migration window.
#[allow(deprecated)]
pub use detector::{detect_races, detect_races_in_trace, detect_races_with_stats};
pub use detector::{DetectorConfig, DtrgReport, MemoryFootprint, OnlineDtrg, RaceDetector};
pub use dtrg::{Dtrg, DtrgCounters, SetData};
pub use report::{AccessKind, Race, RaceReport};
pub use shadow::{Readers, ShadowCell, ShadowMemory};
pub use stats::DetectorStats;
