//! Race reports.

use futrace_util::ids::{LocId, TaskId};

/// Read or write, for describing the two sides of a race.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum AccessKind {
    /// Shared-memory read.
    Read,
    /// Shared-memory write.
    Write,
}

impl std::fmt::Display for AccessKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            AccessKind::Read => "read",
            AccessKind::Write => "write",
        })
    }
}

/// One detected determinacy race: the current access conflicts with a
/// recorded shadow-memory access that may logically execute in parallel
/// with it (Definition 3).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Race {
    /// The location both accesses touch.
    pub loc: LocId,
    /// Human-readable location name (`array[index]` / variable name).
    pub loc_name: String,
    /// The earlier (recorded) access.
    pub prev_task: TaskId,
    /// Kind of the earlier access.
    pub prev_kind: AccessKind,
    /// The current access (later in serial execution order).
    pub cur_task: TaskId,
    /// Kind of the current access.
    pub cur_kind: AccessKind,
    /// Index of the current access in the global access stream (0-based),
    /// letting tests align detector races with oracle races.
    pub access_index: u64,
    /// Spawn path of the earlier accessor (main → … → `prev_task`),
    /// pre-rendered for the report.
    pub prev_path: String,
    /// Spawn path of the current accessor.
    pub cur_path: String,
}

impl std::fmt::Display for Race {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "determinacy race on {}: {} by {} [{}] may execute in parallel with {} by {} [{}] (access #{})",
            self.loc_name,
            self.prev_kind,
            self.prev_task,
            self.prev_path,
            self.cur_kind,
            self.cur_task,
            self.cur_path,
            self.access_index
        )
    }
}

/// The outcome of a detector run.
#[derive(Clone, Debug, Default)]
pub struct RaceReport {
    /// Reported races in detection order, deduplicated by
    /// (location, task pair, kind pair) and capped at the configured
    /// maximum.
    pub races: Vec<Race>,
    /// Total number of race checks that failed, including deduplicated and
    /// over-cap ones.
    pub total_detected: u64,
}

impl RaceReport {
    /// True iff at least one determinacy race was detected. By Theorem 2
    /// this is input-deterministic: the same program and input always
    /// produce the same verdict.
    pub fn has_races(&self) -> bool {
        self.total_detected > 0
    }

    /// The first race detected (the one with the earliest conflicting
    /// second access), if any.
    pub fn first(&self) -> Option<&Race> {
        self.races.first()
    }
}

impl std::fmt::Display for RaceReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if !self.has_races() {
            return write!(f, "no determinacy races detected");
        }
        writeln!(
            f,
            "{} determinacy race(s) detected ({} distinct reported):",
            self.total_detected,
            self.races.len()
        )?;
        for r in &self.races {
            writeln!(f, "  {r}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let race = Race {
            loc: LocId(3),
            loc_name: "grid[3]".into(),
            prev_task: TaskId(1),
            prev_kind: AccessKind::Write,
            cur_task: TaskId(2),
            cur_kind: AccessKind::Read,
            access_index: 17,
            prev_path: "T0→T1".into(),
            cur_path: "T0→T2".into(),
        };
        let s = race.to_string();
        assert!(s.contains("grid[3]"));
        assert!(s.contains("write by T1 [T0→T1]"));
        assert!(s.contains("read by T2 [T0→T2]"));

        let mut rep = RaceReport::default();
        assert!(!rep.has_races());
        assert_eq!(rep.to_string(), "no determinacy races detected");
        rep.races.push(race);
        rep.total_detected = 5;
        assert!(rep.has_races());
        assert!(rep.first().is_some());
        assert!(rep.to_string().contains("5 determinacy race(s)"));
    }
}
