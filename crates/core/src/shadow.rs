//! Shadow memory (§4.2 of the paper).
//!
//! For every shared location `M` the detector keeps a shadow cell `M_s`
//! with:
//!
//! * `w` — the task that last wrote `M` (`None` before the first write);
//! * `r` — a set of reader tasks: *all* future tasks that read `M` in
//!   parallel since the last write, plus **at most one** async task
//!   (Lemma 4 shows one async representative suffices).
//!
//! Location ids are dense (the executor allocates them sequentially), so
//! shadow memory is a flat vector rather than a hash map — the lookup is on
//! the per-access hot path. The reader set is an inline-small enum:
//! async-finish programs never store more than one reader (the paper's
//! #AvgReaders is ≤ 1 there), so the common cases avoid heap allocation
//! entirely.

use futrace_util::ids::{LocId, TaskId};

/// Compact reader set: zero or one readers inline, spilling to a boxed
/// vector only when multiple parallel future readers accumulate.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub enum Readers {
    /// No readers since the last write.
    #[default]
    Empty,
    /// Exactly one reader.
    One(TaskId),
    /// Two or more readers (all parallel; at most one async among them).
    Many(Box<Vec<TaskId>>),
}

impl Readers {
    /// Number of stored readers.
    pub fn len(&self) -> usize {
        match self {
            Readers::Empty => 0,
            Readers::One(_) => 1,
            Readers::Many(v) => v.len(),
        }
    }

    /// True if no reader is stored.
    pub fn is_empty(&self) -> bool {
        matches!(self, Readers::Empty)
    }

    /// Iterates over the stored readers.
    pub fn iter(&self) -> ReadersIter<'_> {
        match self {
            Readers::Empty => ReadersIter::Slice([].iter()),
            Readers::One(t) => ReadersIter::Once(Some(*t)),
            Readers::Many(v) => ReadersIter::Slice(v.iter()),
        }
    }

    /// Adds a reader (does not deduplicate; callers remove superseded
    /// readers first, as Algorithms 8–9 do).
    pub fn push(&mut self, t: TaskId) {
        match self {
            Readers::Empty => *self = Readers::One(t),
            Readers::One(prev) => *self = Readers::Many(Box::new(vec![*prev, t])),
            Readers::Many(v) => v.push(t),
        }
    }

    /// Keeps only readers for which `keep` returns true.
    pub fn retain(&mut self, mut keep: impl FnMut(TaskId) -> bool) {
        match self {
            Readers::Empty => {}
            Readers::One(t) => {
                if !keep(*t) {
                    *self = Readers::Empty;
                }
            }
            Readers::Many(v) => {
                v.retain(|&t| keep(t));
                match v.len() {
                    0 => *self = Readers::Empty,
                    1 => *self = Readers::One(v[0]),
                    _ => {}
                }
            }
        }
    }

    /// Drops all readers.
    pub fn clear(&mut self) {
        *self = Readers::Empty;
    }
}

/// Iterator over a [`Readers`] set.
pub enum ReadersIter<'a> {
    /// One inline element.
    Once(Option<TaskId>),
    /// Spilled storage.
    Slice(std::slice::Iter<'a, TaskId>),
}

impl Iterator for ReadersIter<'_> {
    type Item = TaskId;
    fn next(&mut self) -> Option<TaskId> {
        match self {
            ReadersIter::Once(t) => t.take(),
            ReadersIter::Slice(it) => it.next().copied(),
        }
    }
}

/// The detector's most recent *clean* verdict on a cell: which task
/// accessed it, with which kind, under which DTRG mutation epoch. While
/// the epoch is unchanged, an identical access is a provable no-op
/// (DESIGN S39), so the detector can skip the reader/writer `Precede`
/// checks entirely. Racy checks are never cached — repeating them must
/// re-count the race, exactly as the uncached detector does.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LastClean {
    /// The task whose check came back clean.
    pub task: TaskId,
    /// True for a write check, false for a read check.
    pub write: bool,
    /// `Dtrg::epoch()` at the moment of the check.
    pub epoch: u64,
}

/// Consecutive clean-verdict probe misses after which a cell's probe is
/// disabled (see [`ShadowCell::probe_misses`]). Small: a cell that misses
/// this many times in a row (actor-style migrating mailboxes, where the
/// epoch advances or the accessor changes between touches) will keep
/// missing, and each miss costs an extra lookup-and-compare on the hot
/// path.
pub const PROBE_MISS_LIMIT: u8 = 8;

/// One shadow cell `M_s` (§4.2).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ShadowCell {
    /// The last writer (`M_s.w`).
    pub writer: Option<TaskId>,
    /// The stored readers (`M_s.r`).
    pub readers: Readers,
    /// Fast-path cache: the last clean verdict on this cell, if any.
    pub last_clean: Option<LastClean>,
    /// Consecutive clean-verdict probe misses (saturating at
    /// [`PROBE_MISS_LIMIT`]). A hit resets it to zero; at the limit the
    /// detector stops probing this cell — adaptive bypass for access
    /// patterns the cache can never serve, whose probes are pure overhead.
    pub probe_misses: u8,
}

impl ShadowCell {
    /// True while the clean-verdict probe is still worth attempting.
    #[inline]
    pub fn probe_enabled(&self) -> bool {
        self.probe_misses < PROBE_MISS_LIMIT
    }
}

/// Flat shadow memory indexed by dense location ids.
#[derive(Clone, Debug, Default)]
pub struct ShadowMemory {
    cells: Vec<ShadowCell>,
    names: Vec<(LocId, u32, String)>,
}

impl ShadowMemory {
    /// Empty shadow memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an allocation of `n` locations starting at `base` (from
    /// the executor's `alloc` event) so cells exist and race reports can
    /// name locations.
    pub fn register(&mut self, base: LocId, n: u32, name: &str) {
        let end = base.index() + n as usize;
        if self.cells.len() < end {
            self.cells.resize_with(end, ShadowCell::default);
        }
        self.names.push((base, n, name.to_string()));
    }

    /// Mutable access to the cell for `loc`, growing the vector if an
    /// access arrives for an unregistered location.
    #[inline]
    pub fn cell_mut(&mut self, loc: LocId) -> &mut ShadowCell {
        let i = loc.index();
        if i >= self.cells.len() {
            self.cells.resize_with(i + 1, ShadowCell::default);
        }
        &mut self.cells[i]
    }

    /// Read-only access (None if never touched/registered).
    pub fn cell(&self, loc: LocId) -> Option<&ShadowCell> {
        self.cells.get(loc.index())
    }

    /// Number of allocated shadow cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True if no cell exists.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Total readers stored across all cells right now — the `O(v·(f+1))`
    /// term of Theorem 1's space bound.
    pub fn stored_readers(&self) -> usize {
        self.cells.iter().map(|c| c.readers.len()).sum()
    }

    /// Cells with a recorded writer (diagnostics).
    pub fn written_cells(&self) -> usize {
        self.cells.iter().filter(|c| c.writer.is_some()).count()
    }

    /// Iterates over the non-default cells with their dense indices, for
    /// checkpoint serialization. Default (never-touched) cells are omitted
    /// and recreated implicitly on restore via [`ShadowMemory::grow_to`].
    pub fn dirty_cells(&self) -> impl Iterator<Item = (usize, &ShadowCell)> {
        self.cells
            .iter()
            .enumerate()
            .filter(|(_, c)| {
                c.writer.is_some()
                    || !c.readers.is_empty()
                    || c.last_clean.is_some()
                    || c.probe_misses > 0
            })
    }

    /// Grows the cell vector to at least `len` cells. Checkpoint restore
    /// uses this to reproduce growth caused by accesses to unregistered
    /// locations, so a resumed run reports the same shadow-cell footprint
    /// a fresh run would.
    pub fn grow_to(&mut self, len: usize) {
        if self.cells.len() < len {
            self.cells.resize_with(len, ShadowCell::default);
        }
    }

    /// Human-readable name for a location: `"name[offset]"` if it falls in
    /// a registered allocation, else `"L<id>"`.
    pub fn describe(&self, loc: LocId) -> String {
        for (base, n, name) in &self.names {
            if loc.0 >= base.0 && loc.0 < base.0 + n {
                return if *n == 1 {
                    name.clone()
                } else {
                    format!("{name}[{}]", loc.0 - base.0)
                };
            }
        }
        format!("{loc}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn readers_grow_and_shrink() {
        let mut r = Readers::default();
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
        r.push(TaskId(1));
        assert_eq!(r.len(), 1);
        r.push(TaskId(2));
        r.push(TaskId(3));
        assert_eq!(r.len(), 3);
        let all: Vec<TaskId> = r.iter().collect();
        assert_eq!(all, vec![TaskId(1), TaskId(2), TaskId(3)]);
        r.retain(|t| t != TaskId(2));
        assert_eq!(r.iter().collect::<Vec<_>>(), vec![TaskId(1), TaskId(3)]);
        r.retain(|t| t == TaskId(3));
        assert_eq!(r, Readers::One(TaskId(3)));
        r.clear();
        assert!(r.is_empty());
    }

    #[test]
    fn retain_on_one() {
        let mut r = Readers::One(TaskId(9));
        r.retain(|_| true);
        assert_eq!(r, Readers::One(TaskId(9)));
        r.retain(|_| false);
        assert!(r.is_empty());
    }

    #[test]
    fn register_and_describe() {
        let mut m = ShadowMemory::new();
        m.register(LocId(0), 4, "grid");
        m.register(LocId(4), 1, "sum");
        assert_eq!(m.len(), 5);
        assert_eq!(m.describe(LocId(2)), "grid[2]");
        assert_eq!(m.describe(LocId(4)), "sum");
        assert_eq!(m.describe(LocId(99)), "L99");
    }

    #[test]
    fn cell_mut_grows_on_demand() {
        let mut m = ShadowMemory::new();
        m.cell_mut(LocId(10)).writer = Some(TaskId(3));
        assert_eq!(m.len(), 11);
        assert_eq!(m.cell(LocId(10)).unwrap().writer, Some(TaskId(3)));
        assert_eq!(m.cell(LocId(3)).unwrap().writer, None);
        assert!(m.cell(LocId(11)).is_none());
        assert!(!m.is_empty());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use futrace_util::propcheck::{self, strategies, Config, Strategy};

    /// Operations on a reader set, mirrored against a plain Vec model.
    #[derive(Clone, Debug)]
    enum Op {
        Push(u32),
        RetainEven,
        RetainOdd,
        Clear,
    }

    /// Ops are generated (and shrunk) as `(discriminant, payload)` pairs;
    /// shrinking drives both toward Push(0), the simplest operation.
    fn ops_strategy() -> impl Strategy<Repr = Vec<(u8, u32)>, Value = Vec<Op>> {
        strategies::map(
            strategies::vec_of(
                strategies::tuple2(strategies::u8_range(0..4), strategies::u32_range(0..64)),
                0,
                60,
            ),
            |pairs| {
                pairs
                    .into_iter()
                    .map(|(k, t)| match k {
                        0 => Op::Push(t),
                        1 => Op::RetainEven,
                        2 => Op::RetainOdd,
                        _ => Op::Clear,
                    })
                    .collect()
            },
        )
    }

    /// The inline-small Readers container behaves exactly like a Vec model
    /// under pushes, retains, and clears (order preserved).
    #[test]
    fn readers_matches_vec_model() {
        propcheck::check(&Config::default(), &ops_strategy(), |ops| {
            let mut readers = Readers::default();
            let mut model: Vec<TaskId> = Vec::new();
            for op in ops {
                match op {
                    Op::Push(t) => {
                        readers.push(TaskId(t));
                        model.push(TaskId(t));
                    }
                    Op::RetainEven => {
                        readers.retain(|t| t.0 % 2 == 0);
                        model.retain(|t| t.0 % 2 == 0);
                    }
                    Op::RetainOdd => {
                        readers.retain(|t| t.0 % 2 == 1);
                        model.retain(|t| t.0 % 2 == 1);
                    }
                    Op::Clear => {
                        readers.clear();
                        model.clear();
                    }
                }
                assert_eq!(readers.len(), model.len());
                assert_eq!(readers.is_empty(), model.is_empty());
                assert_eq!(readers.iter().collect::<Vec<_>>(), model.clone());
            }
        });
    }
}
