//! Instrumentation statistics: everything Table 2 reports about a run.

use crate::dtrg::DtrgCounters;
use futrace_util::stats::Running;

/// Counters accumulated by the detector over one run; the structural
/// columns of Table 2 plus internal cost accounting.
#[derive(Clone, Debug, Default)]
pub struct DetectorStats {
    /// Dynamic tasks created, excluding main (#Tasks).
    pub tasks: u64,
    /// Future tasks among them.
    pub future_tasks: u64,
    /// Async tasks among them.
    pub async_tasks: u64,
    /// Shared-memory reads.
    pub reads: u64,
    /// Shared-memory writes.
    pub writes: u64,
    /// Readers stored in the shadow cell at the moment of each access
    /// (#AvgReaders is `readers_at_access.mean()`).
    pub readers_at_access: Running,
    /// DTRG counters (gets, non-tree edges, merges, precede costs).
    pub dtrg: DtrgCounters,
}

impl DetectorStats {
    /// Total shared-memory accesses (#SharedMem).
    pub fn shared_mem(&self) -> u64 {
        self.reads + self.writes
    }

    /// Table 2's #AvgReaders: mean number of stored parallel readers per
    /// access (0..=1 for pure async-finish programs, unbounded with
    /// futures).
    pub fn avg_readers(&self) -> f64 {
        self.readers_at_access.mean()
    }

    /// Table 2's #NTJoins: gets that are non-tree joins in the
    /// computation-graph sense.
    pub fn nt_joins(&self) -> u64 {
        self.dtrg.graph_nt_joins
    }
}

impl std::fmt::Display for DetectorStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "#Tasks:      {}", self.tasks)?;
        writeln!(f, "  async:     {}", self.async_tasks)?;
        writeln!(f, "  future:    {}", self.future_tasks)?;
        writeln!(f, "#NTJoins:    {}", self.nt_joins())?;
        writeln!(f, "#SharedMem:  {}", self.shared_mem())?;
        writeln!(f, "#AvgReaders: {:.3}", self.avg_readers())?;
        writeln!(f, "gets:        {}", self.dtrg.gets)?;
        writeln!(f, "  merging:   {}", self.dtrg.merging_gets)?;
        writeln!(f, "  nt-edges:  {}", self.dtrg.nt_edges)?;
        writeln!(f, "merges:      {}", self.dtrg.merges)?;
        writeln!(f, "precede:     {}", self.dtrg.precede_calls)?;
        writeln!(f, "visits:      {}", self.dtrg.visit_expansions)?;
        writeln!(
            f,
            "memo:        {} hit(s), {} miss(es)",
            self.dtrg.memo_hits, self.dtrg.memo_misses
        )?;
        write!(f, "fast-path:   {} hit(s)", self.dtrg.shadow_hits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_columns() {
        let mut s = DetectorStats {
            reads: 10,
            writes: 5,
            ..Default::default()
        };
        s.readers_at_access.push(0.0);
        s.readers_at_access.push(2.0);
        assert_eq!(s.shared_mem(), 15);
        assert!((s.avg_readers() - 1.0).abs() < 1e-12);
        let text = s.to_string();
        assert!(text.contains("#SharedMem:  15"));
        assert!(text.contains("#AvgReaders: 1.000"));
    }
}
