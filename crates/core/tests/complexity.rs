//! Empirical Theorem-1 checks: the detector's internal counters grow the
//! way the complexity analysis says they should.

use futrace_detector::{DetectorConfig, RaceDetector};
use futrace_runtime::{run_serial, TaskCtx};

/// Pipeline of `n` futures, each getting the previous one, each touching
/// one location pair. Non-tree edges form a chain of length `n−1`.
fn chain_program(ctx: &mut futrace_runtime::SerialCtx<RaceDetector>, n: usize) {
    let cells = ctx.shared_array(n + 1, 0u64, "cells");
    let mut prev: Option<_> = None;
    for i in 0..n {
        let cells = cells.clone();
        let dep = prev.clone();
        prev = Some(ctx.future(move |ctx| {
            if let Some(d) = &dep {
                ctx.get(d);
            }
            let v = cells.read(ctx, i);
            cells.write(ctx, i + 1, v + 1);
        }));
    }
    ctx.get(prev.as_ref().unwrap());
    let _ = cells.read(ctx, n);
}

#[test]
fn precede_queries_stay_local_on_chains() {
    // The paper's §5 locality claim: producers and consumers are 1–2
    // non-tree hops apart, so Visit expands O(1) nodes per query even
    // though the chain of non-tree edges is long. Check that the average
    // expansions per Precede call stay bounded as the chain grows 8×.
    let avg_expansions = |n: usize| -> f64 {
        let mut det = RaceDetector::new();
        run_serial(&mut det, |ctx| chain_program(ctx, n));
        assert!(!det.has_races());
        let s = det.stats();
        s.dtrg.visit_expansions as f64 / s.dtrg.precede_calls as f64
    };
    let small = avg_expansions(32);
    let large = avg_expansions(256);
    assert!(
        large <= small * 2.0 + 2.0,
        "per-query expansion must not grow with chain length: {small:.2} -> {large:.2}"
    );
    assert!(large < 8.0, "chain queries are 1–2 hops: {large:.2}");
}

#[test]
fn precede_calls_track_accesses_and_readers() {
    // Theorem 1's `(f+1)` factor made concrete: every access to a location
    // performs one `Precede` per stored reader (plus one for the writer).
    // With k parallel future readers accumulating on one location, the
    // i-th read checks i−1 stored readers — Θ(k²) checks total; the final
    // write checks all k.
    let mut det = RaceDetector::new();
    let readers = 32u64;
    run_serial(&mut det, |ctx| {
        let x = ctx.shared_var(1u64, "x");
        let hs: Vec<_> = (0..readers)
            .map(|_| {
                let xr = x.clone();
                ctx.future(move |ctx| xr.read(ctx))
            })
            .collect();
        for h in &hs {
            ctx.get(h);
        }
        x.write(ctx, 2); // checks all `readers` stored readers
    });
    assert!(!det.has_races());
    let s = det.stats();
    // Lower bound: the final write alone performs `readers` checks.
    assert!(
        s.dtrg.precede_calls >= readers,
        "got {}",
        s.dtrg.precede_calls
    );
    // Upper bound: the quadratic reader-set term dominates.
    let quad = readers * (readers - 1) / 2;
    assert!(
        s.dtrg.precede_calls <= s.shared_mem() + quad + readers + 4,
        "got {} for {} accesses (quad bound {})",
        s.dtrg.precede_calls,
        s.shared_mem(),
        quad
    );
}

#[test]
fn first_race_only_skips_remaining_queries() {
    let run = |first_only: bool| -> u64 {
        // Caching off: with the clean-verdict fast path on, the full run's
        // repeated reads stop issuing `Precede` queries too, and this test
        // is about first-race mode skipping work the *query path* would do.
        let mut det = RaceDetector::with_config(DetectorConfig {
            first_race_only: first_only,
            caching: false,
            ..Default::default()
        });
        run_serial(&mut det, |ctx| {
            let a = ctx.shared_array(64, 0u64, "a");
            // Race immediately, then do lots of accesses.
            let aw = a.clone();
            ctx.async_task(move |ctx| aw.write(ctx, 0, 1));
            a.write(ctx, 0, 2);
            for _ in 0..100 {
                for i in 0..64 {
                    let _ = a.read(ctx, i);
                }
            }
        });
        assert!(det.has_races());
        det.stats().dtrg.precede_calls
    };
    let full = run(false);
    let first_only = run(true);
    assert!(
        first_only * 10 < full,
        "first-race mode must skip the bulk of checks: {first_only} vs {full}"
    );
}

#[test]
fn space_grows_linearly_with_tasks_and_locations() {
    let footprint = |tasks: usize, locs: usize| {
        let mut det = RaceDetector::new();
        run_serial(&mut det, |ctx| {
            let a = ctx.shared_array(locs, 0u64, "a");
            ctx.finish(|ctx| {
                let a2 = a.clone();
                ctx.forasync(0..tasks, move |ctx, i| {
                    a2.write(ctx, i % locs, i as u64);
                });
            });
        });
        det.memory_footprint()
    };
    let f1 = footprint(100, 50);
    let f2 = footprint(400, 200);
    assert_eq!(f1.dtrg_tasks, 101);
    assert_eq!(f2.dtrg_tasks, 401);
    assert_eq!(f1.shadow_cells, 50);
    assert_eq!(f2.shadow_cells, 200);
    assert_eq!(f1.stored_nt_edges, 0, "async-finish stores no nt edges");
    assert_eq!(f2.stored_nt_edges, 0);
}
