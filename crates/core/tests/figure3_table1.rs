//! The paper's Figure 3 / Table 1 walk-through, reproduced as a white-box
//! test: a program whose DTRG passes through exactly the states Table 1
//! shows —
//!
//! * **after "step 11"** (mid-run): `P(T3) = {T1, T2}` (T3 performed
//!   non-tree joins on both earlier futures) and `LSA(T4) = LSA(T5) =
//!   LSA(T6) = T3` (their lowest ancestor with a non-tree join);
//! * **after "step 17"** (the finish ends): `T0, T3, T4, T5, T6` share
//!   one disjoint set (connected by tree joins), while `T1` and `T2`
//!   remain outside it (they were only ever joined by non-tree edges).

use futrace_detector::RaceDetector;
use futrace_runtime::{run_serial, TaskCtx};
use futrace_util::ids::TaskId;

const T0: TaskId = TaskId(0);
const T1: TaskId = TaskId(1);
const T2: TaskId = TaskId(2);
const T3: TaskId = TaskId(3);
const T4: TaskId = TaskId(4);
const T5: TaskId = TaskId(5);
const T6: TaskId = TaskId(6);

#[test]
fn table1_states() {
    let mut det = RaceDetector::new();
    run_serial(&mut det, |ctx| {
        // T1, T2: futures created before the finish (they will join T0
        // only via the implicit finish at program end).
        let f1 = ctx.future(|_| ());
        let f2 = ctx.future(|_| ());
        // The finish whose end produces Table 1(b)'s merged set.
        ctx.finish(|ctx| {
            let (f1, f2) = (f1.clone(), f2.clone());
            // T3: performs the two non-tree joins, then spawns T4–T6.
            ctx.async_task(move |ctx| {
                ctx.get(&f1); // non-tree join T1 -> T3
                ctx.get(&f2); // non-tree join T2 -> T3
                ctx.async_task(|_| {}); // T4
                ctx.async_task(|_| {}); // T5
                ctx.async_task(|_| {}); // T6

                // --- Table 1(a): the state "after step 11" -----------
                let dtrg = ctx.monitor_mut().dtrg_mut();
                let p_t3 = dtrg.set_data(T3).nt.to_vec();
                assert_eq!(p_t3, vec![T1, T2], "P(T3) = {{T1, T2}}");
                for t in [T4, T5, T6] {
                    assert_eq!(dtrg.set_data(t).lsa, Some(T3), "LSA({t}) = T3");
                }
                // T3 not merged with anyone yet.
                assert!(!dtrg.same_set(T3, T0));
                assert!(!dtrg.same_set(T3, T1));
                // The non-tree edges make T1, T2 precede T3's current step
                // (and transitively T4–T6's steps — checked for T6, whose
                // LSA chain supplies the path).
                assert!(dtrg.precede(T1, T3));
                assert!(dtrg.precede(T2, T3));
                assert!(dtrg.precede(T1, T6));
            });
        });

        // --- Table 1(b): the state "after step 17" -------------------
        let dtrg = ctx.monitor_mut().dtrg_mut();
        for t in [T3, T4, T5, T6] {
            assert!(dtrg.same_set(T0, t), "{t} merged into T0's set at the finish");
        }
        assert!(!dtrg.same_set(T0, T1), "T1 joined only via a non-tree edge");
        assert!(!dtrg.same_set(T0, T2), "T2 joined only via a non-tree edge");
        // The merged set keeps the ancestor-most label (T0's) and inherits
        // T3's non-tree predecessors.
        assert_eq!(dtrg.set_data(T0).interval.pre, 0);
        assert!(dtrg.set_data(T0).nt.contains(T1));
        assert!(dtrg.set_data(T0).nt.contains(T2));
        // Everything merged precedes T0's current step; T1/T2 do too, but
        // through the non-tree edges rather than set membership.
        for t in [T1, T2, T3, T4, T5, T6] {
            assert!(dtrg.precede(t, T0), "{t} ≺ T0 after the finish");
        }
    });
    assert!(!det.has_races());
}
