//! Generic job DAG and its std-only worker-pool executor.
//!
//! The corpus driver models a batch run as a dependency DAG: per-trace
//! analyze jobs feed a per-trace compare job, and everything feeds one
//! final aggregate job. This module is the schedule layer underneath —
//! it knows nothing about traces, only job ids, dependency edges, and a
//! user-supplied runner closure.
//!
//! Scheduling rules (DESIGN §S41):
//!
//! * at most `max_parallel` jobs run concurrently; among ready jobs the
//!   lowest id dispatches first, so a `--max-parallel 1` run executes in
//!   one canonical order;
//! * a failed job **poisons** its transitive dependents (they settle
//!   without running); under [`FailurePolicy::Continue`] nothing else is
//!   affected, under [`FailurePolicy::Abort`] all not-yet-running jobs
//!   are cancelled;
//! * a **barrier** job (the aggregate) waits until every dependency has
//!   settled — succeeded, failed, poisoned, or cancelled — and then runs
//!   regardless, so the final report exists even for a damaged corpus;
//! * `stop_after_jobs: Some(n)` suspends dispatch after `n` runner
//!   completions (the kill-midway hook for resume tests); jobs never
//!   dispatched settle as [`JobStatus::NotReached`];
//! * `job_timeout: Some(t)` arms a watchdog: a job running past its
//!   deadline settles [`JobStatus::Failed`] and poisons its dependents
//!   immediately, while the wedged runner drains in the background (its
//!   late result is discarded);
//! * `job_retries: n` re-queues a failed or timed-out job up to `n`
//!   times before it settles [`JobStatus::Failed`] — transient failures
//!   (a flaky filesystem, a timeout on a loaded machine) no longer
//!   poison a whole subtree on the first strike. Each dispatch carries a
//!   generation number so a timed-out runner's late result can never be
//!   confused with its replacement's.
//!
//! Acyclicity is by construction: [`Dag::add`] only accepts already-added
//! jobs as dependencies, so edges always point backwards in id order.

#![warn(missing_docs)]

use std::collections::BinaryHeap;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Index of a job within its [`Dag`] (dense, in insertion order).
pub type JobId = usize;

/// What to do with the rest of the corpus when a job fails.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailurePolicy {
    /// Poison the failed job's dependents; keep running everything else.
    Continue,
    /// Stop dispatching: running jobs drain, every other unsettled
    /// non-barrier job settles [`JobStatus::Cancelled`]. Barriers still
    /// run so the report can record the abort.
    Abort,
}

/// Terminal state of one job after [`execute`] returns.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobStatus {
    /// The runner returned `Ok`, or the job was pre-settled as complete
    /// (resume skip).
    Ok,
    /// The runner returned `Err(message)`, or the job was pre-settled as
    /// failed by a resume manifest.
    Failed(String),
    /// Never ran: a (transitive) dependency failed.
    Poisoned {
        /// The dependency whose failure propagated here.
        failed_dep: JobId,
    },
    /// Never ran: the run aborted under [`FailurePolicy::Abort`].
    Cancelled,
    /// Never ran: dispatch suspended first (`stop_after_jobs`).
    NotReached,
}

impl JobStatus {
    /// True for [`JobStatus::Ok`].
    pub fn is_ok(&self) -> bool {
        matches!(self, JobStatus::Ok)
    }
}

struct Node {
    label: String,
    deps: Vec<JobId>,
    dependents: Vec<JobId>,
    barrier: bool,
}

/// A dependency DAG of labelled jobs. Build with [`Dag::add`] /
/// [`Dag::add_barrier`], run with [`execute`].
#[derive(Default)]
pub struct Dag {
    nodes: Vec<Node>,
}

impl Dag {
    /// Empty DAG.
    pub fn new() -> Self {
        Dag::default()
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no jobs have been added.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The label given at add time.
    pub fn label(&self, id: JobId) -> &str {
        &self.nodes[id].label
    }

    fn push(&mut self, label: impl Into<String>, deps: &[JobId], barrier: bool) -> JobId {
        let id = self.nodes.len();
        for &d in deps {
            assert!(d < id, "dependency {d} of job {id} must be added first");
            self.nodes[d].dependents.push(id);
        }
        self.nodes.push(Node {
            label: label.into(),
            deps: deps.to_vec(),
            dependents: Vec::new(),
            barrier,
        });
        id
    }

    /// Adds a normal job. All `deps` must already be in the DAG (this is
    /// what makes cycles unrepresentable).
    pub fn add(&mut self, label: impl Into<String>, deps: &[JobId]) -> JobId {
        self.push(label, deps, false)
    }

    /// Adds a barrier job: it becomes ready only once **all** its deps
    /// have settled, and then runs whatever their outcomes were.
    pub fn add_barrier(&mut self, label: impl Into<String>, deps: &[JobId]) -> JobId {
        self.push(label, deps, true)
    }
}

/// Execution parameters for [`execute`].
#[derive(Clone, Debug)]
pub struct ExecPlan {
    /// Worker-pool width (≥ 1).
    pub max_parallel: usize,
    /// Failure policy (continue vs abort).
    pub policy: FailurePolicy,
    /// Suspend dispatch after this many runner completions (resume-test
    /// hook). `None` runs to completion.
    pub stop_after_jobs: Option<u64>,
    /// Per-job wall-clock deadline. A job still running past it settles
    /// [`JobStatus::Failed`] (poisoning its dependents) so one wedged
    /// trace cannot stall the whole corpus; the overdue runner's result
    /// is discarded when (if) it eventually returns. The runner itself
    /// is not killed — a never-returning job keeps occupying its pool
    /// slot. `None` disables the watchdog.
    pub job_timeout: Option<Duration>,
    /// Re-queue a failed or timed-out job up to this many times before
    /// it settles [`JobStatus::Failed`]. A timed-out job's replacement
    /// may run concurrently with the wedged original (whose late result
    /// is discarded), so runners must tolerate re-execution. 0 = settle
    /// on the first failure (the historical behavior).
    pub job_retries: u64,
}

impl Default for ExecPlan {
    fn default() -> Self {
        ExecPlan {
            max_parallel: 1,
            policy: FailurePolicy::Continue,
            stop_after_jobs: None,
            job_timeout: None,
            job_retries: 0,
        }
    }
}

/// Outcome of one [`execute`] call.
#[derive(Clone, Debug)]
pub struct DagRun {
    /// Terminal status per job, indexed by [`JobId`].
    pub status: Vec<JobStatus>,
    /// Jobs whose runner actually ran this call.
    pub ran: u64,
    /// Jobs settled from `preset` without running (resume skips).
    pub skipped: u64,
    /// True iff a fresh failure triggered [`FailurePolicy::Abort`].
    pub aborted: bool,
    /// True iff `stop_after_jobs` suspended dispatch.
    pub suspended: bool,
    /// Retry dispatches: runner attempts beyond each job's first
    /// (bounded by `job_retries` per job).
    pub retried: u64,
}

impl DagRun {
    /// True iff any job settled [`JobStatus::Failed`] or
    /// [`JobStatus::Poisoned`] (preset failures included).
    pub fn any_failed(&self) -> bool {
        self.status
            .iter()
            .any(|s| matches!(s, JobStatus::Failed(_) | JobStatus::Poisoned { .. }))
    }
}

enum Slot {
    Waiting {
        deps_left: usize,
    },
    Ready,
    Running {
        deadline: Option<Instant>,
        /// Dispatch generation (= the job's attempt count at dispatch).
        /// A worker's result only settles the job if the slot still
        /// holds the generation it dispatched under; a timed-out-and-
        /// requeued job's stale runner fails this check.
        gen: u64,
    },
    Settled(JobStatus),
}

struct ExecState {
    slots: Vec<Slot>,
    ready: BinaryHeap<std::cmp::Reverse<JobId>>,
    settled: usize,
    ran: u64,
    skipped: u64,
    aborting: bool,
    suspended: bool,
    fresh_preset: Vec<Option<JobStatus>>,
    /// Failures absorbed so far, per job (caps at `plan.job_retries`).
    attempts: Vec<u64>,
    retried: u64,
}

/// Runs the DAG on a pool of `plan.max_parallel` scoped threads.
///
/// `preset[id] = Some(status)` settles job `id` up front without running
/// it — the resume path: jobs recorded complete (or failed) by a prior
/// run's manifest are injected here, and their poison still propagates.
/// Preset failures do **not** trigger the abort policy (the previous run
/// already reacted to them); only fresh runner failures do.
///
/// `runner` is called concurrently from pool threads and must be `Sync`.
///
/// # Panics
///
/// Panics if `plan.max_parallel == 0` or `preset.len() != dag.len()`.
pub fn execute<F>(dag: &Dag, plan: &ExecPlan, preset: Vec<Option<JobStatus>>, runner: F) -> DagRun
where
    F: Fn(JobId) -> Result<(), String> + Sync,
{
    assert!(plan.max_parallel >= 1, "max_parallel must be >= 1");
    assert_eq!(preset.len(), dag.len(), "one preset slot per job");

    let shared = Shared {
        state: Mutex::new(ExecState {
            slots: dag
                .nodes
                .iter()
                .map(|n| Slot::Waiting {
                    deps_left: n.deps.len(),
                })
                .collect(),
            ready: BinaryHeap::new(),
            settled: 0,
            ran: 0,
            skipped: 0,
            aborting: false,
            suspended: false,
            fresh_preset: preset,
            attempts: vec![0; dag.len()],
            retried: 0,
        }),
        cv: Condvar::new(),
    };

    {
        let mut st = shared.state.lock().unwrap();
        // Settle presets first (in id order), then promote remaining
        // zero-dep jobs to ready.
        for id in 0..dag.len() {
            if let Some(status) = st.fresh_preset[id].take() {
                st.skipped += 1;
                settle(dag, &mut st, id, status);
            }
        }
        for id in 0..dag.len() {
            if matches!(st.slots[id], Slot::Waiting { deps_left: 0 }) {
                st.slots[id] = Slot::Ready;
                st.ready.push(std::cmp::Reverse(id));
            }
        }
    }

    std::thread::scope(|scope| {
        for _ in 0..plan.max_parallel {
            scope.spawn(|| worker(dag, plan, &shared, &runner));
        }
        if let Some(timeout) = plan.job_timeout {
            let shared = &shared;
            scope.spawn(move || timekeeper(dag, plan, shared, timeout));
        }
    });

    let st = shared.state.lock().unwrap();
    let status = st
        .slots
        .iter()
        .map(|s| match s {
            Slot::Settled(js) => js.clone(),
            _ => unreachable!("all jobs settle before the pool drains"),
        })
        .collect();
    DagRun {
        status,
        ran: st.ran,
        skipped: st.skipped,
        aborted: st.aborting,
        suspended: st.suspended,
        retried: st.retried,
    }
}

struct Shared {
    state: Mutex<ExecState>,
    cv: Condvar,
}

fn worker<F>(dag: &Dag, plan: &ExecPlan, shared: &Shared, runner: &F)
where
    F: Fn(JobId) -> Result<(), String> + Sync,
{
    let mut st = shared.state.lock().unwrap();
    loop {
        if st.settled == dag.len() {
            shared.cv.notify_all();
            return;
        }
        if let Some(std::cmp::Reverse(id)) = st.ready.pop() {
            // A heap entry can go stale: a job promoted to Ready by one
            // dependency cascade may since have been settled by a preset
            // or a cancellation. Skip it rather than re-running it.
            if !matches!(st.slots[id], Slot::Ready) {
                continue;
            }
            let my_gen = st.attempts[id];
            st.slots[id] = Slot::Running {
                deadline: plan.job_timeout.map(|t| Instant::now() + t),
                gen: my_gen,
            };
            drop(st);
            let result = runner(id);
            st = shared.state.lock().unwrap();
            // The timekeeper may have settled this job as timed-out (or
            // timed it out and re-queued it) while the runner was still
            // going; a stale result is discarded — the live generation's
            // verdict is the one that counts.
            match st.slots[id] {
                Slot::Running { gen, .. } if gen == my_gen => {}
                _ => continue,
            }
            st.ran += 1;
            match result {
                Ok(()) => {
                    settle(dag, &mut st, id, JobStatus::Ok);
                    after_fresh_settle(dag, plan, &mut st, false);
                }
                Err(msg) => {
                    if retryable(plan, &st, id) {
                        requeue(&mut st, id);
                        maybe_suspend(dag, plan, &mut st);
                    } else {
                        settle(dag, &mut st, id, JobStatus::Failed(msg));
                        after_fresh_settle(dag, plan, &mut st, true);
                    }
                }
            }
            shared.cv.notify_all();
            continue;
        }
        // Nothing ready: either every remaining job is running in another
        // worker, or we're waiting on dependency settlement.
        st = shared.cv.wait(st).unwrap();
    }
}

/// True when a fresh failure of `id` should be re-queued instead of
/// settled: budget left, and the run is not already winding down (an
/// aborting or suspended run must not keep dispatching).
fn retryable(plan: &ExecPlan, st: &ExecState, id: JobId) -> bool {
    st.attempts[id] < plan.job_retries && !st.aborting && !st.suspended
}

/// Puts a failed/timed-out job back on the ready heap for another
/// attempt, bumping its generation so any still-draining runner from
/// the previous attempt is recognizably stale.
fn requeue(st: &mut ExecState, id: JobId) {
    st.attempts[id] += 1;
    st.retried += 1;
    st.slots[id] = Slot::Ready;
    st.ready.push(std::cmp::Reverse(id));
}

/// Policy reactions shared by the worker and timekeeper settle paths:
/// a fresh failure may trigger the abort policy, and any fresh
/// completion counts toward the `stop_after_jobs` suspension threshold.
fn after_fresh_settle(dag: &Dag, plan: &ExecPlan, st: &mut ExecState, failed: bool) {
    if failed && plan.policy == FailurePolicy::Abort && !st.aborting {
        st.aborting = true;
        cancel_unstarted(dag, st);
    }
    maybe_suspend(dag, plan, st);
}

/// `stop_after_jobs` check alone — also applies to re-queued attempts,
/// which count as runner completions without settling anything.
fn maybe_suspend(dag: &Dag, plan: &ExecPlan, st: &mut ExecState) {
    if let Some(n) = plan.stop_after_jobs {
        if st.ran >= n && !st.suspended && st.settled < dag.len() {
            st.suspended = true;
            suspend_unstarted(st);
        }
    }
}

/// Watchdog loop (one thread, spawned only when `job_timeout` is set):
/// settles any job running past its deadline as failed, so the rest of
/// the DAG keeps moving while the wedged runner drains in its worker.
fn timekeeper(dag: &Dag, plan: &ExecPlan, shared: &Shared, timeout: Duration) {
    let mut st = shared.state.lock().unwrap();
    loop {
        if st.settled == dag.len() {
            return;
        }
        let now = Instant::now();
        let mut next_deadline: Option<Instant> = None;
        let mut expired = Vec::new();
        for (id, slot) in st.slots.iter().enumerate() {
            if let Slot::Running {
                deadline: Some(dl), ..
            } = slot
            {
                if *dl <= now {
                    expired.push(id);
                } else {
                    next_deadline = Some(next_deadline.map_or(*dl, |n| n.min(*dl)));
                }
            }
        }
        let fired = !expired.is_empty();
        for id in expired {
            st.ran += 1;
            if retryable(plan, &st, id) {
                // Re-queue the timed-out job; the wedged original keeps
                // draining in its worker and its late result is stale by
                // generation.
                requeue(&mut st, id);
                maybe_suspend(dag, plan, &mut st);
            } else {
                settle(
                    dag,
                    &mut st,
                    id,
                    JobStatus::Failed(format!("timed out after {}ms", timeout.as_millis())),
                );
                after_fresh_settle(dag, plan, &mut st, true);
            }
        }
        if fired {
            shared.cv.notify_all();
        }
        if st.settled == dag.len() {
            return;
        }
        // Sleep until the earliest live deadline (or one timeout period
        // when nothing is running); settles wake us early via the condvar.
        let wait = next_deadline
            .map_or(timeout, |n| n.saturating_duration_since(Instant::now()))
            .max(Duration::from_millis(1));
        st = shared.cv.wait_timeout(st, wait).unwrap().0;
    }
}

/// Marks `id` settled and propagates readiness/poison to dependents.
fn settle(dag: &Dag, st: &mut ExecState, id: JobId, status: JobStatus) {
    debug_assert!(!matches!(st.slots[id], Slot::Settled(_)));
    st.slots[id] = Slot::Settled(status);
    st.settled += 1;
    // Iterative DFS over dependents: settling one job may cascade
    // (poison chains through an entire per-trace subtree).
    let mut stack = vec![id];
    while let Some(done) = stack.pop() {
        // Status of the job that just settled (what propagates to its
        // dependents).
        let done_status = match &st.slots[done] {
            Slot::Settled(s) => s.clone(),
            _ => unreachable!(),
        };
        for &dep_id in &dag.nodes[done].dependents {
            let deps_left = match &mut st.slots[dep_id] {
                Slot::Waiting { deps_left } => {
                    *deps_left -= 1;
                    *deps_left
                }
                _ => continue,
            };
            if dag.nodes[dep_id].barrier {
                // Barriers only care that everything settled, not how.
                if deps_left == 0 {
                    st.slots[dep_id] = Slot::Ready;
                    st.ready.push(std::cmp::Reverse(dep_id));
                }
                continue;
            }
            // A normal job inspects the dep that just settled: failure or
            // poison propagates immediately; cancellation propagates as
            // cancellation.
            match &done_status {
                JobStatus::Ok => {
                    if deps_left == 0 {
                        st.slots[dep_id] = Slot::Ready;
                        st.ready.push(std::cmp::Reverse(dep_id));
                    }
                }
                JobStatus::Failed(_) => {
                    st.slots[dep_id] = Slot::Settled(JobStatus::Poisoned { failed_dep: done });
                    st.settled += 1;
                    stack.push(dep_id);
                }
                JobStatus::Poisoned { failed_dep } => {
                    let origin = *failed_dep;
                    st.slots[dep_id] = Slot::Settled(JobStatus::Poisoned { failed_dep: origin });
                    st.settled += 1;
                    stack.push(dep_id);
                }
                JobStatus::Cancelled | JobStatus::NotReached => {
                    st.slots[dep_id] = Slot::Settled(done_status.clone());
                    st.settled += 1;
                    stack.push(dep_id);
                }
            }
        }
    }
}

/// Abort path: every waiting/ready non-barrier job settles `Cancelled`.
/// Running jobs drain; barriers stay live so the aggregate still fires.
fn cancel_unstarted(dag: &Dag, st: &mut ExecState) {
    for id in 0..dag.nodes.len() {
        if dag.nodes[id].barrier {
            continue;
        }
        if matches!(st.slots[id], Slot::Waiting { .. } | Slot::Ready) {
            settle(dag, st, id, JobStatus::Cancelled);
        }
    }
    // The cancelled ids may still sit in the ready heap; rebuild it with
    // only live (still-Ready) entries so workers never pop a settled job.
    let mut heap = std::mem::take(&mut st.ready);
    let live: Vec<_> = heap
        .drain()
        .filter(|std::cmp::Reverse(id)| matches!(st.slots[*id], Slot::Ready))
        .collect();
    st.ready.extend(live);
}

/// Suspend path: everything not yet running settles `NotReached`,
/// barriers included — a partial run writes no aggregate report.
fn suspend_unstarted(st: &mut ExecState) {
    for slot in &mut st.slots {
        if matches!(*slot, Slot::Waiting { .. } | Slot::Ready) {
            *slot = Slot::Settled(JobStatus::NotReached);
            st.settled += 1;
        }
    }
    st.ready.clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Mutex as StdMutex;

    fn diamond() -> (Dag, JobId, JobId, JobId, JobId) {
        let mut dag = Dag::new();
        let a = dag.add("a", &[]);
        let b = dag.add("b", &[a]);
        let c = dag.add("c", &[a]);
        let d = dag.add("d", &[b, c]);
        (dag, a, b, c, d)
    }

    #[test]
    fn serial_execution_runs_in_id_order() {
        let (dag, ..) = diamond();
        let order = StdMutex::new(Vec::new());
        let run = execute(&dag, &ExecPlan::default(), vec![None; 4], |id| {
            order.lock().unwrap().push(id);
            Ok(())
        });
        assert_eq!(order.into_inner().unwrap(), vec![0, 1, 2, 3]);
        assert_eq!(run.ran, 4);
        assert!(run.status.iter().all(JobStatus::is_ok));
        assert!(!run.aborted && !run.suspended);
    }

    #[test]
    fn parallelism_never_exceeds_cap_and_all_jobs_run() {
        let mut dag = Dag::new();
        let roots: Vec<_> = (0..20).map(|i| dag.add(format!("r{i}"), &[])).collect();
        let ids: Vec<_> = roots.iter().map(|&r| dag.add("child", &[r])).collect();
        let _tail = dag.add("tail", &ids);
        let live = AtomicU64::new(0);
        let peak = AtomicU64::new(0);
        let plan = ExecPlan {
            max_parallel: 3,
            ..ExecPlan::default()
        };
        let run = execute(&dag, &plan, vec![None; dag.len()], |_| {
            let now = live.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_millis(1));
            live.fetch_sub(1, Ordering::SeqCst);
            Ok(())
        });
        assert_eq!(run.ran, 41);
        assert!(peak.load(Ordering::SeqCst) <= 3);
    }

    #[test]
    fn failure_poisons_transitive_dependents_only() {
        let (dag, a, b, c, d) = diamond();
        let run = execute(&dag, &ExecPlan::default(), vec![None; 4], |id| {
            if id == b {
                Err("boom".into())
            } else {
                Ok(())
            }
        });
        assert_eq!(run.status[a], JobStatus::Ok);
        assert_eq!(run.status[b], JobStatus::Failed("boom".into()));
        assert_eq!(run.status[c], JobStatus::Ok, "sibling unaffected");
        assert_eq!(run.status[d], JobStatus::Poisoned { failed_dep: b });
        assert_eq!(run.ran, 3, "d never ran");
        assert!(run.any_failed());
        assert!(!run.aborted);
    }

    #[test]
    fn barrier_runs_even_when_deps_fail() {
        let mut dag = Dag::new();
        let a = dag.add("a", &[]);
        let b = dag.add("b", &[]);
        let bar = dag.add_barrier("bar", &[a, b]);
        let run = execute(&dag, &ExecPlan::default(), vec![None; 3], |id| {
            if id == a {
                Err("x".into())
            } else {
                Ok(())
            }
        });
        assert_eq!(run.status[bar], JobStatus::Ok, "barrier tolerant of failed deps");
        assert_eq!(run.ran, 3);
    }

    #[test]
    fn abort_cancels_unstarted_but_barrier_still_fires() {
        // Serial + abort: job 0 fails, 1..=3 cancel, barrier still runs.
        let mut dag = Dag::new();
        let a = dag.add("a", &[]);
        let others: Vec<_> = (0..3).map(|i| dag.add(format!("o{i}"), &[])).collect();
        let mut all = vec![a];
        all.extend(&others);
        let bar = dag.add_barrier("bar", &all);
        let plan = ExecPlan {
            policy: FailurePolicy::Abort,
            ..ExecPlan::default()
        };
        let run = execute(&dag, &plan, vec![None; dag.len()], |id| {
            if id == a {
                Err("fatal".into())
            } else {
                Ok(())
            }
        });
        assert!(run.aborted);
        for &o in &others {
            assert_eq!(run.status[o], JobStatus::Cancelled);
        }
        assert_eq!(run.status[bar], JobStatus::Ok);
        assert_eq!(run.ran, 2, "failing job + barrier");
    }

    #[test]
    fn preset_failures_propagate_poison_without_running_or_aborting() {
        let (dag, a, b, c, d) = diamond();
        let mut preset = vec![None; 4];
        preset[a] = Some(JobStatus::Ok);
        preset[b] = Some(JobStatus::Failed("from manifest".into()));
        let plan = ExecPlan {
            policy: FailurePolicy::Abort,
            ..ExecPlan::default()
        };
        let run = execute(&dag, &plan, preset, |id| {
            assert_eq!(id, c, "only c actually runs");
            Ok(())
        });
        assert_eq!(run.ran, 1);
        assert_eq!(run.skipped, 2);
        assert_eq!(run.status[d], JobStatus::Poisoned { failed_dep: b });
        assert!(!run.aborted, "preset failures never trigger abort");
    }

    #[test]
    fn stop_after_jobs_suspends_and_marks_not_reached() {
        let mut dag = Dag::new();
        let ids: Vec<_> = (0..6).map(|i| dag.add(format!("j{i}"), &[])).collect();
        let bar = dag.add_barrier("bar", &ids);
        let plan = ExecPlan {
            stop_after_jobs: Some(2),
            ..ExecPlan::default()
        };
        let run = execute(&dag, &plan, vec![None; dag.len()], |_| Ok(()));
        assert!(run.suspended);
        assert_eq!(run.ran, 2);
        assert_eq!(run.status[ids[0]], JobStatus::Ok);
        assert_eq!(run.status[ids[1]], JobStatus::Ok);
        for &id in &ids[2..] {
            assert_eq!(run.status[id], JobStatus::NotReached);
        }
        assert_eq!(run.status[bar], JobStatus::NotReached, "no report on suspend");
    }

    #[test]
    #[should_panic(expected = "must be added first")]
    fn forward_dependency_is_rejected() {
        let mut dag = Dag::new();
        dag.add("bad", &[5]);
    }

    #[test]
    fn wedged_job_times_out_and_poisons_dependents() {
        let mut dag = Dag::new();
        let slow = dag.add("slow", &[]);
        let child = dag.add("child", &[slow]);
        let other = dag.add("other", &[]);
        let bar = dag.add_barrier("bar", &[slow, child, other]);
        let plan = ExecPlan {
            max_parallel: 2,
            job_timeout: Some(Duration::from_millis(30)),
            ..ExecPlan::default()
        };
        let run = execute(&dag, &plan, vec![None; dag.len()], |id| {
            if id == slow {
                // Finite wedge: long past the deadline, short enough
                // that the pool still drains once the DAG has settled.
                std::thread::sleep(Duration::from_millis(300));
            }
            Ok(())
        });
        assert_eq!(
            run.status[slow],
            JobStatus::Failed("timed out after 30ms".into())
        );
        assert_eq!(run.status[child], JobStatus::Poisoned { failed_dep: slow });
        assert_eq!(run.status[other], JobStatus::Ok, "sibling unaffected");
        assert_eq!(run.status[bar], JobStatus::Ok, "barrier still fires");
        assert!(run.any_failed());
        assert!(!run.aborted && !run.suspended);
    }

    #[test]
    fn flaky_job_retries_within_budget_and_succeeds() {
        let (dag, a, b, _c, d) = diamond();
        let b_failures = AtomicU64::new(0);
        let plan = ExecPlan {
            job_retries: 2,
            ..ExecPlan::default()
        };
        let run = execute(&dag, &plan, vec![None; 4], |id| {
            if id == b && b_failures.fetch_add(1, Ordering::SeqCst) < 2 {
                Err("flaky".into())
            } else {
                Ok(())
            }
        });
        assert!(run.status.iter().all(JobStatus::is_ok), "{:?}", run.status);
        assert_eq!(run.retried, 2);
        assert_eq!(run.ran, 6, "4 jobs + 2 extra attempts of b");
        assert_eq!(run.status[a], JobStatus::Ok);
        assert_eq!(run.status[d], JobStatus::Ok, "dependents unharmed");
    }

    #[test]
    fn exhausted_retry_budget_settles_failed_and_poisons() {
        let (dag, _a, b, _c, d) = diamond();
        let plan = ExecPlan {
            job_retries: 2,
            ..ExecPlan::default()
        };
        let run = execute(&dag, &plan, vec![None; 4], |id| {
            if id == b {
                Err("hard".into())
            } else {
                Ok(())
            }
        });
        assert_eq!(run.status[b], JobStatus::Failed("hard".into()));
        assert_eq!(run.status[d], JobStatus::Poisoned { failed_dep: b });
        assert_eq!(run.retried, 2, "budget fully spent before settling");
        assert!(run.any_failed());
    }

    #[test]
    fn timed_out_job_retries_and_the_stale_result_is_discarded() {
        let mut dag = Dag::new();
        let slow = dag.add("slow", &[]);
        let child = dag.add("child", &[slow]);
        let plan = ExecPlan {
            max_parallel: 2,
            job_timeout: Some(Duration::from_millis(40)),
            job_retries: 1,
            ..ExecPlan::default()
        };
        let tries = AtomicU64::new(0);
        let run = execute(&dag, &plan, vec![None; dag.len()], |id| {
            if id == slow && tries.fetch_add(1, Ordering::SeqCst) == 0 {
                // First attempt wedges long past the deadline; its late
                // Ok must not settle the job (the retry's verdict wins).
                std::thread::sleep(Duration::from_millis(250));
            }
            Ok(())
        });
        assert_eq!(run.status[slow], JobStatus::Ok, "retry succeeded");
        assert_eq!(run.status[child], JobStatus::Ok, "no poison leaked");
        assert_eq!(run.retried, 1);
        assert!(tries.load(Ordering::SeqCst) >= 2, "job actually re-ran");
    }

    #[test]
    fn fast_jobs_never_trip_the_watchdog() {
        let (dag, ..) = diamond();
        let plan = ExecPlan {
            job_timeout: Some(Duration::from_secs(30)),
            ..ExecPlan::default()
        };
        let run = execute(&dag, &plan, vec![None; 4], |_| Ok(()));
        assert!(run.status.iter().all(JobStatus::is_ok));
        assert_eq!(run.ran, 4);
    }
}
