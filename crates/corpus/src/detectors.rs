//! Named-detector registry: one place that maps the CLI's `--detector`
//! names onto engine [`Analysis`] runs.
//!
//! Every detector in the workspace implements
//! [`futrace_runtime::engine::Analysis`], so "run detector X over trace Y"
//! is a single [`run_analysis`] call; this module adds the name table, the
//! report-type erasure ([`AnyReport`]), and the shardable-capability
//! lookup that `tracetool analyze --detector` and `tracetool compare`
//! need.

#![warn(missing_docs)]

use futrace_baselines::{
    BaselineReport, ClosureDetector, ClosureReport, EspBags, OffsetSpan, SpBags, Spd3,
    VectorClockDetector,
};
use futrace_detector::{DtrgReport, RaceDetector};
use futrace_offline::{
    run_sharded_events, run_supervised, Checkpoint, ChunkedEvents, ShardPlan, ShardedRun,
    SupervisedOutcome, SuperviseError, SupervisorPlan,
};
use futrace_runtime::engine::{run_analysis, source, AnalysisOutcome};
use futrace_runtime::Event;

/// Every detector name `tracetool analyze --detector` accepts, in the
/// order `compare` runs them by default.
pub const DETECTOR_NAMES: &[&str] = &[
    "dtrg",
    "espbags",
    "spbags",
    "offsetspan",
    "spd3",
    "vc",
    "closure",
];

/// True iff `name` is a known detector name.
pub fn is_detector(name: &str) -> bool {
    DETECTOR_NAMES.contains(&name)
}

/// True iff the named detector's checks are loc-routable, i.e. it
/// implements [`futrace_runtime::engine::LocRoutable`] and may run under
/// `--shards N`. The DTRG detector and the vector-clock baseline qualify;
/// the bags/label baselines need the global access order and the closure
/// oracle finalizes over the whole graph, so they opt out.
pub fn is_shardable(name: &str) -> bool {
    matches!(name, "dtrg" | "vc")
}

/// The report of any registry detector, erased to one enum so CLI code
/// can handle all of them uniformly.
#[derive(Clone, Debug)]
pub enum AnyReport {
    /// The DTRG detector's full report (races + stats + footprint).
    Dtrg(Box<DtrgReport>),
    /// A baseline's summary report.
    Baseline(BaselineReport),
    /// The closure oracle's report (exact race list + graph).
    Closure(Box<ClosureReport>),
}

impl AnyReport {
    /// Total races detected (the DTRG's `total_detected`, a baseline's
    /// failed checks, the oracle's racing pairs).
    pub fn race_count(&self) -> u64 {
        match self {
            AnyReport::Dtrg(r) => r.report.total_detected,
            AnyReport::Baseline(r) => r.races,
            AnyReport::Closure(r) => r.races.len() as u64,
        }
    }

    /// True iff the detector reported any race.
    pub fn has_races(&self) -> bool {
        self.race_count() > 0
    }

    /// Algorithm-specific observations worth printing alongside the
    /// verdict (approximation warnings, cost metrics).
    pub fn notes(&self) -> Vec<String> {
        match self {
            AnyReport::Dtrg(r) => vec![format!(
                "#Tasks: {}, #SharedMem: {}, #AvgReaders: {:.3}",
                r.stats.tasks,
                r.stats.shared_mem(),
                r.stats.avg_readers()
            )],
            AnyReport::Baseline(r) => r.notes.clone(),
            AnyReport::Closure(r) => vec![format!(
                "exact oracle: {} steps, {} racing pair(s)",
                r.graph.step_count(),
                r.races.len()
            )],
        }
    }

    /// One rendered line per reported race (capped upstream), for display.
    pub fn race_lines(&self) -> Vec<String> {
        match self {
            AnyReport::Dtrg(r) => r.report.races.iter().map(|x| x.to_string()).collect(),
            AnyReport::Baseline(_) => Vec::new(), // baselines keep counts only
            AnyReport::Closure(r) => r.races.iter().map(|x| format!("{x:?}")).collect(),
        }
    }

    /// Hot-path cache totals as `(hits, misses)`: the DTRG's memo and
    /// shadow fast-path counters (only the memo records misses — every
    /// slow-path check is one). `None` for the uncached detectors.
    pub fn cache_counters(&self) -> Option<(u64, u64)> {
        match self {
            AnyReport::Dtrg(r) => Some((
                r.stats.dtrg.memo_hits + r.stats.dtrg.shadow_hits,
                r.stats.dtrg.memo_misses,
            )),
            _ => None,
        }
    }
}

/// Copies the report's cache totals into the driver counters (a no-op for
/// detectors without a hot-path cache).
fn fill_cache_counters(mut o: AnalysisOutcome<AnyReport>) -> AnalysisOutcome<AnyReport> {
    if let Some((hits, misses)) = o.report.cache_counters() {
        o.counters.cache_hits = hits;
        o.counters.cache_misses = misses;
    }
    o
}

/// Runs the named detector over an event stream through the engine
/// driver.
///
/// # Panics
///
/// Panics on an unknown name — validate with [`is_detector`] first (the
/// CLI parser does).
pub fn run_on_events<I, E>(name: &str, events: I) -> Result<AnalysisOutcome<AnyReport>, E>
where
    I: Iterator<Item = Result<Event, E>>,
{
    let events = source::stream(events);
    match name {
        "dtrg" => run_analysis(events, RaceDetector::new())
            .map(|o| fill_cache_counters(o.map(|r| AnyReport::Dtrg(Box::new(r))))),
        "espbags" => run_analysis(events, EspBags::new()).map(|o| o.map(AnyReport::Baseline)),
        // The trace's programming model is richer than spawn-sync /
        // fork-join, so the strict variants would panic on the first
        // future join; lenient mode drops the out-of-model edges instead
        // (over-approximating, which is the point of the comparison).
        "spbags" => run_analysis(events, SpBags::new_lenient()).map(|o| o.map(AnyReport::Baseline)),
        "offsetspan" => {
            run_analysis(events, OffsetSpan::new_lenient()).map(|o| o.map(AnyReport::Baseline))
        }
        "spd3" => run_analysis(events, Spd3::new()).map(|o| o.map(AnyReport::Baseline)),
        "vc" => {
            run_analysis(events, VectorClockDetector::new()).map(|o| o.map(AnyReport::Baseline))
        }
        "closure" => run_analysis(events, ClosureDetector::new())
            .map(|o| o.map(|r| AnyReport::Closure(Box::new(r)))),
        other => panic!("unknown detector {other:?} (validate with is_detector)"),
    }
}

/// As [`run_on_events`] for an already-decoded event list, driven through
/// the engine's batched dispatch path (consecutive accesses are handed to
/// the analysis as flat slices instead of one virtual call per event).
/// Infallible, so the error type disappears.
///
/// # Panics
///
/// Panics on an unknown name — validate with [`is_detector`] first.
pub fn run_on_recorded(name: &str, events: &[Event]) -> AnalysisOutcome<AnyReport> {
    fn go<A>(events: &[Event], analysis: A) -> AnalysisOutcome<A::Report>
    where
        A: futrace_runtime::engine::Analysis,
    {
        match run_analysis(source::recorded(events), analysis) {
            Ok(o) => o,
            Err(never) => match never {},
        }
    }
    match name {
        "dtrg" => fill_cache_counters(
            go(events, RaceDetector::new()).map(|r| AnyReport::Dtrg(Box::new(r))),
        ),
        "espbags" => go(events, EspBags::new()).map(AnyReport::Baseline),
        "spbags" => go(events, SpBags::new_lenient()).map(AnyReport::Baseline),
        "offsetspan" => go(events, OffsetSpan::new_lenient()).map(AnyReport::Baseline),
        "spd3" => go(events, Spd3::new()).map(AnyReport::Baseline),
        "vc" => go(events, VectorClockDetector::new()).map(AnyReport::Baseline),
        "closure" => go(events, ClosureDetector::new()).map(|r| AnyReport::Closure(Box::new(r))),
        other => panic!("unknown detector {other:?} (validate with is_detector)"),
    }
}

/// Runs the named detector sharded over `plan.shards` workers.
///
/// # Panics
///
/// Panics if the detector is not loc-routable — check [`is_shardable`]
/// first (the CLI parser does).
pub fn run_sharded_on_events<I, E>(
    name: &str,
    events: I,
    plan: &ShardPlan,
) -> Result<ShardedRun<AnyReport>, E>
where
    I: Iterator<Item = Result<Event, E>>,
{
    match name {
        "dtrg" => run_sharded_events(events, plan, RaceDetector::new).map(|r| ShardedRun {
            report: AnyReport::Dtrg(Box::new(r.report)),
            stats: r.stats,
        }),
        "vc" => {
            run_sharded_events(events, plan, VectorClockDetector::new).map(|r| ShardedRun {
                report: AnyReport::Baseline(r.report),
                stats: r.stats,
            })
        }
        other => panic!("detector {other:?} is not shardable (check is_shardable)"),
    }
}

/// Runs the named detector under the fault-tolerant supervisor
/// ([`futrace_offline::supervise`]): workers restart from snapshots, the
/// run can suspend into a [`Checkpoint`] and later resume from one, and
/// unrecoverable failures degrade to a serial pass with the same verdict.
///
/// `make_events` must yield a fresh stream over the same trace each call
/// (degradation and resume both re-read from the start).
///
/// # Panics
///
/// Panics if the detector is not loc-routable — the supervised pipeline is
/// sharding plus recovery, so [`is_shardable`] gates it too.
pub fn run_supervised_on_events<I, E, MF>(
    name: &str,
    make_events: MF,
    plan: &SupervisorPlan,
    resume: Option<&Checkpoint>,
) -> Result<SupervisedOutcome<AnyReport>, SuperviseError<E>>
where
    I: ChunkedEvents + Iterator<Item = Result<Event, E>>,
    MF: Fn() -> I,
{
    fn erase<R>(
        out: SupervisedOutcome<R>,
        f: impl FnOnce(R) -> AnyReport,
    ) -> SupervisedOutcome<AnyReport> {
        match out {
            SupervisedOutcome::Completed {
                report,
                stats,
                supervision,
            } => SupervisedOutcome::Completed {
                report: f(report),
                stats,
                supervision,
            },
            SupervisedOutcome::Suspended {
                checkpoint,
                supervision,
            } => SupervisedOutcome::Suspended {
                checkpoint,
                supervision,
            },
        }
    }
    match name {
        "dtrg" => run_supervised(make_events, RaceDetector::new, plan, resume)
            .map(|o| erase(o, |r| AnyReport::Dtrg(Box::new(r)))),
        "vc" => run_supervised(make_events, VectorClockDetector::new, plan, resume)
            .map(|o| erase(o, AnyReport::Baseline)),
        other => panic!("detector {other:?} is not shardable (check is_shardable)"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use futrace_runtime::{run_serial, EventLog, TaskCtx};
    use std::convert::Infallible;

    fn future_sync_trace() -> EventLog {
        // Race-free only because of the get() edge: DTRG/vc/closure say
        // clean, the bags baselines over-report.
        let mut log = EventLog::new();
        run_serial(&mut log, |ctx| {
            let x = ctx.shared_var(0u64, "x");
            let x2 = x.clone();
            let f = ctx.future(move |ctx| x2.write(ctx, 1));
            ctx.get(&f);
            let _ = x.read(ctx);
        });
        log
    }

    fn run(name: &str, log: &EventLog) -> AnalysisOutcome<AnyReport> {
        let events = log.events.iter().cloned().map(Ok::<_, Infallible>);
        match run_on_events(name, events) {
            Ok(o) => o,
            Err(never) => match never {},
        }
    }

    #[test]
    fn every_name_resolves_and_runs() {
        let log = future_sync_trace();
        for &name in DETECTOR_NAMES {
            assert!(is_detector(name));
            let out = run(name, &log);
            assert_eq!(out.counters.checks(), 2, "{name}");
            assert!(out.counters.events > 2, "{name}");
        }
        assert!(!is_detector("banana"));
    }

    #[test]
    fn future_synchronization_splits_exact_from_approximate() {
        let log = future_sync_trace();
        for name in ["dtrg", "vc", "closure"] {
            assert!(!run(name, &log).report.has_races(), "{name} is exact");
        }
        for name in ["espbags", "spd3"] {
            let rep = run(name, &log).report;
            assert!(
                rep.has_races(),
                "{name} ignores get() and must over-report here"
            );
            assert!(
                rep.notes().iter().any(|n| n.contains("get()")),
                "{name} must flag its ignored gets: {:?}",
                rep.notes()
            );
        }
    }

    #[test]
    fn supervised_detectors_match_their_serial_runs() {
        use futrace_offline::SyntheticChunks;
        let log = future_sync_trace();
        let plan = SupervisorPlan {
            shard: ShardPlan::with_shards(2),
            ..SupervisorPlan::default()
        };
        for name in ["dtrg", "vc"] {
            let serial = run(name, &log).report;
            let out = run_supervised_on_events(
                name,
                || {
                    SyntheticChunks::new(
                        log.events.iter().cloned().map(Ok::<_, Infallible>),
                        4,
                    )
                },
                &plan,
                None,
            )
            .unwrap();
            let SupervisedOutcome::Completed {
                report,
                stats,
                supervision,
            } = out
            else {
                panic!("no stop requested, must complete");
            };
            assert_eq!(serial.race_count(), report.race_count(), "{name}");
            assert_eq!(stats.shards, 2, "{name}");
            assert!(!supervision.any(), "{name}: clean run, nothing to report");
        }
    }

    #[test]
    fn shardable_detectors_match_their_serial_runs() {
        let log = future_sync_trace();
        let plan = ShardPlan::with_shards(3);
        for name in DETECTOR_NAMES {
            assert_eq!(is_shardable(name), matches!(*name, "dtrg" | "vc"));
        }
        for name in ["dtrg", "vc"] {
            let serial = run(name, &log).report;
            let events = log.events.iter().cloned().map(Ok::<_, Infallible>);
            let sharded = match run_sharded_on_events(name, events, &plan) {
                Ok(r) => r,
                Err(never) => match never {},
            };
            assert_eq!(serial.race_count(), sharded.report.race_count(), "{name}");
            assert_eq!(sharded.stats.shards, 3);
        }
    }
}
