//! Corpus discovery: find every `.ftrc` trace under a root directory.
//!
//! Discovery order is part of the determinism contract — job ids are
//! assigned in discovery order, so the walk sorts every directory's
//! entries and yields `/`-separated relative paths that compare the same
//! on every platform and filesystem.

#![warn(missing_docs)]

use futrace_util::crc32::crc32;
use std::io;
use std::path::{Path, PathBuf};

/// One discovered trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEntry {
    /// Path relative to the corpus root, `/`-separated (stable key for
    /// manifests and reports).
    pub rel: String,
    /// Absolute (root-joined) path for reading.
    pub path: PathBuf,
    /// File size in bytes (manifest invalidation guard).
    pub len: u64,
    /// CRC-32 of the file contents (manifest invalidation guard: a
    /// same-length in-place edit still invalidates stale records).
    pub crc: u32,
}

/// Recursively collects every `*.ftrc` file under `root`, sorted by
/// relative path. Symlinked directories are not followed (a corpus with
/// a symlink cycle must not hang the run).
pub fn discover(root: &Path) -> io::Result<Vec<TraceEntry>> {
    let mut out = Vec::new();
    walk(root, root, &mut out)?;
    out.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok(out)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<TraceEntry>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let ftype = entry.file_type()?;
        if ftype.is_dir() {
            walk(root, &path, out)?;
        } else if ftype.is_file() && path.extension().is_some_and(|e| e == "ftrc") {
            let rel = path
                .strip_prefix(root)
                .expect("walked paths sit under root")
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            // Hash the contents, not just the length: resume records are
            // keyed on what was actually analyzed, so a same-size rewrite
            // must invalidate them. len comes from the same read so the
            // two guards can never disagree about which bytes they saw.
            let data = std::fs::read(&path)?;
            let crc = crc32(&data);
            let len = data.len() as u64;
            out.push(TraceEntry {
                rel,
                path,
                len,
                crc,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "futrace_discover_{tag}_{}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn finds_nested_traces_sorted_and_skips_other_files() {
        let root = scratch("nested");
        std::fs::create_dir_all(root.join("sub/deeper")).unwrap();
        std::fs::write(root.join("b.ftrc"), b"x").unwrap();
        std::fs::write(root.join("a.ftrc"), b"xy").unwrap();
        std::fs::write(root.join("sub/c.ftrc"), b"xyz").unwrap();
        std::fs::write(root.join("sub/deeper/d.ftrc"), b"").unwrap();
        std::fs::write(root.join("notes.txt"), b"ignored").unwrap();
        std::fs::write(root.join("sub/trace.ftrc.bak"), b"ignored").unwrap();

        let found = discover(&root).unwrap();
        let rels: Vec<_> = found.iter().map(|t| t.rel.as_str()).collect();
        assert_eq!(
            rels,
            vec!["a.ftrc", "b.ftrc", "sub/c.ftrc", "sub/deeper/d.ftrc"]
        );
        assert_eq!(found[0].len, 2);
        assert_eq!(found[3].len, 0);
        // Same length, different bytes → different content hash.
        assert_ne!(found[0].crc, crc32(b"zz"));
        assert_eq!(found[0].crc, crc32(b"xy"));
        assert_eq!(found[3].crc, crc32(b""));
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn empty_dir_is_empty_corpus() {
        let root = scratch("empty");
        assert!(discover(&root).unwrap().is_empty());
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn missing_root_is_io_error() {
        let root = scratch("gone");
        std::fs::remove_dir_all(&root).unwrap();
        assert!(discover(&root).is_err());
    }
}
