//! # futrace-corpus — fleet-scale batch analysis
//!
//! Turns "analyze a trace" into "operate a fleet of analyses": discover
//! every `.ftrc` under a directory, build a job DAG (per-trace ×
//! per-detector analyze jobs → a per-trace compare job → one final
//! aggregate job), execute it on a std-only worker pool with a
//! `max_parallel` cap and a continue-vs-abort failure policy, persist
//! per-job completion in a CRC-framed manifest so a killed run resumes
//! by skipping finished work, and emit one deterministic JSON +
//! markdown report (agreement matrix vs the DTRG reference, verdict
//! drift, damaged-trace inventory, corpus percentiles).
//!
//! Layering note: this crate hosts the [`detectors`] registry (moved
//! here from `futrace-bench`) because corpus jobs run *every* detector,
//! not just the DTRG front door in the umbrella crate's `Analyze`
//! builder — both ride the same engine (`run_analysis` and the
//! sharded/supervised pipelines in `futrace-offline`) underneath.
//! `futrace_bench::detectors` re-exports this module, so existing CLI
//! call sites are unchanged.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dag;
pub mod detectors;
pub mod discover;
pub mod manifest;
pub mod report;

pub use dag::{Dag, DagRun, ExecPlan, FailurePolicy, JobId, JobStatus};
pub use discover::TraceEntry;
pub use manifest::{JobKind, JobRecord, ManifestError, RecStatus, RunConfig, MANIFEST_FILE};
pub use report::{CorpusReport, RunTelemetry};

use detectors::{is_detector, is_shardable, AnyReport};
use futrace_offline::{trace_events, ShardPlan, SupervisedOutcome, SupervisorPlan, SyntheticChunks};
use futrace_runtime::Event;
use futrace_util::stats::Timer;
use std::collections::HashMap;
use std::convert::Infallible;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// File name of the deterministic JSON report inside the output dir.
pub const REPORT_JSON: &str = "report.json";
/// File name of the markdown report inside the output dir.
pub const REPORT_MD: &str = "report.md";

/// Chunk size used when feeding decoded events to the supervised
/// pipeline (mirrors the umbrella `Analyze` builder's constant).
const SYNTHETIC_CHUNK_EVENTS: u64 = 4096;

/// Options for one corpus run.
#[derive(Clone, Debug)]
pub struct CorpusOptions {
    /// Detector names in run order. The reference is `dtrg` when
    /// present, else the first entry.
    pub detectors: Vec<String>,
    /// Worker-pool width (≥ 1).
    pub max_parallel: usize,
    /// Continue past failed jobs (poisoning only their dependents) or
    /// abort the whole run on the first failure.
    pub policy: FailurePolicy,
    /// Shard count for shardable detectors (`dtrg`, `vc`); others always
    /// run serial. `None` = everything serial.
    pub shards: Option<usize>,
    /// Run shardable detectors under the fault-tolerant supervisor.
    pub supervised: bool,
    /// Lenient trace reads: skip CRC-damaged chunks instead of failing.
    pub lenient: bool,
    /// Ignore (truncate) any existing manifest instead of resuming.
    pub fresh: bool,
    /// Suspend dispatch after this many job completions — the
    /// deterministic kill-midway hook for resume tests.
    pub stop_after_jobs: Option<u64>,
    /// Per-job wall-clock deadline: a job still running past it is
    /// marked failed (its compare job poisoned) so one wedged trace
    /// cannot stall the corpus. `None` = no deadline.
    pub job_timeout: Option<std::time::Duration>,
    /// Re-queue a failed or timed-out job up to this many times before
    /// it settles failed and poisons its dependents (0 = first strike
    /// settles, the historical behavior).
    pub job_retries: u64,
    /// Output directory for manifest + reports (created if missing).
    pub out_dir: PathBuf,
}

impl CorpusOptions {
    /// Defaults: all detectors, serial, single worker, continue policy,
    /// strict reads, writing into `out_dir`.
    pub fn new(out_dir: impl Into<PathBuf>) -> Self {
        CorpusOptions {
            detectors: detectors::DETECTOR_NAMES.iter().map(|s| s.to_string()).collect(),
            max_parallel: 1,
            policy: FailurePolicy::Continue,
            shards: None,
            supervised: false,
            lenient: false,
            fresh: false,
            stop_after_jobs: None,
            job_timeout: None,
            job_retries: 0,
            out_dir: out_dir.into(),
        }
    }
}

/// Any way a corpus run can fail before producing an outcome.
#[derive(Debug)]
pub enum CorpusError {
    /// Invalid option combination.
    Config(String),
    /// Discovery or output-dir filesystem error.
    Io(io::Error),
    /// The resume manifest exists but cannot be used (see
    /// [`ManifestError`]); `--fresh` discards it.
    Manifest(ManifestError),
}

impl fmt::Display for CorpusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorpusError::Config(msg) => write!(f, "invalid corpus options: {msg}"),
            CorpusError::Io(e) => write!(f, "corpus io error: {e}"),
            CorpusError::Manifest(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CorpusError {}

impl From<io::Error> for CorpusError {
    fn from(e: io::Error) -> Self {
        CorpusError::Io(e)
    }
}

impl From<ManifestError> for CorpusError {
    fn from(e: ManifestError) -> Self {
        CorpusError::Manifest(e)
    }
}

/// Corpus-level exit verdict, ordered by severity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExitVerdict {
    /// No races, no failures: exit 0.
    Clean,
    /// At least one job failed / was poisoned / never completed (or the
    /// run aborted): exit 1.
    Damage,
    /// The reference detector found races in at least one trace: exit 3.
    Races,
}

impl ExitVerdict {
    /// Process exit code for the CLI.
    pub fn code(self) -> i32 {
        match self {
            ExitVerdict::Clean => 0,
            ExitVerdict::Damage => 1,
            ExitVerdict::Races => 3,
        }
    }
}

/// Everything a finished (or suspended) corpus run reports back.
#[derive(Debug)]
pub struct CorpusOutcome {
    /// Traces discovered.
    pub traces: usize,
    /// Jobs whose runner executed this run.
    pub jobs_ran: u64,
    /// Jobs skipped because the resume manifest already recorded them.
    pub jobs_skipped: u64,
    /// Retry dispatches absorbed by `--job-retries` this run.
    pub jobs_retried: u64,
    /// True iff `stop_after_jobs` suspended dispatch (no report then).
    pub suspended: bool,
    /// True iff the run aborted under [`FailurePolicy::Abort`].
    pub aborted: bool,
    /// The aggregate report (`None` when suspended).
    pub report: Option<CorpusReport>,
    /// Where the JSON report was written (`None` when suspended).
    pub report_json: Option<PathBuf>,
    /// Where the markdown report was written (`None` when suspended).
    pub report_md: Option<PathBuf>,
    /// Exit verdict (suspended runs report [`ExitVerdict::Clean`] — the
    /// stop was operator-requested, resume to finish).
    pub exit: ExitVerdict,
}

fn validate(opts: &CorpusOptions) -> Result<(), CorpusError> {
    if opts.detectors.is_empty() {
        return Err(CorpusError::Config("at least one detector required".into()));
    }
    for d in &opts.detectors {
        if !is_detector(d) {
            return Err(CorpusError::Config(format!("unknown detector {d:?}")));
        }
    }
    for (i, d) in opts.detectors.iter().enumerate() {
        if opts.detectors[..i].contains(d) {
            return Err(CorpusError::Config(format!("duplicate detector {d:?}")));
        }
    }
    if opts.max_parallel == 0 {
        return Err(CorpusError::Config("--max-parallel must be >= 1".into()));
    }
    if opts.shards == Some(0) {
        return Err(CorpusError::Config("--shards must be >= 1".into()));
    }
    Ok(())
}

/// Decodes a whole trace blob, salvaging what a lenient read allows.
/// Returns the events plus the number of skipped chunks, or the first
/// fatal error rendered as a stable string.
fn decode_trace(blob: &[u8], lenient: bool) -> Result<(Vec<Event>, u64), String> {
    let mut it = trace_events(blob, lenient);
    let mut events = Vec::new();
    for item in &mut it {
        match item {
            Ok(ev) => events.push(ev),
            Err(e) => return Err(format!("invalid trace: {e}")),
        }
    }
    Ok((events, it.skipped_chunks()))
}

/// Runs one detector over decoded events along the configured path
/// (serial / sharded / supervised), returning verdict + cache counters.
fn run_detector(
    name: &str,
    events: &[Event],
    opts: &CorpusOptions,
) -> Result<(AnyReport, u64, u64), String> {
    let shards = opts.shards.filter(|_| is_shardable(name));
    let report = match shards {
        None => detectors::run_on_recorded(name, events).report,
        Some(n) if opts.supervised => {
            let plan = SupervisorPlan {
                shard: ShardPlan::with_shards(n),
                ..SupervisorPlan::default()
            };
            let out = detectors::run_supervised_on_events(
                name,
                || {
                    SyntheticChunks::new(
                        events.iter().cloned().map(Ok::<_, Infallible>),
                        SYNTHETIC_CHUNK_EVENTS,
                    )
                },
                &plan,
                None,
            )
            .map_err(|e| format!("supervised run failed: {e}"))?;
            match out {
                SupervisedOutcome::Completed { report, .. } => report,
                SupervisedOutcome::Suspended { .. } => {
                    unreachable!("no stop_after_chunks requested")
                }
            }
        }
        Some(n) => {
            let plan = ShardPlan::with_shards(n);
            let run = match detectors::run_sharded_on_events(
                name,
                events.iter().cloned().map(Ok::<_, Infallible>),
                &plan,
            ) {
                Ok(run) => run,
                Err(never) => match never {},
            };
            run.report
        }
    };
    let (hits, misses) = report.cache_counters().unwrap_or((0, 0));
    Ok((report, hits, misses))
}

enum JobSpec {
    Analyze { trace: usize, detector: usize },
    Compare { trace: usize },
    Aggregate,
}

/// Runs the whole corpus pipeline. See the module docs; this is the
/// only entry point the CLI needs.
pub fn run_corpus(root: &Path, opts: &CorpusOptions) -> Result<CorpusOutcome, CorpusError> {
    validate(opts)?;
    let traces = discover::discover(root)?;
    std::fs::create_dir_all(&opts.out_dir)?;

    let reference = if opts.detectors.iter().any(|d| d == "dtrg") {
        "dtrg".to_string()
    } else {
        opts.detectors[0].clone()
    };
    let config = RunConfig {
        detectors: opts.detectors.clone(),
        shards: opts.shards.unwrap_or(0) as u64,
        supervised: opts.supervised,
        lenient: opts.lenient,
    };
    let manifest_path = opts.out_dir.join(MANIFEST_FILE);

    // Load (or start) the manifest; resumed records seed the store.
    let mut store: report::RecordMap = HashMap::new();
    let writer = if opts.fresh {
        manifest::ManifestWriter::create(&manifest_path, &config)?
    } else {
        match manifest::load(&manifest_path, &config)? {
            None => manifest::ManifestWriter::create(&manifest_path, &config)?,
            Some(m) => {
                for rec in m.records {
                    store.insert(
                        (rec.kind, rec.trace.clone(), rec.detector.clone()),
                        rec,
                    );
                }
                manifest::ManifestWriter::open_append(&manifest_path)?
            }
        }
    };

    // Build the DAG: analyze jobs per (trace, detector), one compare per
    // trace, one aggregate barrier over everything. Ids are assigned in
    // discovery × detector order, which (with the executor's lowest-id
    // dispatch) pins the canonical --max-parallel 1 order.
    let mut dag = Dag::new();
    let mut specs = Vec::new();
    let mut preset = Vec::new();
    let mut all_ids = Vec::new();
    // A record resumes a job only if the trace file is unchanged —
    // length AND content hash, so a same-size rewrite re-runs too.
    let preset_for = |kind: JobKind, trace: &TraceEntry, det: &str| -> Option<JobStatus> {
        let rec = store.get(&(kind, trace.rel.clone(), det.to_string()))?;
        if rec.trace_len != trace.len || rec.trace_crc != trace.crc {
            return None;
        }
        Some(match &rec.status {
            RecStatus::Ok => JobStatus::Ok,
            RecStatus::Failed(msg) => JobStatus::Failed(msg.clone()),
        })
    };
    for (ti, trace) in traces.iter().enumerate() {
        let mut analyze_ids = Vec::new();
        for (di, det) in opts.detectors.iter().enumerate() {
            let id = dag.add(format!("analyze {} [{det}]", trace.rel), &[]);
            specs.push(JobSpec::Analyze {
                trace: ti,
                detector: di,
            });
            preset.push(preset_for(JobKind::Analyze, trace, det));
            analyze_ids.push(id);
        }
        let id = dag.add(format!("compare {}", trace.rel), &analyze_ids);
        specs.push(JobSpec::Compare { trace: ti });
        preset.push(preset_for(JobKind::Compare, trace, ""));
        all_ids.extend(analyze_ids);
        all_ids.push(id);
    }
    let aggregate_id = dag.add_barrier("aggregate", &all_ids);
    specs.push(JobSpec::Aggregate);
    preset.push(None);

    // Drop stale records (changed length or content) so the report
    // never mixes results from a replaced trace file.
    store.retain(|(_, rel, _), rec| {
        traces
            .iter()
            .find(|t| &t.rel == rel)
            .is_some_and(|t| t.len == rec.trace_len && t.crc == rec.trace_crc)
    });

    let store = Mutex::new(store);
    let writer = Mutex::new(writer);
    let fresh_failure = AtomicBool::new(false);
    // Per-job runner invocations, so a retried job's manifest record
    // carries how many attempts its verdict absorbed.
    let invocations: Vec<std::sync::atomic::AtomicU64> =
        (0..dag.len()).map(|_| std::sync::atomic::AtomicU64::new(0)).collect();
    let report_slot: Mutex<Option<CorpusReport>> = Mutex::new(None);
    let rel_names: Vec<String> = traces.iter().map(|t| t.rel.clone()).collect();

    let record = |rec: JobRecord| -> Result<(), String> {
        let failed = matches!(rec.status, RecStatus::Failed(_));
        let err = match &rec.status {
            RecStatus::Failed(msg) => Some(msg.clone()),
            RecStatus::Ok => None,
        };
        writer
            .lock()
            .unwrap()
            .append(&rec)
            .map_err(|e| format!("manifest append failed: {e}"))?;
        store
            .lock()
            .unwrap()
            .insert((rec.kind, rec.trace.clone(), rec.detector.clone()), rec);
        if failed {
            Err(err.unwrap())
        } else {
            Ok(())
        }
    };

    let runner = |id: JobId| -> Result<(), String> {
        let prior_attempts = invocations[id].fetch_add(1, Ordering::SeqCst);
        match &specs[id] {
            JobSpec::Analyze { trace, detector } => {
                let t = &traces[*trace];
                let det = &opts.detectors[*detector];
                let timer = Timer::start();
                let mut rec = JobRecord {
                    kind: JobKind::Analyze,
                    trace: t.rel.clone(),
                    detector: det.clone(),
                    trace_len: t.len,
                    trace_crc: t.crc,
                    status: RecStatus::Ok,
                    racy: false,
                    races: 0,
                    events: 0,
                    skipped_chunks: 0,
                    cache_hits: 0,
                    cache_misses: 0,
                    wall_ms: 0.0,
                    disagreeing: vec![],
                    retries: prior_attempts,
                };
                let result = std::fs::read(&t.path)
                    .map_err(|e| format!("cannot read trace: {e}"))
                    .and_then(|blob| decode_trace(&blob, opts.lenient))
                    .and_then(|(events, skipped)| {
                        rec.events = events.len() as u64;
                        rec.skipped_chunks = skipped;
                        run_detector(det, &events, opts)
                    });
                match result {
                    Ok((report, hits, misses)) => {
                        rec.racy = report.has_races();
                        rec.races = report.race_count();
                        rec.cache_hits = hits;
                        rec.cache_misses = misses;
                    }
                    Err(msg) => rec.status = RecStatus::Failed(msg),
                }
                rec.wall_ms = timer.elapsed_ms();
                if matches!(rec.status, RecStatus::Failed(_))
                    && opts.policy == FailurePolicy::Abort
                {
                    fresh_failure.store(true, Ordering::SeqCst);
                }
                record(rec)
            }
            JobSpec::Compare { trace } => {
                let t = &traces[*trace];
                let timer = Timer::start();
                let st = store.lock().unwrap();
                let get = |det: &str| {
                    st.get(&(JobKind::Analyze, t.rel.clone(), det.to_string()))
                        .cloned()
                };
                let ref_rec = get(&reference)
                    .ok_or_else(|| "reference analyze record missing".to_string())?;
                let mut disagreeing = Vec::new();
                for det in &opts.detectors {
                    let rec = get(det)
                        .ok_or_else(|| format!("analyze record for {det} missing"))?;
                    if rec.racy != ref_rec.racy {
                        disagreeing.push(det.clone());
                    }
                }
                drop(st);
                record(JobRecord {
                    kind: JobKind::Compare,
                    trace: t.rel.clone(),
                    detector: String::new(),
                    trace_len: t.len,
                    trace_crc: t.crc,
                    status: RecStatus::Ok,
                    racy: ref_rec.racy,
                    races: ref_rec.races,
                    events: ref_rec.events,
                    skipped_chunks: ref_rec.skipped_chunks,
                    cache_hits: 0,
                    cache_misses: 0,
                    wall_ms: timer.elapsed_ms(),
                    disagreeing,
                    retries: prior_attempts,
                })
            }
            JobSpec::Aggregate => {
                // Barrier: every other job has settled, so the store is
                // final. Build the deterministic report now.
                let st = store.lock().unwrap();
                let rep = report::build(
                    &rel_names,
                    &opts.detectors,
                    &reference,
                    &st,
                    fresh_failure.load(Ordering::SeqCst),
                );
                drop(st);
                *report_slot.lock().unwrap() = Some(rep);
                Ok(())
            }
        }
    };

    let plan = ExecPlan {
        max_parallel: opts.max_parallel,
        policy: opts.policy,
        stop_after_jobs: opts.stop_after_jobs,
        job_timeout: opts.job_timeout,
        job_retries: opts.job_retries,
    };
    let run = dag::execute(&dag, &plan, preset, runner);

    let report = report_slot.into_inner().unwrap();
    let suspended = run.suspended;
    debug_assert_eq!(
        report.is_some(),
        run.status[aggregate_id].is_ok(),
        "report exists iff the aggregate barrier ran"
    );

    let (report_json, report_md) = match &report {
        Some(rep) => {
            let json_path = opts.out_dir.join(REPORT_JSON);
            let md_path = opts.out_dir.join(REPORT_MD);
            std::fs::write(&json_path, rep.to_json())?;
            let telemetry = RunTelemetry {
                jobs_ran: run.ran,
                jobs_skipped: run.skipped,
                jobs_retried: run.retried,
                wall_ms_pct: report::wall_ms_percentiles(&store.lock().unwrap()),
            };
            std::fs::write(&md_path, rep.to_markdown(&telemetry))?;
            (Some(json_path), Some(md_path))
        }
        None => (None, None),
    };

    let exit = if suspended {
        ExitVerdict::Clean
    } else if report.as_ref().is_some_and(|r| r.summary.racy_traces > 0) {
        ExitVerdict::Races
    } else if run.aborted
        || run.any_failed()
        || report
            .as_ref()
            .is_some_and(|r| r.summary.analyze_missing > 0)
    {
        ExitVerdict::Damage
    } else {
        ExitVerdict::Clean
    };

    Ok(CorpusOutcome {
        traces: traces.len(),
        jobs_ran: run.ran,
        jobs_skipped: run.skipped,
        jobs_retried: run.retried,
        suspended,
        aborted: run.aborted,
        report,
        report_json,
        report_md,
        exit,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_rejects_bad_options() {
        let base = CorpusOptions::new(std::env::temp_dir());
        let mut o = base.clone();
        o.detectors.clear();
        assert!(matches!(run_err(&o), CorpusError::Config(_)));
        let mut o = base.clone();
        o.detectors = vec!["banana".into()];
        assert!(matches!(run_err(&o), CorpusError::Config(_)));
        let mut o = base.clone();
        o.detectors = vec!["dtrg".into(), "dtrg".into()];
        assert!(matches!(run_err(&o), CorpusError::Config(_)));
        let mut o = base.clone();
        o.max_parallel = 0;
        assert!(matches!(run_err(&o), CorpusError::Config(_)));
        let mut o = base;
        o.shards = Some(0);
        assert!(matches!(run_err(&o), CorpusError::Config(_)));
    }

    fn run_err(opts: &CorpusOptions) -> CorpusError {
        validate(opts).unwrap_err()
    }

    #[test]
    fn empty_corpus_is_clean() {
        let root = std::env::temp_dir().join(format!("futrace_corpus_empty_{}", std::process::id()));
        std::fs::remove_dir_all(&root).ok();
        std::fs::create_dir_all(&root).unwrap();
        let mut opts = CorpusOptions::new(root.join("out"));
        opts.detectors = vec!["dtrg".into()];
        let out = run_corpus(&root, &opts).unwrap();
        assert_eq!(out.traces, 0);
        assert_eq!(out.exit, ExitVerdict::Clean);
        let rep = out.report.unwrap();
        assert_eq!(rep.traces, 0);
        assert!(rep.events_pct.is_none());
        std::fs::remove_dir_all(&root).ok();
    }
}
