//! The corpus resume manifest (`FMAN`): a CRC-framed append-only journal
//! of finished jobs, one file per corpus run directory.
//!
//! Shape (all multi-byte integers via `futrace_util::wire`):
//!
//! ```text
//! "FMAN"                                   magic
//! [len u32 LE][crc32 u32 LE][payload]      block 0: run config
//! [len u32 LE][crc32 u32 LE][payload]      block 1..: one JobRecord each
//! ```
//!
//! Every block is self-checking (CRC-32 over its payload), and each
//! [`ManifestWriter::append`] is one `write_all` + flush, so a corpus run
//! killed mid-write leaves at worst one torn trailing block. The loader
//! stops at the first damaged block and reports how many bytes it
//! ignored — peal-style resume semantics: whatever was durably recorded
//! is skipped on the next run, everything else re-executes.
//!
//! The config block pins the option set the records were produced under
//! (detector list, shards, supervised, lenient). Resuming with different
//! options would silently mix incomparable results, so a mismatch is a
//! hard [`ManifestError::ConfigMismatch`] — the CLI tells the user to
//! pass `--fresh`.

#![warn(missing_docs)]

use futrace_offline::crc32::crc32;
use futrace_util::wire::{self, Cursor, WireError};
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"FMAN";
// v2 added `trace_crc` to every record (content-hash invalidation).
// v3 added `retries` (attempts the job's verdict absorbed beyond its
// first) so retry telemetry survives resume. Old manifests fail with
// `ManifestError::Version` — v1 records carry no hash to validate
// against, and a v2 record decoded as v3 would misread its tail;
// `--fresh` is the upgrade path.
const VERSION: u64 = 3;

/// Name of the manifest file inside the corpus output directory.
pub const MANIFEST_FILE: &str = "corpus.fman";

/// The option set a manifest's records were produced under. Two runs
/// are resume-compatible iff these compare equal.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunConfig {
    /// Detector names in run order.
    pub detectors: Vec<String>,
    /// Shard count for shardable detectors (0 = serial).
    pub shards: u64,
    /// Whether shardable detectors ran under the supervisor.
    pub supervised: bool,
    /// Whether trace reads were lenient (skip damaged chunks).
    pub lenient: bool,
}

/// Which DAG stage a record came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum JobKind {
    /// One detector over one trace.
    Analyze,
    /// The per-trace agreement job.
    Compare,
}

/// Terminal result of a recorded job.
#[derive(Clone, Debug, PartialEq)]
pub enum RecStatus {
    /// The job completed and its result fields are meaningful.
    Ok,
    /// The job failed deterministically (decode error, detector panic
    /// surfaced as an error, unreadable file). The message is stable
    /// across runs, so resume reuses it.
    Failed(String),
}

/// One durably-recorded job outcome — the unit of resume.
#[derive(Clone, Debug, PartialEq)]
pub struct JobRecord {
    /// Stage.
    pub kind: JobKind,
    /// Trace path relative to the corpus root, `/`-separated.
    pub trace: String,
    /// Detector name for analyze records; empty for compare records.
    pub detector: String,
    /// Byte length of the trace file when the job ran. A changed length
    /// invalidates the record (the trace was replaced or repaired).
    pub trace_len: u64,
    /// CRC-32 of the trace file contents when the job ran. Invalidates
    /// the record on any content change, including same-length edits
    /// that the `trace_len` guard alone would miss.
    pub trace_crc: u32,
    /// Ok or the failure message.
    pub status: RecStatus,
    /// Verdict: did this job report races? For compare records, the
    /// reference detector's verdict.
    pub racy: bool,
    /// Race count backing `racy`.
    pub races: u64,
    /// Events analyzed (0 for a valid-but-empty trace).
    pub events: u64,
    /// Damaged chunks skipped by a lenient read.
    pub skipped_chunks: u64,
    /// Detector hot-path cache hits (0 for uncached detectors).
    pub cache_hits: u64,
    /// Detector hot-path cache misses.
    pub cache_misses: u64,
    /// Wall-clock milliseconds the job took. Nondeterministic — kept out
    /// of the deterministic JSON report, surfaced in markdown only.
    pub wall_ms: f64,
    /// Compare records: detectors whose verdict differs from the
    /// reference (in run order). Empty for analyze records.
    pub disagreeing: Vec<String>,
    /// Runner attempts this job's recorded verdict absorbed beyond the
    /// first (`--job-retries`). Telemetry only — a resumed record's
    /// retries still count in the report, but never re-run anything.
    pub retries: u64,
}

impl JobRecord {
    /// Stable identity of the job across runs.
    pub fn key(&self) -> (JobKind, &str, &str) {
        (self.kind, &self.trace, &self.detector)
    }
}

/// Any way loading a manifest can fail.
#[derive(Debug)]
pub enum ManifestError {
    /// Filesystem error.
    Io(io::Error),
    /// The file exists but does not start with the `FMAN` magic.
    NotManifest,
    /// Unknown format version.
    Version(u64),
    /// The config block is intact but differs from the current run's
    /// options; resuming would mix incomparable results.
    ConfigMismatch {
        /// Options recorded in the manifest.
        found: RunConfig,
    },
    /// The config block itself is damaged.
    Corrupt(&'static str),
}

impl fmt::Display for ManifestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ManifestError::Io(e) => write!(f, "manifest io error: {e}"),
            ManifestError::NotManifest => write!(f, "not a corpus manifest (bad magic)"),
            ManifestError::Version(v) => write!(
                f,
                "unsupported manifest version {v}; rerun with --fresh to discard it"
            ),
            ManifestError::ConfigMismatch { found } => write!(
                f,
                "manifest was written with different options \
                 (detectors={:?}, shards={}, supervised={}, lenient={}); \
                 rerun with --fresh to discard it",
                found.detectors, found.shards, found.supervised, found.lenient
            ),
            ManifestError::Corrupt(what) => write!(f, "corrupt manifest: {what}"),
        }
    }
}

impl std::error::Error for ManifestError {}

impl From<io::Error> for ManifestError {
    fn from(e: io::Error) -> Self {
        ManifestError::Io(e)
    }
}

/// A loaded manifest: the durable records plus how much torn tail (if
/// any) the loader skipped.
#[derive(Debug)]
pub struct Manifest {
    /// Every intact record, in append order.
    pub records: Vec<JobRecord>,
    /// Bytes of damaged/torn trailing data ignored (0 on a clean file).
    pub ignored_tail: u64,
}

fn encode_config(cfg: &RunConfig) -> Vec<u8> {
    let mut buf = Vec::new();
    wire::put_varint(&mut buf, VERSION);
    wire::put_varint(&mut buf, cfg.detectors.len() as u64);
    for d in &cfg.detectors {
        wire::put_str(&mut buf, d);
    }
    wire::put_varint(&mut buf, cfg.shards);
    buf.push(cfg.supervised as u8);
    buf.push(cfg.lenient as u8);
    buf
}

fn decode_config(payload: &[u8]) -> Result<RunConfig, ManifestError> {
    let mut c = Cursor::new(payload);
    let version = c.varint("version").map_err(wire_corrupt)?;
    if version != VERSION {
        return Err(ManifestError::Version(version));
    }
    let n = c.varint("detector count").map_err(wire_corrupt)?;
    let mut detectors = Vec::new();
    for _ in 0..n {
        detectors.push(c.str("detector").map_err(wire_corrupt)?.to_string());
    }
    let shards = c.varint("shards").map_err(wire_corrupt)?;
    let supervised = c.bytes_u8("supervised")? != 0;
    let lenient = c.bytes_u8("lenient")? != 0;
    Ok(RunConfig {
        detectors,
        shards,
        supervised,
        lenient,
    })
}

fn wire_corrupt(e: WireError) -> ManifestError {
    match e {
        WireError::Truncated(w) | WireError::Malformed(w) => ManifestError::Corrupt(w),
    }
}

trait CursorExt {
    fn bytes_u8(&mut self, what: &'static str) -> Result<u8, ManifestError>;
}

impl CursorExt for Cursor<'_> {
    fn bytes_u8(&mut self, what: &'static str) -> Result<u8, ManifestError> {
        let v = self.varint(what).map_err(wire_corrupt)?;
        u8::try_from(v).map_err(|_| ManifestError::Corrupt(what))
    }
}

fn encode_record(rec: &JobRecord) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.push(match rec.kind {
        JobKind::Analyze => 0u8,
        JobKind::Compare => 1u8,
    });
    wire::put_str(&mut buf, &rec.trace);
    wire::put_str(&mut buf, &rec.detector);
    wire::put_varint(&mut buf, rec.trace_len);
    wire::put_u32_le(&mut buf, rec.trace_crc);
    match &rec.status {
        RecStatus::Ok => {
            buf.push(0);
            wire::put_str(&mut buf, "");
        }
        RecStatus::Failed(msg) => {
            buf.push(1);
            wire::put_str(&mut buf, msg);
        }
    }
    buf.push(rec.racy as u8);
    wire::put_varint(&mut buf, rec.races);
    wire::put_varint(&mut buf, rec.events);
    wire::put_varint(&mut buf, rec.skipped_chunks);
    wire::put_varint(&mut buf, rec.cache_hits);
    wire::put_varint(&mut buf, rec.cache_misses);
    wire::put_f64(&mut buf, rec.wall_ms);
    wire::put_varint(&mut buf, rec.disagreeing.len() as u64);
    for d in &rec.disagreeing {
        wire::put_str(&mut buf, d);
    }
    wire::put_varint(&mut buf, rec.retries);
    buf
}

fn decode_record(payload: &[u8]) -> Result<JobRecord, WireError> {
    let mut c = Cursor::new(payload);
    let kind = match c.varint("kind")? {
        0 => JobKind::Analyze,
        1 => JobKind::Compare,
        _ => return Err(WireError::Malformed("kind")),
    };
    let trace = c.str("trace")?.to_string();
    let detector = c.str("detector")?.to_string();
    let trace_len = c.varint("trace_len")?;
    let trace_crc = c.u32_le("trace_crc")?;
    let status = match c.varint("status")? {
        0 => {
            let _ = c.str("error")?;
            RecStatus::Ok
        }
        1 => RecStatus::Failed(c.str("error")?.to_string()),
        _ => return Err(WireError::Malformed("status")),
    };
    let racy = c.varint("racy")? != 0;
    let races = c.varint("races")?;
    let events = c.varint("events")?;
    let skipped_chunks = c.varint("skipped_chunks")?;
    let cache_hits = c.varint("cache_hits")?;
    let cache_misses = c.varint("cache_misses")?;
    let wall_ms = c.f64("wall_ms")?;
    let n = c.varint("disagreeing count")?;
    let mut disagreeing = Vec::new();
    for _ in 0..n {
        disagreeing.push(c.str("disagreeing")?.to_string());
    }
    let retries = c.varint("retries")?;
    Ok(JobRecord {
        kind,
        trace,
        detector,
        trace_len,
        trace_crc,
        status,
        racy,
        races,
        events,
        skipped_chunks,
        cache_hits,
        cache_misses,
        wall_ms,
        disagreeing,
        retries,
    })
}

fn frame_block(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 8);
    wire::put_u32_le(&mut out, payload.len() as u32);
    wire::put_u32_le(&mut out, crc32(payload));
    out.extend_from_slice(payload);
    out
}

/// Reads the next block; `None` means clean EOF or torn/damaged tail
/// (the distinction only matters for `ignored_tail` accounting).
fn next_block<'a>(data: &'a [u8], pos: &mut usize) -> Option<&'a [u8]> {
    let rest = &data[*pos..];
    if rest.len() < 8 {
        return None;
    }
    let len = u32::from_le_bytes(rest[0..4].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(rest[4..8].try_into().unwrap());
    if rest.len() < 8 + len {
        return None;
    }
    let payload = &rest[8..8 + len];
    if crc32(payload) != crc {
        return None;
    }
    *pos += 8 + len;
    Some(payload)
}

/// Loads the manifest at `path`, validating it against `cfg`. Returns
/// `Ok(None)` when the file does not exist (nothing to resume).
pub fn load(path: &Path, cfg: &RunConfig) -> Result<Option<Manifest>, ManifestError> {
    let mut data = Vec::new();
    match File::open(path) {
        Ok(mut f) => f.read_to_end(&mut data)?,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    if data.len() < MAGIC.len() || &data[..MAGIC.len()] != MAGIC {
        return Err(ManifestError::NotManifest);
    }
    let mut pos = MAGIC.len();
    let config_block = next_block(&data, &mut pos).ok_or(ManifestError::Corrupt("config block"))?;
    let found = decode_config(config_block)?;
    if found != *cfg {
        return Err(ManifestError::ConfigMismatch { found });
    }
    let mut records = Vec::new();
    while let Some(payload) = next_block(&data, &mut pos) {
        match decode_record(payload) {
            Ok(rec) => records.push(rec),
            // A CRC-valid but undecodable record means a writer bug, not
            // a torn write; stop here and ignore the rest.
            Err(_) => break,
        }
    }
    let ignored_tail = (data.len() - pos) as u64;
    Ok(Some(Manifest {
        records,
        ignored_tail,
    }))
}

/// Append handle for the manifest journal.
pub struct ManifestWriter {
    file: File,
}

impl ManifestWriter {
    /// Creates (truncating) a manifest with the given config block.
    pub fn create(path: &Path, cfg: &RunConfig) -> io::Result<ManifestWriter> {
        let mut file = File::create(path)?;
        file.write_all(MAGIC)?;
        file.write_all(&frame_block(&encode_config(cfg)))?;
        file.flush()?;
        Ok(ManifestWriter { file })
    }

    /// Opens an existing (already [`load`]-validated) manifest for append.
    pub fn open_append(path: &Path) -> io::Result<ManifestWriter> {
        let file = OpenOptions::new().append(true).open(path)?;
        Ok(ManifestWriter { file })
    }

    /// Durably appends one record: a single `write_all` plus flush, so a
    /// kill leaves at worst one torn trailing block.
    pub fn append(&mut self, rec: &JobRecord) -> io::Result<()> {
        self.file.write_all(&frame_block(&encode_record(rec)))?;
        self.file.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> RunConfig {
        RunConfig {
            detectors: vec!["dtrg".into(), "vc".into()],
            shards: 0,
            supervised: false,
            lenient: true,
        }
    }

    fn sample(trace: &str, detector: &str) -> JobRecord {
        JobRecord {
            kind: if detector.is_empty() {
                JobKind::Compare
            } else {
                JobKind::Analyze
            },
            trace: trace.into(),
            detector: detector.into(),
            trace_len: 1234,
            trace_crc: 0xDEAD_BEEF,
            status: RecStatus::Ok,
            racy: true,
            races: 3,
            events: 500,
            skipped_chunks: 1,
            cache_hits: 42,
            cache_misses: 7,
            wall_ms: 1.25,
            disagreeing: if detector.is_empty() {
                vec!["espbags".into()]
            } else {
                vec![]
            },
            retries: 2,
        }
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("futrace_fman_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn roundtrip_create_append_load() {
        let path = tmp("roundtrip.fman");
        let mut w = ManifestWriter::create(&path, &cfg()).unwrap();
        let a = sample("x/clean.ftrc", "dtrg");
        let b = sample("x/clean.ftrc", "");
        let mut c = sample("y/racy.ftrc", "vc");
        c.status = RecStatus::Failed("decode error".into());
        for r in [&a, &b, &c] {
            w.append(r).unwrap();
        }
        drop(w);
        let m = load(&path, &cfg()).unwrap().unwrap();
        assert_eq!(m.records, vec![a.clone(), b, c]);
        assert_eq!(m.ignored_tail, 0);

        // Append mode extends rather than truncates.
        let mut w = ManifestWriter::open_append(&path).unwrap();
        let d = sample("z/more.ftrc", "dtrg");
        w.append(&d).unwrap();
        drop(w);
        let m = load(&path, &cfg()).unwrap().unwrap();
        assert_eq!(m.records.len(), 4);
        assert_eq!(m.records[3], d);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_none() {
        assert!(load(&tmp("never_written.fman"), &cfg())
            .unwrap()
            .is_none());
    }

    #[test]
    fn torn_tail_is_ignored_not_fatal() {
        let path = tmp("torn.fman");
        let mut w = ManifestWriter::create(&path, &cfg()).unwrap();
        w.append(&sample("a.ftrc", "dtrg")).unwrap();
        drop(w);
        // Simulate a kill mid-append: write half a block.
        let mut raw = std::fs::read(&path).unwrap();
        raw.extend_from_slice(&[9, 0, 0, 0, 1, 2]);
        std::fs::write(&path, &raw).unwrap();
        let m = load(&path, &cfg()).unwrap().unwrap();
        assert_eq!(m.records.len(), 1);
        assert_eq!(m.ignored_tail, 6);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupted_record_crc_stops_cleanly() {
        let path = tmp("crc.fman");
        let mut w = ManifestWriter::create(&path, &cfg()).unwrap();
        w.append(&sample("a.ftrc", "dtrg")).unwrap();
        w.append(&sample("b.ftrc", "dtrg")).unwrap();
        drop(w);
        let mut raw = std::fs::read(&path).unwrap();
        let n = raw.len();
        raw[n - 1] ^= 0xFF; // flip a byte inside the last record payload
        std::fs::write(&path, &raw).unwrap();
        let m = load(&path, &cfg()).unwrap().unwrap();
        assert_eq!(m.records.len(), 1, "damaged record dropped");
        assert!(m.ignored_tail > 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn config_mismatch_is_a_hard_error() {
        let path = tmp("mismatch.fman");
        ManifestWriter::create(&path, &cfg()).unwrap();
        let other = RunConfig {
            shards: 4,
            ..cfg()
        };
        match load(&path, &other) {
            Err(ManifestError::ConfigMismatch { found }) => assert_eq!(found, cfg()),
            other => panic!("expected ConfigMismatch, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn non_manifest_file_is_rejected() {
        let path = tmp("bogus.fman");
        std::fs::write(&path, b"definitely not a manifest").unwrap();
        assert!(matches!(
            load(&path, &cfg()),
            Err(ManifestError::NotManifest)
        ));
        std::fs::remove_file(&path).ok();
    }
}
