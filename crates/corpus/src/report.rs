//! The corpus aggregate report: one deterministic JSON document plus a
//! human-oriented markdown rendering.
//!
//! Determinism contract (ISSUE 7 acceptance): the JSON must be
//! byte-identical across `--max-parallel` levels and across kill/resume,
//! so it contains only corpus facts — verdicts, agreement counts,
//! deterministic per-trace metrics (event counts, cache hits). Run
//! telemetry that legitimately varies between executions (wall-clock
//! percentiles, jobs run vs resumed-skipped) lives only in the markdown.

#![warn(missing_docs)]

use crate::manifest::{JobKind, JobRecord, RecStatus};
use futrace_util::stats::{percentiles_f64, percentiles_u64, Percentiles};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Cap on drift/damage entries listed in the report (totals are always
/// exact; the caps only bound the enumerations). Deterministic: entries
/// are sorted before truncation.
const MAX_LISTED: usize = 200;

/// Agreement of one non-reference detector against the reference, over
/// the traces where both produced a verdict.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MatrixRow {
    /// Detector name.
    pub detector: String,
    /// Both clean.
    pub agree_clean: u64,
    /// Both racy.
    pub agree_racy: u64,
    /// Detector racy, reference clean (over-report / false positive).
    pub over_report: u64,
    /// Detector clean, reference racy (under-report / miss).
    pub under_report: u64,
    /// Detector's analyze job failed on the trace.
    pub failed: u64,
    /// No record for the detector on the trace (cancelled / not run).
    pub missing: u64,
    /// Detector succeeded but the reference did not, so no comparison.
    pub no_reference: u64,
}

/// One trace where a detector's verdict differs from the reference's.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DriftEntry {
    /// Trace (relative path).
    pub trace: String,
    /// Disagreeing detector.
    pub detector: String,
    /// That detector's verdict.
    pub detector_racy: bool,
    /// The reference's verdict.
    pub reference_racy: bool,
}

/// One trace with at least one failed analyze job.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DamagedTrace {
    /// Trace (relative path).
    pub trace: String,
    /// `(detector, error)` pairs, in detector run order.
    pub failures: Vec<(String, String)>,
}

/// Corpus-level verdict counts.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Summary {
    /// Traces the reference detector found racy.
    pub racy_traces: u64,
    /// Traces the reference detector found clean (empty ones included).
    pub clean_traces: u64,
    /// Traces with ≥ 1 failed analyze job.
    pub damaged_traces: u64,
    /// Clean traces that held zero events (valid header, no chunks).
    pub empty_traces: u64,
    /// Traces where ≥ 1 detector disagreed with the reference.
    pub disagreeing_traces: u64,
    /// Analyze jobs that completed successfully.
    pub analyze_ok: u64,
    /// Analyze jobs that failed.
    pub analyze_failed: u64,
    /// Analyze jobs with no record at all (cancelled or never reached).
    pub analyze_missing: u64,
}

/// The aggregate report (see module docs for the determinism split).
#[derive(Clone, Debug)]
pub struct CorpusReport {
    /// Number of traces discovered.
    pub traces: u64,
    /// Detector run order.
    pub detectors: Vec<String>,
    /// The reference detector name.
    pub reference: String,
    /// True iff the run aborted under `--failure-policy abort`.
    pub aborted: bool,
    /// Verdict counts.
    pub summary: Summary,
    /// One row per non-reference detector, in run order.
    pub matrix: Vec<MatrixRow>,
    /// All drift pairs, sorted by (trace, detector order).
    pub drift: Vec<DriftEntry>,
    /// All damaged traces, sorted by trace.
    pub damaged: Vec<DamagedTrace>,
    /// Events-per-trace percentiles over reference-ok traces.
    pub events_pct: Option<Percentiles<u64>>,
    /// Cache-hit percentiles over ok `dtrg` analyze jobs (the only cached
    /// detector); `None` when dtrg is not in the run or nothing succeeded.
    pub cache_hits_pct: Option<Percentiles<u64>>,
}

/// Execution telemetry for the markdown rendering only (varies between
/// runs by design).
#[derive(Clone, Debug, Default)]
pub struct RunTelemetry {
    /// Jobs whose runner executed this run.
    pub jobs_ran: u64,
    /// Jobs skipped because a resume manifest already recorded them.
    pub jobs_skipped: u64,
    /// Retry dispatches absorbed by `--job-retries` this run.
    pub jobs_retried: u64,
    /// Wall-ms percentiles over this run's analyze jobs.
    pub wall_ms_pct: Option<Percentiles<f64>>,
}

/// Record store keyed by job identity.
pub type RecordMap = HashMap<(JobKind, String, String), JobRecord>;

/// Builds the aggregate from the settled record store.
///
/// `traces` must be in discovery order, `detectors` in run order; both
/// orders are reproduced verbatim in the report, which is what makes the
/// JSON byte-stable.
pub fn build(
    traces: &[String],
    detectors: &[String],
    reference: &str,
    records: &RecordMap,
    aborted: bool,
) -> CorpusReport {
    let analyze = |trace: &str, det: &str| {
        records.get(&(JobKind::Analyze, trace.to_string(), det.to_string()))
    };
    let mut summary = Summary::default();
    let mut matrix: Vec<MatrixRow> = detectors
        .iter()
        .filter(|d| d.as_str() != reference)
        .map(|d| MatrixRow {
            detector: d.clone(),
            ..MatrixRow::default()
        })
        .collect();
    let mut drift = Vec::new();
    let mut damaged = Vec::new();
    let mut events_samples = Vec::new();
    let mut cache_samples = Vec::new();

    for trace in traces {
        let ref_rec = analyze(trace, reference);
        let ref_verdict = match ref_rec {
            Some(r) if r.status == RecStatus::Ok => {
                events_samples.push(r.events);
                if r.racy {
                    summary.racy_traces += 1;
                } else {
                    summary.clean_traces += 1;
                    if r.events == 0 {
                        summary.empty_traces += 1;
                    }
                }
                Some(r.racy)
            }
            _ => None,
        };
        let mut failures = Vec::new();
        let mut disagreed = false;
        for det in detectors {
            let rec = analyze(trace, det);
            match rec {
                Some(r) if r.status == RecStatus::Ok => {
                    summary.analyze_ok += 1;
                    if det == "dtrg" {
                        cache_samples.push(r.cache_hits);
                    }
                }
                Some(r) => {
                    summary.analyze_failed += 1;
                    if let RecStatus::Failed(msg) = &r.status {
                        failures.push((det.clone(), msg.clone()));
                    }
                }
                None => summary.analyze_missing += 1,
            }
            if det == reference {
                continue;
            }
            let row = matrix
                .iter_mut()
                .find(|m| &m.detector == det)
                .expect("row per non-reference detector");
            match rec {
                Some(r) if r.status == RecStatus::Ok => match ref_verdict {
                    Some(ref_racy) => match (r.racy, ref_racy) {
                        (false, false) => row.agree_clean += 1,
                        (true, true) => row.agree_racy += 1,
                        (true, false) => row.over_report += 1,
                        (false, true) => row.under_report += 1,
                    },
                    None => row.no_reference += 1,
                },
                Some(_) => row.failed += 1,
                None => row.missing += 1,
            }
            if let (Some(r), Some(ref_racy)) = (rec, ref_verdict) {
                if r.status == RecStatus::Ok && r.racy != ref_racy {
                    disagreed = true;
                    drift.push(DriftEntry {
                        trace: trace.clone(),
                        detector: det.clone(),
                        detector_racy: r.racy,
                        reference_racy: ref_racy,
                    });
                }
            }
        }
        if disagreed {
            summary.disagreeing_traces += 1;
        }
        if !failures.is_empty() {
            summary.damaged_traces += 1;
            damaged.push(DamagedTrace {
                trace: trace.clone(),
                failures,
            });
        }
    }

    events_samples.sort_unstable();
    cache_samples.sort_unstable();
    CorpusReport {
        traces: traces.len() as u64,
        detectors: detectors.to_vec(),
        reference: reference.to_string(),
        aborted,
        summary,
        matrix,
        drift,
        damaged,
        events_pct: percentiles_u64(&events_samples),
        cache_hits_pct: percentiles_u64(&cache_samples),
    }
}

/// JSON string escaping (quotes, backslashes, control characters).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn pct_json(p: &Option<Percentiles<u64>>) -> String {
    match p {
        Some(p) => format!(
            "{{\"p50\": {}, \"p90\": {}, \"p99\": {}}}",
            p.p50, p.p90, p.p99
        ),
        None => "null".into(),
    }
}

impl CorpusReport {
    /// Renders the deterministic JSON document. Stable key order, no
    /// floats, no wall-clock data.
    pub fn to_json(&self) -> String {
        let mut o = String::new();
        o.push_str("{\n");
        o.push_str("  \"schema\": \"futrace-corpus-report-v1\",\n");
        let _ = writeln!(o, "  \"traces\": {},", self.traces);
        let dets: Vec<String> = self
            .detectors
            .iter()
            .map(|d| format!("\"{}\"", esc(d)))
            .collect();
        let _ = writeln!(o, "  \"detectors\": [{}],", dets.join(", "));
        let _ = writeln!(o, "  \"reference\": \"{}\",", esc(&self.reference));
        let _ = writeln!(o, "  \"aborted\": {},", self.aborted);
        let s = &self.summary;
        let _ = writeln!(
            o,
            "  \"summary\": {{\"racy_traces\": {}, \"clean_traces\": {}, \
             \"damaged_traces\": {}, \"empty_traces\": {}, \
             \"disagreeing_traces\": {}, \"analyze_ok\": {}, \
             \"analyze_failed\": {}, \"analyze_missing\": {}}},",
            s.racy_traces,
            s.clean_traces,
            s.damaged_traces,
            s.empty_traces,
            s.disagreeing_traces,
            s.analyze_ok,
            s.analyze_failed,
            s.analyze_missing
        );
        o.push_str("  \"agreement_matrix\": [\n");
        for (i, m) in self.matrix.iter().enumerate() {
            let _ = write!(
                o,
                "    {{\"detector\": \"{}\", \"agree_clean\": {}, \
                 \"agree_racy\": {}, \"over_report\": {}, \"under_report\": {}, \
                 \"failed\": {}, \"missing\": {}, \"no_reference\": {}}}",
                esc(&m.detector),
                m.agree_clean,
                m.agree_racy,
                m.over_report,
                m.under_report,
                m.failed,
                m.missing,
                m.no_reference
            );
            o.push_str(if i + 1 == self.matrix.len() { "\n" } else { ",\n" });
        }
        o.push_str("  ],\n");
        let _ = writeln!(o, "  \"drift\": {{\"total\": {}, \"entries\": [", self.drift.len());
        let listed = self.drift.len().min(MAX_LISTED);
        for (i, d) in self.drift[..listed].iter().enumerate() {
            let _ = write!(
                o,
                "    {{\"trace\": \"{}\", \"detector\": \"{}\", \
                 \"detector_racy\": {}, \"reference_racy\": {}}}",
                esc(&d.trace),
                esc(&d.detector),
                d.detector_racy,
                d.reference_racy
            );
            o.push_str(if i + 1 == listed { "\n" } else { ",\n" });
        }
        o.push_str("  ]},\n");
        let _ = writeln!(
            o,
            "  \"damaged\": {{\"total\": {}, \"entries\": [",
            self.damaged.len()
        );
        let listed = self.damaged.len().min(MAX_LISTED);
        for (i, d) in self.damaged[..listed].iter().enumerate() {
            let fails: Vec<String> = d
                .failures
                .iter()
                .map(|(det, err)| {
                    format!("{{\"detector\": \"{}\", \"error\": \"{}\"}}", esc(det), esc(err))
                })
                .collect();
            let _ = write!(
                o,
                "    {{\"trace\": \"{}\", \"failures\": [{}]}}",
                esc(&d.trace),
                fails.join(", ")
            );
            o.push_str(if i + 1 == listed { "\n" } else { ",\n" });
        }
        o.push_str("  ]},\n");
        let _ = writeln!(
            o,
            "  \"percentiles\": {{\"events\": {}, \"cache_hits\": {}}}",
            pct_json(&self.events_pct),
            pct_json(&self.cache_hits_pct)
        );
        o.push('}');
        o.push('\n');
        o
    }

    /// Renders the markdown report: the JSON facts plus this run's
    /// telemetry (wall-ms percentiles, resume stats).
    pub fn to_markdown(&self, telemetry: &RunTelemetry) -> String {
        let mut o = String::new();
        o.push_str("# Corpus report\n\n");
        let s = &self.summary;
        let _ = writeln!(
            o,
            "{} trace(s), {} detector(s), reference `{}`{}\n",
            self.traces,
            self.detectors.len(),
            self.reference,
            if self.aborted { " — **run aborted**" } else { "" }
        );
        o.push_str("## Summary\n\n");
        o.push_str("| metric | count |\n|---|---|\n");
        let _ = writeln!(o, "| racy traces (reference) | {} |", s.racy_traces);
        let _ = writeln!(o, "| clean traces | {} |", s.clean_traces);
        let _ = writeln!(o, "| empty traces (0 events) | {} |", s.empty_traces);
        let _ = writeln!(o, "| damaged traces | {} |", s.damaged_traces);
        let _ = writeln!(o, "| disagreeing traces | {} |", s.disagreeing_traces);
        let _ = writeln!(
            o,
            "| analyze jobs ok / failed / missing | {} / {} / {} |",
            s.analyze_ok, s.analyze_failed, s.analyze_missing
        );
        o.push_str("\n## Agreement matrix (vs reference)\n\n");
        o.push_str(
            "| detector | agree clean | agree racy | over-report | \
             under-report | failed | missing | no ref |\n\
             |---|---|---|---|---|---|---|---|\n",
        );
        for m in &self.matrix {
            let _ = writeln!(
                o,
                "| {} | {} | {} | {} | {} | {} | {} | {} |",
                m.detector,
                m.agree_clean,
                m.agree_racy,
                m.over_report,
                m.under_report,
                m.failed,
                m.missing,
                m.no_reference
            );
        }
        o.push_str("\n## Verdict drift\n\n");
        if self.drift.is_empty() {
            o.push_str("none — every detector matched the reference.\n");
        } else {
            let listed = self.drift.len().min(MAX_LISTED);
            for d in &self.drift[..listed] {
                let _ = writeln!(
                    o,
                    "- `{}`: `{}` says {}, reference says {}",
                    d.trace,
                    d.detector,
                    if d.detector_racy { "racy" } else { "clean" },
                    if d.reference_racy { "racy" } else { "clean" }
                );
            }
            if self.drift.len() > listed {
                let _ = writeln!(o, "- … and {} more", self.drift.len() - listed);
            }
        }
        o.push_str("\n## Damaged traces\n\n");
        if self.damaged.is_empty() {
            o.push_str("none.\n");
        } else {
            let listed = self.damaged.len().min(MAX_LISTED);
            for d in &self.damaged[..listed] {
                let what: Vec<String> = d
                    .failures
                    .iter()
                    .map(|(det, err)| format!("{det}: {err}"))
                    .collect();
                let _ = writeln!(o, "- `{}` — {}", d.trace, what.join("; "));
            }
            if self.damaged.len() > listed {
                let _ = writeln!(o, "- … and {} more", self.damaged.len() - listed);
            }
        }
        o.push_str("\n## Percentiles\n\n");
        o.push_str("| metric | p50 | p90 | p99 |\n|---|---|---|---|\n");
        if let Some(p) = &self.events_pct {
            let _ = writeln!(o, "| events / trace | {} | {} | {} |", p.p50, p.p90, p.p99);
        }
        if let Some(p) = &self.cache_hits_pct {
            let _ = writeln!(o, "| dtrg cache hits | {} | {} | {} |", p.p50, p.p90, p.p99);
        }
        if let Some(p) = &telemetry.wall_ms_pct {
            let _ = writeln!(
                o,
                "| wall ms / analyze job | {:.3} | {:.3} | {:.3} |",
                p.p50, p.p90, p.p99
            );
        }
        o.push_str("\n## Run telemetry (not in JSON)\n\n");
        let _ = writeln!(
            o,
            "jobs run: {}; resumed (skipped via manifest): {}; \
             retries absorbed: {}\n",
            telemetry.jobs_ran, telemetry.jobs_skipped, telemetry.jobs_retried
        );
        o
    }
}

/// Wall-ms percentiles over a record set (markdown telemetry).
pub fn wall_ms_percentiles(records: &RecordMap) -> Option<Percentiles<f64>> {
    let samples: Vec<f64> = records
        .values()
        .filter(|r| r.kind == JobKind::Analyze && r.status == RecStatus::Ok)
        .map(|r| r.wall_ms)
        .collect();
    percentiles_f64(&samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(trace: &str, det: &str, racy: bool, events: u64) -> ((JobKind, String, String), JobRecord) {
        (
            (JobKind::Analyze, trace.into(), det.into()),
            JobRecord {
                kind: JobKind::Analyze,
                trace: trace.into(),
                detector: det.into(),
                trace_len: 10,
                trace_crc: 0,
                status: RecStatus::Ok,
                racy,
                races: racy as u64,
                events,
                skipped_chunks: 0,
                cache_hits: events / 2,
                cache_misses: 1,
                wall_ms: 0.5,
                disagreeing: vec![],
                retries: 0,
            },
        )
    }

    fn failed(trace: &str, det: &str, msg: &str) -> ((JobKind, String, String), JobRecord) {
        let (k, mut r) = rec(trace, det, false, 0);
        r.status = RecStatus::Failed(msg.into());
        (k, r)
    }

    #[test]
    fn matrix_and_summary_account_for_every_trace() {
        let traces: Vec<String> = vec!["a.ftrc".into(), "b.ftrc".into(), "c.ftrc".into()];
        let detectors: Vec<String> = vec!["dtrg".into(), "espbags".into()];
        let mut records = RecordMap::new();
        // a: both clean; b: dtrg racy + espbags clean (under-report);
        // c: dtrg ok-clean-empty + espbags failed.
        for (k, v) in [
            rec("a.ftrc", "dtrg", false, 40),
            rec("a.ftrc", "espbags", false, 40),
            rec("b.ftrc", "dtrg", true, 60),
            rec("b.ftrc", "espbags", false, 60),
            rec("c.ftrc", "dtrg", false, 0),
            failed("c.ftrc", "espbags", "decode error"),
        ] {
            records.insert(k, v);
        }
        let rep = build(&traces, &detectors, "dtrg", &records, false);
        assert_eq!(rep.summary.racy_traces, 1);
        assert_eq!(rep.summary.clean_traces, 2);
        assert_eq!(rep.summary.empty_traces, 1);
        assert_eq!(rep.summary.damaged_traces, 1);
        assert_eq!(rep.summary.disagreeing_traces, 1);
        assert_eq!(rep.summary.analyze_ok, 5);
        assert_eq!(rep.summary.analyze_failed, 1);
        assert_eq!(rep.matrix.len(), 1, "reference excluded from matrix");
        let m = &rep.matrix[0];
        assert_eq!(
            (m.agree_clean, m.agree_racy, m.over_report, m.under_report, m.failed),
            (1, 0, 0, 1, 1)
        );
        assert_eq!(rep.drift.len(), 1);
        assert_eq!(rep.drift[0].trace, "b.ftrc");
        assert_eq!(rep.damaged.len(), 1);
        assert_eq!(rep.damaged[0].failures[0].0, "espbags");
        // Events percentiles over reference-ok traces: {0, 40, 60}.
        let p = rep.events_pct.unwrap();
        assert_eq!((p.p50, p.p99), (40, 60));
    }

    #[test]
    fn json_is_stable_and_escapes_strings() {
        let traces: Vec<String> = vec!["we\"ird\\name.ftrc".into()];
        let detectors: Vec<String> = vec!["dtrg".into()];
        let mut records = RecordMap::new();
        let (k, v) = failed("we\"ird\\name.ftrc", "dtrg", "line1\nline2");
        records.insert(k, v);
        let rep = build(&traces, &detectors, "dtrg", &records, false);
        let json = rep.to_json();
        assert_eq!(json, rep.to_json(), "rendering is a pure function");
        assert!(json.contains("we\\\"ird\\\\name.ftrc"));
        assert!(json.contains("line1\\nline2"));
        assert!(json.contains("\"schema\": \"futrace-corpus-report-v1\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn markdown_mentions_every_section() {
        let traces: Vec<String> = vec!["a.ftrc".into()];
        let detectors: Vec<String> = vec!["dtrg".into(), "vc".into()];
        let mut records = RecordMap::new();
        for (k, v) in [rec("a.ftrc", "dtrg", false, 5), rec("a.ftrc", "vc", false, 5)] {
            records.insert(k, v);
        }
        let rep = build(&traces, &detectors, "dtrg", &records, false);
        let md = rep.to_markdown(&RunTelemetry {
            jobs_ran: 3,
            jobs_skipped: 1,
            jobs_retried: 2,
            wall_ms_pct: None,
        });
        for section in [
            "# Corpus report",
            "## Summary",
            "## Agreement matrix",
            "## Verdict drift",
            "## Damaged traces",
            "## Percentiles",
            "## Run telemetry",
        ] {
            assert!(md.contains(section), "missing {section}");
        }
        assert!(md.contains("resumed (skipped via manifest): 1"));
    }
}
