//! Corpus determinism: the aggregated JSON report must be byte-identical
//! whatever the worker-pool width, and a run killed midway must resume
//! from its manifest to the exact same bytes an uninterrupted run
//! produces. The markdown report is allowed to vary (it carries run
//! telemetry); the JSON is the contract.

use futrace_benchsuite::registry::{self, Scale};
use futrace_corpus::{run_corpus, CorpusOptions, ExitVerdict, FailurePolicy};
use futrace_offline::framed::DEFAULT_CHUNK_BYTES;
use futrace_offline::StreamWriter;
use std::io::BufWriter;
use std::path::{Path, PathBuf};

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "futrace_corpus_det_{tag}_{}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn record(dir: &Path, name: &str, bench: &str, planted: bool) {
    let file = std::fs::File::create(dir.join(name)).expect("create trace");
    let mut w = StreamWriter::with_chunk_bytes(BufWriter::new(file), DEFAULT_CHUNK_BYTES)
        .expect("trace header");
    registry::find(bench)
        .expect("known bench")
        .run_into(&mut w, Scale::Tiny, planted);
    w.finish().expect("finish trace");
}

/// A small mixed corpus: two clean traces, one planted-racy, one
/// header-only empty, one truncated (damaged).
fn build_corpus(root: &Path) {
    std::fs::create_dir_all(root.join("sub")).unwrap();
    record(root, "futlist_clean.ftrc", "futlist", false);
    record(&root.join("sub"), "graphwalk_clean.ftrc", "graphwalk", false);
    record(root, "prodcons_racy.ftrc", "prodcons", true);
    std::fs::write(root.join("empty.ftrc"), b"FTRC\x02").unwrap();
    let full = std::fs::read(root.join("futlist_clean.ftrc")).unwrap();
    std::fs::write(root.join("truncated.ftrc"), &full[..40.min(full.len())]).unwrap();
}

fn opts(out_dir: PathBuf) -> CorpusOptions {
    let mut o = CorpusOptions::new(out_dir);
    // A subset spanning the interesting cases: the reference, a second
    // shardable detector, and a bags-family baseline.
    o.detectors = vec!["dtrg".into(), "vc".into(), "spbags".into()];
    o.policy = FailurePolicy::Continue;
    o
}

#[test]
fn report_json_is_byte_identical_across_parallelism() {
    let root = scratch("parallel");
    build_corpus(&root);
    let mut jsons = Vec::new();
    for mp in [1usize, 2, 4] {
        let mut o = opts(root.join(format!("out{mp}")));
        o.max_parallel = mp;
        let out = run_corpus(&root, &o).expect("corpus run");
        // The planted trace is racy and the truncated one damaged, but
        // races dominate the exit verdict.
        assert_eq!(out.exit, ExitVerdict::Races, "max_parallel {mp}");
        let rep = out.report.as_ref().expect("finished run has a report");
        assert_eq!(rep.summary.racy_traces, 1);
        assert_eq!(rep.summary.empty_traces, 1);
        assert_eq!(rep.summary.damaged_traces, 1);
        jsons.push(std::fs::read(out.report_json.expect("json path")).unwrap());
    }
    assert_eq!(jsons[0], jsons[1], "max_parallel 1 vs 2");
    assert_eq!(jsons[0], jsons[2], "max_parallel 1 vs 4");
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn killed_run_resumes_to_identical_report() {
    let root = scratch("resume");
    build_corpus(&root);

    // Uninterrupted reference run.
    let reference = run_corpus(&root, &opts(root.join("ref"))).expect("reference run");
    let want = std::fs::read(reference.report_json.expect("json path")).unwrap();

    // Kill midway: suspend dispatch after 3 completed jobs. A suspended
    // run is operator-requested, so it exits clean with no report.
    let mut o = opts(root.join("out"));
    o.stop_after_jobs = Some(3);
    let first = run_corpus(&root, &o).expect("suspended run");
    assert!(first.suspended);
    assert_eq!(first.exit, ExitVerdict::Clean);
    assert!(first.report.is_none(), "no report from a partial run");
    assert_eq!(first.jobs_ran, 3);

    // Resume: the manifest skips exactly the jobs that completed, and
    // the final report is byte-identical to the uninterrupted one —
    // even at a different pool width.
    o.stop_after_jobs = None;
    o.max_parallel = 4;
    let second = run_corpus(&root, &o).expect("resumed run");
    assert!(!second.suspended);
    assert_eq!(second.jobs_skipped, 3);
    assert_eq!(second.exit, ExitVerdict::Races);
    let got = std::fs::read(second.report_json.expect("json path")).unwrap();
    assert_eq!(got, want, "resumed report differs from uninterrupted run");
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn fresh_discards_the_manifest_and_reruns_everything() {
    let root = scratch("fresh");
    build_corpus(&root);
    let o = opts(root.join("out"));
    let first = run_corpus(&root, &o).expect("first run");
    assert_eq!(first.jobs_skipped, 0);
    let total = first.jobs_ran;

    let mut o2 = o.clone();
    o2.fresh = true;
    let second = run_corpus(&root, &o2).expect("fresh rerun");
    assert_eq!(second.jobs_skipped, 0, "--fresh must ignore the manifest");
    assert_eq!(second.jobs_ran, total);
    std::fs::remove_dir_all(&root).ok();
}
