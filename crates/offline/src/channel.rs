//! Bounded blocking MPSC channel built on [`futrace_runtime::sync`]
//! (std-only Mutex + Condvar), for the decode→detect pipeline.
//!
//! The decode stage can outrun the detect workers by orders of magnitude
//! (varint decoding vs `Precede` queries), so the channel is *bounded*:
//! [`Sender::send`] blocks when the queue is full, which backpressures
//! the decoder and keeps pipeline memory at O(capacity × batch) instead
//! of O(trace). Disconnection is graceful in both directions: senders see
//! `Err` once the receiver is gone (a dead worker must not wedge the
//! router), and [`Receiver::recv`] returns `None` once all senders are
//! dropped and the queue drains.

use futrace_runtime::sync::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

struct State<T> {
    queue: VecDeque<T>,
    capacity: usize,
    senders: usize,
    receiver_alive: bool,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

/// Sending half; clone for multiple producers.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// Receiving half (single consumer).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// The item handed back by [`Sender::send`] when the receiver is gone.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Outcome of [`Receiver::recv_timeout`] — the supervisor's watchdog
/// primitive (DESIGN S38).
#[derive(Debug, PartialEq, Eq)]
pub enum RecvTimeout<T> {
    /// An item arrived within the deadline.
    Item(T),
    /// The deadline elapsed with the queue still empty but senders alive —
    /// the signal a supervisor treats as a stalled producer.
    Timeout,
    /// Every sender is gone and the queue is drained.
    Disconnected,
}

/// Outcome of [`Sender::send_timeout`], handing the unsent item back on
/// both failure paths.
#[derive(Debug, PartialEq, Eq)]
pub enum SendTimeout<T> {
    /// The item was enqueued within the deadline.
    Sent,
    /// The queue stayed full past the deadline — the signal a router
    /// treats as a stalled (wedged) consumer.
    Full(T),
    /// The receiver has been dropped.
    Disconnected(T),
}

/// A bounded channel with room for `capacity` in-flight items
/// (clamped to ≥ 1).
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::with_capacity(capacity.max(1)),
            capacity: capacity.max(1),
            senders: 1,
            receiver_alive: true,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Blocks until there is room, then enqueues `item`. Returns the item
    /// if the receiver has been dropped.
    pub fn send(&self, item: T) -> Result<(), SendError<T>> {
        let mut st = self.shared.state.lock();
        loop {
            if !st.receiver_alive {
                return Err(SendError(item));
            }
            if st.queue.len() < st.capacity {
                st.queue.push_back(item);
                drop(st);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            st = self.shared.not_full.wait(st);
        }
    }

    /// Like [`Sender::send`], but gives up once `timeout` elapses with
    /// the queue still full. Spurious condvar wakeups re-check the
    /// deadline, so the call is bounded by roughly `timeout` even under a
    /// notify storm.
    pub fn send_timeout(&self, item: T, timeout: Duration) -> SendTimeout<T> {
        let deadline = Instant::now() + timeout;
        let mut st = self.shared.state.lock();
        loop {
            if !st.receiver_alive {
                return SendTimeout::Disconnected(item);
            }
            if st.queue.len() < st.capacity {
                st.queue.push_back(item);
                drop(st);
                self.shared.not_empty.notify_one();
                return SendTimeout::Sent;
            }
            let now = Instant::now();
            if now >= deadline {
                return SendTimeout::Full(item);
            }
            st = self.shared.not_full.wait_timeout(st, deadline - now);
        }
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.state.lock().senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = self.shared.state.lock();
        st.senders -= 1;
        let last = st.senders == 0;
        drop(st);
        if last {
            // Wake a receiver blocked on an empty queue so it can observe
            // disconnection and finish.
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Blocks until an item arrives; `None` once every sender is dropped
    /// and the queue is drained.
    pub fn recv(&self) -> Option<T> {
        let mut st = self.shared.state.lock();
        loop {
            if let Some(item) = st.queue.pop_front() {
                drop(st);
                self.shared.not_full.notify_one();
                return Some(item);
            }
            if st.senders == 0 {
                return None;
            }
            st = self.shared.not_empty.wait(st);
        }
    }

    /// Like [`Receiver::recv`], but returns [`RecvTimeout::Timeout`] once
    /// `timeout` elapses with nothing to deliver. The deadline is
    /// absolute: spurious or storming notifications merely re-check the
    /// predicate and keep waiting for the remainder.
    pub fn recv_timeout(&self, timeout: Duration) -> RecvTimeout<T> {
        let deadline = Instant::now() + timeout;
        let mut st = self.shared.state.lock();
        loop {
            if let Some(item) = st.queue.pop_front() {
                drop(st);
                self.shared.not_full.notify_one();
                return RecvTimeout::Item(item);
            }
            if st.senders == 0 {
                return RecvTimeout::Disconnected;
            }
            let now = Instant::now();
            if now >= deadline {
                return RecvTimeout::Timeout;
            }
            st = self.shared.not_empty.wait_timeout(st, deadline - now);
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.shared.state.lock().receiver_alive = false;
        // Unblock every sender stuck in a full-queue wait.
        self.shared.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn fifo_roundtrip() {
        let (tx, rx) = bounded(4);
        for i in 0..4 {
            tx.send(i).unwrap();
        }
        drop(tx);
        assert_eq!(
            std::iter::from_fn(|| rx.recv()).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
        assert_eq!(rx.recv(), None, "disconnected and drained");
    }

    #[test]
    fn send_blocks_until_capacity_frees() {
        let (tx, rx) = bounded(1);
        tx.send(1u32).unwrap();
        let t = thread::spawn(move || {
            // This send must block until the main thread receives.
            tx.send(2).unwrap();
        });
        thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv(), Some(1));
        assert_eq!(rx.recv(), Some(2));
        t.join().unwrap();
        assert_eq!(rx.recv(), None);
    }

    #[test]
    fn dropped_receiver_fails_send() {
        let (tx, rx) = bounded(1);
        drop(rx);
        assert_eq!(tx.send(7), Err(SendError(7)));
    }

    #[test]
    fn dropped_receiver_unblocks_full_sender() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let t = thread::spawn(move || tx.send(2));
        thread::sleep(Duration::from_millis(20));
        drop(rx);
        assert_eq!(t.join().unwrap(), Err(SendError(2)));
    }

    #[test]
    fn sender_drop_mid_stream_delivers_prefix_then_disconnects() {
        let (tx, rx) = bounded(8);
        let t = thread::spawn(move || {
            for i in 0..3 {
                tx.send(i).unwrap();
            }
            // tx dropped here, mid-stream from the receiver's viewpoint.
        });
        assert_eq!(rx.recv(), Some(0));
        assert_eq!(rx.recv(), Some(1));
        assert_eq!(rx.recv(), Some(2));
        assert_eq!(rx.recv(), None, "drop observed after the queued prefix");
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            RecvTimeout::Disconnected
        );
        t.join().unwrap();
    }

    #[test]
    fn receiver_drop_with_full_buffer_unblocks_timed_sender() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let t = thread::spawn(move || tx.send_timeout(2, Duration::from_millis(5_000)));
        thread::sleep(Duration::from_millis(20));
        drop(rx);
        // The blocked sender must observe disconnection immediately, not
        // ride out its 5s deadline.
        assert_eq!(t.join().unwrap(), SendTimeout::Disconnected(2));
    }

    #[test]
    fn send_timeout_reports_full_queue() {
        let (tx, rx) = bounded(1);
        tx.send(1u32).unwrap();
        let start = std::time::Instant::now();
        assert_eq!(
            tx.send_timeout(2, Duration::from_millis(15)),
            SendTimeout::Full(2)
        );
        assert!(start.elapsed() >= Duration::from_millis(15));
        assert_eq!(rx.recv(), Some(1));
        assert_eq!(tx.send_timeout(3, Duration::from_millis(15)), SendTimeout::Sent);
        assert_eq!(rx.recv(), Some(3));
    }

    #[test]
    fn recv_timeout_fires_on_empty_queue() {
        let (tx, rx) = bounded::<u32>(1);
        let start = std::time::Instant::now();
        assert_eq!(rx.recv_timeout(Duration::from_millis(15)), RecvTimeout::Timeout);
        assert!(start.elapsed() >= Duration::from_millis(15));
        tx.send(9).unwrap();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(15)),
            RecvTimeout::Item(9)
        );
    }

    #[test]
    fn recv_timeout_survives_notify_storm_without_spurious_result() {
        // A thread hammering the condvars must not make recv_timeout
        // return early or fabricate an item: the deadline is absolute and
        // the predicate is re-checked on every wakeup.
        let (tx, rx) = bounded::<u32>(1);
        let shared = Arc::clone(&rx.shared);
        let storming = Arc::new(std::sync::atomic::AtomicBool::new(true));
        let flag = Arc::clone(&storming);
        let storm = thread::spawn(move || {
            while flag.load(std::sync::atomic::Ordering::Relaxed) {
                shared.not_empty.notify_all();
                shared.not_full.notify_all();
                std::hint::spin_loop();
            }
        });
        let start = std::time::Instant::now();
        assert_eq!(rx.recv_timeout(Duration::from_millis(30)), RecvTimeout::Timeout);
        assert!(start.elapsed() >= Duration::from_millis(30));
        storming.store(false, std::sync::atomic::Ordering::Relaxed);
        storm.join().unwrap();
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            RecvTimeout::Disconnected
        );
    }

    #[test]
    fn multiple_producers_drain_completely() {
        let (tx, rx) = bounded(2);
        let mut handles = Vec::new();
        for p in 0..4u64 {
            let tx = tx.clone();
            handles.push(thread::spawn(move || {
                for i in 0..50u64 {
                    tx.send(p * 1000 + i).unwrap();
                }
            }));
        }
        drop(tx);
        let mut got = Vec::new();
        while let Some(v) = rx.recv() {
            got.push(v);
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(got.len(), 200);
        got.sort_unstable();
        got.dedup();
        assert_eq!(got.len(), 200, "no item lost or duplicated");
    }
}
