//! Bounded blocking MPSC channel built on [`futrace_runtime::sync`]
//! (std-only Mutex + Condvar), for the decode→detect pipeline.
//!
//! The decode stage can outrun the detect workers by orders of magnitude
//! (varint decoding vs `Precede` queries), so the channel is *bounded*:
//! [`Sender::send`] blocks when the queue is full, which backpressures
//! the decoder and keeps pipeline memory at O(capacity × batch) instead
//! of O(trace). Disconnection is graceful in both directions: senders see
//! `Err` once the receiver is gone (a dead worker must not wedge the
//! router), and [`Receiver::recv`] returns `None` once all senders are
//! dropped and the queue drains.

use futrace_runtime::sync::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::Arc;

struct State<T> {
    queue: VecDeque<T>,
    capacity: usize,
    senders: usize,
    receiver_alive: bool,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

/// Sending half; clone for multiple producers.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// Receiving half (single consumer).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// The item handed back by [`Sender::send`] when the receiver is gone.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// A bounded channel with room for `capacity` in-flight items
/// (clamped to ≥ 1).
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::with_capacity(capacity.max(1)),
            capacity: capacity.max(1),
            senders: 1,
            receiver_alive: true,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Blocks until there is room, then enqueues `item`. Returns the item
    /// if the receiver has been dropped.
    pub fn send(&self, item: T) -> Result<(), SendError<T>> {
        let mut st = self.shared.state.lock();
        loop {
            if !st.receiver_alive {
                return Err(SendError(item));
            }
            if st.queue.len() < st.capacity {
                st.queue.push_back(item);
                drop(st);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            st = self.shared.not_full.wait(st);
        }
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.state.lock().senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = self.shared.state.lock();
        st.senders -= 1;
        let last = st.senders == 0;
        drop(st);
        if last {
            // Wake a receiver blocked on an empty queue so it can observe
            // disconnection and finish.
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Blocks until an item arrives; `None` once every sender is dropped
    /// and the queue is drained.
    pub fn recv(&self) -> Option<T> {
        let mut st = self.shared.state.lock();
        loop {
            if let Some(item) = st.queue.pop_front() {
                drop(st);
                self.shared.not_full.notify_one();
                return Some(item);
            }
            if st.senders == 0 {
                return None;
            }
            st = self.shared.not_empty.wait(st);
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.shared.state.lock().receiver_alive = false;
        // Unblock every sender stuck in a full-queue wait.
        self.shared.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn fifo_roundtrip() {
        let (tx, rx) = bounded(4);
        for i in 0..4 {
            tx.send(i).unwrap();
        }
        drop(tx);
        assert_eq!(
            std::iter::from_fn(|| rx.recv()).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
        assert_eq!(rx.recv(), None, "disconnected and drained");
    }

    #[test]
    fn send_blocks_until_capacity_frees() {
        let (tx, rx) = bounded(1);
        tx.send(1u32).unwrap();
        let t = thread::spawn(move || {
            // This send must block until the main thread receives.
            tx.send(2).unwrap();
        });
        thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv(), Some(1));
        assert_eq!(rx.recv(), Some(2));
        t.join().unwrap();
        assert_eq!(rx.recv(), None);
    }

    #[test]
    fn dropped_receiver_fails_send() {
        let (tx, rx) = bounded(1);
        drop(rx);
        assert_eq!(tx.send(7), Err(SendError(7)));
    }

    #[test]
    fn dropped_receiver_unblocks_full_sender() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let t = thread::spawn(move || tx.send(2));
        thread::sleep(Duration::from_millis(20));
        drop(rx);
        assert_eq!(t.join().unwrap(), Err(SendError(2)));
    }

    #[test]
    fn multiple_producers_drain_completely() {
        let (tx, rx) = bounded(2);
        let mut handles = Vec::new();
        for p in 0..4u64 {
            let tx = tx.clone();
            handles.push(thread::spawn(move || {
                for i in 0..50u64 {
                    tx.send(p * 1000 + i).unwrap();
                }
            }));
        }
        drop(tx);
        let mut got = Vec::new();
        while let Some(v) = rx.recv() {
            got.push(v);
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(got.len(), 200);
        got.sort_unstable();
        got.dedup();
        assert_eq!(got.len(), 200, "no item lost or duplicated");
    }
}
