//! Checkpoint files for suspend/resume of a sharded analysis (DESIGN S38).
//!
//! A checkpoint captures a *consistent cut* of the supervised pipeline at
//! a chunk boundary: every event of the completed chunks has been routed
//! and incorporated by its shard, and nothing past the boundary has been
//! touched. The file holds
//!
//! * the compact **control-event prefix** (v1 codec) — cheap to store
//!   because control events are rare relative to accesses (the same
//!   asymmetry that makes sharding work), and sufficient to rebuild every
//!   control-derived structure (DTRG replicas, vector clocks, allocation
//!   names) exactly, by replay;
//! * one opaque **state blob per shard** — the access-derived state
//!   ([`futrace_runtime::engine::Checkpointable::save_state`]): shadow
//!   cells, discovered races, counters;
//! * router progress (events consumed, next access index, chunk count,
//!   routing statistics) so a resumed run continues numbering accesses
//!   from the same global sequence;
//! * an optional **trace fingerprint** so `--resume` against the wrong
//!   trace fails loudly instead of producing garbage.
//!
//! The whole payload is CRC-32-guarded; a truncated or bit-flipped
//! checkpoint is rejected with a structured error, never silently
//! half-restored.

use crate::crc32::crc32;
use futrace_runtime::trace::{self, DecodeError};
use futrace_runtime::Event;
use futrace_util::wire::{self, WireError};

/// File magic: "FCKP" (futrace checkpoint).
pub const MAGIC: [u8; 4] = *b"FCKP";

/// Current checkpoint format version.
pub const VERSION: u64 = 1;

/// How many leading trace bytes the fingerprint hashes.
pub const FINGERPRINT_HEAD: usize = 4096;

/// Cheap identity of the trace a checkpoint belongs to: total length plus
/// a CRC of the first [`FINGERPRINT_HEAD`] bytes. Not cryptographic —
/// it guards against *mistakes* (resuming against the wrong file), not
/// adversaries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceFingerprint {
    /// Total trace length in bytes.
    pub len: u64,
    /// CRC-32 of the first [`FINGERPRINT_HEAD`] bytes (or all of them if
    /// shorter).
    pub head_crc: u32,
}

impl TraceFingerprint {
    /// Fingerprints a trace blob.
    pub fn of(data: &[u8]) -> TraceFingerprint {
        let head = &data[..data.len().min(FINGERPRINT_HEAD)];
        TraceFingerprint {
            len: data.len() as u64,
            head_crc: crc32(head),
        }
    }
}

/// Router-side progress counters frozen into a checkpoint, so the resumed
/// run's final statistics match a fresh run's.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RouterProgress {
    /// Total events consumed from the trace stream.
    pub events: u64,
    /// Control events broadcast.
    pub control_events: u64,
    /// Read accesses routed.
    pub reads: u64,
    /// Write accesses routed.
    pub writes: u64,
}

/// A suspended sharded analysis, ready to be serialized with
/// [`Checkpoint::encode`] or resumed by the supervisor.
#[derive(Clone, Debug, PartialEq)]
pub struct Checkpoint {
    /// Number of shard workers the snapshot was taken across. A resume
    /// must use the same count — access routing is `loc % shards`.
    pub shards: usize,
    /// Events consumed from the trace stream (the resume skip count).
    pub events_consumed: u64,
    /// The next global access index the router will assign.
    pub next_access_index: u64,
    /// Chunks fully consumed at the snapshot boundary.
    pub chunks_completed: u64,
    /// Router progress counters.
    pub router: RouterProgress,
    /// The control-event prefix (all control events among the consumed
    /// events, in order).
    pub control_events: Vec<Event>,
    /// Per-shard access counts at the snapshot.
    pub per_shard_accesses: Vec<u64>,
    /// Per-shard access-derived state blobs
    /// ([`futrace_runtime::engine::Checkpointable`]).
    pub shard_states: Vec<Vec<u8>>,
    /// Fingerprint of the source trace, if known.
    pub fingerprint: Option<TraceFingerprint>,
}

/// Why a checkpoint file could not be decoded or used.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckpointError {
    /// The blob does not start with [`MAGIC`].
    BadMagic,
    /// Unsupported format version.
    BadVersion(u64),
    /// The payload CRC does not match: the file is truncated or corrupt.
    BadCrc {
        /// CRC stored in the file.
        stored: u32,
        /// CRC computed over the payload actually present.
        computed: u32,
    },
    /// A field could not be parsed.
    Wire(WireError),
    /// The embedded control-event prefix is malformed.
    Control(DecodeError),
    /// Structural inconsistency (e.g. shard counts disagree).
    Inconsistent(String),
    /// The checkpoint does not belong to the trace being resumed.
    TraceMismatch {
        /// Fingerprint stored in the checkpoint.
        expected: TraceFingerprint,
        /// Fingerprint of the trace handed to resume.
        actual: TraceFingerprint,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::BadMagic => write!(f, "not a checkpoint file (bad magic)"),
            CheckpointError::BadVersion(v) => {
                write!(f, "unsupported checkpoint version {v} (expected {VERSION})")
            }
            CheckpointError::BadCrc { stored, computed } => write!(
                f,
                "checkpoint corrupt: expected crc {stored:#010x}, actual {computed:#010x}"
            ),
            CheckpointError::Wire(e) => write!(f, "checkpoint malformed: {e}"),
            CheckpointError::Control(e) => {
                write!(f, "checkpoint control prefix malformed: {e}")
            }
            CheckpointError::Inconsistent(why) => {
                write!(f, "checkpoint inconsistent: {why}")
            }
            CheckpointError::TraceMismatch { expected, actual } => write!(
                f,
                "checkpoint does not match this trace: recorded {} byte(s) with head crc \
                 {:#010x}, got {} byte(s) with head crc {:#010x}",
                expected.len, expected.head_crc, actual.len, actual.head_crc
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<WireError> for CheckpointError {
    fn from(e: WireError) -> Self {
        CheckpointError::Wire(e)
    }
}

impl Checkpoint {
    /// Serializes the checkpoint: magic, varint-framed payload, trailing
    /// CRC-32 over everything after the magic.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        wire::put_varint(&mut out, VERSION);
        wire::put_varint(&mut out, self.shards as u64);
        wire::put_varint(&mut out, self.events_consumed);
        wire::put_varint(&mut out, self.next_access_index);
        wire::put_varint(&mut out, self.chunks_completed);
        wire::put_varint(&mut out, self.router.events);
        wire::put_varint(&mut out, self.router.control_events);
        wire::put_varint(&mut out, self.router.reads);
        wire::put_varint(&mut out, self.router.writes);
        match self.fingerprint {
            Some(fp) => {
                wire::put_varint(&mut out, 1);
                wire::put_varint(&mut out, fp.len);
                wire::put_u32_le(&mut out, fp.head_crc);
            }
            None => wire::put_varint(&mut out, 0),
        }
        wire::put_bytes(&mut out, &trace::encode(&self.control_events));
        wire::put_varint(&mut out, self.shard_states.len() as u64);
        for (state, &accesses) in self.shard_states.iter().zip(&self.per_shard_accesses) {
            wire::put_varint(&mut out, accesses);
            wire::put_bytes(&mut out, state);
        }
        let crc = crc32(&out[MAGIC.len()..]);
        wire::put_u32_le(&mut out, crc);
        out
    }

    /// Parses and CRC-validates a checkpoint blob.
    pub fn decode(data: &[u8]) -> Result<Checkpoint, CheckpointError> {
        if data.len() < MAGIC.len() + 4 || data[..MAGIC.len()] != MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let payload = &data[MAGIC.len()..data.len() - 4];
        let stored = u32::from_le_bytes(data[data.len() - 4..].try_into().unwrap());
        let computed = crc32(payload);
        if stored != computed {
            return Err(CheckpointError::BadCrc { stored, computed });
        }

        let mut c = wire::Cursor::new(payload);
        let version = c.varint("checkpoint version")?;
        if version != VERSION {
            return Err(CheckpointError::BadVersion(version));
        }
        let shards = c.varint("shard count")? as usize;
        let events_consumed = c.varint("events consumed")?;
        let next_access_index = c.varint("next access index")?;
        let chunks_completed = c.varint("chunks completed")?;
        let router = RouterProgress {
            events: c.varint("router events")?,
            control_events: c.varint("router control events")?,
            reads: c.varint("router reads")?,
            writes: c.varint("router writes")?,
        };
        let fingerprint = match c.varint("fingerprint flag")? {
            0 => None,
            1 => Some(TraceFingerprint {
                len: c.varint("fingerprint length")?,
                head_crc: c.u32_le("fingerprint head crc")?,
            }),
            other => {
                return Err(CheckpointError::Inconsistent(format!(
                    "invalid fingerprint flag {other}"
                )))
            }
        };
        let control_blob = c.bytes("control prefix")?;
        let control_events =
            trace::decode(control_blob).map_err(CheckpointError::Control)?;
        let n_states = c.varint("shard state count")? as usize;
        if n_states != shards {
            return Err(CheckpointError::Inconsistent(format!(
                "{n_states} shard state blob(s) for {shards} shard(s)"
            )));
        }
        let mut per_shard_accesses = Vec::with_capacity(n_states);
        let mut shard_states = Vec::with_capacity(n_states);
        for _ in 0..n_states {
            per_shard_accesses.push(c.varint("shard accesses")?);
            shard_states.push(c.bytes("shard state")?.to_vec());
        }
        if !c.is_empty() {
            return Err(CheckpointError::Inconsistent(format!(
                "{} trailing byte(s) in checkpoint payload",
                c.remaining()
            )));
        }

        Ok(Checkpoint {
            shards,
            events_consumed,
            next_access_index,
            chunks_completed,
            router,
            control_events,
            per_shard_accesses,
            shard_states,
            fingerprint,
        })
    }

    /// Checks that this checkpoint was taken from `trace` (no-op if the
    /// checkpoint carries no fingerprint).
    pub fn matches_trace(&self, trace: &[u8]) -> Result<(), CheckpointError> {
        if let Some(expected) = self.fingerprint {
            let actual = TraceFingerprint::of(trace);
            if expected != actual {
                return Err(CheckpointError::TraceMismatch { expected, actual });
            }
        }
        Ok(())
    }
}

/// True if `data` looks like a checkpoint file (magic match only).
pub fn is_checkpoint(data: &[u8]) -> bool {
    data.len() >= MAGIC.len() && data[..MAGIC.len()] == MAGIC
}

#[cfg(test)]
mod tests {
    use super::*;
    use futrace_util::ids::{FinishId, LocId, TaskId};
    use futrace_runtime::monitor::TaskKind;

    fn sample() -> Checkpoint {
        Checkpoint {
            shards: 2,
            events_consumed: 17,
            next_access_index: 9,
            chunks_completed: 3,
            router: RouterProgress {
                events: 17,
                control_events: 8,
                reads: 5,
                writes: 4,
            },
            control_events: vec![
                Event::Alloc(LocId(0), 4, "a".into()),
                Event::TaskCreate {
                    parent: TaskId(0),
                    child: TaskId(1),
                    kind: TaskKind::Future,
                    ief: FinishId(0),
                },
                Event::TaskEnd(TaskId(1)),
            ],
            per_shard_accesses: vec![5, 4],
            shard_states: vec![vec![1, 2, 3], vec![4, 5]],
            fingerprint: Some(TraceFingerprint {
                len: 1234,
                head_crc: 0xDEAD_BEEF,
            }),
        }
    }

    #[test]
    fn roundtrip() {
        let cp = sample();
        let blob = cp.encode();
        assert!(is_checkpoint(&blob));
        assert_eq!(Checkpoint::decode(&blob).unwrap(), cp);

        let mut no_fp = sample();
        no_fp.fingerprint = None;
        assert_eq!(Checkpoint::decode(&no_fp.encode()).unwrap(), no_fp);
    }

    #[test]
    fn rejects_bad_magic_and_truncation() {
        assert_eq!(
            Checkpoint::decode(b"nope"),
            Err(CheckpointError::BadMagic)
        );
        let blob = sample().encode();
        let err = Checkpoint::decode(&blob[..blob.len() - 3]).unwrap_err();
        assert!(matches!(err, CheckpointError::BadCrc { .. }), "{err}");
        assert!(err.to_string().contains("crc"));
    }

    #[test]
    fn rejects_bit_flip_anywhere() {
        let blob = sample().encode();
        for i in (MAGIC.len()..blob.len()).step_by(7) {
            let mut bad = blob.clone();
            bad[i] ^= 0x40;
            assert!(
                Checkpoint::decode(&bad).is_err(),
                "flip at byte {i} must not decode cleanly"
            );
        }
    }

    #[test]
    fn fingerprint_guards_resume() {
        let trace = vec![7u8; 8192];
        let mut cp = sample();
        cp.fingerprint = Some(TraceFingerprint::of(&trace));
        cp.matches_trace(&trace).unwrap();
        let other = vec![8u8; 8192];
        let err = cp.matches_trace(&other).unwrap_err();
        assert!(matches!(err, CheckpointError::TraceMismatch { .. }));
        assert!(err.to_string().contains("does not match"));
        cp.fingerprint = None;
        cp.matches_trace(&other).unwrap();
    }

    #[test]
    fn shard_state_count_must_match() {
        let mut cp = sample();
        cp.shard_states.pop();
        cp.per_shard_accesses.pop();
        // encode writes shard_states.len(), which no longer equals shards.
        let err = Checkpoint::decode(&cp.encode()).unwrap_err();
        assert!(matches!(err, CheckpointError::Inconsistent(_)), "{err}");
    }
}
