//! CRC-32, re-exported from [`futrace_util::crc32`].
//!
//! The implementation moved to `futrace-util` when the wire protocol
//! (`futrace_util::wire::proto`) started framing messages with the same
//! checksum the trace chunks use; this shim keeps every historical
//! `futrace_offline::crc32::…` call site working unchanged.

pub use futrace_util::crc32::{crc32, Hasher};
