//! Framed trace format **v2**: a streaming, corruption-tolerant layer
//! over the v1 event codec.
//!
//! The v1 format ([`futrace_runtime::trace`]) is a bare concatenation of
//! varint-packed events: compact, but it can only be written by
//! materializing the whole event log, and one flipped byte poisons the
//! decode of everything after it. v2 wraps the same per-event encoding in
//! checksummed chunks:
//!
//! ```text
//! "FTRC" 0x02                                  file header (5 bytes)
//! repeated chunks:
//!   payload_len: u32 LE                        bytes of payload
//!   event_count: u32 LE                        events encoded in payload
//!   crc32:       u32 LE                        CRC-32 of payload
//!   payload:     payload_len bytes             v1-encoded events
//! ```
//!
//! * [`StreamWriter`] is a [`Monitor`]: it encodes events into a bounded
//!   buffer and emits a chunk whenever the buffer fills, so recording a
//!   10⁹-access run needs O(chunk) memory, not O(trace).
//! * [`FramedEvents`] iterates events chunk by chunk, validating each
//!   CRC and event count. In strict mode the first damaged chunk ends the
//!   stream with a structured [`FrameError`]; in lenient mode damaged
//!   chunks are *skipped* (and counted) — the chunk length prefix makes
//!   resynchronization trivial, which is the point of framing.
//!
//! The first byte of the magic (`0x46`) is not a valid v1 event tag, so
//! format sniffing ([`is_framed`]) cannot misclassify a v1 trace.

use crate::crc32;
use futrace_runtime::monitor::{Event, Monitor, TaskKind};
use futrace_runtime::trace::{self, DecodeError};
use futrace_util::faultinject::{write_all_with_retry, Backoff};
use futrace_util::ids::{FinishId, LocId, TaskId};
use std::io;
use std::time::Duration;

/// File magic ("FTRC").
pub const MAGIC: [u8; 4] = *b"FTRC";
/// Format version carried after the magic.
pub const VERSION: u8 = 2;
/// File header length (magic + version).
pub const HEADER_LEN: usize = 5;
/// Per-chunk header length (payload_len + event_count + crc32).
pub const CHUNK_HEADER_LEN: usize = 12;
/// Default chunk payload target (bytes). Chunks close at the first event
/// boundary past this size.
pub const DEFAULT_CHUNK_BYTES: usize = 64 * 1024;

/// Framing-level failure. Event-codec failures inside an intact chunk are
/// wrapped as [`FrameError::Decode`] so callers always know which chunk
/// was bad.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// The blob does not start with the v2 magic.
    NotFramed,
    /// Magic matched but the version byte is unknown.
    BadVersion(u8),
    /// The blob ends mid-chunk (short header or short payload).
    TruncatedChunk {
        /// Index of the incomplete chunk.
        chunk: usize,
        /// Byte offset of the chunk's header within the file.
        offset: usize,
        /// Bytes actually present from `offset` to end of file.
        available: usize,
        /// Bytes the chunk header promised (`None` when even the 12-byte
        /// header is incomplete).
        expected: Option<usize>,
    },
    /// A chunk's payload does not match its stored CRC.
    CorruptChunk {
        /// Index of the damaged chunk.
        chunk: usize,
        /// Byte offset of the chunk's header within the file.
        offset: usize,
        /// CRC stored in the chunk header.
        stored: u32,
        /// CRC computed over the payload.
        computed: u32,
    },
    /// A CRC-intact chunk whose payload fails to decode, or whose decoded
    /// event count disagrees with the header.
    Decode {
        /// Index of the offending chunk.
        chunk: usize,
        /// The codec-level error (`Malformed("event count mismatch")` for
        /// count disagreements).
        error: DecodeError,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::NotFramed => write!(f, "not a framed (v2) trace"),
            FrameError::BadVersion(v) => write!(f, "unsupported trace format version {v}"),
            FrameError::TruncatedChunk {
                chunk,
                offset,
                available,
                expected,
            } => match expected {
                Some(want) => write!(
                    f,
                    "trace truncated inside chunk {chunk} at byte offset {offset}: \
                     expected {want} byte(s), only {available} present"
                ),
                None => write!(
                    f,
                    "trace truncated inside chunk {chunk} at byte offset {offset}: \
                     chunk header incomplete ({available} of {CHUNK_HEADER_LEN} byte(s))"
                ),
            },
            FrameError::CorruptChunk {
                chunk,
                offset,
                stored,
                computed,
            } => write!(
                f,
                "chunk {chunk} at byte offset {offset} corrupt: \
                 expected crc {stored:#010x}, actual {computed:#010x}"
            ),
            FrameError::Decode { chunk, error } => {
                write!(f, "chunk {chunk} payload undecodable: {error}")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// True iff `data` begins with the v2 magic (version is checked later so
/// a bad version is reported as [`FrameError::BadVersion`], not silently
/// treated as v1).
pub fn is_framed(data: &[u8]) -> bool {
    data.len() >= 4 && data[..4] == MAGIC
}

fn read_u32(data: &[u8], at: usize) -> u32 {
    u32::from_le_bytes([data[at], data[at + 1], data[at + 2], data[at + 3]])
}

/// One intact chunk.
#[derive(Clone, Copy, Debug)]
pub struct Chunk<'a> {
    /// 0-based chunk index within the file.
    pub index: usize,
    /// Events the writer declared for this payload.
    pub event_count: u32,
    /// The v1-encoded payload (CRC already validated).
    pub payload: &'a [u8],
}

/// Iterates the chunks of a framed blob, validating structure and CRCs.
///
/// Yields `Err(CorruptChunk)` for a CRC mismatch and *continues* with the
/// next chunk (the length prefix is trusted for resync); yields
/// `Err(TruncatedChunk)` / header errors and fuses, since no further
/// boundary is known.
pub struct ChunkIter<'a> {
    data: &'a [u8],
    pos: usize,
    index: usize,
    state: IterState,
}

enum IterState {
    Header,
    Chunks,
    Done,
}

/// Chunk iterator over `data` (header validated on first `next`).
pub fn chunks(data: &[u8]) -> ChunkIter<'_> {
    ChunkIter {
        data,
        pos: 0,
        index: 0,
        state: IterState::Header,
    }
}

impl<'a> Iterator for ChunkIter<'a> {
    type Item = Result<Chunk<'a>, FrameError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            match self.state {
                IterState::Done => return None,
                IterState::Header => {
                    if !is_framed(self.data) || self.data.len() < HEADER_LEN {
                        self.state = IterState::Done;
                        return Some(Err(FrameError::NotFramed));
                    }
                    if self.data[4] != VERSION {
                        self.state = IterState::Done;
                        return Some(Err(FrameError::BadVersion(self.data[4])));
                    }
                    self.pos = HEADER_LEN;
                    self.state = IterState::Chunks;
                }
                IterState::Chunks => {
                    if self.pos == self.data.len() {
                        self.state = IterState::Done;
                        return None;
                    }
                    let chunk = self.index;
                    let offset = self.pos;
                    if self.data.len() - self.pos < CHUNK_HEADER_LEN {
                        self.state = IterState::Done;
                        return Some(Err(FrameError::TruncatedChunk {
                            chunk,
                            offset,
                            available: self.data.len() - offset,
                            expected: None,
                        }));
                    }
                    let payload_len = read_u32(self.data, self.pos) as usize;
                    let event_count = read_u32(self.data, self.pos + 4);
                    let stored = read_u32(self.data, self.pos + 8);
                    let body = self.pos + CHUNK_HEADER_LEN;
                    if self.data.len() - body < payload_len {
                        self.state = IterState::Done;
                        return Some(Err(FrameError::TruncatedChunk {
                            chunk,
                            offset,
                            available: self.data.len() - offset,
                            expected: Some(CHUNK_HEADER_LEN + payload_len),
                        }));
                    }
                    let payload = &self.data[body..body + payload_len];
                    self.pos = body + payload_len;
                    self.index += 1;
                    let computed = crc32::crc32(payload);
                    if computed != stored {
                        return Some(Err(FrameError::CorruptChunk {
                            chunk,
                            offset,
                            stored,
                            computed,
                        }));
                    }
                    return Some(Ok(Chunk {
                        index: chunk,
                        event_count,
                        payload,
                    }));
                }
            }
        }
    }
}

/// Streams the events of a framed blob across chunk boundaries.
///
/// Strict mode (`lenient = false`): the first damaged chunk (CRC, count,
/// or codec failure) yields its [`FrameError`] and the iterator fuses.
/// Lenient mode: damaged chunks are skipped and counted
/// ([`FramedEvents::skipped_chunks`]); only unrecoverable structure
/// (bad header, truncation) still surfaces an error.
pub struct FramedEvents<'a> {
    chunks: ChunkIter<'a>,
    current: Option<(trace::DecodeIter<'a>, usize, u32, u32)>, // (iter, chunk, declared, yielded)
    lenient: bool,
    skipped: u64,
    consumed: u64,
    done: bool,
}

impl<'a> FramedEvents<'a> {
    /// Event iterator over `data`.
    pub fn new(data: &'a [u8], lenient: bool) -> Self {
        FramedEvents {
            chunks: chunks(data),
            current: None,
            lenient,
            skipped: 0,
            consumed: 0,
            done: false,
        }
    }

    /// Damaged chunks skipped so far (lenient mode only; 0 in strict mode,
    /// which stops at the first damaged chunk instead).
    pub fn skipped_chunks(&self) -> u64 {
        self.skipped
    }

    /// Chunks fully consumed so far (decoded or skipped). The checkpoint
    /// layer snapshots analysis state at these boundaries, so resumed and
    /// fresh runs cut the stream at identical points.
    pub fn chunks_consumed(&self) -> u64 {
        self.consumed
    }

    fn fail(&mut self, e: FrameError) -> Option<Result<Event, FrameError>> {
        self.done = true;
        Some(Err(e))
    }
}

impl Iterator for FramedEvents<'_> {
    type Item = Result<Event, FrameError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if self.done {
                return None;
            }
            if let Some((iter, chunk, declared, yielded)) = self.current.as_mut() {
                match iter.next() {
                    Some(Ok(e)) => {
                        *yielded += 1;
                        if *yielded > *declared {
                            let err = FrameError::Decode {
                                chunk: *chunk,
                                error: DecodeError::Malformed("event count mismatch"),
                            };
                            self.current = None;
                            self.consumed += 1;
                            if self.lenient {
                                self.skipped += 1;
                                continue;
                            }
                            return self.fail(err);
                        }
                        return Some(Ok(e));
                    }
                    Some(Err(error)) => {
                        let err = FrameError::Decode {
                            chunk: *chunk,
                            error,
                        };
                        self.current = None;
                        self.consumed += 1;
                        if self.lenient {
                            self.skipped += 1;
                            continue;
                        }
                        return self.fail(err);
                    }
                    None => {
                        let short = *yielded < *declared;
                        let err = FrameError::Decode {
                            chunk: *chunk,
                            error: DecodeError::Malformed("event count mismatch"),
                        };
                        self.current = None;
                        self.consumed += 1;
                        if short {
                            // Events already yielded from this chunk were
                            // individually valid; only the bookkeeping is
                            // reported (strict) or counted (lenient).
                            if self.lenient {
                                self.skipped += 1;
                                continue;
                            }
                            return self.fail(err);
                        }
                        continue;
                    }
                }
            }
            match self.chunks.next() {
                None => {
                    self.done = true;
                    return None;
                }
                Some(Ok(chunk)) => {
                    self.current = Some((
                        trace::decode_iter(chunk.payload),
                        chunk.index,
                        chunk.event_count,
                        0,
                    ));
                }
                Some(Err(FrameError::CorruptChunk { .. })) if self.lenient => {
                    self.skipped += 1;
                    self.consumed += 1;
                }
                Some(Err(e)) => return self.fail(e),
            }
        }
    }
}

/// Totals accumulated by a [`StreamWriter`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WriterStats {
    /// Chunks emitted.
    pub chunks: u64,
    /// Events recorded.
    pub events: u64,
    /// Payload bytes (excluding file and chunk headers).
    pub payload_bytes: u64,
    /// Total bytes written to the sink, headers included.
    pub bytes_written: u64,
    /// Transient sink errors smoothed over by the bounded retry loop.
    pub io_retries: u64,
    /// Events discarded after the sink failed hard (the swallow-with-flag
    /// path; [`StreamWriter::finish`] surfaces the stashed error).
    pub dropped_events: u64,
}

/// Incremental v2 writer with bounded buffering; also a [`Monitor`], so a
/// program can be recorded straight to disk without an in-memory
/// [`futrace_runtime::EventLog`].
///
/// `Monitor` callbacks cannot return errors, so the first sink failure is
/// stashed, further events are dropped (and counted), and the error
/// surfaces from [`StreamWriter::finish`] — the checked close every
/// production caller must use. Dropping an unfinished writer flushes
/// best-effort and swallows sink failures: a failing disk during unwind
/// must not turn into a double panic.
///
/// Transient sink errors (`WouldBlock`/`TimedOut`; `Interrupted` is
/// absorbed like std's `write_all`) are retried with bounded,
/// deterministically jittered backoff before being treated as hard.
pub struct StreamWriter<W: io::Write> {
    /// `None` only after `finish` has moved the sink out (so `Drop` can
    /// tell a closed writer from an abandoned one without unsafe).
    sink: Option<W>,
    buf: Vec<u8>,
    pending_events: u32,
    chunk_bytes: usize,
    stats: WriterStats,
    error: Option<io::Error>,
}

/// Retry budget for one chunk write: up to 8 consecutive transient
/// failures, starting at 50µs and doubling (jittered, capped at 100ms).
const RETRY_ATTEMPTS: u32 = 8;
const RETRY_BASE: Duration = Duration::from_micros(50);

impl<W: io::Write> StreamWriter<W> {
    /// Writer with the default chunk size ([`DEFAULT_CHUNK_BYTES`]). The
    /// file header is written immediately.
    pub fn new(sink: W) -> io::Result<Self> {
        Self::with_chunk_bytes(sink, DEFAULT_CHUNK_BYTES)
    }

    /// Writer closing chunks at the first event boundary past
    /// `chunk_bytes` payload bytes (clamped to ≥ 64).
    pub fn with_chunk_bytes(mut sink: W, chunk_bytes: usize) -> io::Result<Self> {
        let chunk_bytes = chunk_bytes.max(64);
        let mut backoff = Backoff::new(u64::MAX, RETRY_ATTEMPTS, RETRY_BASE);
        write_all_with_retry(&mut sink, &MAGIC, &mut backoff)?;
        write_all_with_retry(&mut sink, &[VERSION], &mut backoff)?;
        Ok(StreamWriter {
            sink: Some(sink),
            buf: Vec::with_capacity(chunk_bytes + 64),
            pending_events: 0,
            chunk_bytes,
            stats: WriterStats {
                bytes_written: HEADER_LEN as u64,
                ..WriterStats::default()
            },
            error: None,
        })
    }

    /// Appends one event, flushing a chunk if the buffer is full.
    pub fn record(&mut self, e: &Event) {
        if self.error.is_some() {
            self.stats.dropped_events += 1;
            return;
        }
        trace::encode_event(&mut self.buf, e);
        self.pending_events += 1;
        self.stats.events += 1;
        if self.buf.len() >= self.chunk_bytes || self.pending_events == u32::MAX {
            self.flush_chunk();
        }
    }

    fn flush_chunk(&mut self) {
        if self.pending_events == 0 || self.error.is_some() {
            return;
        }
        let Some(sink) = self.sink.as_mut() else {
            return;
        };
        let crc = crc32::crc32(&self.buf);
        let mut header = [0u8; CHUNK_HEADER_LEN];
        header[..4].copy_from_slice(&(self.buf.len() as u32).to_le_bytes());
        header[4..8].copy_from_slice(&self.pending_events.to_le_bytes());
        header[8..].copy_from_slice(&crc.to_le_bytes());
        // Deterministic jitter: the chunk ordinal seeds the backoff, so a
        // given recording retries with identical timing on every run.
        let mut backoff = Backoff::new(self.stats.chunks, RETRY_ATTEMPTS, RETRY_BASE);
        let res = write_all_with_retry(sink, &header, &mut backoff)
            .and_then(|()| write_all_with_retry(sink, &self.buf, &mut backoff));
        self.stats.io_retries += backoff.total_retries();
        match res {
            Ok(()) => {
                self.stats.chunks += 1;
                self.stats.payload_bytes += self.buf.len() as u64;
                self.stats.bytes_written += (CHUNK_HEADER_LEN + self.buf.len()) as u64;
            }
            Err(e) => self.error = Some(e),
        }
        self.buf.clear();
        self.pending_events = 0;
    }

    /// Flushes the trailing partial chunk and the sink, returning the sink
    /// and totals — or the first error encountered anywhere in the run.
    /// This is the checked close: a recording not finished with `Ok` must
    /// not be trusted.
    pub fn finish(mut self) -> io::Result<(W, WriterStats)> {
        self.flush_chunk();
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        let mut sink = self.sink.take().expect("finish called once");
        sink.flush()?;
        Ok((sink, self.stats))
    }

    /// Totals so far (the trailing partial chunk is not yet counted in
    /// `chunks`/`payload_bytes`).
    pub fn stats(&self) -> WriterStats {
        self.stats
    }
}

impl<W: io::Write> Drop for StreamWriter<W> {
    fn drop(&mut self) {
        // Unfinished writer (early return, panic unwind, test shortcut):
        // flush what we have, but swallow failures — `flush_chunk` already
        // converts sink errors into the stashed flag instead of panicking,
        // and a best-effort `flush` must not unwind either.
        if self.sink.is_some() {
            self.flush_chunk();
            if let Some(sink) = self.sink.as_mut() {
                let _ = sink.flush();
            }
        }
    }
}

impl<W: io::Write> Monitor for StreamWriter<W> {
    fn task_create(&mut self, parent: TaskId, child: TaskId, kind: TaskKind, ief: FinishId) {
        self.record(&Event::TaskCreate {
            parent,
            child,
            kind,
            ief,
        });
    }
    fn task_end(&mut self, task: TaskId) {
        self.record(&Event::TaskEnd(task));
    }
    fn finish_start(&mut self, task: TaskId, finish: FinishId) {
        self.record(&Event::FinishStart(task, finish));
    }
    fn finish_end(&mut self, task: TaskId, finish: FinishId, joined: &[TaskId]) {
        self.record(&Event::FinishEnd(task, finish, joined.to_vec()));
    }
    fn get(&mut self, waiter: TaskId, awaited: TaskId) {
        self.record(&Event::Get { waiter, awaited });
    }
    fn read(&mut self, task: TaskId, loc: LocId) {
        self.record(&Event::Read(task, loc));
    }
    fn write(&mut self, task: TaskId, loc: LocId) {
        self.record(&Event::Write(task, loc));
    }
    fn alloc(&mut self, base: LocId, n: u32, name: &str) {
        self.record(&Event::Alloc(base, n, name.to_string()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use futrace_runtime::{run_serial, TaskCtx};

    fn record_program() -> (Vec<u8>, WriterStats, Vec<Event>) {
        // Small chunk size so the trace spans several chunks.
        let mut log = futrace_runtime::EventLog::new();
        let mut writer = StreamWriter::with_chunk_bytes(Vec::new(), 64).unwrap();
        let program = |ctx: &mut futrace_runtime::SerialCtx<futrace_runtime::EventLog>| {
            let a = ctx.shared_array(16, 0u64, "grid");
            ctx.finish(|ctx| {
                for i in 0..8usize {
                    let aw = a.clone();
                    ctx.async_task(move |ctx| aw.write(ctx, i, i as u64));
                }
            });
            for i in 0..16usize {
                let _ = a.read(ctx, i);
            }
        };
        run_serial(&mut log, program);
        for e in &log.events {
            writer.record(e);
        }
        let (bytes, stats) = writer.finish().unwrap();
        (bytes, stats, log.events)
    }

    #[test]
    fn roundtrip_across_chunks() {
        let (bytes, stats, events) = record_program();
        assert!(stats.chunks >= 2, "want multiple chunks, got {stats:?}");
        assert_eq!(stats.events, events.len() as u64);
        assert_eq!(stats.bytes_written, bytes.len() as u64);
        let decoded: Vec<Event> = FramedEvents::new(&bytes, false)
            .map(|e| e.unwrap())
            .collect();
        assert_eq!(decoded, events);
    }

    #[test]
    fn monitor_recording_equals_log_recording() {
        fn program<M: Monitor>(ctx: &mut futrace_runtime::SerialCtx<'_, M>) {
            let v = ctx.shared_var(0u64, "v");
            let v2 = v.clone();
            let f = ctx.future(move |ctx| v2.write(ctx, 1));
            ctx.get(&f);
            let _ = v.read(ctx);
        }
        // Record through the Monitor impl directly...
        let mut writer = StreamWriter::new(Vec::new()).unwrap();
        run_serial(&mut writer, program);
        let (direct, _) = writer.finish().unwrap();
        // ...and via an EventLog replayed into a writer.
        let mut log = futrace_runtime::EventLog::new();
        run_serial(&mut log, program);
        let mut writer = StreamWriter::new(Vec::new()).unwrap();
        for e in &log.events {
            writer.record(e);
        }
        let (via_log, _) = writer.finish().unwrap();
        assert_eq!(direct, via_log);
    }

    #[test]
    fn corrupt_chunk_is_detected_and_skippable() {
        let (mut bytes, stats, events) = record_program();
        // Flip one byte in the middle of the first chunk's payload.
        let victim = HEADER_LEN + CHUNK_HEADER_LEN + 3;
        bytes[victim] ^= 0x40;

        // Strict: structured error, then fused.
        let mut it = FramedEvents::new(&bytes, false);
        let first_err = it.by_ref().find_map(|r| r.err()).expect("must error");
        assert!(
            matches!(
                first_err,
                FrameError::CorruptChunk { chunk: 0, .. } | FrameError::Decode { chunk: 0, .. }
            ),
            "{first_err:?}"
        );
        assert!(it.next().is_none());

        // Lenient: later chunks still decode; exactly one chunk lost.
        let mut it = FramedEvents::new(&bytes, true);
        let salvaged: Vec<Event> = it.by_ref().map(|e| e.unwrap()).collect();
        assert_eq!(it.skipped_chunks(), 1);
        assert!(salvaged.len() < events.len());
        assert!(
            stats.chunks >= 2 && !salvaged.is_empty(),
            "later chunks survive"
        );
        // Everything salvaged is a suffix-aligned subset of the original
        // stream: the undamaged chunks decode to their exact original runs.
        let tail = &events[events.len() - salvaged.len()..];
        assert_eq!(salvaged, tail);
    }

    #[test]
    fn truncation_is_fatal_even_lenient() {
        let (bytes, _, _) = record_program();
        let cut = &bytes[..bytes.len() - 3];
        let mut it = FramedEvents::new(cut, true);
        let err = it.by_ref().find_map(|r| r.err()).expect("must error");
        assert!(matches!(err, FrameError::TruncatedChunk { .. }), "{err:?}");
        assert!(it.next().is_none());
    }

    #[test]
    fn header_validation() {
        assert!(!is_framed(b"FT"));
        assert!(!is_framed(&[]));
        let mut it = FramedEvents::new(b"XXXXX", false);
        assert_eq!(it.next(), Some(Err(FrameError::NotFramed)));
        let mut bad_version = Vec::from(MAGIC);
        bad_version.push(9);
        let mut it = FramedEvents::new(&bad_version, false);
        assert_eq!(it.next(), Some(Err(FrameError::BadVersion(9))));
        // An empty v2 trace (header only) is valid and empty.
        let (bytes, stats) = StreamWriter::new(Vec::new()).unwrap().finish().unwrap();
        assert_eq!(stats.chunks, 0);
        assert_eq!(FramedEvents::new(&bytes, false).count(), 0);
    }

    #[test]
    fn event_count_mismatch_is_reported() {
        let mut writer = StreamWriter::new(Vec::new()).unwrap();
        writer.record(&Event::TaskEnd(TaskId(1)));
        let (mut bytes, _) = writer.finish().unwrap();
        // Tamper with the declared event count and refresh the CRC so only
        // the count check can catch it.
        let count_at = HEADER_LEN + 4;
        bytes[count_at..count_at + 4].copy_from_slice(&5u32.to_le_bytes());
        let err = FramedEvents::new(&bytes, false)
            .find_map(|r| r.err())
            .expect("must error");
        assert!(
            matches!(
                err,
                FrameError::Decode {
                    chunk: 0,
                    error: DecodeError::Malformed("event count mismatch")
                }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn full_sink_surfaces_at_finish() {
        struct Full;
        impl io::Write for Full {
            fn write(&mut self, _: &[u8]) -> io::Result<usize> {
                Err(io::Error::new(io::ErrorKind::Other, "disk full"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        assert!(StreamWriter::new(Full).is_err(), "header write fails");
    }

    /// Sink that accepts the 5-byte file header, then fails hard on every
    /// write *and* panics-free on flush — the Drop-path regression shape.
    #[derive(Debug)]
    struct FailAfterHeader {
        accepted: usize,
    }
    impl io::Write for FailAfterHeader {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if self.accepted < HEADER_LEN {
                self.accepted += buf.len();
                return Ok(buf.len());
            }
            Err(io::Error::new(io::ErrorKind::Other, "dead disk"))
        }
        fn flush(&mut self) -> io::Result<()> {
            Err(io::Error::new(io::ErrorKind::Other, "dead disk"))
        }
    }

    #[test]
    fn drop_with_partial_chunk_on_failing_sink_does_not_panic() {
        let mut writer = StreamWriter::new(FailAfterHeader { accepted: 0 }).unwrap();
        writer.record(&Event::TaskEnd(TaskId(1)));
        assert_eq!(writer.stats().events, 1);
        // Buffer holds a partial chunk; the sink will reject the flush.
        drop(writer); // must not panic
    }

    #[test]
    fn events_after_hard_error_are_counted_as_dropped() {
        let mut writer =
            StreamWriter::with_chunk_bytes(FailAfterHeader { accepted: 0 }, 64).unwrap();
        for _ in 0..200 {
            writer.record(&Event::TaskEnd(TaskId(1)));
        }
        let stats = writer.stats();
        assert!(stats.dropped_events > 0, "{stats:?}");
        let err = writer.finish().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Other);
    }

    #[test]
    fn transient_sink_errors_are_retried_into_a_valid_trace() {
        use futrace_util::faultinject::{FaultyWriter, IoFaults, TransientKind};
        let faults = IoFaults {
            transient_every: Some(2),
            transient_kind: Some(TransientKind::WouldBlock),
            short_op_every: Some(3),
            ..IoFaults::default()
        };
        let mut writer =
            StreamWriter::with_chunk_bytes(FaultyWriter::new(Vec::new(), faults), 64).unwrap();
        let mut log = futrace_runtime::EventLog::new();
        run_serial(&mut log, |ctx: &mut futrace_runtime::SerialCtx<_>| {
            let a = ctx.shared_array(32, 0u64, "grid");
            for i in 0..32usize {
                a.write(ctx, i, i as u64);
            }
        });
        for e in &log.events {
            writer.record(e);
        }
        let (faulty, stats) = writer.finish().unwrap();
        assert!(stats.io_retries > 0, "retry path exercised: {stats:?}");
        assert_eq!(stats.dropped_events, 0);
        let bytes = faulty.into_inner();
        let decoded: Vec<Event> = FramedEvents::new(&bytes, false)
            .map(|e| e.unwrap())
            .collect();
        assert_eq!(decoded, log.events, "trace identical despite faults");
    }

    #[test]
    fn truncation_error_reports_offset_and_sizes() {
        let (bytes, _, _) = record_program();
        let cut = &bytes[..bytes.len() - 3];
        let err = FramedEvents::new(cut, true)
            .find_map(|r| r.err())
            .expect("must error");
        let FrameError::TruncatedChunk {
            offset,
            available,
            expected,
            ..
        } = err
        else {
            panic!("{err:?}");
        };
        assert!(offset >= HEADER_LEN);
        match expected {
            Some(want) => assert!(available < want),
            None => assert!(available < CHUNK_HEADER_LEN),
        }
        let shown = err.to_string();
        assert!(shown.contains("byte offset"), "{shown}");
    }

    #[test]
    fn corrupt_error_reports_offset_and_both_crcs() {
        let (mut bytes, _, _) = record_program();
        let victim = HEADER_LEN + CHUNK_HEADER_LEN + 3;
        bytes[victim] ^= 0x40;
        let err = chunks(&bytes).find_map(|r| r.err()).expect("must error");
        let FrameError::CorruptChunk {
            chunk,
            offset,
            stored,
            computed,
        } = err
        else {
            panic!("{err:?}");
        };
        assert_eq!(chunk, 0);
        assert_eq!(offset, HEADER_LEN);
        assert_ne!(stored, computed);
        let shown = err.to_string();
        assert!(shown.contains("expected crc") && shown.contains("actual"), "{shown}");
    }

    #[test]
    fn chunks_consumed_counts_every_boundary() {
        let (bytes, stats, _) = record_program();
        let mut it = FramedEvents::new(&bytes, false);
        for e in it.by_ref() {
            e.unwrap();
        }
        assert_eq!(it.chunks_consumed(), stats.chunks);
    }
}
