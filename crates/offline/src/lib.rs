//! # futrace-offline — streaming traces and sharded offline detection
//!
//! The paper's detector is strictly serial: it consumes the depth-first
//! event stream in order (§4). Offline, that stream is *data*, and two of
//! its properties make a production-scale pipeline possible:
//!
//! 1. **DTRG maintenance is cheap and access-free.** Only task
//!    create/end, finish start/end, and `get` events mutate the
//!    reachability graph, and there are few of them relative to
//!    shared-memory accesses (Table 2: 10⁴–10⁷ tasks vs 10⁸–10⁹
//!    accesses).
//! 2. **Shadow-memory checks are independent per location.** Algorithm
//!    8/9 touch exactly one shadow cell, and `Precede` queries only read
//!    DTRG state.
//!
//! So offline detection shards cleanly: broadcast the control events to
//! `N` workers (each maintains an identical DTRG replica) and partition
//! the accesses by `loc % N` ([`shard`]). The merged verdict and race
//! report are identical to the serial detector's (asserted by
//! `tests/shard_equivalence.rs` over random programs).
//!
//! Feeding that pipeline from disk needs a trace format that can be
//! written incrementally and read without trusting every byte: [`framed`]
//! layers length-prefixed, CRC-checked chunks (format v2) over the v1
//! event codec in [`futrace_runtime::trace`], with a [`framed::StreamWriter`]
//! monitor for bounded-memory recording and a lenient reading mode that
//! skips damaged chunks instead of aborting.
//!
//! The `tracetool` binary (in `futrace-bench`) wires both into a CLI:
//! `record --stream`, `analyze --shards N`, `info`, and `verify`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod checkpoint;
pub mod crc32;
pub mod framed;
pub mod shard;
pub mod supervise;

pub use checkpoint::{is_checkpoint, Checkpoint, CheckpointError, RouterProgress, TraceFingerprint};
pub use framed::{FrameError, FramedEvents, StreamWriter, WriterStats};
pub use shard::{
    detect_sharded, detect_sharded_events, run_sharded_events, ShardOptions, ShardPlan,
    ShardStats, ShardedOutcome, ShardedRun,
};
pub use supervise::{
    run_supervised, ChunkedEvents, SupervisedOutcome, SupervisionReport, SuperviseError,
    SupervisorPlan, SyntheticChunks,
};

use futrace_runtime::trace::DecodeError;

/// Any failure while reading a trace blob (either format version).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceError {
    /// v2 framing-level failure (bad header, truncated or corrupt chunk).
    Frame(FrameError),
    /// v1 event-codec failure.
    Decode(DecodeError),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Frame(e) => write!(f, "{e}"),
            TraceError::Decode(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for TraceError {}

impl From<FrameError> for TraceError {
    fn from(e: FrameError) -> Self {
        TraceError::Frame(e)
    }
}

impl From<DecodeError> for TraceError {
    fn from(e: DecodeError) -> Self {
        TraceError::Decode(e)
    }
}

/// Iterator over the events of a trace blob in either format: v2 framed
/// streams are chunk-validated as they go; anything else is treated as a
/// v1 flat stream. Construct via [`trace_events`].
pub enum TraceEvents<'a> {
    /// v2 framed stream.
    Framed(FramedEvents<'a>),
    /// v1 flat stream.
    Flat(futrace_runtime::trace::DecodeIter<'a>),
}

impl Iterator for TraceEvents<'_> {
    type Item = Result<futrace_runtime::Event, TraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        match self {
            TraceEvents::Framed(it) => it.next().map(|r| r.map_err(TraceError::from)),
            TraceEvents::Flat(it) => it.next().map(|r| r.map_err(TraceError::from)),
        }
    }
}

impl TraceEvents<'_> {
    /// Chunks skipped so far (always 0 for v1 / strict mode).
    pub fn skipped_chunks(&self) -> u64 {
        match self {
            TraceEvents::Framed(it) => it.skipped_chunks(),
            TraceEvents::Flat(_) => 0,
        }
    }

    /// Chunks fully consumed so far. A v1 flat trace has no chunk
    /// structure, so it exposes no boundaries (checkpointing requires a
    /// framed trace).
    pub fn chunks_consumed(&self) -> u64 {
        match self {
            TraceEvents::Framed(it) => it.chunks_consumed(),
            TraceEvents::Flat(_) => 0,
        }
    }
}

/// Streams the events of a trace blob, auto-detecting the format by the
/// v2 magic. `lenient` only affects framed traces: damaged chunks are
/// skipped (and counted) instead of ending the stream with an error.
pub fn trace_events(data: &[u8], lenient: bool) -> TraceEvents<'_> {
    if framed::is_framed(data) {
        TraceEvents::Framed(framed::FramedEvents::new(data, lenient))
    } else {
        TraceEvents::Flat(futrace_runtime::trace::decode_iter(data))
    }
}

/// Batched counterpart of [`trace_events`]: yields whole decoded chunks
/// (`Vec<Event>`) instead of one event at a time, for the engine's batched
/// dispatch path ([`futrace_runtime::engine::source::chunks`]). A framed
/// trace yields one batch per intact chunk; a flat v1 trace decodes as a
/// single batch. The event sequence is identical to [`trace_events`] with
/// the same `lenient` flag (including which chunks a lenient read skips).
/// Construct via [`trace_chunks`].
pub struct TraceChunks<'a> {
    inner: ChunksInner<'a>,
    lenient: bool,
    skipped: u64,
    done: bool,
}

enum ChunksInner<'a> {
    Framed(framed::ChunkIter<'a>),
    Flat(Option<&'a [u8]>),
}

impl Iterator for TraceChunks<'_> {
    type Item = Result<Vec<futrace_runtime::Event>, TraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if self.done {
                return None;
            }
            match &mut self.inner {
                ChunksInner::Flat(blob) => {
                    let blob = blob.take()?;
                    self.done = true;
                    return Some(
                        futrace_runtime::trace::decode(blob).map_err(TraceError::from),
                    );
                }
                ChunksInner::Framed(chunks) => {
                    let item = match chunks.next() {
                        Some(item) => item,
                        None => return None,
                    };
                    let chunk = match item {
                        Ok(c) => c,
                        // CRC damage is chunk-local (the iterator resyncs);
                        // structural damage fuses either way, matching the
                        // per-event reader.
                        Err(e @ FrameError::CorruptChunk { .. }) => {
                            if self.lenient {
                                self.skipped += 1;
                                continue;
                            }
                            self.done = true;
                            return Some(Err(e.into()));
                        }
                        Err(e) => {
                            self.done = true;
                            return Some(Err(e.into()));
                        }
                    };
                    let index = chunk.index;
                    match futrace_runtime::trace::decode(chunk.payload) {
                        Ok(events) if events.len() as u64 == chunk.event_count as u64 => {
                            return Some(Ok(events));
                        }
                        Ok(_) => {
                            if self.lenient {
                                self.skipped += 1;
                                continue;
                            }
                            self.done = true;
                            return Some(Err(FrameError::Decode {
                                chunk: index,
                                error: DecodeError::Malformed("event count mismatch"),
                            }
                            .into()));
                        }
                        Err(error) => {
                            if self.lenient {
                                self.skipped += 1;
                                continue;
                            }
                            self.done = true;
                            return Some(Err(FrameError::Decode {
                                chunk: index,
                                error,
                            }
                            .into()));
                        }
                    }
                }
            }
        }
    }
}

impl TraceChunks<'_> {
    /// Damaged chunks skipped so far (lenient framed reads only).
    pub fn skipped_chunks(&self) -> u64 {
        self.skipped
    }
}

/// Chunk-batched reader over a trace blob in either format. See
/// [`TraceChunks`].
pub fn trace_chunks(data: &[u8], lenient: bool) -> TraceChunks<'_> {
    let inner = if framed::is_framed(data) {
        ChunksInner::Framed(framed::chunks(data))
    } else {
        ChunksInner::Flat(Some(data))
    };
    TraceChunks {
        inner,
        lenient,
        skipped: 0,
        done: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use futrace_runtime::{trace, Event};
    use futrace_util::ids::{LocId, TaskId};

    fn sample_events() -> Vec<Event> {
        vec![
            Event::Alloc(LocId(0), 2, "m".into()),
            Event::Write(TaskId(0), LocId(0)),
            Event::Read(TaskId(0), LocId(1)),
        ]
    }

    #[test]
    fn trace_events_sniffs_both_formats() {
        let events = sample_events();
        let v1 = trace::encode(&events);
        let got: Vec<Event> = trace_events(&v1, false).map(|e| e.unwrap()).collect();
        assert_eq!(got, events);

        let mut w = StreamWriter::new(Vec::new()).unwrap();
        for e in &events {
            w.record(e);
        }
        let (v2, _) = w.finish().unwrap();
        assert!(framed::is_framed(&v2));
        let got: Vec<Event> = trace_events(&v2, false).map(|e| e.unwrap()).collect();
        assert_eq!(got, events);
    }

    #[test]
    fn trace_chunks_matches_trace_events() {
        let events = sample_events();
        // Flat v1: one batch holding the whole trace.
        let v1 = trace::encode(&events);
        let batches: Vec<Vec<Event>> =
            trace_chunks(&v1, false).map(|b| b.unwrap()).collect();
        assert_eq!(batches, vec![events.clone()]);

        // Framed v2, multiple small chunks: concatenated batches equal the
        // per-event stream.
        let mut w = StreamWriter::with_chunk_bytes(Vec::new(), 8).unwrap();
        for e in &events {
            w.record(e);
        }
        let (v2, _) = w.finish().unwrap();
        let flat: Vec<Event> = trace_chunks(&v2, false)
            .flat_map(|b| b.unwrap())
            .collect();
        let per_event: Vec<Event> = trace_events(&v2, false).map(|e| e.unwrap()).collect();
        assert_eq!(flat, per_event);
        assert_eq!(flat, events);

        // Damage one chunk: strict errors, lenient skips and counts it —
        // the same salvage the per-event reader performs.
        let mut damaged = v2.clone();
        let n = damaged.len();
        damaged[n - 1] ^= 0xFF;
        assert!(trace_chunks(&damaged, false).any(|b| b.is_err()));
        let mut lenient = trace_chunks(&damaged, true);
        let salvaged: Vec<Event> = lenient.by_ref().filter_map(|b| b.ok()).flatten().collect();
        let mut lenient_events = trace_events(&damaged, true);
        let salvaged_per_event: Vec<Event> =
            lenient_events.by_ref().filter_map(|e| e.ok()).collect();
        assert_eq!(salvaged, salvaged_per_event);
        assert_eq!(lenient.skipped_chunks(), lenient_events.skipped_chunks());
        assert!(lenient.skipped_chunks() > 0);
    }

    #[test]
    fn trace_error_display_covers_both_sides() {
        let e = TraceError::from(trace::DecodeError::Truncated);
        assert!(e.to_string().contains("truncated"));
        let e = TraceError::from(FrameError::BadVersion(9));
        assert!(e.to_string().contains("version"));
    }
}
