//! # futrace-offline — streaming traces and sharded offline detection
//!
//! The paper's detector is strictly serial: it consumes the depth-first
//! event stream in order (§4). Offline, that stream is *data*, and two of
//! its properties make a production-scale pipeline possible:
//!
//! 1. **DTRG maintenance is cheap and access-free.** Only task
//!    create/end, finish start/end, and `get` events mutate the
//!    reachability graph, and there are few of them relative to
//!    shared-memory accesses (Table 2: 10⁴–10⁷ tasks vs 10⁸–10⁹
//!    accesses).
//! 2. **Shadow-memory checks are independent per location.** Algorithm
//!    8/9 touch exactly one shadow cell, and `Precede` queries only read
//!    DTRG state.
//!
//! So offline detection shards cleanly: broadcast the control events to
//! `N` workers (each maintains an identical DTRG replica) and partition
//! the accesses by `loc % N` ([`shard`]). The merged verdict and race
//! report are identical to the serial detector's (asserted by
//! `tests/shard_equivalence.rs` over random programs).
//!
//! Feeding that pipeline from disk needs a trace format that can be
//! written incrementally and read without trusting every byte: [`framed`]
//! layers length-prefixed, CRC-checked chunks (format v2) over the v1
//! event codec in [`futrace_runtime::trace`], with a [`framed::StreamWriter`]
//! monitor for bounded-memory recording and a lenient reading mode that
//! skips damaged chunks instead of aborting.
//!
//! The `tracetool` binary (in `futrace-bench`) wires both into a CLI:
//! `record --stream`, `analyze --shards N`, `info`, and `verify`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod checkpoint;
pub mod crc32;
pub mod framed;
pub mod shard;
pub mod supervise;

pub use checkpoint::{is_checkpoint, Checkpoint, CheckpointError, RouterProgress, TraceFingerprint};
pub use framed::{FrameError, FramedEvents, StreamWriter, WriterStats};
pub use shard::{
    detect_sharded, detect_sharded_events, run_sharded_events, ShardOptions, ShardPlan,
    ShardStats, ShardedOutcome, ShardedRun,
};
pub use supervise::{
    run_supervised, ChunkedEvents, SupervisedOutcome, SupervisionReport, SuperviseError,
    SupervisorPlan, SyntheticChunks,
};

use futrace_runtime::trace::DecodeError;

/// Any failure while reading a trace blob (either format version).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceError {
    /// v2 framing-level failure (bad header, truncated or corrupt chunk).
    Frame(FrameError),
    /// v1 event-codec failure.
    Decode(DecodeError),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Frame(e) => write!(f, "{e}"),
            TraceError::Decode(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for TraceError {}

impl From<FrameError> for TraceError {
    fn from(e: FrameError) -> Self {
        TraceError::Frame(e)
    }
}

impl From<DecodeError> for TraceError {
    fn from(e: DecodeError) -> Self {
        TraceError::Decode(e)
    }
}

/// Iterator over the events of a trace blob in either format: v2 framed
/// streams are chunk-validated as they go; anything else is treated as a
/// v1 flat stream. Construct via [`trace_events`].
pub enum TraceEvents<'a> {
    /// v2 framed stream.
    Framed(FramedEvents<'a>),
    /// v1 flat stream.
    Flat(futrace_runtime::trace::DecodeIter<'a>),
}

impl Iterator for TraceEvents<'_> {
    type Item = Result<futrace_runtime::Event, TraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        match self {
            TraceEvents::Framed(it) => it.next().map(|r| r.map_err(TraceError::from)),
            TraceEvents::Flat(it) => it.next().map(|r| r.map_err(TraceError::from)),
        }
    }
}

impl TraceEvents<'_> {
    /// Chunks skipped so far (always 0 for v1 / strict mode).
    pub fn skipped_chunks(&self) -> u64 {
        match self {
            TraceEvents::Framed(it) => it.skipped_chunks(),
            TraceEvents::Flat(_) => 0,
        }
    }

    /// Chunks fully consumed so far. A v1 flat trace has no chunk
    /// structure, so it exposes no boundaries (checkpointing requires a
    /// framed trace).
    pub fn chunks_consumed(&self) -> u64 {
        match self {
            TraceEvents::Framed(it) => it.chunks_consumed(),
            TraceEvents::Flat(_) => 0,
        }
    }
}

/// Streams the events of a trace blob, auto-detecting the format by the
/// v2 magic. `lenient` only affects framed traces: damaged chunks are
/// skipped (and counted) instead of ending the stream with an error.
pub fn trace_events(data: &[u8], lenient: bool) -> TraceEvents<'_> {
    if framed::is_framed(data) {
        TraceEvents::Framed(framed::FramedEvents::new(data, lenient))
    } else {
        TraceEvents::Flat(futrace_runtime::trace::decode_iter(data))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use futrace_runtime::{trace, Event};
    use futrace_util::ids::{LocId, TaskId};

    fn sample_events() -> Vec<Event> {
        vec![
            Event::Alloc(LocId(0), 2, "m".into()),
            Event::Write(TaskId(0), LocId(0)),
            Event::Read(TaskId(0), LocId(1)),
        ]
    }

    #[test]
    fn trace_events_sniffs_both_formats() {
        let events = sample_events();
        let v1 = trace::encode(&events);
        let got: Vec<Event> = trace_events(&v1, false).map(|e| e.unwrap()).collect();
        assert_eq!(got, events);

        let mut w = StreamWriter::new(Vec::new()).unwrap();
        for e in &events {
            w.record(e);
        }
        let (v2, _) = w.finish().unwrap();
        assert!(framed::is_framed(&v2));
        let got: Vec<Event> = trace_events(&v2, false).map(|e| e.unwrap()).collect();
        assert_eq!(got, events);
    }

    #[test]
    fn trace_error_display_covers_both_sides() {
        let e = TraceError::from(trace::DecodeError::Truncated);
        assert!(e.to_string().contains("truncated"));
        let e = TraceError::from(FrameError::BadVersion(9));
        assert!(e.to_string().contains("version"));
    }
}
