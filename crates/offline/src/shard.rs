//! Sharded offline race detection: parallel replay of a recorded trace
//! with a verdict identical to the serial detector's.
//!
//! ## Why this is sound
//!
//! The detector splits into two halves (see
//! [`RaceDetector::apply_control`]):
//!
//! * **DTRG maintenance** is driven only by control events (task
//!   create/end, finish start/end, `get`) — a few per *task*, not per
//!   *access*. Broadcasting them gives every shard a byte-identical DTRG
//!   replica, because DTRG updates never depend on shadow memory.
//! * **Shadow checks** (Algorithms 8–9) touch exactly one location each
//!   and only *read* the DTRG. Routing accesses by `loc % N` therefore
//!   partitions the check work with no cross-shard communication at all.
//!
//! Each access carries its global index from the router's single pass, so
//! per-shard race reports can be merged back into exactly the serial
//! detection order: the serial detector reports races in increasing
//! access index, ties (several races at one access) happen within one
//! location and therefore one shard, and the per-location dedup/cap logic
//! makes identical decisions because each shard sees its locations' full
//! access subsequence. A stable merge by access index followed by the
//! global report cap is thus byte-identical to the serial report
//! (`tests/shard_equivalence.rs` asserts this over random programs).
//!
//! The pipeline is decode → route → N workers over bounded channels
//! ([`crate::channel`]), so decode backpressure bounds memory and the
//! shadow-check hot path runs on all cores.

use crate::channel::{self, Receiver, Sender};
use crate::TraceError;
use futrace_detector::{DetectorConfig, RaceDetector, RaceReport};
use futrace_runtime::engine::{Analysis, LocRoutable};
use futrace_runtime::Event;
use futrace_util::ids::{LocId, TaskId};

/// Pipeline knobs.
#[derive(Clone, Debug)]
pub struct ShardOptions {
    /// Number of detect workers (≥ 1; 1 degenerates to serial replay on a
    /// worker thread).
    pub shards: usize,
    /// Events per routed batch (amortizes channel locking).
    pub batch_events: usize,
    /// In-flight batches per worker channel (backpressure bound).
    pub channel_capacity: usize,
    /// Configuration for each shard's detector.
    pub detector: DetectorConfig,
}

impl Default for ShardOptions {
    fn default() -> Self {
        ShardOptions {
            shards: 4,
            batch_events: 4096,
            channel_capacity: 4,
            detector: DetectorConfig::default(),
        }
    }
}

impl ShardOptions {
    /// Options with an explicit shard count and defaults elsewhere.
    pub fn with_shards(shards: usize) -> Self {
        ShardOptions {
            shards,
            ..ShardOptions::default()
        }
    }
}

/// Analysis-agnostic pipeline knobs (the [`ShardOptions`] fields that are
/// not DTRG-specific). Used by [`run_sharded_events`], which builds the
/// per-shard analyses from a caller-supplied factory instead of a
/// [`DetectorConfig`].
#[derive(Clone, Debug)]
pub struct ShardPlan {
    /// Number of detect workers (≥ 1).
    pub shards: usize,
    /// Events per routed batch.
    pub batch_events: usize,
    /// In-flight batches per worker channel.
    pub channel_capacity: usize,
}

impl Default for ShardPlan {
    fn default() -> Self {
        ShardPlan {
            shards: 4,
            batch_events: 4096,
            channel_capacity: 4,
        }
    }
}

impl ShardPlan {
    /// Plan with an explicit shard count and defaults elsewhere.
    pub fn with_shards(shards: usize) -> Self {
        ShardPlan {
            shards,
            ..ShardPlan::default()
        }
    }
}

impl From<&ShardOptions> for ShardPlan {
    fn from(opts: &ShardOptions) -> Self {
        ShardPlan {
            shards: opts.shards,
            batch_events: opts.batch_events,
            channel_capacity: opts.channel_capacity,
        }
    }
}

/// Pipeline accounting.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Workers used.
    pub shards: usize,
    /// Total events routed.
    pub events: u64,
    /// Control events broadcast to every shard.
    pub control_events: u64,
    /// Read/write events (each routed to exactly one shard).
    pub accesses: u64,
    /// Reads among the accesses.
    pub reads: u64,
    /// Writes among the accesses.
    pub writes: u64,
    /// Accesses checked per shard (indexed by shard).
    pub per_shard_accesses: Vec<u64>,
    /// Damaged chunks skipped by a lenient framed read (0 otherwise).
    pub skipped_chunks: u64,
}

/// Result of a sharded run: the merged report plus pipeline stats.
#[derive(Clone, Debug)]
pub struct ShardedOutcome {
    /// Merged race report, identical to the serial detector's.
    pub report: RaceReport,
    /// Pipeline accounting.
    pub stats: ShardStats,
}

/// Result of a generic sharded run ([`run_sharded_events`]): the merged
/// analysis report plus pipeline stats.
#[derive(Clone, Debug)]
pub struct ShardedRun<R> {
    /// The merged report, as produced by
    /// [`LocRoutable::merge_sharded`].
    pub report: R,
    /// Pipeline accounting.
    pub stats: ShardStats,
}

enum Op {
    Control(Event),
    Access {
        task: TaskId,
        loc: LocId,
        write: bool,
        index: u64,
    },
}

fn worker<A: Analysis>(rx: Receiver<Vec<Op>>, mut analysis: A) -> (A::Report, u64) {
    let mut accesses = 0u64;
    while let Some(batch) = rx.recv() {
        for op in batch {
            match op {
                Op::Control(e) => analysis.apply_control(&e),
                Op::Access {
                    task,
                    loc,
                    write,
                    index,
                } => {
                    accesses += 1;
                    if write {
                        analysis.check_write_at(task, loc, index);
                    } else {
                        analysis.check_read_at(task, loc, index);
                    }
                }
            }
        }
    }
    (analysis.finish(), accesses)
}

fn flush(tx: &Sender<Vec<Op>>, buf: &mut Vec<Op>, cap: usize) -> Result<(), ()> {
    if buf.is_empty() {
        return Ok(());
    }
    let batch = std::mem::replace(buf, Vec::with_capacity(cap));
    tx.send(batch).map_err(|_| ())
}

/// Runs the sharded pipeline over an event stream for *any* loc-routable
/// analysis: control events are broadcast to `plan.shards` replicas built
/// by `factory`, accesses are routed by `loc % N` carrying global indices,
/// and the per-shard reports are merged by a fresh `factory()` instance's
/// [`LocRoutable::merge_sharded`].
///
/// Accepts any stream error type: v1
/// [`futrace_runtime::trace::DecodeError`], framed [`crate::FrameError`],
/// or unified [`TraceError`] iterators all fit. On a stream error the
/// workers are drained and joined first, then the error is returned — no
/// thread is leaked and no partial verdict is reported.
pub fn run_sharded_events<A, I, E, F>(
    events: I,
    plan: &ShardPlan,
    factory: F,
) -> Result<ShardedRun<A::Report>, E>
where
    A: LocRoutable + Send,
    A::Report: Send,
    I: Iterator<Item = Result<Event, E>>,
    F: Fn() -> A,
{
    let n = plan.shards.max(1);
    let batch_cap = plan.batch_events.max(1);
    let mut stream_err: Option<E> = None;
    let mut stats = ShardStats {
        shards: n,
        ..ShardStats::default()
    };

    let results: Vec<(A::Report, u64)> = std::thread::scope(|s| {
        let mut txs: Vec<Sender<Vec<Op>>> = Vec::with_capacity(n);
        let mut handles = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = channel::bounded(plan.channel_capacity.max(1));
            let analysis = factory();
            handles.push(s.spawn(move || worker(rx, analysis)));
            txs.push(tx);
        }

        let mut buffers: Vec<Vec<Op>> = (0..n).map(|_| Vec::with_capacity(batch_cap)).collect();
        let mut index = 0u64;
        'route: for item in events {
            let e = match item {
                Ok(e) => e,
                Err(err) => {
                    stream_err = Some(err);
                    break 'route;
                }
            };
            stats.events += 1;
            match e {
                Event::Read(task, loc) | Event::Write(task, loc) => {
                    let write = matches!(e, Event::Write(..));
                    if write {
                        stats.writes += 1;
                    } else {
                        stats.reads += 1;
                    }
                    let shard = loc.index() % n;
                    buffers[shard].push(Op::Access {
                        task,
                        loc,
                        write,
                        index,
                    });
                    index += 1;
                    if buffers[shard].len() >= batch_cap
                        && flush(&txs[shard], &mut buffers[shard], batch_cap).is_err()
                    {
                        break 'route;
                    }
                }
                control => {
                    stats.control_events += 1;
                    for shard in 0..n {
                        buffers[shard].push(Op::Control(control.clone()));
                        if buffers[shard].len() >= batch_cap
                            && flush(&txs[shard], &mut buffers[shard], batch_cap).is_err()
                        {
                            break 'route;
                        }
                    }
                }
            }
        }
        stats.accesses = index;
        if stream_err.is_none() {
            for shard in 0..n {
                let _ = flush(&txs[shard], &mut buffers[shard], 0);
            }
        }
        drop(txs);
        handles
            .into_iter()
            .map(|h| h.join().expect("shard worker panicked"))
            .collect()
    });

    if let Some(e) = stream_err {
        return Err(e);
    }

    // Merge in shard order via the analysis's own rule. For the DTRG
    // detector that is: concatenate, stable-sort by global access index,
    // re-apply the global report cap — byte-identical to serial because
    // ties within an access index come from a single shard (one access =
    // one location = one shard) so shard-local order is the serial order.
    let mut reports = Vec::with_capacity(results.len());
    for (report, accesses) in results {
        stats.per_shard_accesses.push(accesses);
        reports.push(report);
    }
    let report = factory().merge_sharded(reports);

    Ok(ShardedRun { report, stats })
}

/// DTRG-specific entry point kept for existing callers: runs
/// [`run_sharded_events`] with [`RaceDetector`] shards configured by
/// `opts.detector` and projects out the merged [`RaceReport`].
pub fn detect_sharded_events<I, E>(events: I, opts: &ShardOptions) -> Result<ShardedOutcome, E>
where
    I: Iterator<Item = Result<Event, E>>,
{
    let plan = ShardPlan::from(opts);
    let config = opts.detector.clone();
    let run = run_sharded_events(events, &plan, || {
        RaceDetector::with_config(config.clone())
    })?;
    Ok(ShardedOutcome {
        report: run.report.report,
        stats: run.stats,
    })
}

/// Sharded detection straight from a trace blob (v1 flat or v2 framed,
/// auto-detected). `lenient` skips damaged v2 chunks; the skip count is
/// surfaced in [`ShardStats::skipped_chunks`].
pub fn detect_sharded(
    data: &[u8],
    opts: &ShardOptions,
    lenient: bool,
) -> Result<ShardedOutcome, TraceError> {
    let mut events = crate::trace_events(data, lenient);
    let mut outcome = detect_sharded_events(&mut events, opts)?;
    outcome.stats.skipped_chunks = events.skipped_chunks();
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use futrace_runtime::{replay, run_serial, trace, EventLog, TaskCtx};

    fn racy_log() -> EventLog {
        let mut log = EventLog::new();
        run_serial(&mut log, |ctx| {
            let a = ctx.shared_array(8, 0u64, "a");
            ctx.finish(|ctx| {
                for i in 0..8usize {
                    let aw = a.clone();
                    ctx.async_task(move |ctx| aw.write(ctx, i, 1));
                }
            });
            for i in 0..8usize {
                a.write(ctx, i, 2); // race-free: finish joined the writers
            }
            let aw = a.clone();
            let _f = ctx.future(move |ctx| aw.write(ctx, 3, 9));
            let _ = a.read(ctx, 3); // racy: future never joined
        });
        log
    }

    fn serial_report(log: &EventLog) -> RaceReport {
        let mut det = RaceDetector::new();
        replay(&log.events, &mut det);
        det.into_report()
    }

    #[test]
    fn sharded_matches_serial_on_racy_program() {
        let log = racy_log();
        let serial = serial_report(&log);
        assert!(serial.has_races());
        for shards in [1usize, 2, 3, 8] {
            let opts = ShardOptions {
                shards,
                batch_events: 3, // tiny batches to stress the channel path
                channel_capacity: 2,
                ..ShardOptions::default()
            };
            let events = log.events.iter().cloned().map(Ok::<_, TraceError>);
            let out = detect_sharded_events(events, &opts).unwrap();
            assert_eq!(out.report.total_detected, serial.total_detected);
            assert_eq!(out.report.races, serial.races, "shards={shards}");
            assert_eq!(out.stats.shards, shards);
            assert_eq!(
                out.stats.per_shard_accesses.iter().sum::<u64>(),
                out.stats.accesses
            );
            assert_eq!(out.stats.reads + out.stats.writes, out.stats.accesses);
        }
    }

    #[test]
    fn blob_entrypoint_handles_both_formats() {
        let log = racy_log();
        let serial = serial_report(&log);
        let v1 = trace::encode(&log.events);
        let out = detect_sharded(&v1, &ShardOptions::with_shards(2), false).unwrap();
        assert_eq!(out.report.races, serial.races);

        let mut w = crate::StreamWriter::with_chunk_bytes(Vec::new(), 128).unwrap();
        for e in &log.events {
            w.record(e);
        }
        let (v2, _) = w.finish().unwrap();
        let out = detect_sharded(&v2, &ShardOptions::with_shards(3), false).unwrap();
        assert_eq!(out.report.races, serial.races);
        assert_eq!(out.stats.skipped_chunks, 0);
    }

    #[test]
    fn stream_error_propagates_cleanly() {
        let log = racy_log();
        let mut blob = trace::encode(&log.events);
        blob.push(99); // unknown tag at the tail
        let err = detect_sharded(&blob, &ShardOptions::with_shards(2), false).unwrap_err();
        assert!(err.to_string().contains("malformed"), "{err}");
    }

    #[test]
    fn report_cap_is_global_not_per_shard() {
        // 8 distinct racy locations; cap at 3 reports. The sharded merge
        // must keep the *first three in serial order*, not three per shard.
        let mut log = EventLog::new();
        run_serial(&mut log, |ctx| {
            let a = ctx.shared_array(8, 0u64, "a");
            for i in 0..8usize {
                let aw = a.clone();
                ctx.async_task(move |ctx| aw.write(ctx, i, 1));
            }
            for i in 0..8usize {
                a.write(ctx, i, 2);
            }
        });
        let config = DetectorConfig {
            max_reports: 3,
            ..DetectorConfig::default()
        };
        let mut det = RaceDetector::with_config(config.clone());
        replay(&log.events, &mut det);
        let serial = det.into_report();
        assert_eq!(serial.races.len(), 3);

        let opts = ShardOptions {
            shards: 4,
            detector: config,
            ..ShardOptions::default()
        };
        let events = log.events.iter().cloned().map(Ok::<_, TraceError>);
        let out = detect_sharded_events(events, &opts).unwrap();
        assert_eq!(out.report.races, serial.races);
        assert_eq!(out.report.total_detected, serial.total_detected);
    }
}
