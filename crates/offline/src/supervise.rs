//! Supervised sharded analysis: fault-isolated workers, a watchdog, and
//! recovery by restart-from-snapshot, degrade-to-serial, or
//! suspend-to-checkpoint (DESIGN S38).
//!
//! The plain [`crate::shard`] pipeline assumes nothing goes wrong: a
//! panicking worker aborts the process, a wedged worker hangs the router
//! forever, and a killed process loses all progress. This module wraps the
//! same routing discipline in a supervisor:
//!
//! * **Workers are spawned detached** (`std::thread::spawn`, not a scope)
//!   with the analysis loop under `catch_unwind`, so a worker panic
//!   becomes a [`FromWorker::Died`] message instead of a process abort,
//!   and a wedged worker can be *abandoned* — the supervisor drops its
//!   sender and moves on, which a scoped join could never do.
//! * **The watchdog** bounds every wait: routing uses
//!   [`crate::channel::Sender::send_timeout`], collection uses
//!   [`crate::channel::Receiver::recv_timeout`]. A deadline expiring means
//!   a worker is stalled; it is treated exactly like a dead one.
//! * **Restart-from-snapshot**: at chunk boundaries the supervisor can
//!   barrier-snapshot every worker ([`Checkpointable::save_state`]). A
//!   replacement worker is rebuilt from scratch — control-prefix replay,
//!   state restore, then replay of the batches routed since the snapshot
//!   (the supervisor retains them; their volume is bounded by the
//!   checkpoint interval and capped by
//!   [`SupervisorPlan::max_replay_ops`] — on overflow the buffer is
//!   dropped and a death in that window degrades to serial instead of
//!   hoarding memory). Injected faults are one-shot, modelling the
//!   transient failures restart is for.
//! * **Degrade-to-serial**: when restarts are exhausted (or recovery
//!   itself fails), the supervisor falls back to a fresh single-threaded
//!   run over the whole stream — slower, but the verdict is identical by
//!   the sharding soundness argument with `N = 1`.
//! * **Suspend/resume**: `stop_after_chunks` turns the barrier snapshot
//!   into a [`Checkpoint`] and returns
//!   [`SupervisedOutcome::Suspended`]; a later run passes the checkpoint
//!   back and continues from the boundary with byte-identical results
//!   (`tests/fault_tolerance.rs` proves this over random programs and
//!   kill points).
//!
//! Every decision is recorded in a [`SupervisionReport`] so `tracetool
//! analyze` can surface restarts, degradations, and resumes without
//! changing the verdict lines CI diffs against.

use crate::channel::{self, Receiver, RecvTimeout, SendTimeout, Sender};
use crate::checkpoint::{Checkpoint, CheckpointError, RouterProgress, TraceFingerprint};
use crate::shard::{ShardPlan, ShardStats};
use futrace_runtime::engine::{Checkpointable, StateError};
use futrace_runtime::Event;
use futrace_util::faultinject::{FaultPlan, WorkerFault};
use futrace_util::ids::{LocId, TaskId};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

/// An event stream that knows how many trace chunks it has fully
/// consumed. Chunk boundaries are the only points where the supervisor
/// snapshots or suspends — they are stable across runs (a fresh run and a
/// resumed run cut the stream identically), which is what makes
/// checkpoint/resume deterministic.
pub trait ChunkedEvents: Iterator {
    /// Chunks fully consumed so far (monotone).
    fn chunks_consumed(&self) -> u64;

    /// Damaged chunks skipped so far (lenient framed reads; 0 otherwise).
    fn skipped_chunks(&self) -> u64 {
        0
    }
}

impl ChunkedEvents for crate::framed::FramedEvents<'_> {
    fn chunks_consumed(&self) -> u64 {
        crate::framed::FramedEvents::chunks_consumed(self)
    }
    fn skipped_chunks(&self) -> u64 {
        crate::framed::FramedEvents::skipped_chunks(self)
    }
}

impl ChunkedEvents for crate::TraceEvents<'_> {
    fn chunks_consumed(&self) -> u64 {
        crate::TraceEvents::chunks_consumed(self)
    }
    fn skipped_chunks(&self) -> u64 {
        crate::TraceEvents::skipped_chunks(self)
    }
}

/// Imposes synthetic chunk boundaries (every `every` events) on any event
/// iterator, so in-memory event streams can exercise checkpoint/resume
/// without a framed encoding round-trip.
pub struct SyntheticChunks<I> {
    inner: I,
    every: u64,
    pulled: u64,
}

impl<I> SyntheticChunks<I> {
    /// Wraps `inner` with a boundary after every `every` events (≥ 1).
    pub fn new(inner: I, every: u64) -> Self {
        SyntheticChunks {
            inner,
            every: every.max(1),
            pulled: 0,
        }
    }
}

impl<I: Iterator> Iterator for SyntheticChunks<I> {
    type Item = I::Item;
    fn next(&mut self) -> Option<I::Item> {
        let item = self.inner.next();
        if item.is_some() {
            self.pulled += 1;
        }
        item
    }
}

impl<I: Iterator> ChunkedEvents for SyntheticChunks<I> {
    fn chunks_consumed(&self) -> u64 {
        // A chunk is complete once an event *past* it has been pulled, so
        // the event just returned is never part of a "consumed" chunk —
        // matching the framed reader's accounting.
        self.pulled.saturating_sub(1) / self.every
    }
}

/// Supervisor configuration.
#[derive(Clone, Debug)]
pub struct SupervisorPlan {
    /// The routing parameters shared with the unsupervised pipeline.
    pub shard: ShardPlan,
    /// Deadline for any single wait on a worker. Expiry marks the worker
    /// stalled and triggers recovery.
    pub watchdog: Duration,
    /// Barrier-snapshot every N chunk boundaries (enables worker restart
    /// and bounds replay-buffer memory). `None` disables snapshots;
    /// worker death then degrades to serial unless a restart can replay
    /// from the stream start (it can, while the stream prefix still fits
    /// under [`SupervisorPlan::max_replay_ops`]).
    pub checkpoint_every_chunks: Option<u64>,
    /// Suspend into a [`Checkpoint`] once this many chunks (absolute,
    /// including chunks skipped over by a resume) are consumed.
    pub stop_after_chunks: Option<u64>,
    /// Worker restarts allowed before degrading to serial.
    pub max_restarts: u32,
    /// Cap on ops retained in one shard's replay buffer between
    /// snapshots. Without a cap a run with snapshots disabled (or a huge
    /// interval) would hold a second full copy of the op stream, defeating
    /// the streaming design. On overflow the buffer is discarded and the
    /// shard is marked unrestartable until the next snapshot; a worker
    /// death in that window degrades to serial instead of exhausting
    /// memory.
    pub max_replay_ops: u64,
    /// Fingerprint stamped into produced checkpoints, if known.
    pub fingerprint: Option<TraceFingerprint>,
    /// Injected fault: panic a worker at its Nth processed op (one-shot).
    pub worker_panic: Option<WorkerFault>,
    /// Injected fault: stall a worker at its Nth processed op (one-shot).
    pub worker_stall: Option<WorkerFault>,
    /// How long an injected stall sleeps.
    pub stall_for: Duration,
}

impl Default for SupervisorPlan {
    fn default() -> Self {
        SupervisorPlan {
            shard: ShardPlan::default(),
            watchdog: Duration::from_secs(30),
            checkpoint_every_chunks: None,
            stop_after_chunks: None,
            max_restarts: 2,
            max_replay_ops: 1 << 20,
            fingerprint: None,
            worker_panic: None,
            worker_stall: None,
            stall_for: Duration::from_millis(100),
        }
    }
}

impl SupervisorPlan {
    /// Copies the worker-level faults out of a [`FaultPlan`] (I/O faults
    /// are applied at the reader/writer layer, not here).
    pub fn with_faults(mut self, faults: &FaultPlan) -> Self {
        self.worker_panic = faults.worker_panic;
        self.worker_stall = faults.worker_stall;
        self
    }
}

/// What the supervisor had to do during a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SupervisionReport {
    /// Workers restarted from a snapshot (or from scratch via replay).
    pub shard_restarts: u64,
    /// Falls back to a fresh serial run (0 or 1).
    pub degradations: u64,
    /// 1 if this run was resumed from a checkpoint.
    pub resumed_from_checkpoint: u64,
    /// Watchdog deadlines that expired (stalled worker detections).
    pub watchdog_timeouts: u64,
    /// Barrier snapshots completed.
    pub snapshots_taken: u64,
}

impl SupervisionReport {
    /// True if anything noteworthy happened (drives conditional output).
    pub fn any(&self) -> bool {
        *self != SupervisionReport::default()
    }
}

/// Outcome of a supervised run.
pub enum SupervisedOutcome<R> {
    /// The stream was fully analyzed.
    Completed {
        /// Merged analysis report (identical to the unsupervised verdict).
        report: R,
        /// Pipeline accounting.
        stats: ShardStats,
        /// What the supervisor did.
        supervision: SupervisionReport,
    },
    /// The run was suspended at a chunk boundary (`stop_after_chunks`).
    Suspended {
        /// The resumable snapshot.
        checkpoint: Checkpoint,
        /// What the supervisor did.
        supervision: SupervisionReport,
    },
}

/// Why a supervised run failed outright (recoverable faults never surface
/// here — they restart or degrade).
#[derive(Debug)]
pub enum SuperviseError<E> {
    /// The event stream itself failed (strict-mode decode error).
    Stream(E),
    /// A checkpoint could not be applied to this run.
    Checkpoint(CheckpointError),
    /// Restoring a shard's state blob failed.
    Restore(StateError),
}

impl<E: std::fmt::Display> std::fmt::Display for SuperviseError<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SuperviseError::Stream(e) => write!(f, "{e}"),
            SuperviseError::Checkpoint(e) => write!(f, "{e}"),
            SuperviseError::Restore(e) => write!(f, "{e}"),
        }
    }
}

impl<E: std::fmt::Debug + std::fmt::Display> std::error::Error for SuperviseError<E> {}

#[derive(Clone)]
enum Op {
    Control(Event),
    Access {
        task: TaskId,
        loc: LocId,
        write: bool,
        index: u64,
    },
}

enum ToWorker {
    Batch(Vec<Op>),
    Snapshot,
}

enum FromWorker<R> {
    Snapshot {
        shard: usize,
        epoch: u64,
        state: Vec<u8>,
        accesses: u64,
    },
    Done {
        shard: usize,
        epoch: u64,
        report: R,
        accesses: u64,
    },
    Died {
        shard: usize,
        epoch: u64,
    },
}

fn spawn_worker<A>(
    shard: usize,
    epoch: u64,
    mut analysis: A,
    mut accesses: u64,
    rx: Receiver<ToWorker>,
    tx: Sender<FromWorker<A::Report>>,
    panic_at: Option<u64>,
    stall: Option<(u64, Duration)>,
) where
    A: Checkpointable + Send + 'static,
    A::Report: Send + 'static,
{
    std::thread::spawn(move || {
        let died_tx = tx.clone();
        let outcome = catch_unwind(AssertUnwindSafe(move || {
            let mut ops_done = 0u64;
            let mut stall = stall;
            loop {
                match rx.recv() {
                    Some(ToWorker::Batch(batch)) => {
                        for op in batch {
                            ops_done += 1;
                            if let Some((at, dur)) = stall {
                                if ops_done == at {
                                    stall = None;
                                    std::thread::sleep(dur);
                                }
                            }
                            if panic_at == Some(ops_done) {
                                panic!("injected worker fault (shard {shard}, op {ops_done})");
                            }
                            match op {
                                Op::Control(e) => analysis.apply_control(&e),
                                Op::Access {
                                    task,
                                    loc,
                                    write,
                                    index,
                                } => {
                                    accesses += 1;
                                    if write {
                                        analysis.check_write_at(task, loc, index);
                                    } else {
                                        analysis.check_read_at(task, loc, index);
                                    }
                                }
                            }
                        }
                    }
                    Some(ToWorker::Snapshot) => {
                        let mut state = Vec::new();
                        analysis.save_state(&mut state);
                        if tx
                            .send(FromWorker::Snapshot {
                                shard,
                                epoch,
                                state,
                                accesses,
                            })
                            .is_err()
                        {
                            return;
                        }
                    }
                    None => {
                        let report = analysis.finish();
                        let _ = tx.send(FromWorker::Done {
                            shard,
                            epoch,
                            report,
                            accesses,
                        });
                        return;
                    }
                }
            }
        }));
        if outcome.is_err() {
            let _ = died_tx.send(FromWorker::Died { shard, epoch });
        }
    });
}

struct Slot {
    tx: Option<Sender<ToWorker>>,
    epoch: u64,
    /// Batches routed since the last completed snapshot, for replay into a
    /// replacement worker. Volume is bounded by the checkpoint interval
    /// and, as a backstop, by [`SupervisorPlan::max_replay_ops`].
    replay: Vec<Vec<Op>>,
    /// Ops currently retained in `replay`.
    replay_ops: u64,
    /// The replay buffer overflowed [`SupervisorPlan::max_replay_ops`] and
    /// was discarded; the shard cannot be restarted until the next
    /// snapshot resets it.
    replay_lost: bool,
    /// Last snapshot of this shard's access-derived state.
    snapshot: Option<Vec<u8>>,
    snapshot_accesses: u64,
    panic_at: Option<u64>,
    stall_at: Option<(u64, Duration)>,
}

/// Signals "stop supervising, fall back to a fresh serial run".
struct Degrade;

struct Supervisor<A: Checkpointable + Send + 'static, F: Fn() -> A>
where
    A::Report: Send + 'static,
{
    factory: F,
    plan: SupervisorPlan,
    n: usize,
    slots: Vec<Slot>,
    results_tx: Sender<FromWorker<A::Report>>,
    results_rx: Receiver<FromWorker<A::Report>>,
    /// Current-epoch messages rescued by [`Supervisor::drain_results`] —
    /// e.g. another shard's Snapshot reply queued behind a dead shard's
    /// notices. The barrier/collect loops consume these before waiting on
    /// the channel, so a drain never costs a watchdog timeout.
    stash: std::collections::VecDeque<FromWorker<A::Report>>,
    next_epoch: u64,
    /// Every control event consumed so far — the replay source for both
    /// worker restart and checkpoint files. Small by the control/access
    /// asymmetry that justifies sharding in the first place.
    control_prefix: Vec<Event>,
    /// `control_prefix` length at the last completed snapshot.
    snapshot_control_len: usize,
    supervision: SupervisionReport,
}

impl<A, F> Supervisor<A, F>
where
    A: Checkpointable + Send + 'static,
    A::Report: Send + 'static,
    F: Fn() -> A,
{
    fn spawn_slot(&mut self, shard: usize, analysis: A, accesses: u64) {
        let (tx, rx) = channel::bounded(self.plan.shard.channel_capacity.max(1));
        let epoch = self.next_epoch;
        self.next_epoch += 1;
        let slot = &mut self.slots[shard];
        slot.tx = Some(tx);
        slot.epoch = epoch;
        spawn_worker(
            shard,
            epoch,
            analysis,
            accesses,
            rx,
            self.results_tx.clone(),
            slot.panic_at.take(),
            slot.stall_at.take(),
        );
    }

    /// Rebuilds shard `shard`'s worker: fresh analysis, control-prefix
    /// replay up to the last snapshot, state restore, then replay of the
    /// retained post-snapshot batches. Returns `Degrade` when the restart
    /// budget is exhausted or recovery itself fails.
    fn restart(&mut self, shard: usize) -> Result<(), Degrade> {
        if self.supervision.shard_restarts >= self.plan.max_restarts as u64
            || self.slots[shard].replay_lost
        {
            return Err(Degrade);
        }
        self.supervision.shard_restarts += 1;
        self.slots[shard].tx = None; // abandon the old incarnation

        let mut analysis = (self.factory)();
        for e in &self.control_prefix[..self.snapshot_control_len] {
            analysis.apply_control(e);
        }
        if let Some(state) = &self.slots[shard].snapshot {
            if analysis.restore_state(state).is_err() {
                return Err(Degrade);
            }
        }
        let accesses = self.slots[shard].snapshot_accesses;
        self.spawn_slot(shard, analysis, accesses);

        let replay: Vec<Vec<Op>> = self.slots[shard].replay.clone();
        for batch in replay {
            self.send_batch(shard, batch, false)?;
        }
        Ok(())
    }

    /// Sends one batch with the watchdog; on stall or death, recovers (at
    /// most once per call when `recover` is set) and re-sends.
    fn send_batch(&mut self, shard: usize, batch: Vec<Op>, recover: bool) -> Result<(), Degrade> {
        let Some(tx) = &self.slots[shard].tx else {
            return Err(Degrade);
        };
        match tx.send_timeout(ToWorker::Batch(batch), self.plan.watchdog) {
            SendTimeout::Sent => Ok(()),
            SendTimeout::Full(item) => {
                self.supervision.watchdog_timeouts += 1;
                if !recover {
                    return Err(Degrade);
                }
                self.restart(shard)?;
                let ToWorker::Batch(batch) = item else {
                    unreachable!()
                };
                self.send_batch(shard, batch, false)
            }
            SendTimeout::Disconnected(item) => {
                if !recover {
                    return Err(Degrade);
                }
                self.drain_results();
                self.restart(shard)?;
                let ToWorker::Batch(batch) = item else {
                    unreachable!()
                };
                self.send_batch(shard, batch, false)
            }
        }
    }

    /// Consumes any queued worker messages without blocking. Stale-epoch
    /// messages (notices from abandoned incarnations) are dropped;
    /// current-epoch ones are stashed for [`Supervisor::next_result`] —
    /// discarding them would throw away e.g. another shard's Snapshot
    /// reply and burn a watchdog timeout (and restart) recovering it.
    fn drain_results(&mut self) {
        while let RecvTimeout::Item(msg) = self.results_rx.recv_timeout(Duration::ZERO) {
            let (shard, epoch) = Self::msg_key(&msg);
            if epoch == self.slots[shard].epoch {
                self.stash.push_back(msg);
            }
        }
    }

    fn msg_key(msg: &FromWorker<A::Report>) -> (usize, u64) {
        match msg {
            FromWorker::Snapshot { shard, epoch, .. }
            | FromWorker::Done { shard, epoch, .. }
            | FromWorker::Died { shard, epoch } => (*shard, *epoch),
        }
    }

    /// Next worker message: a still-current stashed one if any (entries can
    /// go stale after a restart bumps the epoch), else a bounded wait on
    /// the results channel.
    fn next_result(&mut self, timeout: Duration) -> RecvTimeout<FromWorker<A::Report>> {
        while let Some(msg) = self.stash.pop_front() {
            let (shard, epoch) = Self::msg_key(&msg);
            if epoch == self.slots[shard].epoch {
                return RecvTimeout::Item(msg);
            }
        }
        self.results_rx.recv_timeout(timeout)
    }

    /// Routes a batch and retains it for post-snapshot replay. The copy is
    /// pushed only *after* the send succeeds: `restart` replays the whole
    /// buffer, so retaining first would deliver a failed batch twice (once
    /// via replay, once via the recovery re-send), duplicating control
    /// events and inflating access counts in the replacement worker.
    fn dispatch(&mut self, shard: usize, batch: Vec<Op>) -> Result<(), Degrade> {
        let retained = if self.slots[shard].replay_lost {
            None
        } else {
            Some(batch.clone())
        };
        self.send_batch(shard, batch, true)?;
        if let Some(retained) = retained {
            let slot = &mut self.slots[shard];
            slot.replay_ops += retained.len() as u64;
            if slot.replay_ops > self.plan.max_replay_ops {
                // Cap the buffer rather than hold a second copy of the
                // stream: the shard is simply no longer restartable until
                // the next snapshot resets it (death degrades to serial).
                slot.replay = Vec::new();
                slot.replay_ops = 0;
                slot.replay_lost = true;
            } else {
                slot.replay.push(retained);
            }
        }
        Ok(())
    }

    /// Barrier snapshot: every worker saves its state at a consistent cut
    /// (all routed batches FIFO-precede the snapshot request). On success
    /// the replay buffers reset. Dead or stalled workers are restarted and
    /// re-asked, within the restart budget.
    fn snapshot_barrier(&mut self) -> Result<(), Degrade> {
        for shard in 0..self.n {
            self.request_snapshot(shard)?;
        }
        let mut pending: Vec<Option<(Vec<u8>, u64)>> = vec![None; self.n];
        let mut got = 0usize;
        while got < self.n {
            match self.next_result(self.plan.watchdog) {
                RecvTimeout::Item(FromWorker::Snapshot {
                    shard,
                    epoch,
                    state,
                    accesses,
                }) => {
                    if epoch == self.slots[shard].epoch && pending[shard].is_none() {
                        pending[shard] = Some((state, accesses));
                        got += 1;
                    }
                }
                RecvTimeout::Item(FromWorker::Died { shard, epoch }) => {
                    if epoch == self.slots[shard].epoch {
                        self.restart(shard)?;
                        self.request_snapshot(shard)?;
                    }
                }
                RecvTimeout::Item(FromWorker::Done { .. }) => {
                    // Stale Done from an abandoned incarnation; ignore.
                }
                RecvTimeout::Timeout => {
                    self.supervision.watchdog_timeouts += 1;
                    // Restart every shard that has not answered yet.
                    for shard in 0..self.n {
                        if pending[shard].is_none() {
                            self.restart(shard)?;
                            self.request_snapshot(shard)?;
                        }
                    }
                }
                RecvTimeout::Disconnected => return Err(Degrade),
            }
        }
        for (shard, entry) in pending.into_iter().enumerate() {
            let (state, accesses) = entry.expect("barrier collected all shards");
            let slot = &mut self.slots[shard];
            slot.snapshot = Some(state);
            slot.snapshot_accesses = accesses;
            slot.replay.clear();
            slot.replay_ops = 0;
            slot.replay_lost = false;
        }
        self.snapshot_control_len = self.control_prefix.len();
        self.supervision.snapshots_taken += 1;
        Ok(())
    }

    fn request_snapshot(&mut self, shard: usize) -> Result<(), Degrade> {
        let Some(tx) = &self.slots[shard].tx else {
            return Err(Degrade);
        };
        match tx.send_timeout(ToWorker::Snapshot, self.plan.watchdog) {
            SendTimeout::Sent => Ok(()),
            SendTimeout::Full(_) => {
                self.supervision.watchdog_timeouts += 1;
                self.restart(shard)?;
                self.request_snapshot_once(shard)
            }
            SendTimeout::Disconnected(_) => {
                self.drain_results();
                self.restart(shard)?;
                self.request_snapshot_once(shard)
            }
        }
    }

    fn request_snapshot_once(&mut self, shard: usize) -> Result<(), Degrade> {
        let Some(tx) = &self.slots[shard].tx else {
            return Err(Degrade);
        };
        match tx.send_timeout(ToWorker::Snapshot, self.plan.watchdog) {
            SendTimeout::Sent => Ok(()),
            _ => Err(Degrade),
        }
    }

    /// Closes all inputs and collects one report per shard, restarting
    /// (and immediately closing) replacements for workers that die or
    /// stall during finalization.
    fn collect(&mut self) -> Result<Vec<(A::Report, u64)>, Degrade> {
        for slot in &mut self.slots {
            slot.tx = None;
        }
        let mut reports: Vec<Option<(A::Report, u64)>> =
            (0..self.n).map(|_| None).collect();
        let mut got = 0usize;
        while got < self.n {
            match self.next_result(self.plan.watchdog) {
                RecvTimeout::Item(FromWorker::Done {
                    shard,
                    epoch,
                    report,
                    accesses,
                }) => {
                    if epoch == self.slots[shard].epoch && reports[shard].is_none() {
                        reports[shard] = Some((report, accesses));
                        got += 1;
                    }
                }
                RecvTimeout::Item(FromWorker::Died { shard, epoch }) => {
                    if epoch == self.slots[shard].epoch && reports[shard].is_none() {
                        self.restart(shard)?;
                        self.slots[shard].tx = None; // close → it will finish
                    }
                }
                RecvTimeout::Item(FromWorker::Snapshot { .. }) => {}
                RecvTimeout::Timeout => {
                    self.supervision.watchdog_timeouts += 1;
                    for shard in 0..self.n {
                        if reports[shard].is_none() {
                            self.restart(shard)?;
                            self.slots[shard].tx = None;
                        }
                    }
                }
                RecvTimeout::Disconnected => return Err(Degrade),
            }
        }
        Ok(reports
            .into_iter()
            .map(|r| r.expect("collected all shards"))
            .collect())
    }
}

/// Runs the supervised sharded pipeline.
///
/// `make_events` must produce a *fresh* stream over the same trace on
/// every call — the supervisor re-reads from the start for degradation
/// and resume skipping. `factory` builds one analysis replica; the merged
/// report uses [`futrace_runtime::engine::LocRoutable::merge_sharded`] and
/// is identical to the unsupervised (and serial) verdict.
pub fn run_supervised<A, I, E, MF, F>(
    make_events: MF,
    factory: F,
    plan: &SupervisorPlan,
    resume: Option<&Checkpoint>,
) -> Result<SupervisedOutcome<A::Report>, SuperviseError<E>>
where
    A: Checkpointable + Send + 'static,
    A::Report: Send + 'static,
    I: ChunkedEvents + Iterator<Item = Result<Event, E>>,
    MF: Fn() -> I,
    F: Fn() -> A,
{
    let n = match resume {
        Some(cp) => cp.shards.max(1),
        None => plan.shard.shards.max(1),
    };
    let batch_cap = plan.shard.batch_events.max(1);
    let (results_tx, results_rx) = channel::bounded(n.max(4) * 4);

    let mut sup = Supervisor {
        factory,
        plan: plan.clone(),
        n,
        slots: (0..n)
            .map(|shard| Slot {
                tx: None,
                epoch: 0,
                replay: Vec::new(),
                replay_ops: 0,
                replay_lost: false,
                snapshot: None,
                snapshot_accesses: 0,
                panic_at: plan.worker_panic.as_ref().and_then(|f| f.trigger_for(shard, n)),
                stall_at: plan
                    .worker_stall
                    .as_ref()
                    .and_then(|f| f.trigger_for(shard, n))
                    .map(|at| (at, plan.stall_for)),
            })
            .collect(),
        results_tx,
        results_rx,
        stash: std::collections::VecDeque::new(),
        next_epoch: 1,
        control_prefix: Vec::new(),
        snapshot_control_len: 0,
        supervision: SupervisionReport::default(),
    };

    let mut events = make_events();
    let mut index = 0u64;
    let mut router = RouterProgress::default();

    // Resume: rebuild every shard from the checkpoint, then skip the
    // already-incorporated prefix of the stream.
    if let Some(cp) = resume {
        if cp.shard_states.len() != n || cp.per_shard_accesses.len() != n {
            return Err(SuperviseError::Checkpoint(CheckpointError::Inconsistent(
                format!(
                    "{} state blob(s) for {} shard(s)",
                    cp.shard_states.len(),
                    n
                ),
            )));
        }
        sup.supervision.resumed_from_checkpoint = 1;
        sup.control_prefix = cp.control_events.clone();
        sup.snapshot_control_len = sup.control_prefix.len();
        index = cp.next_access_index;
        router = cp.router;
        for shard in 0..n {
            let mut analysis = (sup.factory)();
            for e in &sup.control_prefix {
                analysis.apply_control(e);
            }
            analysis
                .restore_state(&cp.shard_states[shard])
                .map_err(SuperviseError::Restore)?;
            sup.slots[shard].snapshot = Some(cp.shard_states[shard].clone());
            sup.slots[shard].snapshot_accesses = cp.per_shard_accesses[shard];
            sup.spawn_slot(shard, analysis, cp.per_shard_accesses[shard]);
        }
        for _ in 0..cp.events_consumed {
            match events.next() {
                Some(Ok(_)) => {}
                Some(Err(e)) => return Err(SuperviseError::Stream(e)),
                None => {
                    return Err(SuperviseError::Checkpoint(CheckpointError::Inconsistent(
                        "trace is shorter than the checkpoint's consumed prefix".into(),
                    )))
                }
            }
        }
    } else {
        for shard in 0..n {
            let analysis = (sup.factory)();
            sup.spawn_slot(shard, analysis, 0);
        }
    }

    let mut buffers: Vec<Vec<Op>> = (0..n).map(|_| Vec::with_capacity(batch_cap)).collect();
    let mut cur_chunks = events.chunks_consumed();
    let mut last_snapshot_chunk = cur_chunks;
    let mut events_consumed = resume.map(|cp| cp.events_consumed).unwrap_or(0);
    let mut degraded = false;
    let mut stream_err: Option<E> = None;
    let mut suspend: Option<Checkpoint> = None;

    macro_rules! flush_shard {
        ($shard:expr) => {{
            let shard = $shard;
            if !buffers[shard].is_empty() {
                let batch = std::mem::replace(&mut buffers[shard], Vec::with_capacity(batch_cap));
                if sup.dispatch(shard, batch).is_err() {
                    degraded = true;
                }
            }
        }};
    }

    'route: while !degraded {
        let item = events.next();
        let boundary = events.chunks_consumed();
        let Some(item) = item else {
            break 'route;
        };
        let e = match item {
            Ok(e) => e,
            Err(err) => {
                stream_err = Some(err);
                break 'route;
            }
        };

        if boundary > cur_chunks {
            cur_chunks = boundary;
            let stop_here = plan
                .stop_after_chunks
                .map(|stop| cur_chunks >= stop)
                .unwrap_or(false);
            let snapshot_here = plan
                .checkpoint_every_chunks
                .map(|every| cur_chunks - last_snapshot_chunk >= every)
                .unwrap_or(false);
            if stop_here || snapshot_here {
                // Snapshot BEFORE routing the already-pulled event: the cut
                // covers exactly the completed chunks.
                for shard in 0..n {
                    flush_shard!(shard);
                    if degraded {
                        break 'route;
                    }
                }
                if sup.snapshot_barrier().is_err() {
                    degraded = true;
                    break 'route;
                }
                last_snapshot_chunk = cur_chunks;
                if stop_here {
                    suspend = Some(Checkpoint {
                        shards: n,
                        events_consumed,
                        next_access_index: index,
                        chunks_completed: cur_chunks,
                        router,
                        control_events: sup.control_prefix.clone(),
                        per_shard_accesses: sup
                            .slots
                            .iter()
                            .map(|s| s.snapshot_accesses)
                            .collect(),
                        shard_states: sup
                            .slots
                            .iter()
                            .map(|s| s.snapshot.clone().expect("barrier just completed"))
                            .collect(),
                        fingerprint: plan.fingerprint,
                    });
                    break 'route;
                }
            }
        }

        events_consumed += 1;
        router.events += 1;
        match e {
            Event::Read(task, loc) | Event::Write(task, loc) => {
                let write = matches!(e, Event::Write(..));
                if write {
                    router.writes += 1;
                } else {
                    router.reads += 1;
                }
                let shard = loc.index() % n;
                buffers[shard].push(Op::Access {
                    task,
                    loc,
                    write,
                    index,
                });
                index += 1;
                if buffers[shard].len() >= batch_cap {
                    flush_shard!(shard);
                }
            }
            control => {
                router.control_events += 1;
                sup.control_prefix.push(control.clone());
                for shard in 0..n {
                    buffers[shard].push(Op::Control(control.clone()));
                    if buffers[shard].len() >= batch_cap {
                        flush_shard!(shard);
                        if degraded {
                            break 'route;
                        }
                    }
                }
            }
        }
    }

    if let Some(err) = stream_err {
        // Shut the workers down cleanly, then report the stream error.
        for slot in &mut sup.slots {
            slot.tx = None;
        }
        let _ = sup.collect();
        return Err(SuperviseError::Stream(err));
    }

    if let Some(checkpoint) = suspend {
        for slot in &mut sup.slots {
            slot.tx = None;
        }
        let _ = sup.collect();
        return Ok(SupervisedOutcome::Suspended {
            checkpoint,
            supervision: sup.supervision,
        });
    }

    if !degraded {
        for shard in 0..n {
            flush_shard!(shard);
        }
    }

    let collected = if degraded { Err(Degrade) } else { sup.collect() };
    match collected {
        Ok(results) => {
            let mut stats = ShardStats {
                shards: n,
                events: router.events,
                control_events: router.control_events,
                reads: router.reads,
                writes: router.writes,
                accesses: index,
                per_shard_accesses: Vec::with_capacity(n),
                skipped_chunks: events.skipped_chunks(),
            };
            let mut reports = Vec::with_capacity(n);
            for (report, accesses) in results {
                stats.per_shard_accesses.push(accesses);
                reports.push(report);
            }
            let report = (sup.factory)().merge_sharded(reports);
            Ok(SupervisedOutcome::Completed {
                report,
                stats,
                supervision: sup.supervision,
            })
        }
        Err(Degrade) => {
            // Last line of defense: a fresh, single-threaded pass over the
            // whole stream. Slower, but the verdict is the serial one by
            // construction.
            sup.supervision.degradations += 1;
            for slot in &mut sup.slots {
                slot.tx = None;
            }
            drop(sup.results_rx);
            let mut analysis = (sup.factory)();
            let mut stats = ShardStats {
                shards: 1,
                ..ShardStats::default()
            };
            let mut index = 0u64;
            let mut fresh = make_events();
            loop {
                match fresh.next() {
                    Some(Ok(e)) => {
                        stats.events += 1;
                        match e {
                            Event::Read(task, loc) => {
                                stats.reads += 1;
                                analysis.check_read_at(task, loc, index);
                                index += 1;
                            }
                            Event::Write(task, loc) => {
                                stats.writes += 1;
                                analysis.check_write_at(task, loc, index);
                                index += 1;
                            }
                            control => {
                                stats.control_events += 1;
                                analysis.apply_control(&control);
                            }
                        }
                    }
                    Some(Err(e)) => return Err(SuperviseError::Stream(e)),
                    None => break,
                }
            }
            stats.accesses = index;
            stats.per_shard_accesses = vec![index];
            stats.skipped_chunks = fresh.skipped_chunks();
            let report = analysis.finish();
            Ok(SupervisedOutcome::Completed {
                report,
                stats,
                supervision: sup.supervision,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceError;
    use futrace_detector::{RaceDetector, RaceReport};
    use futrace_runtime::{replay, run_serial, EventLog, TaskCtx};

    fn racy_log() -> EventLog {
        let mut log = EventLog::new();
        run_serial(&mut log, |ctx| {
            let a = ctx.shared_array(8, 0u64, "a");
            ctx.finish(|ctx| {
                for i in 0..8usize {
                    let aw = a.clone();
                    ctx.async_task(move |ctx| aw.write(ctx, i, 1));
                }
            });
            for i in 0..8usize {
                a.write(ctx, i, 2);
            }
            let aw = a.clone();
            let _f = ctx.future(move |ctx| aw.write(ctx, 3, 9));
            let _ = a.read(ctx, 3); // racy
        });
        log
    }

    fn serial_report(log: &EventLog) -> RaceReport {
        let mut det = RaceDetector::new();
        replay(&log.events, &mut det);
        det.into_report()
    }

    fn plan_for_tests(shards: usize) -> SupervisorPlan {
        SupervisorPlan {
            shard: ShardPlan {
                shards,
                batch_events: 3,
                channel_capacity: 2,
            },
            watchdog: Duration::from_millis(500),
            stall_for: Duration::from_millis(40),
            ..SupervisorPlan::default()
        }
    }

    fn events_of(log: &EventLog) -> impl Fn() -> SyntheticChunks<
        std::iter::Map<
            std::vec::IntoIter<futrace_runtime::Event>,
            fn(futrace_runtime::Event) -> Result<futrace_runtime::Event, TraceError>,
        >,
    > + '_ {
        move || {
            SyntheticChunks::new(
                log.events
                    .clone()
                    .into_iter()
                    .map(Ok as fn(_) -> Result<_, TraceError>),
                5,
            )
        }
    }

    #[test]
    fn clean_supervised_run_matches_serial() {
        let log = racy_log();
        let serial = serial_report(&log);
        let out = run_supervised(
            events_of(&log),
            RaceDetector::new,
            &plan_for_tests(3),
            None,
        )
        .unwrap();
        let SupervisedOutcome::Completed {
            report,
            stats,
            supervision,
        } = out
        else {
            panic!("expected completion");
        };
        assert_eq!(report.report.races, serial.races);
        assert_eq!(report.report.total_detected, serial.total_detected);
        assert!(!supervision.any(), "clean run must report nothing");
        assert_eq!(stats.per_shard_accesses.iter().sum::<u64>(), stats.accesses);
    }

    #[test]
    fn injected_panic_restarts_with_checkpointing() {
        let log = racy_log();
        let serial = serial_report(&log);
        let mut plan = plan_for_tests(2);
        plan.checkpoint_every_chunks = Some(1);
        plan.worker_panic = Some(WorkerFault { shard: 1, at_op: 9 });
        let out =
            run_supervised(events_of(&log), RaceDetector::new, &plan, None).unwrap();
        let SupervisedOutcome::Completed {
            report,
            supervision,
            stats,
        } = out
        else {
            panic!("expected completion");
        };
        assert_eq!(report.report.races, serial.races, "verdict survives restart");
        assert!(
            supervision.shard_restarts >= 1,
            "panic must be recovered by restart: {supervision:?}"
        );
        assert_eq!(supervision.degradations, 0);
        // Exactly-once delivery across the restart: a batch re-sent after
        // recovery must not ALSO be replayed from the retention buffer,
        // which would inflate the per-shard access counters.
        assert_eq!(
            stats.per_shard_accesses.iter().sum::<u64>(),
            stats.accesses,
            "restart must not double-apply any batch"
        );
    }

    #[test]
    fn replay_overflow_degrades_to_serial() {
        // With no snapshots and a tiny replay cap, the buffer overflows
        // immediately; a worker death in that window cannot restart and
        // must degrade to the (still correct) serial path rather than
        // retain the whole stream.
        let log = racy_log();
        let serial = serial_report(&log);
        let mut plan = plan_for_tests(2);
        plan.max_replay_ops = 1;
        plan.worker_panic = Some(WorkerFault { shard: 0, at_op: 5 });
        let out =
            run_supervised(events_of(&log), RaceDetector::new, &plan, None).unwrap();
        let SupervisedOutcome::Completed {
            report,
            supervision,
            stats,
        } = out
        else {
            panic!("expected completion");
        };
        assert_eq!(report.report.races, serial.races, "degraded verdict is serial");
        assert_eq!(supervision.degradations, 1);
        assert_eq!(stats.shards, 1, "degraded run is serial");
    }

    #[test]
    fn injected_panic_degrades_without_restart_budget() {
        let log = racy_log();
        let serial = serial_report(&log);
        let mut plan = plan_for_tests(2);
        plan.max_restarts = 0;
        plan.worker_panic = Some(WorkerFault { shard: 0, at_op: 5 });
        let out =
            run_supervised(events_of(&log), RaceDetector::new, &plan, None).unwrap();
        let SupervisedOutcome::Completed {
            report,
            supervision,
            stats,
        } = out
        else {
            panic!("expected completion");
        };
        assert_eq!(report.report.races, serial.races, "degraded verdict is serial");
        assert_eq!(supervision.degradations, 1);
        assert_eq!(stats.shards, 1, "degraded run is serial");
    }

    #[test]
    fn injected_stall_is_caught_by_watchdog() {
        let log = racy_log();
        let serial = serial_report(&log);
        let mut plan = plan_for_tests(2);
        plan.watchdog = Duration::from_millis(30);
        plan.stall_for = Duration::from_millis(400);
        plan.checkpoint_every_chunks = Some(1);
        plan.worker_stall = Some(WorkerFault { shard: 0, at_op: 7 });
        let out =
            run_supervised(events_of(&log), RaceDetector::new, &plan, None).unwrap();
        let SupervisedOutcome::Completed {
            report,
            supervision,
            stats,
        } = out
        else {
            panic!("expected completion");
        };
        assert_eq!(report.report.races, serial.races);
        assert!(
            supervision.watchdog_timeouts >= 1 || supervision.degradations == 1,
            "stall must be detected: {supervision:?}"
        );
        assert_eq!(
            stats.per_shard_accesses.iter().sum::<u64>(),
            stats.accesses,
            "stall recovery must not double-apply any batch"
        );
    }

    #[test]
    fn suspend_and_resume_is_identical_to_fresh() {
        let log = racy_log();
        let serial = serial_report(&log);
        let mut stop_plan = plan_for_tests(2);
        stop_plan.stop_after_chunks = Some(2);
        let out = run_supervised(
            events_of(&log),
            RaceDetector::new,
            &stop_plan,
            None,
        )
        .unwrap();
        let SupervisedOutcome::Suspended {
            checkpoint,
            supervision,
        } = out
        else {
            panic!("expected suspension");
        };
        assert_eq!(supervision.snapshots_taken, 1);
        assert!(checkpoint.events_consumed > 0);
        assert!(checkpoint.events_consumed < log.events.len() as u64);

        // Round-trip the checkpoint through its codec, like the CLI does.
        let restored = Checkpoint::decode(&checkpoint.encode()).unwrap();
        let out = run_supervised(
            events_of(&log),
            RaceDetector::new,
            &plan_for_tests(2),
            Some(&restored),
        )
        .unwrap();
        let SupervisedOutcome::Completed {
            report,
            supervision,
            stats,
        } = out
        else {
            panic!("expected completion");
        };
        assert_eq!(report.report.races, serial.races, "resumed verdict identical");
        assert_eq!(report.report.total_detected, serial.total_detected);
        assert_eq!(supervision.resumed_from_checkpoint, 1);
        assert_eq!(
            stats.events,
            log.events.len() as u64,
            "router progress carries across the suspend"
        );
    }

    #[test]
    fn resume_with_wrong_shard_count_is_rejected() {
        let log = racy_log();
        let mut stop_plan = plan_for_tests(2);
        stop_plan.stop_after_chunks = Some(1);
        let SupervisedOutcome::Suspended { mut checkpoint, .. } = run_supervised(
            events_of(&log),
            RaceDetector::new,
            &stop_plan,
            None,
        )
        .unwrap() else {
            panic!("expected suspension");
        };
        checkpoint.shard_states.pop();
        checkpoint.per_shard_accesses.pop();
        match run_supervised(
            events_of(&log),
            RaceDetector::new,
            &plan_for_tests(2),
            Some(&checkpoint),
        ) {
            Err(SuperviseError::Checkpoint(_)) => {}
            Err(e) => panic!("wrong error: {e}"),
            Ok(_) => panic!("inconsistent checkpoint must be rejected"),
        }
    }

    #[test]
    fn synthetic_chunks_count_like_framed() {
        let mut it = SyntheticChunks::new(0..10u32, 4);
        assert_eq!(it.chunks_consumed(), 0);
        for _ in 0..4 {
            it.next();
        }
        assert_eq!(it.chunks_consumed(), 0, "4th event ends chunk 0, not past it");
        it.next();
        assert_eq!(it.chunks_consumed(), 1, "5th event is inside chunk 1");
    }
}
