//! Decoder robustness under hostile input: mutate and truncate valid v1
//! and v2 trace blobs and assert the decoders never panic, always surface
//! a structured error (never garbage events silently), and that the v2
//! lenient mode skips damaged chunks instead of aborting.
//!
//! Replays: `FUTRACE_PROPCHECK_SEED=<seed>` (printed on failure).

use futrace_benchsuite::randomprog::{self, GenParams};
use futrace_offline::{trace_events, FrameError, StreamWriter, TraceError};
use futrace_runtime::{run_serial, trace, Event, EventLog};
use futrace_util::propcheck::{self, strategies, Config};

/// A few structurally different base traces, as (v1 flat, v2 framed,
/// events). Small chunk size forces several chunks per v2 blob so chunk
/// boundaries are actually exercised.
fn base_traces() -> Vec<(Vec<u8>, Vec<u8>, Vec<Event>)> {
    // Bigger than the default profile so each trace spans several chunks.
    let params = GenParams {
        max_depth: 5,
        max_stmts: 12,
        locs: 8,
        ..GenParams::default()
    };
    [1_u64, 42, 0xdead].iter().map(|&seed| {
        let prog = randomprog::generate(seed, &params);
        let mut log = EventLog::new();
        run_serial(&mut log, |ctx| {
            randomprog::execute(ctx, &prog);
        });
        let v1 = trace::encode(&log.events);
        let mut w = StreamWriter::with_chunk_bytes(Vec::new(), 64).unwrap();
        for e in &log.events {
            w.record(e);
        }
        let (v2, stats) = w.finish().unwrap();
        assert!(stats.chunks >= 2, "base trace should span chunks");
        (v1, v2, log.events)
    }).collect()
}

#[derive(Clone, Copy, Debug)]
enum Mutation {
    Truncate,
    FlipByte,
    Insert,
    Delete,
}

fn mutate(data: &[u8], op: u8, pos: u32, byte: u8) -> (Mutation, Vec<u8>) {
    let pos = pos as usize % data.len().max(1);
    match op % 4 {
        0 => (Mutation::Truncate, data[..pos].to_vec()),
        1 => {
            let mut d = data.to_vec();
            d[pos] ^= byte | 1; // never a no-op flip
            (Mutation::FlipByte, d)
        }
        2 => {
            let mut d = data.to_vec();
            d.insert(pos, byte);
            (Mutation::Insert, d)
        }
        _ => {
            let mut d = data.to_vec();
            d.remove(pos);
            (Mutation::Delete, d)
        }
    }
}

/// Consumes a trace iterator, asserting the error contract: events before
/// any error are well-formed, at most one error is yielded, and the
/// iterator fuses afterwards. Returns (events decoded, error seen).
fn drain(mut it: futrace_offline::TraceEvents<'_>) -> (Vec<Event>, Option<TraceError>) {
    let mut events = Vec::new();
    let mut error = None;
    for item in it.by_ref() {
        match item {
            Ok(e) => events.push(e),
            Err(e) => {
                assert!(!e.to_string().is_empty(), "errors must be descriptive");
                error = Some(e);
                break;
            }
        }
    }
    assert!(it.next().is_none(), "iterator must fuse after end/error");
    (events, error)
}

#[test]
fn unmutated_bases_decode_cleanly() {
    for (v1, v2, events) in base_traces() {
        let (got, err) = drain(trace_events(&v1, false));
        assert!(err.is_none());
        assert_eq!(got, events);
        let (got, err) = drain(trace_events(&v2, false));
        assert!(err.is_none());
        assert_eq!(got, events);
    }
}

#[test]
fn mutated_streams_never_panic_and_error_structurally() {
    let bases = base_traces();
    let strat = strategies::tuple3(
        strategies::u8_range(0..4),        // mutation kind
        strategies::u32_range(0..1 << 20), // position (reduced mod len)
        strategies::u8_range(0..255),      // inserted/xored byte
    );
    propcheck::check(&Config::with_cases(384), &strat, |(op, pos, byte)| {
        for (v1, v2, _) in &bases {
            // v1 flat: decode() and decode_iter() must agree exactly, and
            // both must yield a structured DecodeError rather than panic.
            let (kind, m) = mutate(v1, op, pos, byte);
            let eager = trace::decode(&m);
            let lazy: Result<Vec<Event>, _> = trace::decode_iter(&m).collect();
            assert_eq!(eager, lazy, "{kind:?} on v1: decode != decode_iter");
            if let Err(e) = eager {
                assert!(!e.to_string().is_empty());
            }

            // v2 strict: drain checks the fuse-after-error contract.
            let (_, m) = mutate(v2, op, pos, byte);
            let (strict_events, strict_err) = drain(trace_events(&m, false));

            // v2 lenient: never worse than strict — decodes at least as
            // many events, and any surviving error is non-skippable
            // (truncation / header damage), never a chunk CRC mismatch.
            let it = trace_events(&m, true);
            let (lenient_events, lenient_err) = {
                let mut it = it;
                let mut events = Vec::new();
                let mut error = None;
                for item in it.by_ref() {
                    match item {
                        Ok(e) => events.push(e),
                        Err(e) => {
                            error = Some(e);
                            break;
                        }
                    }
                }
                assert!(it.next().is_none());
                (events, error)
            };
            assert!(
                lenient_events.len() >= strict_events.len(),
                "{kind:?}: lenient decoded fewer events than strict"
            );
            if let Some(TraceError::Frame(e)) = &lenient_err {
                assert!(
                    !matches!(e, FrameError::CorruptChunk { .. }),
                    "lenient mode must skip CRC-corrupt chunks, got {e}"
                );
            }
            let _ = strict_err;
        }
    });
}

#[test]
fn every_truncation_point_is_handled() {
    // Exhaustive rather than sampled: every strict prefix of a framed
    // blob either decodes cleanly (prefix ends exactly at a chunk
    // boundary) or errors — never panics, never fabricates events beyond
    // what intact chunks contain.
    let (_, v2, events) = base_traces().swap_remove(0);
    for cut in 0..v2.len() {
        let (got, err) = drain(trace_events(&v2[..cut], false));
        assert!(got.len() <= events.len());
        assert_eq!(got, events[..got.len()], "prefix events must match");
        // A strict prefix can only decode cleanly if it is empty (sniffed
        // as an empty v1 stream) or ends exactly on a chunk boundary past
        // the header; a partial-magic prefix must error, not pass.
        if err.is_none() {
            assert!(cut == 0 || cut >= 5, "partial header must error, cut={cut}");
        }
    }
}
