//! The fault-tolerant pipeline must be *invisible* in the verdict: killing
//! an analysis at any chunk boundary and resuming from the checkpoint,
//! restarting a panicked worker, or degrading to a serial pass must all
//! produce exactly the serial detector's race report. Checked over ≥256
//! random task-parallel programs (from `benchsuite::randomprog`) with
//! random kill points, plus seeded writer-fault robustness.
//!
//! Replays: `FUTRACE_PROPCHECK_SEED=<seed>` (printed on failure).

use futrace_benchsuite::randomprog::{self, GenParams};
use futrace_detector::{RaceDetector, RaceReport};
use futrace_offline::{
    run_supervised, trace_events, Checkpoint, ShardPlan, StreamWriter, SupervisedOutcome,
    SupervisorPlan,
};
use futrace_runtime::{replay, run_serial, EventLog};
use futrace_util::faultinject::{FaultPlan, FaultyWriter, WorkerFault};
use futrace_util::propcheck::{self, strategies, Config};
use std::sync::Once;
use std::time::Duration;

/// Injected worker panics are *expected*; keep their default panic-hook
/// spew out of the test output while letting real assertion failures
/// through untouched.
fn quiet_injected_panics() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if let Some(s) = info.payload().downcast_ref::<String>() {
                if s.contains("injected worker fault") {
                    return;
                }
            }
            prev(info);
        }));
    });
}

fn record(seed: u64, params: &GenParams) -> EventLog {
    let prog = randomprog::generate(seed, params);
    let mut log = EventLog::new();
    run_serial(&mut log, |ctx| {
        randomprog::execute(ctx, &prog);
    });
    log
}

fn serial_report(log: &EventLog) -> RaceReport {
    let mut det = RaceDetector::new();
    replay(&log.events, &mut det);
    det.into_report()
}

fn frame(log: &EventLog, chunk_bytes: usize) -> (Vec<u8>, u64) {
    let mut w = StreamWriter::with_chunk_bytes(Vec::new(), chunk_bytes).unwrap();
    for e in &log.events {
        w.record(e);
    }
    let (blob, stats) = w.finish().unwrap();
    (blob, stats.chunks)
}

fn plan(shards: usize) -> SupervisorPlan {
    SupervisorPlan {
        shard: ShardPlan {
            shards,
            // Tight batches and channels stress ordering; recovery must
            // not depend on batching either.
            batch_events: 16,
            channel_capacity: 2,
        },
        watchdog: Duration::from_secs(5),
        ..SupervisorPlan::default()
    }
}

fn assert_verdict(got: &RaceReport, want: &RaceReport, ctx: &str) {
    assert_eq!(got.total_detected, want.total_detected, "{ctx}: verdict diverged");
    assert_eq!(got.races, want.races, "{ctx}: race report diverged");
}

#[test]
fn kill_and_resume_equals_fresh_run() {
    // Suspend at a random chunk boundary, round-trip the checkpoint
    // through its byte codec (as the CLI does via a file), resume, and
    // compare against the straight serial run.
    let racy = std::cell::Cell::new(0u32);
    let clean = std::cell::Cell::new(0u32);
    propcheck::check(&Config::with_cases(256), &strategies::any_u64(), |seed| {
        let log = record(seed, &GenParams::default());
        let serial = serial_report(&log);
        if serial.has_races() {
            racy.set(racy.get() + 1);
        } else {
            clean.set(clean.get() + 1);
        }
        let (blob, chunks) = frame(&log, 64);
        if chunks < 2 {
            return; // no interior boundary to kill at
        }
        let shards = 2 + (seed % 2) as usize;
        let kill_at = 1 + seed % (chunks - 1); // interior boundary
        let mut stop_plan = plan(shards);
        stop_plan.stop_after_chunks = Some(kill_at);
        let out = run_supervised(
            || trace_events(&blob, false),
            RaceDetector::new,
            &stop_plan,
            None,
        )
        .unwrap();
        let SupervisedOutcome::Suspended { checkpoint, .. } = out else {
            panic!("seed {seed}: stop at chunk {kill_at}/{chunks} must suspend");
        };
        let restored = Checkpoint::decode(&checkpoint.encode())
            .unwrap_or_else(|e| panic!("seed {seed}: checkpoint codec round-trip: {e}"));
        let out = run_supervised(
            || trace_events(&blob, false),
            RaceDetector::new,
            &plan(shards),
            Some(&restored),
        )
        .unwrap();
        let SupervisedOutcome::Completed {
            report, supervision, ..
        } = out
        else {
            panic!("seed {seed}: resume must complete");
        };
        assert_eq!(supervision.resumed_from_checkpoint, 1);
        assert_verdict(
            &report.report,
            &serial,
            &format!("seed {seed}, kill at {kill_at}/{chunks}, {shards} shards"),
        );
        let (reads, writes) = log.events.iter().fold((0u64, 0u64), |(r, w), e| match e {
            futrace_runtime::Event::Read(..) => (r + 1, w),
            futrace_runtime::Event::Write(..) => (r, w + 1),
            _ => (r, w),
        });
        assert_eq!(
            (report.stats.reads, report.stats.writes),
            (reads, writes),
            "seed {seed}: access accounting must survive the suspend"
        );
    });
    assert!(racy.get() > 10, "too few racy programs ({})", racy.get());
    assert!(clean.get() > 10, "too few clean programs ({})", clean.get());
}

#[test]
fn every_kill_point_of_a_fixed_trace_resumes_identically() {
    // Exhaustive over boundaries for a few seeds: no kill point may be
    // special.
    for seed in [7u64, 1234, 0xC0FFEE] {
        let log = record(seed, &GenParams::future_heavy());
        let serial = serial_report(&log);
        let (blob, chunks) = frame(&log, 96);
        for kill_at in 1..chunks {
            let mut stop_plan = plan(3);
            stop_plan.stop_after_chunks = Some(kill_at);
            let out = run_supervised(
                || trace_events(&blob, false),
                RaceDetector::new,
                &stop_plan,
                None,
            )
            .unwrap();
            let SupervisedOutcome::Suspended { checkpoint, .. } = out else {
                panic!("seed {seed}: kill {kill_at}/{chunks} must suspend");
            };
            let out = run_supervised(
                || trace_events(&blob, false),
                RaceDetector::new,
                &plan(3),
                Some(&checkpoint),
            )
            .unwrap();
            let SupervisedOutcome::Completed { report, .. } = out else {
                panic!("seed {seed}: resume must complete");
            };
            assert_verdict(
                &report.report,
                &serial,
                &format!("seed {seed}, kill {kill_at}/{chunks}"),
            );
        }
    }
}

#[test]
fn worker_panics_recover_with_the_serial_verdict() {
    // A panicking worker either restarts (budget available) or degrades
    // to the serial pass (budget exhausted); both must keep the verdict.
    quiet_injected_panics();
    let strat = strategies::tuple2(strategies::any_u64(), strategies::u8_range(0..2));
    let restarts = std::cell::Cell::new(0u32);
    let degrades = std::cell::Cell::new(0u32);
    propcheck::check(&Config::with_cases(128), &strat, |(seed, with_budget)| {
        let log = record(seed, &GenParams::default());
        let serial = serial_report(&log);
        let (blob, chunks) = frame(&log, 64);
        let mut p = plan(2);
        p.worker_panic = Some(WorkerFault {
            shard: (seed % 2) as usize,
            at_op: 1 + seed % 16,
        });
        if with_budget == 1 {
            p.max_restarts = 2;
            p.checkpoint_every_chunks = Some(1.max(chunks / 3));
        } else {
            p.max_restarts = 0;
        }
        let out = run_supervised(
            || trace_events(&blob, false),
            RaceDetector::new,
            &p,
            None,
        )
        .unwrap();
        let SupervisedOutcome::Completed {
            report, supervision, ..
        } = out
        else {
            panic!("seed {seed}: no stop requested, must complete");
        };
        // A tiny program may never reach the trigger op — then the run is
        // simply clean. The aggregate counters below prove both recovery
        // paths fired often.
        restarts.set(restarts.get() + supervision.shard_restarts as u32);
        degrades.set(degrades.get() + supervision.degradations as u32);
        assert_verdict(&report.report, &serial, &format!("seed {seed} (panic)"));
    });
    assert!(restarts.get() > 10, "restart path under-exercised ({})", restarts.get());
    assert!(degrades.get() > 10, "degrade path under-exercised ({})", degrades.get());
}

#[test]
fn seeded_writer_faults_never_panic_and_salvage_a_prefix() {
    // Recording through a misbehaving sink must never panic; whatever
    // bytes land on "disk" must read back (leniently) as a prefix-or-all
    // of the original events followed by at most one terminal error.
    propcheck::check(&Config::with_cases(128), &strategies::any_u64(), |seed| {
        let log = record(seed, &GenParams::default());
        let faults = FaultPlan::from_seed(seed);
        let sink = FaultyWriter::new(Vec::new(), faults.write.clone());
        let mut w = match StreamWriter::with_chunk_bytes(sink, 128) {
            Ok(w) => w,
            Err(_) => return, // header write hit a hard fault: fine, no file
        };
        for e in &log.events {
            w.record(e);
        }
        let blob = match w.finish() {
            Ok((sink, _)) => sink.into_inner(),
            Err(e) => {
                // Checked close: the error must carry context, not panic.
                assert!(!e.to_string().is_empty(), "seed {seed}");
                return;
            }
        };
        let mut got = Vec::new();
        for item in trace_events(&blob, true) {
            match item {
                Ok(e) => got.push(e),
                Err(_) => break, // terminal damage; prefix property below
            }
        }
        assert!(
            got.len() <= log.events.len(),
            "seed {seed}: salvage invented events"
        );
        // Lenient reads may skip whole damaged chunks, so `got` is a
        // subsequence; every event must at least decode to a real one
        // from the original stream order when nothing was dropped.
        if got.len() == log.events.len() {
            assert_eq!(got, log.events, "seed {seed}: clean round-trip diverged");
        }
    });
}
