//! The sharded offline detector must be *indistinguishable* from the
//! serial online detector: same verdict, same `total_detected`, same race
//! list (first race included) in the same order — for every program and
//! every shard count. This is the correctness contract that makes
//! `analyze --shards N` a drop-in replacement.
//!
//! Checked over ≥256 random task-parallel programs (async/finish/future/
//! get over shared arrays, from `benchsuite::randomprog`) across three
//! generation profiles, for shard counts {1, 2, 4, 7} — including a prime
//! count so `loc % N` routing gets no accidental alignment help.
//!
//! Replays: `FUTRACE_PROPCHECK_SEED=<seed>` (printed on failure).

use futrace_baselines::VectorClockDetector;
use futrace_benchsuite::randomprog::{self, GenParams};
use futrace_detector::{RaceDetector, RaceReport};
use futrace_offline::{
    detect_sharded, detect_sharded_events, run_sharded_events, ShardOptions, ShardPlan,
    StreamWriter,
};
use futrace_runtime::engine::run_analysis_recorded;
use futrace_runtime::{replay, run_serial, EventLog};
use futrace_util::propcheck::{self, strategies, Config};
use std::convert::Infallible;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 7];

fn record(seed: u64, params: &GenParams) -> EventLog {
    let prog = randomprog::generate(seed, params);
    let mut log = EventLog::new();
    run_serial(&mut log, |ctx| {
        randomprog::execute(ctx, &prog);
    });
    log
}

fn serial_report(log: &EventLog) -> RaceReport {
    let mut det = RaceDetector::new();
    replay(&log.events, &mut det);
    det.into_report()
}

fn assert_equivalent(serial: &RaceReport, log: &EventLog, shards: usize, ctx: &str) {
    let opts = ShardOptions {
        shards,
        // Small batches + tight channels stress the pipeline's ordering
        // and backpressure; correctness must not depend on batching.
        batch_events: 32,
        channel_capacity: 2,
        ..ShardOptions::default()
    };
    let stream = log.events.iter().cloned().map(Ok::<_, Infallible>);
    let out = detect_sharded_events(stream, &opts).expect("infallible stream");
    assert_eq!(
        out.report.total_detected, serial.total_detected,
        "{ctx}: verdict diverged at {shards} shards"
    );
    assert_eq!(
        out.report.races, serial.races,
        "{ctx}: race report diverged at {shards} shards"
    );
    assert_eq!(
        out.report.races.first(),
        serial.races.first(),
        "{ctx}: first race diverged at {shards} shards"
    );
}

#[test]
fn sharded_equals_serial_on_random_programs() {
    let profiles = [
        ("default", GenParams::default()),
        ("future_heavy", GenParams::future_heavy()),
        ("async_finish_only", GenParams::async_finish_only()),
    ];
    let strat = strategies::tuple2(strategies::any_u64(), strategies::u8_range(0..3));
    let racy = std::cell::Cell::new(0u32);
    let clean = std::cell::Cell::new(0u32);
    propcheck::check(&Config::with_cases(256), &strat, |(seed, which)| {
        let (name, params) = &profiles[which as usize];
        let log = record(seed, params);
        let serial = serial_report(&log);
        if serial.has_races() {
            racy.set(racy.get() + 1);
        } else {
            clean.set(clean.get() + 1);
        }
        for shards in SHARD_COUNTS {
            assert_equivalent(&serial, &log, shards, name);
        }
    });
    // The generator must exercise both verdicts, otherwise "equivalence"
    // is vacuous on one side.
    assert!(racy.get() > 10, "too few racy programs generated ({})", racy.get());
    assert!(clean.get() > 10, "too few clean programs generated ({})", clean.get());
}

#[test]
fn sharded_equals_serial_through_the_framed_format() {
    // End-to-end: program → StreamWriter (v2 framed) → sharded decode
    // pipeline, compared against the in-memory serial replay.
    for seed in [3u64, 99, 0xABCDEF] {
        let log = record(seed, &GenParams::default());
        let serial = serial_report(&log);
        let mut w = StreamWriter::with_chunk_bytes(Vec::new(), 256).unwrap();
        for e in &log.events {
            w.record(e);
        }
        let (blob, _) = w.finish().unwrap();
        for shards in SHARD_COUNTS {
            let out = detect_sharded(&blob, &ShardOptions::with_shards(shards), false).unwrap();
            assert_eq!(out.report.races, serial.races, "seed {seed}, {shards} shards");
            assert_eq!(out.report.total_detected, serial.total_detected);
        }
    }
}

#[test]
fn vector_clock_shards_like_the_dtrg_detector() {
    // The generic pipeline is not DTRG-specific: any `LocRoutable`
    // analysis shards with a serial-identical verdict. The vector-clock
    // baseline's clocks are mutated only by control events (broadcast to
    // every replica) and its shadow state is per-location (routed), so it
    // qualifies — exercised here over random programs at every shard
    // count, including the prime one.
    let profiles = [GenParams::default(), GenParams::future_heavy()];
    propcheck::check(&Config::with_cases(128), &strategies::any_u64(), |seed| {
        for params in &profiles {
            let log = record(seed, params);
            let serial = run_analysis_recorded(&log.events, VectorClockDetector::new()).report;
            for shards in SHARD_COUNTS {
                let mut plan = ShardPlan::with_shards(shards);
                plan.batch_events = 32;
                plan.channel_capacity = 2;
                let stream = log.events.iter().cloned().map(Ok::<_, Infallible>);
                let out = run_sharded_events(stream, &plan, VectorClockDetector::new)
                    .expect("infallible stream");
                assert_eq!(
                    out.report.races, serial.races,
                    "seed {seed}, {shards} shards: vc race count diverged"
                );
                assert_eq!(
                    out.report.notes, serial.notes,
                    "seed {seed}, {shards} shards: control-derived notes must be replica-identical"
                );
            }
        }
    });
}
