//! HJ-style finish accumulators: deterministic parallel reductions.
//!
//! Habanero-Java pairs its determinacy story with *accumulators* —
//! reduction cells that many tasks may `put` into concurrently, with the
//! result readable after the enclosing `finish`. Because the reduction
//! operator is associative and commutative, the final value is
//! schedule-independent even though the puts race on wall-clock time: the
//! construct is **race-free by construction**, so (exactly as in HJ's
//! runtime) accumulator traffic is *not* routed through the shared-memory
//! instrumentation — the detector neither sees nor needs to see it.
//! Everything the paper's determinism property requires still holds: a
//! program whose only "races" are accumulator puts is determinate.
//!
//! Contract (dynamically unchecked, as in HJ): `get` is meaningful only
//! after every task that `put`s has been joined (typically: after the
//! `finish` enclosing the puts). Reading earlier yields some prefix
//! reduction — deterministic under the serial executor but not under the
//! parallel one.
//!
//! ```
//! use futrace_runtime::accumulator::{Accumulator, SumOp};
//! use futrace_runtime::{run_parallel, TaskCtx};
//!
//! let total = run_parallel(4, |ctx| {
//!     let acc = Accumulator::<u64, SumOp>::new();
//!     ctx.finish(|ctx| {
//!         for i in 1..=100u64 {
//!             let acc = acc.clone();
//!             ctx.async_task(move |_| acc.put(i));
//!         }
//!     });
//!     acc.get()
//! })
//! .unwrap();
//! assert_eq!(total, 5050);
//! ```

use crate::sync::Mutex;
use std::marker::PhantomData;
use std::sync::Arc;

/// An associative, commutative reduction operator over `T`.
pub trait ReduceOp<T>: Send + Sync + 'static {
    /// The operator's identity element (initial accumulator value).
    fn identity() -> T;
    /// Combines two values; must be associative and commutative for the
    /// determinism guarantee to hold.
    fn combine(a: T, b: T) -> T;
}

/// Addition.
#[derive(Clone, Copy, Debug, Default)]
pub struct SumOp;

/// Minimum.
#[derive(Clone, Copy, Debug, Default)]
pub struct MinOp;

/// Maximum.
#[derive(Clone, Copy, Debug, Default)]
pub struct MaxOp;

macro_rules! impl_numeric_ops {
    ($($t:ty),*) => {$(
        impl ReduceOp<$t> for SumOp {
            fn identity() -> $t { 0 as $t }
            fn combine(a: $t, b: $t) -> $t { a + b }
        }
        impl ReduceOp<$t> for MinOp {
            fn identity() -> $t { <$t>::MAX }
            fn combine(a: $t, b: $t) -> $t { if a < b { a } else { b } }
        }
        impl ReduceOp<$t> for MaxOp {
            fn identity() -> $t { <$t>::MIN }
            fn combine(a: $t, b: $t) -> $t { if a > b { a } else { b } }
        }
    )*};
}

impl_numeric_ops!(u32, u64, i32, i64, usize, f64);

/// A deterministic reduction cell (see module docs).
pub struct Accumulator<T, O: ReduceOp<T>> {
    value: Arc<Mutex<T>>,
    _op: PhantomData<O>,
}

impl<T, O: ReduceOp<T>> Clone for Accumulator<T, O> {
    fn clone(&self) -> Self {
        Accumulator {
            value: Arc::clone(&self.value),
            _op: PhantomData,
        }
    }
}

impl<T, O: ReduceOp<T>> Default for Accumulator<T, O>
where
    T: Copy + Send + 'static,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<T, O: ReduceOp<T>> Accumulator<T, O>
where
    T: Copy + Send + 'static,
{
    /// Fresh accumulator holding the operator's identity.
    pub fn new() -> Self {
        Accumulator {
            value: Arc::new(Mutex::new(O::identity())),
            _op: PhantomData,
        }
    }

    /// Contributes `v` (associative + commutative, so schedule-independent).
    pub fn put(&self, v: T) {
        let mut guard = self.value.lock();
        *guard = O::combine(*guard, v);
    }

    /// Reads the reduction. Call after the enclosing finish (see module
    /// docs for the contract).
    pub fn get(&self) -> T {
        *self.value.lock()
    }

    /// Resets to the identity (e.g. between sweeps).
    pub fn reset(&self) {
        *self.value.lock() = O::identity();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_parallel, run_serial, NullMonitor, TaskCtx};

    #[test]
    fn serial_sum() {
        let mut mon = NullMonitor;
        let total = run_serial(&mut mon, |ctx| {
            let acc = Accumulator::<u64, SumOp>::new();
            ctx.finish(|ctx| {
                for i in 1..=1000u64 {
                    let acc = acc.clone();
                    ctx.async_task(move |_| acc.put(i));
                }
            });
            acc.get()
        });
        assert_eq!(total, 500_500);
    }

    #[test]
    fn min_max_identities() {
        let mn = Accumulator::<i64, MinOp>::new();
        let mx = Accumulator::<i64, MaxOp>::new();
        assert_eq!(mn.get(), i64::MAX);
        assert_eq!(mx.get(), i64::MIN);
        for v in [3, -7, 12, 0] {
            mn.put(v);
            mx.put(v);
        }
        assert_eq!(mn.get(), -7);
        assert_eq!(mx.get(), 12);
        mn.reset();
        assert_eq!(mn.get(), i64::MAX);
    }

    #[test]
    fn parallel_sum_is_schedule_independent() {
        for _ in 0..10 {
            let total = run_parallel(4, |ctx| {
                let acc = Accumulator::<u64, SumOp>::new();
                ctx.finish(|ctx| {
                    for i in 1..=500u64 {
                        let acc = acc.clone();
                        ctx.async_task(move |_| acc.put(i));
                    }
                });
                acc.get()
            })
            .unwrap();
            assert_eq!(total, 125_250);
        }
    }

    #[test]
    fn float_sum_reduces() {
        let acc = Accumulator::<f64, SumOp>::new();
        acc.put(1.5);
        acc.put(2.5);
        assert_eq!(acc.get(), 4.0);
    }

    #[test]
    fn accumulators_work_with_futures_too() {
        let mut mon = NullMonitor;
        let v = run_serial(&mut mon, |ctx| {
            let acc = Accumulator::<u64, MaxOp>::new();
            let hs: Vec<_> = (0..16u64)
                .map(|i| {
                    let acc = acc.clone();
                    ctx.future(move |_| acc.put(i * i))
                })
                .collect();
            for h in &hs {
                ctx.get(h);
            }
            acc.get()
        });
        assert_eq!(v, 225);
    }
}
