//! The executor-independent programming model.
//!
//! [`TaskCtx`] is the paper's programming model (§2) as a Rust trait:
//! programs are written once as generic functions over `C: TaskCtx` and can
//! then run under the serial depth-first executor (instrumented, for race
//! detection — see [`crate::serial`]) or the parallel work-stealing executor
//! (see [`crate::parallel`]) without modification. The Table-2 benchmarks
//! and all example programs are written this way.
//!
//! The correspondence to the paper's syntax:
//!
//! | paper                              | here                                  |
//! |------------------------------------|---------------------------------------|
//! | `async { S }`                      | `ctx.async_task(\|ctx\| S)`           |
//! | `finish { S }`                     | `ctx.finish(\|ctx\| S)`               |
//! | `future<T> f = async<T> Expr;`     | `let f = ctx.future(\|ctx\| expr);`   |
//! | `f.get()`                          | `ctx.get(&f)`                         |
//!
//! Closure bounds are `Send + 'static` even though the serial executor does
//! not strictly need them — the stricter bound is what makes the same
//! program text valid under the parallel executor.

use crate::memory::{MemCtx, SharedArray, SharedVar, Word};
use futrace_util::ids::TaskId;

/// The async/finish/future programming model. See the module docs for the
/// paper correspondence.
pub trait TaskCtx: MemCtx + Sized {
    /// Handle type returned by [`TaskCtx::future`]; cheap to clone and
    /// capturable by other task bodies.
    type Handle<T: Send + 'static>: Clone + Send + 'static;

    /// Identifier of the task whose code is currently executing.
    fn current_task(&self) -> TaskId;

    /// `async { S }`: creates a child task executing `f`. The child is
    /// joined by its Immediately Enclosing Finish. Under serial depth-first
    /// execution the body runs to completion here; under the parallel
    /// executor it may run before, after, or concurrently with the
    /// continuation.
    fn async_task<F>(&mut self, f: F)
    where
        F: FnOnce(&mut Self) + Send + 'static;

    /// `finish { S }`: executes `f` and then waits for every task
    /// transitively created within it (including future tasks, as in HJ).
    fn finish<F>(&mut self, f: F)
    where
        F: FnOnce(&mut Self);

    /// `future<T> f = async<T> Expr`: creates a child future task computing
    /// `f` and returns a handle to its eventual value.
    fn future<T, F>(&mut self, f: F) -> Self::Handle<T>
    where
        T: Send + 'static,
        F: FnOnce(&mut Self) -> T + Send + 'static;

    /// `h.get()`: joins the future task behind `h` and returns (a clone of)
    /// its value, blocking under the parallel executor if the task has not
    /// completed.
    fn get<T>(&mut self, h: &Self::Handle<T>) -> T
    where
        T: Clone + Send + 'static;

    /// HJ's `forasync`: one async task per index of `range`, all
    /// registered with the current Immediately Enclosing Finish. The
    /// iteration closure is cloned per task (capture shared handles, not
    /// large owned data).
    ///
    /// ```
    /// use futrace_runtime::{run_serial, NullMonitor, TaskCtx};
    ///
    /// let mut mon = NullMonitor;
    /// let total = run_serial(&mut mon, |ctx| {
    ///     let acc = ctx.shared_array(8, 0u64, "acc");
    ///     let acc2 = acc.clone();
    ///     ctx.finish(|ctx| {
    ///         ctx.forasync(0..8, move |ctx, i| acc2.write(ctx, i, i as u64 * 2));
    ///     });
    ///     (0..8).map(|i| acc.peek(i)).sum::<u64>()
    /// });
    /// assert_eq!(total, 56);
    /// ```
    fn forasync<F>(&mut self, range: std::ops::Range<usize>, f: F)
    where
        F: Fn(&mut Self, usize) + Clone + Send + 'static,
    {
        for i in range {
            let f = f.clone();
            self.async_task(move |ctx| f(ctx, i));
        }
    }

    /// `finish { forasync … }` in one call — the ubiquitous parallel-loop
    /// idiom of the paper's async-finish benchmarks.
    fn finish_forasync<F>(&mut self, range: std::ops::Range<usize>, f: F)
    where
        F: Fn(&mut Self, usize) + Clone + Send + 'static,
    {
        self.finish(|ctx| ctx.forasync(range, f));
    }

    /// Allocates an instrumented shared array (convenience for
    /// [`SharedArray::new`]).
    fn shared_array<T: Word>(&mut self, len: usize, fill: T, name: &str) -> SharedArray<T> {
        SharedArray::new(self, len, fill, name)
    }

    /// Allocates an instrumented shared variable (convenience for
    /// [`SharedVar::new`]).
    fn shared_var<T: Word>(&mut self, init: T, name: &str) -> SharedVar<T> {
        SharedVar::new(self, init, name)
    }
}
